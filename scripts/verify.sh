#!/usr/bin/env bash
# Tier-1 verification, hermetically.
#
# --offline + --locked make any reintroduced external (crates.io)
# dependency, or any unlocked version drift, a hard build error instead
# of a network fetch. -D warnings keeps the tree warning-clean, so new
# warnings are regressions rather than noise.
#
# Usage: scripts/verify.sh [extra cargo-test args]
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== cargo build --release --offline --locked --workspace --all-targets"
cargo build --release --offline --locked --workspace --all-targets

echo "== cargo test -q --offline --locked --workspace"
cargo test -q --offline --locked --workspace "$@"

# The signature crate parses attacker-controlled compressed bytes and
# does position arithmetic on them; run its tests with debug_assertions
# AND overflow checks forced on, so any wrap in gap accumulation or bit
# cursors is a hard failure even if a profile ever disables the default.
# The same rebuild also enables --cfg bulk_stress, which compiles the
# parallel runtime's re-delivery/epoch-churn smoke (crates/par/tests/
# stress.rs): injected duplicates must be dropped by dedup, nothing may
# apply twice, and the committed-order class must still match the sim's.
echo "== cargo test -q -p bulk-sig -p bulk-par (overflow checks + bulk_stress)"
RUSTFLAGS="$RUSTFLAGS -Coverflow-checks=on --cfg bulk_stress" \
  cargo test -q --offline --locked -p bulk-sig -p bulk-par

echo "== cargo doc --no-deps --offline --locked (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}" cargo doc --no-deps --offline --locked --workspace

echo "== cargo test --doc -q --offline --locked --workspace"
cargo test --doc -q --offline --locked --workspace

# Bounded chaos smoke: deterministic fault injection + invariant audit
# through the CLI, one TM and one TLS scheme over three fault seeds.
# Any invariant violation or undetected corruption is a nonzero exit.
BULK=target/release/bulk
echo "== chaos smoke ($BULK, 3 seeds x 2 schemes)"
for seed in 1 2 3; do
  "$BULK" tm  --app mc   --scheme bulk --seed "$seed" --txs 10  --chaos > /dev/null
  "$BULK" tls --app gzip --scheme bulk --seed "$seed" --tasks 60 --chaos > /dev/null
done
echo "chaos smoke: OK"

# Parallel-runtime crash smoke: --chaos under --runtime par arms the
# real-thread fault preset (seeded worker kills at commit-protocol
# points, injected stalls, delayed publishes). The supervisor must
# fence/adopt the orphaned slot, respawn from the last checkpoint and
# finish auditor-clean; any duplicate application or violation is a
# nonzero exit.
echo "== par crash smoke ($BULK, 2 seeds x 2 machines)"
for seed in 1 2; do
  "$BULK" tm  --app mc   --scheme bulk --seed "$seed" --txs 8   --runtime par --chaos > /dev/null
  "$BULK" tls --app gzip --scheme lazy --seed "$seed" --tasks 24 --runtime par --chaos > /dev/null
done
echo "par crash smoke: OK"

# Trace determinism smoke: two same-seed runs per machine must export
# byte-identical Chrome trace-event JSON (cycle accounting runs inside
# each, so a conservation violation also fails here via the auditor).
echo "== trace determinism smoke"
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
for run in a b; do
  "$BULK" tm  --app mc   --scheme bulk --seed 7 --txs 10   --chaos \
    --trace-out "$TRACE_DIR/tm_$run.trace.json" > /dev/null
  "$BULK" tls --app gzip --scheme bulk --seed 7 --tasks 60 --chaos \
    --trace-out "$TRACE_DIR/tls_$run.trace.json" > /dev/null
done
cmp "$TRACE_DIR/tm_a.trace.json"  "$TRACE_DIR/tm_b.trace.json"
cmp "$TRACE_DIR/tls_a.trace.json" "$TRACE_DIR/tls_b.trace.json"
echo "trace determinism: OK"

# bulkd smoke: start the telemetry daemon on ephemeral ports, submit
# one sim TM job and one par TLS job over the ingest socket, scrape
# /metrics with exposition-format parse validation, then shut down
# cleanly and require the daemon process to exit zero.
echo "== bulkd smoke (daemon ingest + /metrics scrape)"
"$BULK" bulkd --listen 127.0.0.1:0 --http 127.0.0.1:0 \
  --addr-file "$TRACE_DIR/bulkd.addrs" > "$TRACE_DIR/bulkd.log" &
BULKD_PID=$!
trap 'kill "$BULKD_PID" 2>/dev/null || true; rm -rf "$TRACE_DIR"' EXIT
for _ in $(seq 1 100); do
  [ -s "$TRACE_DIR/bulkd.addrs" ] && break
  sleep 0.05
done
INGEST=$(sed -n 1p "$TRACE_DIR/bulkd.addrs")
HTTP=$(sed -n 2p "$TRACE_DIR/bulkd.addrs")
"$BULK" submit --connect "$INGEST" \
  --spec '{"machine": "tm", "app": "cb", "scheme": "bulk", "seed": 7}' > /dev/null
"$BULK" submit --connect "$INGEST" \
  --spec '{"machine": "tls", "app": "gzip", "scheme": "lazy", "seed": 9, "runtime": "par"}' > /dev/null
"$BULK" scrape --connect "$HTTP" --check > /dev/null
"$BULK" shutdown --connect "$INGEST" > /dev/null
wait "$BULKD_PID"
echo "bulkd smoke: OK"

# Protocol model-check smoke: bounded-depth BFS over the commit/
# failover model plus one seeded bug that must die with a
# counterexample. The exhaustive + full mutation suite runs in the CI
# model-check job; this keeps a protocol regression inside the
# hermetic gate at ~tens of milliseconds.
echo "== model-check smoke (bounded depth)"
cargo run --release -q --offline --locked -p bulk-mc --bin mc_explore -- --smoke
echo "model-check smoke: OK"

echo "verify: OK (hermetic build, no registry dependencies)"
