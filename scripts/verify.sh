#!/usr/bin/env bash
# Tier-1 verification, hermetically.
#
# --offline + --locked make any reintroduced external (crates.io)
# dependency, or any unlocked version drift, a hard build error instead
# of a network fetch. -D warnings keeps the tree warning-clean, so new
# warnings are regressions rather than noise.
#
# Usage: scripts/verify.sh [extra cargo-test args]
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== cargo build --release --offline --locked --workspace --all-targets"
cargo build --release --offline --locked --workspace --all-targets

echo "== cargo test -q --offline --locked --workspace"
cargo test -q --offline --locked --workspace "$@"

echo "verify: OK (hermetic build, no registry dependencies)"
