//! Determinism and invariants of the observability layer, end to end:
//! two runs of the same seeded workload must produce byte-identical
//! metrics JSON and event JSONL, squash attribution must sum exactly,
//! and the signature oracle cross-check must never report a false
//! negative (a Bloom filter cannot miss).

use std::sync::Arc;

use bulk_repro::obs::Obs;
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{run_tls_observed, TlsScheme};
use bulk_repro::tm::{run_tm_observed, Scheme};
use bulk_repro::trace::profiles;

fn observed_tm_run(seed: u64) -> Arc<Obs> {
    let mut p = profiles::tm_profile("mc").expect("profile");
    p.txs_per_thread = 12;
    let obs = Arc::new(Obs::new());
    run_tm_observed(&p.generate(seed), Scheme::Bulk, &SimConfig::tm_default(), Arc::clone(&obs));
    obs
}

fn observed_tls_run(seed: u64) -> Arc<Obs> {
    let mut p = profiles::tls_profile("gzip").expect("profile");
    p.tasks = 60;
    let obs = Arc::new(Obs::new());
    run_tls_observed(
        &p.generate(seed),
        TlsScheme::Bulk,
        &SimConfig::tls_default(),
        Arc::clone(&obs),
    );
    obs
}

#[test]
fn same_seed_tm_runs_produce_identical_metrics_and_events() {
    let a = observed_tm_run(42);
    let b = observed_tm_run(42);
    assert!(a.registry().counter_value("tm.commits") > 0, "scenario must do work");
    assert_eq!(a.registry().to_json(), b.registry().to_json());
    assert_eq!(a.events().to_jsonl(), b.events().to_jsonl());
    assert!(!a.events().is_empty());
}

#[test]
fn same_seed_tls_runs_produce_identical_metrics_and_events() {
    let a = observed_tls_run(42);
    let b = observed_tls_run(42);
    assert!(a.registry().counter_value("tls.commits") > 0, "scenario must do work");
    assert_eq!(a.registry().to_json(), b.registry().to_json());
    assert_eq!(a.events().to_jsonl(), b.events().to_jsonl());
    assert!(!a.events().is_empty());
}

#[test]
fn different_seeds_differ() {
    // Guards against the determinism test passing vacuously (e.g. an
    // instrumentation path that never records anything).
    let a = observed_tm_run(42);
    let b = observed_tm_run(43);
    assert_ne!(a.registry().to_json(), b.registry().to_json());
}

#[test]
fn squash_attribution_sums_and_oracle_never_misses() {
    for (obs, prefix) in [(observed_tm_run(42), "tm."), (observed_tls_run(42), "tls.")] {
        let reg = obs.registry();
        let c = |n: &str| reg.counter_value(&format!("{prefix}{n}"));
        assert!(c("squashes") > 0, "{prefix}: scenario must squash");
        assert_eq!(
            c("squash.true_conflict") + c("squash.aliasing"),
            c("squashes"),
            "{prefix}: every squash is attributed to exactly one cause"
        );
        assert_eq!(
            c("verdict.false_negative"),
            0,
            "{prefix}: a signature can never miss a real conflict"
        );
        assert_eq!(
            c("invalidate.exact") + c("invalidate.overshoot"),
            c("invalidate.lines"),
            "{prefix}: every invalidated line is exact or overshoot"
        );
    }
}

#[test]
fn event_jsonl_lines_are_valid_and_ordered() {
    let obs = observed_tm_run(42);
    let jsonl = obs.events().to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    let (events, trailer) = lines.split_at(lines.len() - 1);
    assert!(!events.is_empty(), "log must not be empty");
    let mut prev_seq = None;
    for line in events {
        assert!(line.starts_with("{\"seq\": "), "fixed field order: {line}");
        assert!(line.ends_with('}'), "one object per line: {line}");
        let seq: u64 = line["{\"seq\": ".len()..]
            .split(',')
            .next()
            .and_then(|s| s.trim().parse().ok())
            .expect("numeric seq");
        if let Some(p) = prev_seq {
            assert!(seq > p, "sequence numbers strictly increase");
        }
        prev_seq = Some(seq);
    }
    // The stream ends with a trailer surfacing ring overflow, so a
    // consumer can tell a complete log from a truncated one.
    assert_eq!(
        trailer[0],
        format!(
            "{{\"trailer\": true, \"retained\": {}, \"dropped\": {}}}",
            obs.events().len(),
            obs.events().dropped()
        )
    );
    assert_eq!(obs.events().dropped(), 0, "scenario fits in the ring");
}
