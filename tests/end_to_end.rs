//! End-to-end integration tests spanning the whole workspace: full TM and
//! TLS application runs, checked against the paper's qualitative claims.

use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{run_tls, run_tls_sequential, TlsScheme};
use bulk_repro::tm::{run_tm, Scheme, TmMachine};
use bulk_repro::trace::{patterns, profiles};

#[test]
fn tm_bulk_commits_everything_every_app() {
    let cfg = SimConfig::tm_default();
    for p in profiles::tm_profiles() {
        let mut p = p;
        p.txs_per_thread = 15;
        let wl = p.generate(1);
        let stats = run_tm(&wl, Scheme::Bulk, &cfg);
        assert_eq!(
            stats.commits as usize,
            p.threads * p.txs_per_thread,
            "{}: every transaction must eventually commit",
            p.name
        );
        assert!(!stats.livelocked, "{}", p.name);
    }
}

#[test]
fn tm_schemes_agree_on_committed_work() {
    let cfg = SimConfig::tm_default();
    let mut p = profiles::tm_profile("mc").unwrap();
    p.txs_per_thread = 20;
    let wl = p.generate(3);
    let expected = (p.threads * p.txs_per_thread) as u64;
    for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial] {
        let stats = run_tm(&wl, s, &cfg);
        assert_eq!(stats.commits, expected, "{s}");
    }
}

#[test]
fn tm_bulk_commit_bandwidth_beats_lazy() {
    let cfg = SimConfig::tm_default();
    let mut p = profiles::tm_profile("lu").unwrap();
    p.txs_per_thread = 20;
    let wl = p.generate(5);
    let lazy = run_tm(&wl, Scheme::Lazy, &cfg);
    let bulk = run_tm(&wl, Scheme::Bulk, &cfg);
    // The paper reports an 83% average reduction; assert a healthy margin.
    assert!(
        (bulk.bw.commit_bytes() as f64) < 0.5 * lazy.bw.commit_bytes() as f64,
        "bulk {} vs lazy {}",
        bulk.bw.commit_bytes(),
        lazy.bw.commit_bytes()
    );
    // Same number of commit broadcasts.
    assert_eq!(bulk.bw.commit_count(), lazy.bw.commit_count());
}

#[test]
fn tm_signature_inexactness_only_adds_squashes() {
    let cfg = SimConfig::tm_default();
    let mut p = profiles::tm_profile("moldyn").unwrap();
    p.txs_per_thread = 20;
    let wl = p.generate(9);
    let lazy = run_tm(&wl, Scheme::Lazy, &cfg);
    let bulk = run_tm(&wl, Scheme::Bulk, &cfg);
    assert_eq!(lazy.false_squashes, 0, "exact scheme has no false positives");
    // Bulk's additional squashes over Lazy are bounded by its false ones
    // plus cascade noise; mainly: false squashes exist only under Bulk.
    assert!(bulk.false_squashes <= bulk.squashes);
}

#[test]
fn fig12a_livelock_and_fix() {
    let cfg = SimConfig::tm_default();
    let w = patterns::fig12a_livelock(40, 400);
    let mut naive = TmMachine::new(&w, Scheme::EagerNaive, &cfg);
    naive.set_squash_cap(2_000);
    assert!(naive.run().livelocked);
    let fixed = run_tm(&w, Scheme::Eager, &cfg);
    assert!(!fixed.livelocked);
    assert_eq!(fixed.commits, 80);
}

#[test]
fn tls_all_schemes_commit_all_tasks_and_bulk_tracks_lazy() {
    let cfg = SimConfig::tls_default();
    let mut p = profiles::tls_profile("parser").unwrap();
    p.tasks = 120;
    let wl = p.generate(2);
    let seq = run_tls_sequential(&wl, &cfg);
    let mut cycles = Vec::new();
    for s in TlsScheme::ALL {
        let stats = run_tls(&wl, s, &cfg);
        assert_eq!(stats.commits as usize, p.tasks, "{s}");
        assert!(stats.cycles < seq, "{s} must beat sequential here");
        cycles.push((s, stats.cycles));
    }
    // Bulk within 25% of Lazy on this workload.
    let lazy = cycles.iter().find(|(s, _)| *s == TlsScheme::Lazy).unwrap().1;
    let bulk = cycles.iter().find(|(s, _)| *s == TlsScheme::Bulk).unwrap().1;
    assert!((bulk as f64) < lazy as f64 * 1.25, "bulk {bulk} vs lazy {lazy}");
}

#[test]
fn tls_partial_overlap_saves_live_in_squashes() {
    let cfg = SimConfig::tls_default();
    let mut p = profiles::tls_profile("gap").unwrap(); // many live-ins
    p.tasks = 120;
    p.live_in_prob = 1.0; // every task consumes its parent's live-ins
    p.violation_prob = 0.0; // no true violations
    let wl = p.generate(4);
    let with = run_tls(&wl, TlsScheme::Bulk, &cfg);
    let without = run_tls(&wl, TlsScheme::BulkNoOverlap, &cfg);
    assert!(
        without.squashes > with.squashes + 50,
        "overlap {} vs no-overlap {}",
        with.squashes,
        without.squashes
    );
    assert!(without.cycles > with.cycles);
}

#[test]
fn tls_word_level_merges_happen_in_sharing_workloads() {
    let cfg = SimConfig::tls_default();
    let mut p = profiles::tls_profile("vortex").unwrap(); // word_share 0.6
    p.tasks = 200;
    let wl = p.generate(6);
    let stats = run_tls(&wl, TlsScheme::Bulk, &cfg);
    assert!(
        stats.line_merges > 0,
        "adjacent tasks write different words of shared lines: {stats:?}"
    );
}

#[test]
fn deterministic_end_to_end() {
    let tm_cfg = SimConfig::tm_default();
    let tls_cfg = SimConfig::tls_default();
    let mut tp = profiles::tm_profile("cb").unwrap();
    tp.txs_per_thread = 10;
    let tw = tp.generate(8);
    let a = run_tm(&tw, Scheme::BulkPartial, &tm_cfg);
    let b = run_tm(&tw, Scheme::BulkPartial, &tm_cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.bw.total(), b.bw.total());

    let mut lp = profiles::tls_profile("twolf").unwrap();
    lp.tasks = 80;
    let lw = lp.generate(8);
    let c = run_tls(&lw, TlsScheme::BulkNoOverlap, &tls_cfg);
    let d = run_tls(&lw, TlsScheme::BulkNoOverlap, &tls_cfg);
    assert_eq!(c.cycles, d.cycles);
    assert_eq!(c.squashes, d.squashes);
}

#[test]
fn overflow_filtering_keeps_bulk_accesses_low() {
    let cfg = SimConfig::tm_default();
    let mut p = profiles::tm_profile("cb").unwrap();
    p.txs_per_thread = 25;
    p.large_tx_prob = 0.2; // force plenty of cache overflow
    let wl = p.generate(12);
    let lazy = run_tm(&wl, Scheme::Lazy, &cfg);
    let bulk = run_tm(&wl, Scheme::Bulk, &cfg);
    assert!(lazy.overflow_accesses > 0, "workload must overflow");
    assert!(
        (bulk.overflow_accesses as f64) < 0.5 * lazy.overflow_accesses as f64,
        "bulk {} vs lazy {}",
        bulk.overflow_accesses,
        lazy.overflow_accesses
    );
}
