//! Crash-recovery acceptance matrix for the parallel runtime.
//!
//! A worker killed at any commit-protocol point — `claim` (slot won,
//! record unpublished), `publish` (ticket stamped, record unpublished)
//! or `apply` (mid-replay of a peer's record) — must not take the run
//! down: the supervisor fences the orphaned slot (TM) or hands it to
//! the respawned incarnation for adoption (TLS), respawns the worker
//! from its last verified checkpoint, and the finished run must be
//! indistinguishable from a crash-free one: every transaction/task
//! committed exactly once (zero duplicate applications), auditor-clean,
//! and in the same committed-order class as the deterministic sim
//! oracle running the same trace.
//!
//! Unrecoverable deaths (respawn budget exhausted) and hung peers
//! (wall-clock watchdog) must surface as *typed* errors carrying enough
//! context to replay, never as process aborts.

use bulk_repro::chaos::ChaosConfig;
use bulk_repro::par::{
    CrashPoint, KillSpec, ParConfig, ParRuntime, RunDetail, RunReport, Runtime, RuntimeError,
    SimRuntime, same_commit_class,
};
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::TlsScheme;
use bulk_repro::tm::Scheme;
use bulk_repro::trace::profiles;

const SEEDS: [u64; 3] = [1, 2, 3];
const POINTS: [CrashPoint; 3] = [CrashPoint::Claim, CrashPoint::Publish, CrashPoint::Apply];

fn par_stats(r: &RunReport) -> &bulk_repro::par::ParStats {
    match &r.detail {
        RunDetail::Par(s) => s,
        other => panic!("expected par detail, got {other:?}"),
    }
}

/// One TM run with a scheduled kill, checked against the sim oracle.
fn tm_crash_run(scheme: Scheme, point: CrashPoint, seed: u64) {
    let mut p = profiles::tm_profile("mc").unwrap();
    p.txs_per_thread = 4;
    let wl = p.generate(seed);
    let proc = seed as usize % p.threads;
    let cfg = ParConfig {
        seed,
        kills: vec![KillSpec { proc, point, at: 1 }],
        ..ParConfig::default()
    };
    let sim_cfg = SimConfig::tm_default();
    let par = ParRuntime::new(cfg)
        .run_tm(&wl, scheme, &sim_cfg)
        .unwrap_or_else(|e| panic!("{scheme:?}/{point}/{seed}: {e}"));
    let sim = SimRuntime.run_tm(&wl, scheme, &sim_cfg).unwrap();

    let s = par_stats(&par);
    let label = format!("{scheme:?}/{point}/seed {seed}");
    assert!(s.worker_crashes >= 1, "{label}: the scheduled kill never fired");
    assert!(s.respawns >= 1, "{label}: the dead worker was not respawned");
    assert_eq!(s.duplicate_applications, 0, "{label}: a record was applied twice");
    match point {
        // Claim- and publish-point deaths orphan a claimed slot: the
        // supervisor must have fenced it (and the log stayed dense).
        CrashPoint::Claim | CrashPoint::Publish => {
            assert!(s.fences >= 1, "{label}: orphaned slot was never fenced")
        }
        // Apply-point deaths hold no slot: nothing to fence.
        CrashPoint::Apply => assert_eq!(s.fences, 0, "{label}: fence without an orphaned slot"),
    }
    assert!(s.violations.is_empty(), "{label}: {:?}", s.violations);
    same_commit_class(&sim, &par).unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// One TLS run with a scheduled kill, checked against the sim oracle.
fn tls_crash_run(scheme: TlsScheme, point: CrashPoint, seed: u64) {
    let mut p = profiles::tls_profile("gzip").unwrap();
    p.tasks = 24;
    let wl = p.generate(seed);
    let cfg = ParConfig {
        seed,
        kills: vec![KillSpec { proc: 1 + seed as usize % 3, point, at: 1 }],
        ..ParConfig::default()
    };
    let sim_cfg = SimConfig::tls_default();
    let par = ParRuntime::new(cfg)
        .run_tls(&wl, scheme, &sim_cfg)
        .unwrap_or_else(|e| panic!("{scheme:?}/{point}/{seed}: {e}"));
    let sim = SimRuntime.run_tls(&wl, scheme, &sim_cfg).unwrap();

    let s = par_stats(&par);
    let label = format!("{scheme:?}/{point}/seed {seed}");
    assert!(s.worker_crashes >= 1, "{label}: the scheduled kill never fired");
    assert!(s.respawns >= 1, "{label}: the dead worker was not respawned");
    assert_eq!(s.duplicate_applications, 0, "{label}: a record was applied twice");
    assert_eq!(s.fences, 0, "{label}: TLS must never fence (slot i holds task i)");
    match point {
        // The dead worker held its current task's slot claimed: the
        // respawned incarnation must have adopted and republished it.
        CrashPoint::Claim | CrashPoint::Publish => {
            assert!(s.adopted_slots >= 1, "{label}: orphaned claim was never adopted")
        }
        CrashPoint::Apply => {
            assert_eq!(s.adopted_slots, 0, "{label}: adoption without an orphaned claim")
        }
    }
    assert!(s.violations.is_empty(), "{label}: {:?}", s.violations);
    same_commit_class(&sim, &par).unwrap_or_else(|e| panic!("{label}: {e}"));
}

#[test]
fn tm_bulk_survives_kills_at_every_protocol_point() {
    for point in POINTS {
        for seed in SEEDS {
            tm_crash_run(Scheme::Bulk, point, seed);
        }
    }
}

#[test]
fn tm_lazy_survives_kills_at_every_protocol_point() {
    for point in POINTS {
        for seed in SEEDS {
            tm_crash_run(Scheme::Lazy, point, seed);
        }
    }
}

#[test]
fn tls_bulk_survives_kills_at_every_protocol_point() {
    for point in POINTS {
        for seed in SEEDS {
            tls_crash_run(TlsScheme::Bulk, point, seed);
        }
    }
}

#[test]
fn tls_lazy_survives_kills_at_every_protocol_point() {
    for point in POINTS {
        for seed in SEEDS {
            tls_crash_run(TlsScheme::Lazy, point, seed);
        }
    }
}

#[test]
fn unrecoverable_tm_death_is_a_typed_error_not_an_abort() {
    let mut p = profiles::tm_profile("mc").unwrap();
    p.txs_per_thread = 2;
    let wl = p.generate(7);
    let cfg = ParConfig {
        seed: 7,
        kills: vec![KillSpec { proc: 2, point: CrashPoint::Publish, at: 0 }],
        respawn_budget: 0,
        ..ParConfig::default()
    };
    let err = ParRuntime::new(cfg).run_tm(&wl, Scheme::Bulk, &SimConfig::tm_default()).unwrap_err();
    match err {
        RuntimeError::WorkerDied { proc, slot, detail } => {
            assert_eq!(proc, 2);
            assert!(slot.is_some(), "a publish-point death holds a claimed slot");
            assert!(detail.contains("respawn budget exhausted"), "{detail}");
        }
        other => panic!("expected WorkerDied, got: {other}"),
    }
}

#[test]
fn unrecoverable_tls_death_is_a_typed_error_not_an_abort() {
    let mut p = profiles::tls_profile("gzip").unwrap();
    p.tasks = 12;
    let wl = p.generate(9);
    let cfg = ParConfig {
        seed: 9,
        kills: vec![KillSpec { proc: 1, point: CrashPoint::Claim, at: 0 }],
        respawn_budget: 0,
        ..ParConfig::default()
    };
    let err =
        ParRuntime::new(cfg).run_tls(&wl, TlsScheme::Bulk, &SimConfig::tls_default()).unwrap_err();
    match err {
        RuntimeError::WorkerDied { proc, detail, .. } => {
            assert_eq!(proc, 1);
            assert!(detail.contains("respawn budget exhausted"), "{detail}");
        }
        other => panic!("expected WorkerDied, got: {other}"),
    }
}

#[test]
fn a_hung_peer_trips_the_wall_clock_watchdog_with_a_replay_seed() {
    // Every publish is preceded by a 200ms injected sleep, against a
    // 50ms wall-clock stall bound: the watchdog must trip and surface a
    // typed liveness violation carrying the chaos replay seed, instead
    // of the run spinning forever.
    let mut p = profiles::tm_profile("mc").unwrap();
    p.txs_per_thread = 2;
    let wl = p.generate(11);
    let chaos = ChaosConfig {
        publish_delay_prob: 1.0,
        publish_delay_ns: 200_000_000,
        ..ChaosConfig::new(11)
    };
    let cfg = ParConfig {
        seed: 11,
        chaos: Some(chaos),
        stall_timeout_ms: 50,
        ..ParConfig::default()
    };
    let err = ParRuntime::new(cfg).run_tm(&wl, Scheme::Bulk, &SimConfig::tm_default()).unwrap_err();
    match err {
        RuntimeError::Liveness(v) => {
            assert_eq!(v.seed, Some(11), "the violation must carry the replay seed");
            assert!(v.scheme.contains("par/tm"), "{}", v.scheme);
        }
        other => panic!("expected a liveness violation, got: {other}"),
    }
}

#[test]
fn recovered_runs_compose_with_probabilistic_chaos() {
    // The full `--chaos` preset (probabilistic kills, stalls, delays)
    // on top of a scheduled kill: still exactly-once, still the sim's
    // commit class.
    let mut p = profiles::tm_profile("mc").unwrap();
    p.txs_per_thread = 4;
    let wl = p.generate(13);
    let cfg = ParConfig {
        seed: 13,
        chaos: Some(ChaosConfig::worker_crash(13)),
        kills: vec![KillSpec { proc: 0, point: CrashPoint::Publish, at: 1 }],
        ..ParConfig::default()
    };
    let sim_cfg = SimConfig::tm_default();
    let par = ParRuntime::new(cfg).run_tm(&wl, Scheme::Bulk, &sim_cfg).unwrap();
    let sim = SimRuntime.run_tm(&wl, Scheme::Bulk, &sim_cfg).unwrap();
    let s = par_stats(&par);
    assert!(s.worker_crashes >= 1);
    assert_eq!(s.duplicate_applications, 0);
    assert!(s.violations.is_empty(), "{:?}", s.violations);
    same_commit_class(&sim, &par).unwrap();
}
