//! Cross-runtime conformance: the deterministic sim is the oracle for
//! the OS-thread parallel runtime.
//!
//! Two substrates running the same trace must land in the same
//! *committed-order class* — the same multiset of `(thread, ordinal)`
//! commit identities, each thread's commits in program order — with both
//! histories auditor-clean. Timestamps (simulated cycles vs. bus
//! positions) are deliberately outside the equivalence relation: they
//! are the one thing real threads cannot reproduce.
//!
//! Also pinned here: the sim runtime's byte-identical determinism (the
//! property that makes it usable as an oracle at all) and the parallel
//! runtime's serializability under a repeated-run soak.

use bulk_repro::par::{
    conflict_light_tm, ParConfig, ParRuntime, RunDetail, RunReport, Runtime, SimRuntime,
    same_commit_class,
};
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::TlsScheme;
use bulk_repro::tm::Scheme;
use bulk_repro::trace::profiles;
use bulk_repro::trace::{ThreadTrace, TmOp, TmWorkload};
use bulk_repro::mem::Addr;

const SEEDS: [u64; 3] = [1, 2, 3];

fn par_runtime(seed: u64) -> ParRuntime {
    ParRuntime::new(ParConfig { seed, ..ParConfig::default() })
}

/// The parallel-runtime detail block of a report.
fn par_stats(r: &RunReport) -> &bulk_repro::par::ParStats {
    match &r.detail {
        RunDetail::Par(s) => s,
        other => panic!("expected par detail, got {other:?}"),
    }
}

/// A deliberately conflict-heavy workload: every thread reads and writes
/// the same few lines, so commit broadcasts squash peers constantly and
/// the disambiguation path (not just the happy path) is what's conformed.
fn contended_tm(threads: usize, txs: usize) -> TmWorkload {
    let mut traces = Vec::new();
    for t in 0..threads {
        let mut ops = Vec::new();
        for tx in 0..txs {
            ops.push(TmOp::Begin);
            let shared = ((tx + t) % 4) as u32 * 64;
            ops.push(TmOp::Read(Addr::new(shared)));
            ops.push(TmOp::Write(Addr::new(shared + 4)));
            ops.push(TmOp::End);
        }
        traces.push(ThreadTrace { ops });
    }
    TmWorkload { name: format!("contended_t{threads}_n{txs}"), threads: traces }
}

#[test]
fn tm_profiles_land_in_the_same_commit_class_on_both_runtimes() {
    let cfg = SimConfig::tm_default();
    for profile in profiles::tm_profiles() {
        let mut profile = profile;
        profile.txs_per_thread = 5;
        for scheme in [Scheme::Bulk, Scheme::Lazy] {
            for seed in SEEDS {
                let wl = profile.generate(seed);
                let ctx = format!("app={} scheme={scheme} seed={seed}", profile.name);
                let sim = SimRuntime
                    .run_tm(&wl, scheme, &cfg)
                    .unwrap_or_else(|e| panic!("sim run failed ({ctx}): {e}"));
                let par = par_runtime(seed)
                    .run_tm(&wl, scheme, &cfg)
                    .unwrap_or_else(|e| panic!("par run failed ({ctx}): {e}"));
                same_commit_class(&sim, &par)
                    .unwrap_or_else(|e| panic!("conformance failed ({ctx}): {e}"));
                let s = par_stats(&par);
                assert_eq!(s.duplicate_applications, 0, "exactly-once broken ({ctx})");
            }
        }
    }
}

#[test]
fn contended_tm_conforms_and_squashes_on_both_runtimes() {
    let cfg = SimConfig::tm_default();
    let wl = contended_tm(4, 12);
    for seed in SEEDS {
        let sim = SimRuntime.run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
        let par = par_runtime(seed).run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
        same_commit_class(&sim, &par)
            .unwrap_or_else(|e| panic!("contended conformance failed (seed={seed}): {e}"));
        assert_eq!(par.commits, 48, "every transaction must still commit");
    }
}

#[test]
fn unsupported_schemes_are_refused_not_misrun() {
    let cfg = SimConfig::tm_default();
    let wl = conflict_light_tm(2, 4, 1, 0);
    for scheme in [Scheme::EagerNaive, Scheme::Eager, Scheme::BulkPartial] {
        let err = par_runtime(1).run_tm(&wl, scheme, &cfg).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does not support"), "{msg}");
    }
}

#[test]
fn tls_profiles_land_in_the_same_commit_class_on_both_runtimes() {
    let cfg = SimConfig::tls_default();
    for profile in profiles::tls_profiles() {
        let mut profile = profile;
        profile.tasks = 40;
        for scheme in [TlsScheme::Bulk, TlsScheme::BulkNoOverlap, TlsScheme::Lazy] {
            for seed in SEEDS {
                let wl = profile.generate(seed);
                let ctx = format!("app={} scheme={scheme} seed={seed}", profile.name);
                let sim = SimRuntime
                    .run_tls(&wl, scheme, &cfg)
                    .unwrap_or_else(|e| panic!("sim run failed ({ctx}): {e}"));
                let par = par_runtime(seed)
                    .run_tls(&wl, scheme, &cfg)
                    .unwrap_or_else(|e| panic!("par run failed ({ctx}): {e}"));
                same_commit_class(&sim, &par)
                    .unwrap_or_else(|e| panic!("conformance failed ({ctx}): {e}"));
                let s = par_stats(&par);
                assert_eq!(s.duplicate_applications, 0, "exactly-once broken ({ctx})");
            }
        }
    }
}

/// The oracle property: the sim runtime is deterministic down to the
/// byte. Same trace + same seed twice must produce identical histories
/// (including timestamps) and an identical stats block — `Debug` output
/// is compared, which covers every field.
#[test]
fn sim_runtime_is_byte_identical_across_runs() {
    let cfg = SimConfig::tm_default();
    let wl = profiles::tm_profile("mc").unwrap().generate(7);
    let a = SimRuntime.run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
    let b = SimRuntime.run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
    assert_eq!(a.history, b.history, "histories diverged with timestamps included");
    assert_eq!(
        format!("{:?}", a.detail),
        format!("{:?}", b.detail),
        "sim stats are not byte-identical across same-seed runs"
    );

    let tls_cfg = SimConfig::tls_default();
    let wl = profiles::tls_profile("gzip").unwrap().generate(7);
    let a = SimRuntime.run_tls(&wl, TlsScheme::Bulk, &tls_cfg).unwrap();
    let b = SimRuntime.run_tls(&wl, TlsScheme::Bulk, &tls_cfg).unwrap();
    assert_eq!(a.history, b.history);
    assert_eq!(format!("{:?}", a.detail), format!("{:?}", b.detail));
}

/// Serializability soak: the parallel runtime's committed history passes
/// its auditor on every run of a repeated matrix — different OS-thread
/// interleavings each time, zero violations always. Mirrors the chaos
/// soak matrix shape (profiles × seeds) with a repeat axis on the
/// contended workload where interleavings matter most.
#[test]
fn par_soak_is_always_auditor_clean() {
    let cfg = SimConfig::tm_default();
    let contended = contended_tm(4, 8);
    for round in 0..5u64 {
        let r = par_runtime(round).run_tm(&contended, Scheme::Bulk, &cfg).unwrap();
        let s = par_stats(&r);
        assert!(
            s.violations.is_empty(),
            "round {round}: {} violation(s): {:?}",
            s.violations.len(),
            s.violations
        );
        assert_eq!(s.duplicate_applications, 0, "round {round}");
        assert_eq!(r.commits, 32, "round {round}: lost or duplicated a commit");
    }
    for profile in profiles::tm_profiles().into_iter().take(3) {
        let mut profile = profile;
        profile.txs_per_thread = 4;
        for seed in SEEDS {
            let wl = profile.generate(seed);
            let r = par_runtime(seed).run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
            let s = par_stats(&r);
            assert!(
                s.violations.is_empty(),
                "app={} seed={seed}: {:?}",
                profile.name,
                s.violations
            );
        }
    }
}
