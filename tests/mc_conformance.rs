//! Model-to-machine conformance: every interleaving class the `bulk-mc`
//! explorer finds at the documented exhaustive bounds is replayed onto the
//! real TM and TLS machines as a deterministic `ScheduleScript`, and the
//! machine-observable outcomes must match the model's predictions for
//! that class:
//!
//! * every commit is applied exactly once (`duplicate_applications == 0`,
//!   all transactions/tasks commit),
//! * receiver dedup drops exactly the class's extra delivery rounds
//!   (one per arbiter crash replay, one per interconnect duplication),
//! * one epoch re-election and one failover replay per scripted crash,
//! * the committed order stays serializable (runtime auditor), and
//! * the whole run is a pure function of the script: two runs of the same
//!   class produce byte-identical metrics JSON.
//!
//! The workloads are conflict-free by construction (disjoint address
//! ranges, strided in the low bits the signature key actually hashes so
//! the Bloom signatures do not alias), so the machines perform exactly
//! one commit broadcast per thread/task — the same number of broadcasts
//! the model's executions grant — and the per-broadcast fault bundles
//! line up one-to-one.

use std::sync::Arc;

use bulk_repro::chaos::ScheduleScript;
use bulk_repro::live::LivenessConfig;
use bulk_repro::mc::{expectations, explore, ClassExpectation, ModelConfig};
use bulk_repro::mem::Addr;
use bulk_repro::obs::Obs;
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{TlsMachine, TlsScheme};
use bulk_repro::tm::{Scheme, TmMachine};
use bulk_repro::trace::{TaskTrace, ThreadTrace, TlsOp, TlsWorkload, TmOp, TmWorkload};

/// One TM thread per model processor, each committing exactly one
/// transaction over a private address range: broadcasts == model commits.
fn tm_workload(threads: usize) -> TmWorkload {
    let thread = |i: usize| {
        let base = 0x10_0000u32 + i as u32 * 0x1000;
        ThreadTrace {
            ops: vec![
                TmOp::Begin,
                TmOp::Read(Addr::new(base)),
                TmOp::Write(Addr::new(base + 0x40)),
                TmOp::Compute(20),
                TmOp::End,
            ],
        }
    };
    TmWorkload { name: "mc-conformance".into(), threads: (0..threads).map(thread).collect() }
}

/// One TLS task per model processor, likewise disjoint.
fn tls_workload(tasks: usize) -> TlsWorkload {
    let task = |i: usize| {
        let base = 0x20_0000u32 + i as u32 * 0x1000;
        TaskTrace {
            ops: vec![
                TlsOp::Read(Addr::new(base)),
                TlsOp::Write(Addr::new(base + 0x40)),
                TlsOp::Compute(10),
            ],
        }
    };
    TlsWorkload { name: "mc-conformance".into(), tasks: (0..tasks).map(task).collect() }
}

struct MachineOutcome {
    commits: u64,
    squashes: u64,
    arbiter_crashes: u64,
    arbiter_epoch: u64,
    replayed_commits: u64,
    dedup_drops: u64,
    duplicate_applications: u64,
    invariant_violations: usize,
    liveness_violations: usize,
    metrics_json: String,
}

fn tm_replay(wl: &TmWorkload, script: ScheduleScript) -> MachineOutcome {
    let obs = Arc::new(Obs::new());
    let mut m = TmMachine::try_new(wl, Scheme::Bulk, &SimConfig::tm_default())
        .expect("construction succeeds");
    m.enable_audit();
    m.set_chaos(script.into_plan());
    m.enable_liveness(LivenessConfig::default());
    m.attach_obs(Arc::clone(&obs));
    let stats = m.try_run().expect("scripted run completes");
    MachineOutcome {
        commits: stats.commits,
        squashes: stats.squashes,
        arbiter_crashes: stats.liveness.arbiter_crashes,
        arbiter_epoch: stats.liveness.arbiter_epoch,
        replayed_commits: stats.liveness.replayed_commits,
        dedup_drops: stats.liveness.dedup_drops,
        duplicate_applications: stats.liveness.duplicate_applications,
        invariant_violations: stats.violations.len(),
        liveness_violations: stats.liveness_violations.len(),
        metrics_json: obs.registry().to_json(),
    }
}

fn tls_replay(wl: &TlsWorkload, script: ScheduleScript) -> MachineOutcome {
    let obs = Arc::new(Obs::new());
    let mut m = TlsMachine::try_new(wl, TlsScheme::Bulk, &SimConfig::tls_default())
        .expect("construction succeeds");
    m.enable_audit();
    m.set_chaos(script.into_plan());
    m.enable_liveness(LivenessConfig::default());
    m.attach_obs(Arc::clone(&obs));
    let stats = m.try_run().expect("scripted run completes");
    MachineOutcome {
        commits: stats.commits,
        squashes: stats.squashes,
        arbiter_crashes: stats.liveness.arbiter_crashes,
        arbiter_epoch: stats.liveness.arbiter_epoch,
        replayed_commits: stats.liveness.replayed_commits,
        dedup_drops: stats.liveness.dedup_drops,
        duplicate_applications: stats.liveness.duplicate_applications,
        invariant_violations: stats.violations.len(),
        liveness_violations: stats.liveness_violations.len(),
        metrics_json: obs.registry().to_json(),
    }
}

/// Asserts one machine run matches the model's class expectation, plus a
/// byte-identical rerun.
fn check_conformance(
    exp: &ClassExpectation,
    a: &MachineOutcome,
    b: &MachineOutcome,
    expected_commits: u64,
    ctx: &str,
) {
    assert_eq!(a.commits, expected_commits, "lost commits ({ctx})");
    assert_eq!(
        a.squashes, 0,
        "conformance workloads are conflict-free; a squash breaks the \
         broadcast/script alignment ({ctx})"
    );
    assert_eq!(
        a.duplicate_applications, 0,
        "exactly-once violated on the machine ({ctx})"
    );
    assert_eq!(
        a.arbiter_crashes,
        exp.crashes,
        "scripted crashes not all injected ({ctx})"
    );
    assert_eq!(a.arbiter_epoch, exp.crashes, "one re-election per crash ({ctx})");
    assert_eq!(
        a.replayed_commits, exp.crashes,
        "one failover replay per crash ({ctx})"
    );
    assert_eq!(
        a.dedup_drops, exp.dedup_drops,
        "dedup must drop exactly the class's extra delivery rounds ({ctx})"
    );
    assert_eq!(a.invariant_violations, 0, "serializability broke ({ctx})");
    assert_eq!(a.liveness_violations, 0, "liveness violation ({ctx})");
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "scripted runs must be byte-identical ({ctx})"
    );
}

#[test]
fn every_explored_interleaving_class_replays_on_both_machines() {
    let cfg = ModelConfig::exhaustive();
    let report = explore(cfg);
    assert!(report.passed(), "the correct protocol must verify: {}", report.summary());
    assert!(
        report.max_inflight_commits >= 2,
        "bounds must exercise concurrent in-flight commits: {}",
        report.summary()
    );
    let classes = expectations(&report.classes);
    assert!(!classes.is_empty());
    // The class set must include the quiet baseline, an interconnect
    // duplication, and a crash-during-replay (two crashes on one
    // broadcast) — otherwise the sweep is vacuous.
    assert!(classes.iter().any(|e| e.crashes == 0 && e.duplicates == 0));
    assert!(classes.iter().any(|e| e.duplicates > 0));
    assert!(classes
        .iter()
        .any(|e| e.script.broadcasts.iter().any(|b| b.crashes >= 2)));

    let procs = usize::from(cfg.procs);
    let expected_commits = cfg.total_commits() as u64;
    let tm_wl = tm_workload(procs);
    let tls_wl = tls_workload(procs);
    for exp in &classes {
        let name = exp.script.name.clone();
        let tm_a = tm_replay(&tm_wl, exp.script.clone());
        let tm_b = tm_replay(&tm_wl, exp.script.clone());
        check_conformance(exp, &tm_a, &tm_b, expected_commits, &format!("tm class={name}"));
        let tls_a = tls_replay(&tls_wl, exp.script.clone());
        let tls_b = tls_replay(&tls_wl, exp.script.clone());
        check_conformance(exp, &tls_a, &tls_b, expected_commits, &format!("tls class={name}"));
    }
}

#[test]
fn seeded_protocol_bugs_are_caught_and_the_redundant_fence_is_not() {
    use bulk_repro::mc::Mutation;
    for m in Mutation::seeded_bugs() {
        let report = explore(ModelConfig::mutated(m));
        let cx = report
            .counterexample
            .as_ref()
            .unwrap_or_else(|| panic!("seeded bug {m} escaped the explorer"));
        assert!(!cx.trace.is_empty(), "{m}: counterexample must carry a trace");
    }
    // NoFencing removes a mechanism the bus serialization + dedup layers
    // make redundant at these bounds: the explorer proves the redundancy.
    let report = explore(ModelConfig::mutated(Mutation::NoFencing));
    assert!(report.passed(), "no-fencing must verify: {}", report.summary());
}
