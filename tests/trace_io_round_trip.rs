//! Cross-crate check: a workload serialized through the text trace format
//! drives the simulators to bit-identical results.

use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{run_tls, TlsScheme};
use bulk_repro::tm::{run_tm, Scheme};
use bulk_repro::trace::{io, profiles};

#[test]
fn tm_results_identical_through_serialization() {
    let mut p = profiles::tm_profile("sjbb2k").unwrap();
    p.txs_per_thread = 8;
    let original = p.generate(21);
    let replayed = io::tm_from_str(&io::tm_to_string(&original)).expect("round trip");
    let cfg = SimConfig::tm_default();
    for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk] {
        let a = run_tm(&original, s, &cfg);
        let b = run_tm(&replayed, s, &cfg);
        assert_eq!(a.cycles, b.cycles, "{s}");
        assert_eq!(a.squashes, b.squashes, "{s}");
        assert_eq!(a.bw.total(), b.bw.total(), "{s}");
    }
}

#[test]
fn tls_results_identical_through_serialization() {
    let mut p = profiles::tls_profile("twolf").unwrap();
    p.tasks = 60;
    let original = p.generate(22);
    let replayed = io::tls_from_str(&io::tls_to_string(&original)).expect("round trip");
    let cfg = SimConfig::tls_default();
    for s in [TlsScheme::Lazy, TlsScheme::Bulk] {
        let a = run_tls(&original, s, &cfg);
        let b = run_tls(&replayed, s, &cfg);
        assert_eq!(a.cycles, b.cycles, "{s}");
        assert_eq!(a.squashes, b.squashes, "{s}");
    }
}
