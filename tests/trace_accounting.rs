//! End-to-end properties of the causal span trace and the
//! cycle-accounting profiler: deterministic Chrome export, causal links
//! from every storm squash back to the commit broadcast that triggered
//! it, and exact cycle conservation across the chaos- and liveness-soak
//! matrices.

use std::sync::Arc;

use bulk_repro::chaos::{ChaosConfig, FaultPlan};
use bulk_repro::live::LivenessConfig;
use bulk_repro::obs::{Obs, SpanKind};
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{run_tls_observed, TlsMachine, TlsScheme};
use bulk_repro::tm::{run_tm_observed, Scheme, TmMachine};
use bulk_repro::trace::profiles;

fn observed_tm_run(seed: u64) -> Arc<Obs> {
    let mut p = profiles::tm_profile("mc").expect("profile");
    p.txs_per_thread = 12;
    let obs = Arc::new(Obs::new());
    run_tm_observed(&p.generate(seed), Scheme::Bulk, &SimConfig::tm_default(), Arc::clone(&obs));
    obs
}

fn observed_tls_run(seed: u64) -> Arc<Obs> {
    let mut p = profiles::tls_profile("gzip").expect("profile");
    p.tasks = 60;
    let obs = Arc::new(Obs::new());
    run_tls_observed(
        &p.generate(seed),
        TlsScheme::Bulk,
        &SimConfig::tls_default(),
        Arc::clone(&obs),
    );
    obs
}

/// Asserts the `{prefix}cycles.*` counters published at the end of a run
/// cover the run and conserve exactly.
fn assert_conserves(obs: &Obs, prefix: &str, ctx: &str) {
    let reg = obs.registry();
    let c = |n: &str| reg.counter_value(&format!("{prefix}cycles.{n}"));
    assert!(c("total") > 0, "{ctx}: accounting must cover the run");
    assert_eq!(
        c("useful") + c("squashed") + c("commit") + c("stall") + c("overhead") + c("other"),
        c("total"),
        "{ctx}: cycle categories must conserve"
    );
    assert_eq!(c("audit_violations"), 0, "{ctx}: cycle-accounting violations");
}

#[test]
fn same_seed_traces_export_byte_identically() {
    for (a, b) in [
        (observed_tm_run(42), observed_tm_run(42)),
        (observed_tls_run(42), observed_tls_run(42)),
    ] {
        assert!(!a.trace().is_empty(), "scenario must record spans");
        assert_eq!(a.trace().to_chrome_json(), b.trace().to_chrome_json());
    }
    // Different seeds must differ, or identity would be vacuous.
    assert_ne!(
        observed_tm_run(42).trace().to_chrome_json(),
        observed_tm_run(43).trace().to_chrome_json()
    );
}

#[test]
fn chrome_export_is_structurally_valid() {
    let obs = observed_tm_run(42);
    let json = obs.trace().to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\": [\n"), "object form");
    assert!(json.ends_with("\n]}\n"), "closed object");
    let body = &json["{\"traceEvents\": [\n".len()..json.len() - "\n]}\n".len()];
    let mut phases = std::collections::BTreeMap::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.strip_suffix(',').unwrap_or(line);
        assert!(
            line.starts_with("{\"ph\": \"") && line.ends_with('}'),
            "event {i} is one object per line: {line}"
        );
        let ph = &line["{\"ph\": \"".len()..][..1];
        *phases.entry(ph.to_string()).or_insert(0u32) += 1;
        for field in ["\"pid\": ", "\"tid\": ", "\"name\": "] {
            assert!(line.contains(field), "event {i} missing {field}: {line}");
        }
        if ph == "X" {
            for field in
                ["\"ts\": ", "\"dur\": ", "\"cat\": \"bulk\"", "\"args\": {\"span\": "]
            {
                assert!(line.contains(field), "event {i} missing {field}: {line}");
            }
        }
    }
    assert!(phases.get("M").is_some_and(|&n| n >= 1), "track metadata: {phases:?}");
    assert!(phases.get("X").is_some_and(|&n| n > 0), "complete events: {phases:?}");
    // Flow pairs come in equal numbers of starts and ends.
    assert_eq!(phases.get("s"), phases.get("f"), "flow pairs balance: {phases:?}");
    assert!(phases.get("s").is_some_and(|&n| n > 0), "scenario has causal links");
}

/// Under Bulk, disambiguation happens only against commit broadcasts, so
/// in a squash storm every squash (and every bulk invalidation) must
/// carry a causal link back to the commit span whose broadcast triggered
/// it — the property that makes the trace *causal* rather than a flat
/// timeline.
#[test]
fn storm_squashes_all_link_back_to_commit_broadcasts() {
    let mut checked = 0usize;
    for seed in [1, 2, 3] {
        // TM: the contended profile under the high-pressure chaos mix.
        let mut p = profiles::tm_profile("cb").expect("profile");
        p.txs_per_thread = 5;
        let obs = Arc::new(Obs::new());
        let mut m = TmMachine::try_new(&p.generate(seed), Scheme::Bulk, &SimConfig::tm_default())
            .expect("construction succeeds");
        m.set_escalation_threshold(Some(16));
        m.set_chaos(FaultPlan::new(ChaosConfig::storm(seed)));
        m.enable_liveness(LivenessConfig::default());
        m.attach_obs(Arc::clone(&obs));
        m.try_run().expect("run completes");
        checked += assert_squashes_caused_by_commits(&obs, &format!("tm seed={seed}"));

        // TLS: same pressure on the speculative-task machine.
        let mut p = profiles::tls_profile("vpr").expect("profile");
        p.tasks = 40;
        let obs = Arc::new(Obs::new());
        let mut m =
            TlsMachine::try_new(&p.generate(seed), TlsScheme::Bulk, &SimConfig::tls_default())
                .expect("construction succeeds");
        m.set_chaos(FaultPlan::new(ChaosConfig::storm(seed)));
        m.enable_liveness(LivenessConfig::default());
        m.attach_obs(Arc::clone(&obs));
        m.try_run().expect("run completes");
        checked += assert_squashes_caused_by_commits(&obs, &format!("tls seed={seed}"));
    }
    assert!(checked > 0, "the storm must squash via commit broadcasts");
}

/// Every squash and receiver-side bulk invalidation must carry a causal
/// link. Bulk invalidations are only ever selected by a commit
/// broadcast; squashes are caused by a commit broadcast or — for
/// non-speculative stores in TM — by an individual invalidation span.
/// Returns the number of commit-broadcast-caused squashes.
fn assert_squashes_caused_by_commits(obs: &Obs, ctx: &str) -> usize {
    let spans = obs.trace().spans();
    let mut commit_caused = 0usize;
    for s in &spans {
        if !matches!(s.kind, SpanKind::Squash | SpanKind::BulkInvalidate) {
            continue;
        }
        let cause = s.cause.unwrap_or_else(|| {
            panic!("{ctx}: {:?} span {} has no causal link", s.kind, s.id)
        });
        let cause_kind = spans[cause as usize].kind;
        if s.kind == SpanKind::BulkInvalidate || cause_kind == SpanKind::Commit {
            assert_eq!(
                cause_kind,
                SpanKind::Commit,
                "{ctx}: span {} must be caused by a commit broadcast",
                s.id
            );
            if s.kind == SpanKind::Squash {
                commit_caused += 1;
            }
        } else {
            assert_eq!(
                cause_kind,
                SpanKind::Invalidate,
                "{ctx}: non-broadcast squash {} must be caused by an invalidation",
                s.id
            );
        }
        assert!(
            spans[cause as usize].links.contains(&s.id),
            "{ctx}: cause {cause} must link forward to span {}",
            s.id
        );
    }
    commit_caused
}

/// The chaos-soak matrix (every profile × scheme × seed with fault
/// injection and the auditor armed) with observability attached: the
/// cycle-accounting conservation invariant must hold on every run — no
/// `cycle-conservation` audit violations, and the published categories
/// must sum exactly to the sum of all per-actor timelines.
#[test]
fn tm_chaos_matrix_conserves_cycles() {
    let cfg = SimConfig::tm_default();
    let schemes =
        [Scheme::EagerNaive, Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial];
    for profile in profiles::tm_profiles() {
        let mut profile = profile;
        profile.txs_per_thread = 5;
        for scheme in schemes {
            for seed in [1, 2, 3] {
                let ctx = format!("tm app={} scheme={scheme} seed={seed}", profile.name);
                let obs = Arc::new(Obs::new());
                let mut m = TmMachine::try_new(&profile.generate(seed), scheme, &cfg)
                    .unwrap_or_else(|e| panic!("construction failed ({ctx}): {e}"));
                m.set_escalation_threshold(Some(16));
                m.enable_audit();
                m.set_chaos(FaultPlan::seeded(seed));
                m.attach_obs(Arc::clone(&obs));
                let stats =
                    m.try_run().unwrap_or_else(|e| panic!("run failed ({ctx}): {e}"));
                assert!(
                    stats.violations.is_empty(),
                    "invariant violation(s) ({ctx}):\n{}",
                    stats
                        .violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                assert_conserves(&obs, "tm.", &ctx);
            }
        }
    }
}

#[test]
fn tls_chaos_matrix_conserves_cycles() {
    let cfg = SimConfig::tls_default();
    let schemes =
        [TlsScheme::Eager, TlsScheme::Lazy, TlsScheme::Bulk, TlsScheme::BulkNoOverlap];
    for profile in profiles::tls_profiles() {
        let mut profile = profile;
        profile.tasks = 40;
        for scheme in schemes {
            for seed in [1, 2, 3] {
                let ctx = format!("tls app={} scheme={scheme} seed={seed}", profile.name);
                let obs = Arc::new(Obs::new());
                let mut m = TlsMachine::try_new(&profile.generate(seed), scheme, &cfg)
                    .unwrap_or_else(|e| panic!("construction failed ({ctx}): {e}"));
                m.enable_audit();
                m.set_chaos(FaultPlan::seeded(seed));
                m.attach_obs(Arc::clone(&obs));
                let stats =
                    m.try_run().unwrap_or_else(|e| panic!("run failed ({ctx}): {e}"));
                assert!(
                    stats.violations.is_empty(),
                    "invariant violation(s) ({ctx}):\n{}",
                    stats
                        .violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                assert_conserves(&obs, "tls.", &ctx);
            }
        }
    }
}

/// The liveness-soak matrix (backoff arbitration, watchdog, failable
/// arbiter) with observability attached: backoff and checkpoint overhead
/// must still account exactly.
#[test]
fn liveness_matrix_conserves_cycles() {
    let chaos_profiles = |seed: u64| {
        [
            ("baseline", ChaosConfig::new(seed)),
            ("storm", ChaosConfig::storm(seed)),
            ("arbiter-crash", ChaosConfig::arbiter_crash(seed)),
        ]
    };
    for seed in [1, 2, 3] {
        for (name, cfg) in chaos_profiles(seed) {
            let ctx = format!("tm app=cb chaos={name} seed={seed}");
            let mut profile = profiles::tm_profile("cb").expect("known app");
            profile.txs_per_thread = 5;
            let obs = Arc::new(Obs::new());
            let mut m =
                TmMachine::try_new(&profile.generate(seed), Scheme::Bulk, &SimConfig::tm_default())
                    .expect("construction succeeds");
            m.set_escalation_threshold(Some(16));
            m.enable_audit();
            m.set_chaos(FaultPlan::new(cfg.clone()));
            m.enable_liveness(LivenessConfig::default());
            m.attach_obs(Arc::clone(&obs));
            let stats = m.try_run().expect("run completes");
            assert!(stats.violations.is_empty(), "violations ({ctx})");
            assert_conserves(&obs, "tm.", &ctx);

            let ctx = format!("tls app=vpr chaos={name} seed={seed}");
            let mut profile = profiles::tls_profile("vpr").expect("known app");
            profile.tasks = 40;
            let obs = Arc::new(Obs::new());
            let mut m = TlsMachine::try_new(
                &profile.generate(seed),
                TlsScheme::Bulk,
                &SimConfig::tls_default(),
            )
            .expect("construction succeeds");
            m.enable_audit();
            m.set_chaos(FaultPlan::new(cfg));
            m.enable_liveness(LivenessConfig::default());
            m.attach_obs(Arc::clone(&obs));
            let stats = m.try_run().expect("run completes");
            assert!(stats.violations.is_empty(), "violations ({ctx})");
            assert_conserves(&obs, "tls.", &ctx);
        }
    }
}
