//! Chaos soak: every scheme × application profile × 3 fault seeds, with
//! deterministic fault injection and the invariant auditor enabled.
//!
//! Each run must complete with zero invariant violations, every injected
//! signature corruption detected by the receivers' CRC check, no livelock
//! (escalated transactions finish via the non-speculative fallback), and
//! all work committed. Failure messages carry the `BULK_CHAOS_SEED` that
//! replays the faulty run exactly.

use bulk_repro::chaos::FaultPlan;
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{TlsMachine, TlsScheme};
use bulk_repro::tm::{Scheme, TmMachine};
use bulk_repro::trace::profiles;

const SEEDS: [u64; 3] = [1, 2, 3];

#[test]
fn tm_chaos_soak_is_violation_free() {
    let cfg = SimConfig::tm_default();
    let schemes =
        [Scheme::EagerNaive, Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial];
    for profile in profiles::tm_profiles() {
        let mut profile = profile;
        profile.txs_per_thread = 5;
        for scheme in schemes {
            for seed in SEEDS {
                let wl = profile.generate(seed);
                let ctx = format!(
                    "app={} scheme={scheme} seed={seed}; replay: \
                     BULK_CHAOS_SEED={seed} bulk tm --app {} --seed {seed} --txs 5 --chaos",
                    profile.name, profile.name
                );
                let mut m = TmMachine::try_new(&wl, scheme, &cfg)
                    .unwrap_or_else(|e| panic!("construction failed ({ctx}): {e}"));
                // The naive-Eager default keeps the paper's Fig. 12(a)
                // livelock demonstration; under chaos it degrades like
                // every other scheme.
                m.set_escalation_threshold(Some(16));
                m.enable_audit();
                m.set_chaos(FaultPlan::seeded(seed));
                let stats = m.try_run().unwrap_or_else(|e| panic!("run failed ({ctx}): {e}"));

                assert!(
                    stats.violations.is_empty(),
                    "{} invariant violation(s) ({ctx}):\n{}",
                    stats.violations.len(),
                    stats
                        .violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                assert_eq!(
                    stats.chaos.corruptions_detected, stats.chaos.corruptions_injected,
                    "corruption slipped past the CRC ({ctx})"
                );
                assert_eq!(
                    stats.chaos.silent_corruptions, 0,
                    "silent corruption accepted ({ctx})"
                );
                assert!(!stats.livelocked, "livelocked despite escalation ({ctx})");
                assert_eq!(
                    stats.commits as usize,
                    profile.threads * profile.txs_per_thread,
                    "not all transactions finished ({ctx}): {stats:?}"
                );
            }
        }
    }
}

#[test]
fn tls_chaos_soak_is_violation_free() {
    let cfg = SimConfig::tls_default();
    let schemes =
        [TlsScheme::Eager, TlsScheme::Lazy, TlsScheme::Bulk, TlsScheme::BulkNoOverlap];
    for profile in profiles::tls_profiles() {
        let mut profile = profile;
        profile.tasks = 40;
        for scheme in schemes {
            for seed in SEEDS {
                let wl = profile.generate(seed);
                let ctx = format!(
                    "app={} scheme={scheme} seed={seed}; replay: \
                     BULK_CHAOS_SEED={seed} bulk tls --app {} --seed {seed} --tasks 40 --chaos",
                    profile.name, profile.name
                );
                let mut m = TlsMachine::try_new(&wl, scheme, &cfg)
                    .unwrap_or_else(|e| panic!("construction failed ({ctx}): {e}"));
                m.enable_audit();
                m.set_chaos(FaultPlan::seeded(seed));
                let stats = m.try_run().unwrap_or_else(|e| panic!("run failed ({ctx}): {e}"));

                assert!(
                    stats.violations.is_empty(),
                    "{} invariant violation(s) ({ctx}):\n{}",
                    stats.violations.len(),
                    stats
                        .violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                assert_eq!(
                    stats.chaos.corruptions_detected, stats.chaos.corruptions_injected,
                    "corruption slipped past the CRC ({ctx})"
                );
                assert_eq!(
                    stats.chaos.silent_corruptions, 0,
                    "silent corruption accepted ({ctx})"
                );
                assert_eq!(
                    stats.commits as usize, profile.tasks,
                    "not all tasks committed ({ctx}): {stats:?}"
                );
            }
        }
    }
}
