//! Liveness soak: every chaos profile (baseline, squash storm, arbiter
//! crash) across TM and TLS with the full liveness engine armed — backoff
//! arbitration, forward-progress watchdog, failable commit arbiter with
//! receiver-side dedup — plus the invariant auditor and the observability
//! registry.
//!
//! Each configuration runs twice and must: commit every transaction/task,
//! record zero invariant violations and zero liveness violations, never
//! apply one commit twice, and produce byte-identical metrics JSON across
//! the two runs (the whole engine is a pure function of the seed). The
//! arbiter-crash profile must actually crash the arbiter at least once per
//! sweep, or it would be vacuous.

use std::sync::Arc;

use bulk_repro::chaos::{ChaosConfig, FaultPlan};
use bulk_repro::live::{BackoffConfig, LivenessConfig, LivenessKind};
use bulk_repro::obs::Obs;
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{TlsMachine, TlsScheme};
use bulk_repro::tm::{Scheme, TmMachine};
use bulk_repro::trace::{patterns, profiles};

const SEEDS: [u64; 3] = [1, 2, 3];

/// The chaos profiles under soak. `baseline` is the default fault mix,
/// `storm` its high-pressure variant, `arbiter-crash` adds commit-arbiter
/// crashes mid-broadcast.
fn chaos_profiles(seed: u64) -> [(&'static str, ChaosConfig); 3] {
    [
        ("baseline", ChaosConfig::new(seed)),
        ("storm", ChaosConfig::storm(seed)),
        ("arbiter-crash", ChaosConfig::arbiter_crash(seed)),
    ]
}

struct RunOutcome {
    commits: u64,
    violations: usize,
    liveness_violations: Vec<String>,
    duplicate_applications: u64,
    arbiter_crashes: u64,
    metrics_json: String,
}

fn tm_run(app: &str, scheme: Scheme, cfg: &ChaosConfig, seed: u64) -> RunOutcome {
    let mut profile = profiles::tm_profile(app).expect("known app");
    profile.txs_per_thread = 5;
    let wl = profile.generate(seed);
    let obs = Arc::new(Obs::new());
    let mut m = TmMachine::try_new(&wl, scheme, &SimConfig::tm_default())
        .expect("construction succeeds");
    m.set_escalation_threshold(Some(16));
    m.enable_audit();
    m.set_chaos(FaultPlan::new(cfg.clone()));
    m.enable_liveness(LivenessConfig::default());
    m.attach_obs(Arc::clone(&obs));
    let stats = m.try_run().expect("run completes");
    RunOutcome {
        commits: stats.commits,
        violations: stats.violations.len(),
        liveness_violations: stats
            .liveness_violations
            .iter()
            .map(ToString::to_string)
            .collect(),
        duplicate_applications: stats.liveness.duplicate_applications,
        arbiter_crashes: stats.liveness.arbiter_crashes,
        metrics_json: obs.registry().to_json(),
    }
}

fn tls_run(app: &str, scheme: TlsScheme, cfg: &ChaosConfig, seed: u64) -> RunOutcome {
    let mut profile = profiles::tls_profile(app).expect("known app");
    profile.tasks = 40;
    let wl = profile.generate(seed);
    let obs = Arc::new(Obs::new());
    let mut m = TlsMachine::try_new(&wl, scheme, &SimConfig::tls_default())
        .expect("construction succeeds");
    m.enable_audit();
    m.set_chaos(FaultPlan::new(cfg.clone()));
    m.enable_liveness(LivenessConfig::default());
    m.attach_obs(Arc::clone(&obs));
    let stats = m.try_run().expect("run completes");
    RunOutcome {
        commits: stats.commits,
        violations: stats.violations.len(),
        liveness_violations: stats
            .liveness_violations
            .iter()
            .map(ToString::to_string)
            .collect(),
        duplicate_applications: stats.liveness.duplicate_applications,
        arbiter_crashes: stats.liveness.arbiter_crashes,
        metrics_json: obs.registry().to_json(),
    }
}

fn check(a: &RunOutcome, b: &RunOutcome, expected_commits: u64, ctx: &str) {
    assert_eq!(a.commits, expected_commits, "not all work committed ({ctx})");
    assert_eq!(a.violations, 0, "invariant violations ({ctx})");
    assert!(
        a.liveness_violations.is_empty(),
        "liveness violations ({ctx}):\n{}",
        a.liveness_violations.join("\n")
    );
    assert_eq!(a.duplicate_applications, 0, "commit applied twice ({ctx})");
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "metrics JSON not byte-identical across identical runs ({ctx})"
    );
}

#[test]
fn tm_liveness_soak_commits_everything_exactly_once() {
    let mut crashes = 0u64;
    for app in ["mc", "cb"] {
        for scheme in [Scheme::EagerNaive, Scheme::Bulk] {
            for seed in SEEDS {
                for (name, cfg) in chaos_profiles(seed) {
                    let ctx = format!("tm app={app} scheme={scheme} chaos={name} seed={seed}");
                    let a = tm_run(app, scheme, &cfg, seed);
                    let b = tm_run(app, scheme, &cfg, seed);
                    let profile = profiles::tm_profile(app).expect("known app");
                    check(&a, &b, (profile.threads * 5) as u64, &ctx);
                    if name == "arbiter-crash" {
                        crashes += a.arbiter_crashes;
                    } else {
                        assert_eq!(a.arbiter_crashes, 0, "crash outside its profile ({ctx})");
                    }
                }
            }
        }
    }
    assert!(crashes > 0, "the arbiter-crash profile never crashed the arbiter");
}

#[test]
fn tls_liveness_soak_commits_everything_exactly_once() {
    let mut crashes = 0u64;
    for app in ["gzip", "vpr"] {
        for scheme in [TlsScheme::Eager, TlsScheme::Bulk] {
            for seed in SEEDS {
                for (name, cfg) in chaos_profiles(seed) {
                    let ctx = format!("tls app={app} scheme={scheme} chaos={name} seed={seed}");
                    let a = tls_run(app, scheme, &cfg, seed);
                    let b = tls_run(app, scheme, &cfg, seed);
                    check(&a, &b, 40, &ctx);
                    if name == "arbiter-crash" {
                        crashes += a.arbiter_crashes;
                    } else {
                        assert_eq!(a.arbiter_crashes, 0, "crash outside its profile ({ctx})");
                    }
                }
            }
        }
    }
    assert!(crashes > 0, "the arbiter-crash profile never crashed the arbiter");
}

/// Regenerates the EXPERIMENTS.md "Liveness policies" table: the
/// Fig. 12(a) ping-pong and the contended `cb` profile under (none |
/// backoff-only | escalation-only | combined) forward-progress policies.
///
/// Run with:
/// `cargo test --release --test liveness_soak -- --ignored --nocapture`
#[test]
#[ignore = "prints the EXPERIMENTS.md liveness comparison table"]
fn liveness_policy_comparison() {
    let backoff_only = || LivenessConfig {
        // Watchdog thresholds stay armed but the detectors never fire on
        // these runs; the policy under test is the backoff ladder.
        ..LivenessConfig::default()
    };
    let run = |wl: &bulk_repro::trace::TmWorkload,
               scheme: Scheme,
               escalation: Option<u64>,
               live: Option<LivenessConfig>| {
        let mut m = TmMachine::try_new(wl, scheme, &SimConfig::tm_default())
            .expect("construction succeeds");
        m.set_escalation_threshold(escalation);
        if let Some(cfg) = live {
            m.enable_liveness(cfg);
        }
        m.try_run().expect("run terminates")
    };
    let policies: [(&str, Option<u64>, Option<LivenessConfig>); 4] = [
        ("none", None, None),
        ("backoff-only", None, Some(backoff_only())),
        ("escalation-only", Some(16), None),
        ("combined", Some(16), Some(backoff_only())),
    ];
    println!("\n### fig12a ping-pong (EagerNaive, 50 iterations)");
    println!("| policy | outcome | commits | squashes | escalations | cycles |");
    println!("|---|---|---|---|---|---|");
    let wl = patterns::fig12a_livelock(50, 400);
    for (name, esc, live) in policies.clone() {
        let s = run(&wl, Scheme::EagerNaive, esc, live);
        let outcome = if s.livelocked { "livelocked" } else { "completes" };
        println!(
            "| {name} | {outcome} | {} | {} | {} | {} |",
            s.commits, s.squashes, s.escalations, s.cycles
        );
    }
    for scheme in [Scheme::EagerNaive, Scheme::Bulk] {
        println!("\n### contended `cb` profile ({scheme}, 5 txs/thread, seed 1)");
        println!("| policy | commits | squashes | escalations | backoff cycles | cycles |");
        println!("|---|---|---|---|---|---|");
        let mut profile = profiles::tm_profile("cb").expect("known app");
        profile.txs_per_thread = 5;
        let wl = profile.generate(1);
        for (name, esc, live) in policies.clone() {
            let s = run(&wl, scheme, esc, live);
            println!(
                "| {name} | {} | {} | {} | {} | {} |",
                s.commits, s.squashes, s.escalations, s.liveness.backoff_cycles, s.cycles
            );
        }
    }
}

/// The Fig. 12(a) reproducer: the symmetric EagerNaive ping-pong must trip
/// the livelock watchdog — deterministically, with the same diagnosis on
/// every run — instead of burning the squash cap.
#[test]
fn eager_naive_ping_pong_trips_the_livelock_watchdog_deterministically() {
    let wl = patterns::fig12a_livelock(50, 400);
    let run = || {
        let mut m = TmMachine::try_new(&wl, Scheme::EagerNaive, &SimConfig::tm_default())
            .expect("construction succeeds");
        // Detection only: a zero backoff ladder leaves the pathological
        // schedule untouched so the watchdog sees the raw ping-pong.
        m.enable_liveness(LivenessConfig {
            backoff: BackoffConfig { base: 0, cap: 0, ..BackoffConfig::default() },
            ..LivenessConfig::default()
        });
        m.try_run().expect("run terminates via the watchdog")
    };
    let a = run();
    let b = run();
    assert!(a.livelocked, "watchdog must abort the livelocked run");
    assert_eq!(a.liveness.watchdog_trips, 1, "{:?}", a.liveness);
    assert_eq!(a.liveness_violations.len(), 1);
    let v = &a.liveness_violations[0];
    assert_eq!(v.kind, LivenessKind::Livelock);
    assert!(v.detail.contains("squash cycle"), "{v}");
    assert_eq!(
        a.liveness_violations, b.liveness_violations,
        "diagnosis must be deterministic"
    );
}
