//! Architectural-correctness tests: a value-level reference interpreter
//! replays committed transactions/tasks and checks that the speculative
//! machines' conflict handling preserves serial semantics (DESIGN.md
//! invariants 7 and 8).
//!
//! The simulators track addresses, not data values, so the check works at
//! the protocol level: for every scheme we assert that the set of commits
//! is complete and that no conflicting pair of transactions could both
//! commit without one observing the other's writes — which the runtimes
//! enforce by squashing. These tests drive hand-built scenarios where the
//! correct outcome is known exactly.

use bulk_repro::mem::Addr;
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{run_tls, TlsScheme};
use bulk_repro::tm::{run_tm, Scheme};
use bulk_repro::trace::{TaskTrace, ThreadTrace, TlsOp, TmOp, TmWorkload, TlsWorkload};

fn a(raw: u32) -> Addr {
    Addr::new(raw)
}

/// Two transactions increment the same counter: at least one must be
/// squashed or ordered after the other; both must commit eventually.
#[test]
fn tm_conflicting_increments_serialize() {
    let cfg = SimConfig::tm_default();
    let mk = |skew: u32| ThreadTrace {
        ops: vec![
            TmOp::Compute(skew),
            TmOp::Begin,
            TmOp::Read(a(0x1000)),
            TmOp::Compute(200),
            TmOp::Write(a(0x1000)),
            TmOp::End,
        ],
    };
    let wl = TmWorkload { name: "incr".into(), threads: vec![mk(0), mk(10)] };
    for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk] {
        let stats = run_tm(&wl, s, &cfg);
        assert_eq!(stats.commits, 2, "{s}");
        // Overlapping read-modify-writes cannot both commit unscathed.
        assert!(stats.squashes + stats.stalls >= 1, "{s}: {stats:?}");
    }
}

/// A chain of TM transactions over disjoint data never conflicts,
/// regardless of scheme — no spurious serialization beyond the bus.
#[test]
fn tm_disjoint_transactions_never_squash() {
    let cfg = SimConfig::tm_default();
    let threads = (0..8u32)
        .map(|t| {
            let mut ops = Vec::new();
            for k in 0..10u32 {
                ops.push(TmOp::Begin);
                ops.push(TmOp::Read(a(0x10_0000 + t * 0x1000 + k * 0x40)));
                ops.push(TmOp::Write(a(0x20_0000 + t * 0x1000 + k * 0x40)));
                ops.push(TmOp::End);
                ops.push(TmOp::Compute(20));
            }
            ThreadTrace { ops }
        })
        .collect();
    let wl = TmWorkload { name: "disjoint".into(), threads };
    for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial] {
        let stats = run_tm(&wl, s, &cfg);
        assert_eq!(stats.commits, 80, "{s}");
        // Bulk may alias (false squashes) but exact schemes must not
        // squash at all.
        if !s.uses_signatures() {
            assert_eq!(stats.squashes, 0, "{s}");
        } else {
            assert_eq!(stats.squashes, stats.false_squashes, "{s}");
        }
    }
}

/// TLS: a read-after-write chain through every task forces full
/// serialization — all schemes must still commit everything in order,
/// and eager must detect each violation at the store.
#[test]
fn tls_fully_serial_chain() {
    let cfg = SimConfig::tls_default();
    let tasks: Vec<TaskTrace> = (0..8u32)
        .map(|i| TaskTrace {
            ops: vec![
                TlsOp::Spawn,
                TlsOp::Read(a(0x1000 + i * 4)),
                TlsOp::Compute(800),
                TlsOp::Write(a(0x1000 + (i + 1) * 4)),
            ],
        })
        .collect();
    let wl = TlsWorkload { name: "chain".into(), tasks };
    for s in TlsScheme::ALL {
        let stats = run_tls(&wl, s, &cfg);
        assert_eq!(stats.commits, 8, "{s}");
        // Each task i writes what task i+1 already read: violations for
        // every adjacent pair that overlapped in time.
        assert!(stats.squashes >= 1, "{s}: {stats:?}");
    }
}

/// TLS in-order commit: word-level WAW to the same word must squash
/// (Eq. 1's W∩W term), even when no one reads it.
#[test]
fn tls_waw_same_word_squashes() {
    let cfg = SimConfig::tls_default();
    let tasks = vec![
        TaskTrace {
            ops: vec![TlsOp::Spawn, TlsOp::Compute(4000), TlsOp::Write(a(0x2000))],
        },
        TaskTrace {
            ops: vec![TlsOp::Spawn, TlsOp::Write(a(0x2000)), TlsOp::Compute(100)],
        },
    ];
    let wl = TlsWorkload { name: "waw".into(), tasks };
    for s in TlsScheme::ALL {
        let stats = run_tls(&wl, s, &cfg);
        assert_eq!(stats.commits, 2, "{s}");
        assert!(stats.squashes >= 1, "{s}: same-word WAW must squash");
    }
}

/// TLS word-level WAW to *different* words of one line must NOT squash in
/// Bulk (the merge path) nor in the exact schemes (per-word bits).
#[test]
fn tls_waw_different_words_merges() {
    let cfg = SimConfig::tls_default();
    let tasks = vec![
        TaskTrace {
            ops: vec![TlsOp::Spawn, TlsOp::Compute(4000), TlsOp::Write(a(0x2000))],
        },
        TaskTrace {
            ops: vec![TlsOp::Spawn, TlsOp::Write(a(0x2004)), TlsOp::Compute(100)],
        },
    ];
    let wl = TlsWorkload { name: "merge".into(), tasks };
    for s in TlsScheme::ALL {
        let stats = run_tls(&wl, s, &cfg);
        assert_eq!(stats.commits, 2, "{s}");
        assert_eq!(stats.squashes, 0, "{s}: disjoint words must not conflict");
    }
    let bulk = run_tls(&wl, TlsScheme::Bulk, &cfg);
    assert_eq!(bulk.line_merges, 1, "the partially updated line merges");
}

/// Nested TM with partial rollback re-executes only the violated section
/// and still commits the outer transaction with all its writes.
#[test]
fn tm_nested_partial_rollback_correctness() {
    let cfg = SimConfig::tm_default();
    let wl = TmWorkload {
        name: "nested".into(),
        threads: vec![
            ThreadTrace {
                ops: vec![
                    TmOp::Compute(60),
                    TmOp::Begin,
                    TmOp::Write(a(0x3000)),
                    TmOp::End,
                ],
            },
            ThreadTrace {
                ops: vec![
                    TmOp::Begin,
                    TmOp::Write(a(0x4000)), // section 0
                    TmOp::Begin,
                    TmOp::Read(a(0x3000)), // section 1: conflicts
                    TmOp::Compute(50_000),
                    TmOp::End,
                    TmOp::Write(a(0x5000)), // section 2
                    TmOp::End,
                ],
            },
        ],
    };
    let stats = run_tm(&wl, Scheme::BulkPartial, &cfg);
    assert_eq!(stats.commits, 2);
    assert_eq!(stats.partial_rollbacks, 1);
    assert_eq!(stats.squashes, 0, "outer section 0 survives");
    let flat = run_tm(&wl, Scheme::Bulk, &cfg);
    assert_eq!(flat.commits, 2);
    assert_eq!(flat.squashes, 1, "flat Bulk restarts the whole transaction");
}
