//! Exploring the signature design space (the paper's §7.5 in miniature):
//! size vs accuracy vs commit-message cost, and why the bit permutation is
//! a first-class design parameter.
//!
//! Run with `cargo run --release --example signature_tuning`.

use bulk_repro::mem::Addr;
use bulk_repro::rng::{Rng, SeedableRng, SmallRng};
use bulk_repro::sig::{
    table8_spec, BitPermutation, Granularity, Signature, SignatureConfig,
};

/// Measures the false-positive rate of disambiguating two disjoint address
/// sets under `config`, over `trials` samples.
fn false_positive_rate(config: &SignatureConfig, trials: usize, seed: u64) -> f64 {
    let shared = config.clone().into_shared();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fps = 0usize;
    for _ in 0..trials {
        let mut w = Signature::with_shared(shared.clone());
        let mut r = Signature::with_shared(shared.clone());
        // Writer touches one 32-line block, reader a different one —
        // spatially clustered sets, as real footprints are.
        let wb = rng.random_range(0..2048u32);
        let rb = (wb + 1 + rng.random_range(0..2047u32)) % 2048;
        // A clustered private block each...
        for k in 0..20u32 {
            w.insert_addr(Addr::new((wb * 64 + k) * 64));
        }
        for k in 0..38u32 {
            r.insert_addr(Addr::new((rb * 64 + k) * 64));
        }
        // ...plus scattered shared-heap lines (disjoint by parity).
        for _ in 0..2 {
            let l = rng.random_range(0..65536u32) * 2;
            w.insert_addr(Addr::new((1 << 23) + l * 64));
        }
        for _ in 0..30 {
            let l = rng.random_range(0..65536u32) * 2 + 1;
            r.insert_addr(Addr::new((1 << 23) + l * 64));
        }
        fps += usize::from(w.intersects(&r));
    }
    fps as f64 / trials as f64
}

fn main() {
    println!("Signature design space: size vs accuracy vs wire cost\n");
    println!("{:<6} {:>9} {:>10} {:>12} {:>12}", "config", "bits", "fp% (id)", "fp% (perm)", "commit bits");

    let mut rng = SmallRng::seed_from_u64(7);
    for id in ["S1", "S4", "S9", "S14", "S19", "S23"] {
        let spec = table8_spec(id).expect("catalog id");
        let identity =
            SignatureConfig::from_spec(spec, BitPermutation::identity(), Granularity::Line, 64);
        // Try a handful of random permutations and keep the best.
        let mut best = f64::INFINITY;
        for _ in 0..6 {
            let perm = BitPermutation::random(21, 0, &mut rng);
            let cfg = SignatureConfig::from_spec(spec, perm, Granularity::Line, 64);
            best = best.min(false_positive_rate(&cfg, 600, 42));
        }
        let fp_id = false_positive_rate(&identity, 600, 42);
        // Wire cost of a typical 22-line write set.
        let mut w = Signature::new(identity.clone());
        for k in 0..22u32 {
            w.insert_addr(Addr::new(0x4_0000 + k * 64));
        }
        println!(
            "{:<6} {:>9} {:>10.1} {:>12.1} {:>12}",
            id,
            spec.full_size_bits(),
            100.0 * fp_id,
            100.0 * best,
            w.compressed_size_bits(),
        );
    }

    println!();
    println!("Observations (matching the paper's §7.5):");
    println!(" * accuracy improves quickly with size, then saturates;");
    println!(" * a good permutation often beats a larger signature;");
    println!(" * RLE keeps the commit message almost independent of the");
    println!("   configured register size — it tracks the set size instead.");
}
