//! Context switches and signature spill/reload (paper §6.2.2): a
//! long-running transaction is preempted, its signatures stay in the BDM
//! while another thread runs, and when the BDM runs out of slots a
//! victim's signatures move to memory — where commits still disambiguate
//! against them — and come back when space frees up.
//!
//! Run with `cargo run --example context_switch`.

use bulk_repro::bulk::Bdm;
use bulk_repro::mem::{Addr, CacheGeometry};
use bulk_repro::sig::{Signature, SignatureConfig};

fn main() {
    let geom = CacheGeometry::tm_l1();
    // A BDM with two version slots, as in the paper's evaluation.
    let mut bdm = Bdm::new(SignatureConfig::s14_tm(), geom, 2);

    // Thread A starts a transaction and accesses some data.
    let va = bdm.alloc_version().expect("slot for A");
    bdm.set_running(Some(va));
    bdm.record_load(va, Addr::new(0x1000));
    bdm.record_store(va, Addr::new(0x2000));
    println!("A runs: R/W signatures populated");

    // A is preempted; B is scheduled. A's signatures stay in the BDM.
    let vb = bdm.alloc_version().expect("slot for B");
    bdm.set_running(Some(vb));
    bdm.record_store(vb, Addr::new(0x8000));
    println!(
        "B runs while A is preempted; preempted write-sets bitmask covers {} set(s)",
        bdm.or_delta_w_pre().count()
    );

    // A commit from another processor arrives: BOTH resident versions are
    // disambiguated, running or not.
    let mut w_c = Signature::with_shared(bdm.config().clone());
    w_c.insert_addr(Addr::new(0x1000)); // conflicts with A's read
    println!(
        "remote commit of 0x1000: A squash={} B squash={}",
        bdm.disambiguate(va, &w_c).squash(),
        bdm.disambiguate(vb, &w_c).squash()
    );

    // A third thread arrives but the BDM is out of slots: spill A.
    assert!(bdm.alloc_version().is_none());
    let spilled_a = bdm.spill_version(va);
    let vc = bdm.alloc_version().expect("slot freed by the spill");
    bdm.set_running(Some(vc));
    println!("C scheduled after spilling A's signatures to memory");

    // Commits now disambiguate against the in-memory copy, as the paper
    // describes — simpler than walking overflowed addresses because the
    // signatures are small and fixed-size.
    let mut w_c2 = Signature::with_shared(bdm.config().clone());
    w_c2.insert_addr(Addr::new(0x2000)); // conflicts with A's write
    println!(
        "remote commit of 0x2000 vs spilled A: squash={}",
        spilled_a.disambiguate(&w_c2).squash()
    );

    // C finishes; A's signatures reload into the freed slot, intact.
    bdm.free_version(vc);
    let va2 = bdm.reload_version(spilled_a).expect("slot available again");
    assert!(bdm.read_signature(va2).contains_addr(Addr::new(0x1000)));
    assert!(bdm.write_signature(va2).contains_addr(Addr::new(0x2000)));
    println!("A reloaded: signatures identical, execution can resume");
}
