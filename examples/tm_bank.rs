//! A transactional-memory scenario: concurrent bank-account transfers.
//!
//! Eight tellers each run a stream of transfer transactions. Every
//! transfer reads and writes two accounts out of a shared table, so some
//! transactions conflict. The example hand-builds the [`TmWorkload`]
//! (no synthetic profile involved) and compares how the paper's schemes
//! handle the contention.
//!
//! Run with `cargo run --release --example tm_bank`.

use bulk_repro::mem::Addr;
use bulk_repro::sim::SimConfig;
use bulk_repro::tm::{run_tm, Scheme};
use bulk_repro::trace::{tm_region_line, ThreadTrace, TmOp, TmWorkload};

/// Byte address of an account's balance (one per cache line, in the shared
/// hot region so the addresses exercise the signatures realistically).
fn account(i: u32) -> Addr {
    Addr::new(tm_region_line(0, i % 512).raw() << 6)
}

fn build_workload(tellers: u32, transfers: usize, accounts: u32) -> TmWorkload {
    let mut threads = Vec::new();
    for t in 0..tellers {
        let mut ops = Vec::new();
        // A simple deterministic PRNG per teller so the example needs no
        // external randomness.
        let mut state = 0x9e37_79b9u32.wrapping_mul(t + 1);
        let mut next = |m: u32| {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state % m
        };
        for _ in 0..transfers {
            let from = next(accounts);
            let to = (from + 1 + next(accounts - 1)) % accounts;
            ops.push(TmOp::Begin);
            ops.push(TmOp::Read(account(from)));
            ops.push(TmOp::Read(account(to)));
            ops.push(TmOp::Compute(30)); // validate, compute fees
            ops.push(TmOp::Write(account(from)));
            ops.push(TmOp::Write(account(to)));
            ops.push(TmOp::End);
            ops.push(TmOp::Compute(60)); // non-transactional bookkeeping
        }
        threads.push(ThreadTrace { ops });
    }
    TmWorkload { name: "bank".to_string(), threads }
}

fn main() {
    let cfg = SimConfig::tm_default();
    println!("Bank transfers: 8 tellers x 200 transfers over N shared accounts\n");
    for accounts in [16u32, 64, 256] {
        println!("--- {accounts} accounts (contention {}) ---",
            if accounts <= 16 { "high" } else if accounts <= 64 { "medium" } else { "low" });
        let wl = build_workload(8, 200, accounts);
        for scheme in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk] {
            let stats = run_tm(&wl, scheme, &cfg);
            println!(
                "  {scheme:<12} commits={:4}  squashes={:4} (false {:2})  stalls={:3}  cycles={:8}  commit-bw={}B",
                stats.commits,
                stats.squashes,
                stats.false_squashes,
                stats.stalls,
                stats.cycles,
                stats.bw.commit_bytes(),
            );
        }
        println!();
    }
    println!("Higher contention means more squashes everywhere; Bulk tracks Lazy");
    println!("closely while broadcasting compressed signatures instead of");
    println!("address lists (compare the commit-bw column).");
}
