//! Quickstart: signatures, bulk operations and the BDM in five minutes.
//!
//! Run with `cargo run --example quickstart`.

use bulk_repro::bulk::{flows, Bdm};
use bulk_repro::mem::{Addr, Cache, CacheGeometry};
use bulk_repro::sig::{Signature, SignatureConfig};

fn main() {
    // ---------------------------------------------------------------
    // 1. Signatures: a fixed-size register encoding a set of addresses.
    // ---------------------------------------------------------------
    let config = SignatureConfig::s14_tm(); // the paper's default: 2 Kbit
    let shared = config.into_shared();

    let mut w = Signature::with_shared(shared.clone());
    w.insert_addr(Addr::new(0x1000));
    w.insert_addr(Addr::new(0x2040));

    println!("W encodes 2 lines in {} bits", w.config().size_bits());
    println!("  membership(0x1000) = {}", w.contains_addr(Addr::new(0x1000)));
    println!("  membership(0x9000) = {}", w.contains_addr(Addr::new(0x9000)));

    // RLE compression: what a commit actually puts on the bus.
    let compressed = w.compress();
    println!(
        "  compressed to {} bits ({}x smaller)",
        compressed.size_bits(),
        w.config().size_bits() / compressed.size_bits().max(1)
    );

    // ---------------------------------------------------------------
    // 2. Bulk address disambiguation: the Fig. 1 scenario.
    // ---------------------------------------------------------------
    let geom = CacheGeometry::tm_l1();
    let mut proc_x = Bdm::new(SignatureConfig::s14_tm(), geom, 2);
    let mut proc_y = Bdm::new(SignatureConfig::s14_tm(), geom, 2);
    let vx = proc_x.alloc_version().expect("free slot");
    let vy = proc_y.alloc_version().expect("free slot");

    proc_x.record_store(vx, Addr::new(0x1000)); // x speculatively writes A
    proc_y.record_load(vy, Addr::new(0x1000)); // y speculatively reads A

    // x commits: one signature goes out; y disambiguates in one operation.
    let commit = proc_x.commit(vx);
    let outcome = proc_y.disambiguate(vy, &commit.w);
    println!("\nx commits W_x; y's disambiguation: {outcome:?}");
    assert!(outcome.squash(), "y read what x wrote: it must be squashed");

    // ---------------------------------------------------------------
    // 3. Bulk invalidation: discarding y's speculative state without any
    //    per-line speculative metadata in the cache.
    // ---------------------------------------------------------------
    let mut y_cache = Cache::new(geom);
    proc_y.record_store(vy, Addr::new(0x4440));
    y_cache.fill_dirty(Addr::new(0x4440).line(64));
    y_cache.fill_clean(Addr::new(0x8880).line(64));

    let inv = flows::squash(&mut proc_y, vy, &mut y_cache, false);
    println!(
        "squash invalidated {} dirty line(s); unrelated clean lines survive: {}",
        inv.dirty_invalidated.len(),
        y_cache.contains(Addr::new(0x8880).line(64))
    );
}
