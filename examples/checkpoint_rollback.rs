//! Checkpointed execution — the paper's third usage context (§1):
//! "Checkpointed multiprocessors provide primitives to enable aggressive
//! thread speculation". The BDM's version slots hold one R/W signature
//! pair per checkpoint, so taking a checkpoint is allocating a slot and
//! rolling back is one bulk invalidation — no cache modifications, no
//! version IDs in the tags.
//!
//! The scenario: a processor speculates past a long-latency event (say, a
//! possible page fault), buffering its post-checkpoint stores in the
//! cache. If the event resolves badly, the checkpoint rolls back; if it
//! resolves well, the checkpoint commits by clearing a signature.
//!
//! Run with `cargo run --example checkpoint_rollback`.

use bulk_repro::bulk::{flows, Bdm};
use bulk_repro::mem::{Addr, Cache, CacheGeometry, LineState};
use bulk_repro::sig::SignatureConfig;

fn main() {
    let geom = CacheGeometry::tm_l1();
    let mut bdm = Bdm::new(SignatureConfig::s14_tm(), geom, 4);
    let mut cache = Cache::new(geom);

    // Architectural (pre-speculation) state: two dirty lines.
    cache.fill_dirty(Addr::new(0x10_0040).line(64));
    cache.fill_dirty(Addr::new(0x10_4040).line(64));
    println!("before speculation: {} resident lines", cache.len());

    // --- Checkpoint 1: speculate past the event. ---
    let ck1 = bdm.alloc_version().expect("free checkpoint slot");
    bdm.set_running(Some(ck1));
    for i in 0..6u32 {
        let a = Addr::new(0x20_0000 + i * 0x40);
        // The Set Restriction check would write back non-speculative dirty
        // lines sharing the set; our addresses use fresh sets here.
        cache.fill_dirty(a.line(64));
        bdm.record_store(ck1, a);
    }
    println!(
        "checkpoint 1 buffered {} speculative lines (sets {:?})",
        6,
        bdm.decode_write_sets(ck1).iter_ones().collect::<Vec<_>>()
    );

    // --- Checkpoint 2 on top (nested speculation), e.g. a second branch. ---
    let ck2 = bdm.alloc_version().expect("free checkpoint slot");
    bdm.set_running(Some(ck2));
    for i in 0..3u32 {
        // Different cache sets than checkpoint 1's lines: the Set
        // Restriction (§4.3) requires dirty lines of different versions to
        // live in different sets, which is exactly what makes the rollback
        // below safe.
        let a = Addr::new(0x30_0200 + i * 0x40);
        cache.fill_dirty(a.line(64));
        bdm.record_store(ck2, a);
    }
    println!("checkpoint 2 buffered 3 more speculative lines");

    // The event of checkpoint 2 resolves BADLY: roll it back.
    let inv = flows::squash(&mut bdm, ck2, &mut cache, false);
    bdm.free_version(ck2);
    println!(
        "rollback of checkpoint 2 discarded {} lines in one bulk invalidation",
        inv.dirty_invalidated.len()
    );

    // Checkpoint 1 resolves WELL: commit = clear one register.
    bdm.set_running(Some(ck1));
    let sigs = bdm.commit(ck1);
    bdm.free_version(ck1);
    println!(
        "commit of checkpoint 1: cleared its signatures (broadcast would be {} compressed bits)",
        sigs.w.compressed_size_bits()
    );

    // Checkpoint 1's lines survive as architectural dirty state;
    // checkpoint 2's are gone; the original lines were never touched.
    assert_eq!(cache.state_of(Addr::new(0x20_0000).line(64)), Some(LineState::Dirty));
    assert_eq!(cache.state_of(Addr::new(0x30_0200).line(64)), None);
    assert_eq!(cache.state_of(Addr::new(0x10_0040).line(64)), Some(LineState::Dirty));
    println!("final: {} resident lines, architectural state intact", cache.len());
}
