//! A thread-level-speculation scenario: parallelizing a pointer-chasing
//! loop whose iterations mostly — but not always — stay independent.
//!
//! Each loop iteration becomes a speculative task. An iteration writes a
//! per-iteration record (its "frame"), passes a small live-in to the next
//! iteration, and occasionally updates a shared accumulator that the next
//! iteration reads — a true loop-carried dependence. The example
//! hand-builds the [`TlsWorkload`] and shows where each scheme's time
//! goes, including the value of Partial Overlap (§6.3).
//!
//! Run with `cargo run --release --example tls_loop`.

use bulk_repro::mem::Addr;
use bulk_repro::sim::SimConfig;
use bulk_repro::tls::{run_tls, run_tls_sequential, TlsScheme};
use bulk_repro::trace::{written_line, TaskTrace, TlsOp, TlsWorkload};

fn word(unit: u32, set: u32, w: u32) -> Addr {
    Addr::new((written_line(unit % 256, set % 64).raw() << 6) + (w % 16) * 4)
}

fn build_loop(iterations: u32, dep_every: u32) -> TlsWorkload {
    let mut tasks = Vec::new();
    for i in 0..iterations {
        let mut ops = Vec::new();
        // Live-in for the next iteration, written before the spawn.
        ops.push(TlsOp::Compute(40));
        ops.push(TlsOp::Write(word(128 + i % 64, i * 14 + 4, 0)));
        ops.push(TlsOp::Spawn);
        // Consume the previous iteration's live-in.
        if i > 0 {
            ops.push(TlsOp::Read(word(128 + (i - 1) % 64, (i - 1) * 14 + 4, 0)));
        }
        // Read the shared accumulator the predecessor may have bumped.
        ops.push(TlsOp::Read(word(255, 63, 0)));
        // Iteration body: compute over the iteration's own record.
        for w in 0..8 {
            ops.push(TlsOp::Compute(40));
            ops.push(TlsOp::Write(word(i % 32 * 4, i * 14 + w / 16, w)));
        }
        // The occasional loop-carried update (a true dependence).
        if i % dep_every == dep_every - 1 {
            ops.push(TlsOp::Compute(80));
            ops.push(TlsOp::Write(word(255, 63, 0)));
        }
        ops.push(TlsOp::Compute(60));
        tasks.push(TaskTrace { ops });
    }
    TlsWorkload { name: "loop".to_string(), tasks }
}

fn main() {
    let cfg = SimConfig::tls_default();
    println!("Speculative loop: 300 iterations, varying dependence density\n");
    for dep_every in [50u32, 10, 3] {
        let wl = build_loop(300, dep_every);
        let seq = run_tls_sequential(&wl, &cfg);
        println!("--- one loop-carried dependence every {dep_every} iterations ---");
        for scheme in TlsScheme::ALL {
            let stats = run_tls(&wl, scheme, &cfg);
            println!(
                "  {scheme:<18} speedup={:4.2}  squashes={:3} (false {:2})  merges={:3}",
                seq as f64 / stats.cycles as f64,
                stats.squashes,
                stats.false_squashes,
                stats.line_merges,
            );
        }
        println!();
    }
    println!("Every iteration reads its predecessor's pre-spawn live-in, so");
    println!("without Partial Overlap each commit squashes the next task;");
    println!("with it, only the real accumulator dependences cost squashes.");
}
