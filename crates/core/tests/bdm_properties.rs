//! Property-based tests of the BDM protocols: squash safety under the Set
//! Restriction (DESIGN.md invariant 5), no-lost-updates in the fine-grain
//! merge path (invariant 4), and disambiguation completeness.

use bulk_core::{
    apply_remote_commit, check_speculative_store, flows, set_restriction, Bdm, StoreCheck,
};
use bulk_mem::{Addr, Cache, CacheGeometry, LineState};
use bulk_sig::{Signature, SignatureConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn tm_setup() -> (Bdm, Cache) {
    let geom = CacheGeometry::tm_l1();
    (Bdm::new(SignatureConfig::s14_tm(), geom, 2), Cache::new(geom))
}

fn addr(raw: u32) -> Addr {
    Addr::new(raw * 64) // line-aligned
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Driving two interleaved speculative versions through the paper's
    /// store protocol (Set Restriction enforced via the BDM's bitmasks)
    /// keeps the restriction invariant true at every step, and squashing
    /// either version never discards the other's dirty lines.
    #[test]
    fn set_restriction_and_squash_safety(
        writes in prop::collection::vec((any::<bool>(), 0u32..2048), 1..80),
    ) {
        let (mut bdm, mut cache) = tm_setup();
        let v0 = bdm.alloc_version().unwrap();
        let v1 = bdm.alloc_version().unwrap();
        let mut exact: [HashSet<u32>; 2] = [HashSet::new(), HashSet::new()];

        for (which, raw) in writes {
            let (v, idx) = if which { (v1, 1) } else { (v0, 0) };
            bdm.set_running(Some(v));
            let a = addr(raw);
            match check_speculative_store(&bdm, v, a, &cache) {
                StoreCheck::Proceed { safe_writebacks } => {
                    for wb in safe_writebacks {
                        cache.mark_clean(wb);
                    }
                    cache.store(a.line(64));
                    bdm.record_store(v, a);
                    exact[idx].insert(raw);
                }
                StoreCheck::ConflictWithPreempted => {
                    // Protocol squashes someone; here we just skip the
                    // write, which also preserves the restriction.
                }
            }
            set_restriction::verify_set_restriction(&bdm, &cache)
                .map_err(TestCaseError::fail)?;
        }

        // Squash v1: every v0 dirty line must survive.
        let v0_dirty: Vec<u32> = exact[0]
            .iter()
            .copied()
            .filter(|&r| cache.state_of(addr(r).line(64)) == Some(LineState::Dirty))
            .collect();
        flows::squash(&mut bdm, v1, &mut cache, false);
        for r in v0_dirty {
            prop_assert_eq!(
                cache.state_of(addr(r).line(64)),
                Some(LineState::Dirty),
                "v0's line {} lost by v1's squash",
                r
            );
        }
        // And v1's speculative dirty lines are gone.
        for &r in &exact[1] {
            if exact[0].contains(&r) {
                continue;
            }
            prop_assert_ne!(cache.state_of(addr(r).line(64)), Some(LineState::Dirty));
        }
    }

    /// Bulk address disambiguation never misses a true conflict
    /// (completeness — the dual of the false-positive inexactness).
    #[test]
    fn disambiguation_has_no_false_negatives(
        wc in prop::collection::hash_set(0u32..100_000, 1..60),
        reads in prop::collection::hash_set(0u32..100_000, 0..120),
        writes in prop::collection::hash_set(0u32..100_000, 0..60),
    ) {
        let (mut bdm, _) = tm_setup();
        let v = bdm.alloc_version().unwrap();
        for &r in &reads {
            bdm.record_load(v, addr(r));
        }
        for &w in &writes {
            bdm.record_store(v, addr(w));
        }
        let mut w_sig = Signature::with_shared(bdm.config().clone());
        for &w in &wc {
            w_sig.insert_addr(addr(w));
        }
        let truly = wc.iter().any(|w| reads.contains(w) || writes.contains(w));
        let d = bdm.disambiguate(v, &w_sig);
        if truly {
            prop_assert!(d.squash(), "missed a true conflict");
        }
    }

    /// Applying a remote commit never invalidates dirty lines at line
    /// granularity (they are non-speculative aliases, §4.3), and always
    /// removes every truly-committed clean line.
    #[test]
    fn remote_commit_application(
        committed in prop::collection::hash_set(0u32..4096, 1..40),
        clean in prop::collection::hash_set(0u32..4096, 0..40),
        dirty in prop::collection::hash_set(0u32..4096, 0..10),
    ) {
        let (bdm, mut cache) = tm_setup();
        for &c in &clean {
            cache.fill_clean(addr(c).line(64));
        }
        for &d in &dirty {
            cache.fill_dirty(addr(d).line(64));
        }
        let mut w_c = Signature::with_shared(bdm.config().clone());
        for &c in &committed {
            w_c.insert_addr(addr(c));
        }
        let app = apply_remote_commit(&bdm, &w_c, &mut cache);
        // Dirty lines never invalidated.
        for &d in &dirty {
            if cache.contains(addr(d).line(64)) || clean.contains(&d) {
                continue;
            }
            // It may have been evicted during fills, but never by the
            // commit application.
            prop_assert!(!app.invalidated.contains(&addr(d).line(64)));
        }
        // Every committed line that was resident clean is gone.
        for c in committed.iter().filter(|c| clean.contains(c) && !dirty.contains(c)) {
            prop_assert!(!cache.contains(addr(*c).line(64)));
        }
    }

    /// Spill/reload of a version's signatures is lossless (§6.2.2).
    #[test]
    fn spill_reload_round_trip(
        reads in prop::collection::vec(0u32..100_000, 0..60),
        writes in prop::collection::vec(0u32..100_000, 0..60),
        overflowed in any::<bool>(),
    ) {
        let geom = CacheGeometry::tm_l1();
        let mut bdm = Bdm::new(SignatureConfig::s14_tm(), geom, 1);
        let v = bdm.alloc_version().unwrap();
        for &r in &reads {
            bdm.record_load(v, addr(r));
        }
        for &w in &writes {
            bdm.record_store(v, addr(w));
        }
        if overflowed {
            bdm.note_overflow(v);
        }
        let r_before = bdm.read_signature(v).clone();
        let w_before = bdm.write_signature(v).clone();
        let spilled = bdm.spill_version(v);
        let v2 = bdm.reload_version(spilled).expect("slot free after spill");
        prop_assert_eq!(bdm.read_signature(v2), &r_before);
        prop_assert_eq!(bdm.write_signature(v2), &w_before);
        prop_assert_eq!(bdm.has_overflowed(v2), overflowed);
    }
}
