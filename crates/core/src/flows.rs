//! The squash and commit flows of the paper's Fig. 5, operating on a
//! processor's BDM and its (unmodified) cache via bulk invalidation.

use bulk_mem::{Cache, LineAddr, LineState};
use bulk_obs::ExpansionObs;
use bulk_sig::{Granularity, Signature};

use crate::{Bdm, VersionId};

/// Lines invalidated while squashing a thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SquashInvalidation {
    /// Speculative dirty lines discarded via `W`'s bulk invalidation.
    pub dirty_invalidated: Vec<LineAddr>,
    /// Clean lines discarded via `R`'s bulk invalidation (TLS only, §6.3:
    /// they may hold incorrect data read from a squashed predecessor).
    pub read_invalidated: Vec<LineAddr>,
}

/// Squashes version `v`: bulk-invalidates its dirty lines using `W_v`
/// (safe because of exact δ and the Set Restriction), optionally
/// bulk-invalidates the lines it read using `R_v` (the TLS extension),
/// then clears the signatures (Fig. 5(b), left branch).
pub fn squash(
    bdm: &mut Bdm,
    v: VersionId,
    cache: &mut Cache,
    invalidate_read_lines: bool,
) -> SquashInvalidation {
    squash_observed(bdm, v, cache, invalidate_read_lines, None)
}

/// [`squash`] with optional instrumentation of its signature expansions.
pub fn squash_observed(
    bdm: &mut Bdm,
    v: VersionId,
    cache: &mut Cache,
    invalidate_read_lines: bool,
    obs: Option<&ExpansionObs>,
) -> SquashInvalidation {
    let mut out = SquashInvalidation::default();
    for e in bdm.write_signature(v).expand_observed(cache, obs) {
        if e.state == LineState::Dirty {
            cache.invalidate(e.addr);
            out.dirty_invalidated.push(e.addr);
        }
    }
    if invalidate_read_lines {
        for e in bdm.read_signature(v).expand_observed(cache, obs) {
            if e.state == LineState::Clean {
                cache.invalidate(e.addr);
                out.read_invalidated.push(e.addr);
            }
        }
    }
    bdm.clear_on_squash(v);
    out
}

/// Cache-side effects of receiving a committing thread's `W_C`
/// (Fig. 5(b), right box), after the squash decision was *negative*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitApplication {
    /// Clean lines invalidated (truly written by the committer, or aliased
    /// — the runtime separates the two against its exact oracle).
    pub invalidated: Vec<LineAddr>,
    /// Dirty lines merged word-by-word with the committed version
    /// (word-granularity signatures only, §4.4). Each entry carries the
    /// conservative local word mask used.
    pub merged: Vec<(LineAddr, bulk_sig::WordBitmask)>,
    /// Dirty lines that passed the membership test but were left alone:
    /// non-speculative dirty aliases (§4.3).
    pub skipped_dirty: Vec<LineAddr>,
}

/// Applies a remote commit's write signature to this processor's cache:
/// bulk invalidation of the lines in `W_C` (§4.3), with the fine-grain
/// merge extension (§4.4) when signatures encode word addresses and a
/// local speculative version also wrote the line's set.
///
/// None of the BDM's versions may have been squashed *by this commit* —
/// callers decide squashes first via [`Bdm::disambiguate`]. The set's
/// speculative owner (unique, by the Set Restriction) is found through the
/// versions' decoded write-set bitmasks, exactly as the hardware would use
/// its `δ(W)` registers.
pub fn apply_remote_commit(
    bdm: &Bdm,
    w_c: &Signature,
    cache: &mut Cache,
) -> CommitApplication {
    apply_remote_commit_observed(bdm, w_c, cache, None)
}

/// [`apply_remote_commit`] with optional instrumentation of the `W_C`
/// expansion.
pub fn apply_remote_commit_observed(
    bdm: &Bdm,
    w_c: &Signature,
    cache: &mut Cache,
    obs: Option<&ExpansionObs>,
) -> CommitApplication {
    let mut out = CommitApplication::default();
    let fine_grain = bdm.config().granularity() == Granularity::Word;
    let owner_masks: Vec<(crate::VersionId, bulk_sig::SetBitmask)> = bdm
        .versions_in_use()
        .map(|v| (v, bdm.decode_write_sets(v)))
        .collect();
    for e in w_c.expand_observed(cache, obs) {
        match e.state {
            LineState::Clean => {
                cache.invalidate(e.addr);
                out.invalidated.push(e.addr);
            }
            LineState::Dirty => {
                let set = bdm.geometry().set_of_line(e.addr);
                let owner = owner_masks.iter().find(|(_, m)| m.get(set)).map(|(v, _)| *v);
                match owner {
                    Some(v) if fine_grain => {
                        // Both the committer and the local version updated
                        // this line: merge. The conservative local word
                        // mask comes from the Updated Word Bitmask unit on
                        // the owner's W; the runtime models the line
                        // refetch (Fill) and keeps the merged line dirty.
                        let mask = bdm.write_signature(v).updated_word_bitmask(e.addr);
                        out.merged.push((e.addr, mask));
                    }
                    _ => {
                        // Dirty non-speculative alias: no action (§4.3).
                        out.skipped_dirty.push(e.addr);
                    }
                }
            }
        }
    }
    out
}

/// Bulk-invalidates the *clean* cached lines whose addresses are in `sig`.
/// Used by Partial Overlap at spawn time (§6.3): the child's processor
/// drops stale copies of everything the parent has modified so far, so the
/// child will miss and fetch the parent's versions.
pub fn invalidate_clean_matching(sig: &Signature, cache: &mut Cache) -> Vec<LineAddr> {
    let mut out = Vec::new();
    for e in sig.expand(cache) {
        if e.state == LineState::Clean {
            cache.invalidate(e.addr);
            out.push(e.addr);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_mem::{Addr, CacheGeometry};
    use bulk_sig::SignatureConfig;

    fn tm_setup() -> (Bdm, Cache) {
        let geom = CacheGeometry::tm_l1();
        (Bdm::new(SignatureConfig::s14_tm(), geom, 2), Cache::new(geom))
    }

    fn tls_setup() -> (Bdm, Cache) {
        let geom = CacheGeometry::tls_l1();
        (Bdm::new(SignatureConfig::s14_tls(), geom, 2), Cache::new(geom))
    }

    #[test]
    fn squash_discards_dirty_lines_only() {
        let (mut bdm, mut cache) = tm_setup();
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        let wr = Addr::new(0x40);
        let rd = Addr::new(0x80);
        bdm.record_store(v, wr);
        bdm.record_load(v, rd);
        cache.fill_dirty(wr.line(64));
        cache.fill_clean(rd.line(64));
        let s = squash(&mut bdm, v, &mut cache, false);
        assert_eq!(s.dirty_invalidated, vec![wr.line(64)]);
        assert!(s.read_invalidated.is_empty());
        assert!(!cache.contains(wr.line(64)));
        assert!(cache.contains(rd.line(64)));
        assert!(bdm.write_signature(v).is_empty());
    }

    #[test]
    fn tls_squash_also_discards_read_lines() {
        let (mut bdm, mut cache) = tls_setup();
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        let rd = Addr::new(0x80);
        bdm.record_load(v, rd);
        cache.fill_clean(rd.line(64));
        let s = squash(&mut bdm, v, &mut cache, true);
        assert_eq!(s.read_invalidated, vec![rd.line(64)]);
        assert!(!cache.contains(rd.line(64)));
    }

    #[test]
    fn squash_spares_other_threads_dirty_lines() {
        // A dirty line of another version, in a set v never wrote, must
        // survive v's squash even if doubly unlucky aliasing occurs — here
        // we simply check the normal no-alias case.
        let (mut bdm, mut cache) = tm_setup();
        let v0 = bdm.alloc_version().unwrap();
        let v1 = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v0));
        let mine = Addr::new(0x40);
        let theirs = Addr::new(0x80);
        bdm.record_store(v0, mine);
        cache.fill_dirty(mine.line(64));
        bdm.record_store(v1, theirs);
        cache.fill_dirty(theirs.line(64));
        squash(&mut bdm, v0, &mut cache, false);
        assert!(cache.contains(theirs.line(64)));
    }

    #[test]
    fn remote_commit_invalidates_clean_copies() {
        let (bdm, mut cache) = tm_setup();
        let committed = Addr::new(0x140);
        cache.fill_clean(committed.line(64));
        let mut w_c = Signature::with_shared(bdm.config().clone());
        w_c.insert_addr(committed);
        let app = apply_remote_commit(&bdm, &w_c, &mut cache);
        assert_eq!(app.invalidated, vec![committed.line(64)]);
        assert!(!cache.contains(committed.line(64)));
    }

    #[test]
    fn remote_commit_skips_nonspeculative_dirty_alias() {
        let (bdm, mut cache) = tm_setup();
        let line = Addr::new(0x140).line(64);
        cache.fill_dirty(line); // non-speculative dirty
        let mut w_c = Signature::with_shared(bdm.config().clone());
        w_c.insert_line(line); // aliasing made it appear in W_C
        let app = apply_remote_commit(&bdm, &w_c, &mut cache);
        assert_eq!(app.skipped_dirty, vec![line]);
        assert!(cache.contains(line));
        assert_eq!(cache.state_of(line), Some(LineState::Dirty));
    }

    #[test]
    fn fine_grain_commit_merges_partially_updated_line() {
        let (mut bdm, mut cache) = tls_setup();
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        let line = LineAddr::new(0x100);
        // Local thread wrote word 2 of the line.
        let local_word = line.word(64, 2).to_addr();
        bdm.record_store(v, local_word);
        cache.fill_dirty(line);
        // Committer wrote word 9 of the same line.
        let mut w_c = Signature::with_shared(bdm.config().clone());
        w_c.insert_addr(line.word(64, 9).to_addr());
        // No violation: different words.
        assert!(!bdm.disambiguate(v, &w_c).squash());
        let app = apply_remote_commit(&bdm, &w_c, &mut cache);
        assert_eq!(app.merged.len(), 1);
        let (merged_line, mask) = app.merged[0];
        assert_eq!(merged_line, line);
        assert!(mask.contains(2));
        assert!(!mask.contains(9), "mask may not claim the committer's word");
        assert!(cache.contains(line), "merged line stays resident");
    }

    #[test]
    fn spawn_invalidation_drops_clean_parent_lines() {
        let (bdm, mut cache) = tls_setup();
        let a = Addr::new(0x400);
        let b = Addr::new(0x800);
        cache.fill_clean(a.line(64));
        cache.fill_dirty(b.line(64));
        let mut w = Signature::with_shared(bdm.config().clone());
        w.insert_addr(a);
        w.insert_addr(b);
        let inv = invalidate_clean_matching(&w, &mut cache);
        assert_eq!(inv, vec![a.line(64)]);
        assert!(!cache.contains(a.line(64)));
        assert!(cache.contains(b.line(64)));
    }
}
