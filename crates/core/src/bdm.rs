//! The Bulk Disambiguation Module (BDM) of the paper's Fig. 7.
//!
//! The BDM sits between a processor and its (completely conventional) L1
//! cache. It holds, per supported speculative *version*: a read signature
//! `R`, a write signature `W`, an optional shadow write signature `W_sh`
//! (TLS Partial Overlap, §6.3) and an overflow bit `O` (§6.2.2). It also
//! holds two cache-set bitmask registers: `δ(W_run)` for the version
//! currently executing, and `OR(δ(W_pre))` for all preempted versions —
//! used to identify speculative dirty lines and to enforce the Set
//! Restriction without touching the cache (§4.5).

use std::sync::Arc;

use bulk_mem::{Addr, CacheGeometry};
use bulk_sig::{ConfigMismatch, SetBitmask, Signature, SignatureArena, SignatureConfig};

/// Identifies one of the BDM's version slots (one speculative thread or
/// checkpoint whose state lives in this processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionId(pub(crate) usize);

impl VersionId {
    /// The slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Outcome of bulk address disambiguation (paper Eq. 1) at a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Disambiguation {
    /// `W_C ∩ R_R ≠ ∅`: a potential read-after-write violation.
    pub conflicts_read: bool,
    /// `W_C ∩ W_R ≠ ∅`: a potential write-after-write violation.
    pub conflicts_write: bool,
}

impl Disambiguation {
    /// Whether the receiver must be squashed.
    pub fn squash(self) -> bool {
        self.conflicts_read || self.conflicts_write
    }
}

#[derive(Debug, Clone)]
struct Slot {
    r: Signature,
    w: Signature,
    /// Shadow write signature, accumulated from first-child spawn (§6.3).
    w_sh: Option<Signature>,
    overflowed: bool,
    in_use: bool,
}

impl Slot {
    fn clear(&mut self) {
        self.r.clear();
        self.w.clear();
        self.w_sh = None;
        self.overflowed = false;
    }
}

/// The Bulk Disambiguation Module. See module docs.
///
/// ```
/// use bulk_core::Bdm;
/// use bulk_sig::SignatureConfig;
/// use bulk_mem::{Addr, CacheGeometry};
///
/// let mut bdm = Bdm::new(SignatureConfig::s14_tm(), CacheGeometry::tm_l1(), 4);
/// let v = bdm.alloc_version().unwrap();
/// bdm.record_store(v, Addr::new(0x40));
/// assert!(bdm.write_signature(v).contains_addr(Addr::new(0x40)));
/// ```
#[derive(Debug, Clone)]
pub struct Bdm {
    config: Arc<SignatureConfig>,
    geom: CacheGeometry,
    slots: Vec<Slot>,
    running: Option<VersionId>,
    delta_w_run: SetBitmask,
    or_delta_w_pre: SetBitmask,
}

impl Bdm {
    /// Creates a BDM supporting `num_versions` simultaneous speculative
    /// versions.
    ///
    /// # Panics
    ///
    /// Panics if `num_versions` is zero, or if the signature configuration
    /// is not exactly δ-decodable for this cache geometry — the paper's
    /// §4.3 correctness argument for bulk invalidation requires exact
    /// decoding.
    pub fn new(config: SignatureConfig, geom: CacheGeometry, num_versions: usize) -> Self {
        Self::new_shared(config.into_shared(), geom, num_versions)
    }

    /// [`Bdm::new`] over an already-shared configuration handle.
    ///
    /// The machines pass the same `Arc` they hand to their signature
    /// arenas and section stacks, so every signature in the system shares
    /// one pointer-identical config — binary ops stay on the
    /// pointer-equality compatibility fast path and drop/recreate cycles
    /// stay inside the signature pool, instead of deep-comparing layouts
    /// and re-allocating per operation.
    ///
    /// # Panics
    ///
    /// Panics if `num_versions` is zero, or if the signature configuration
    /// is not exactly δ-decodable for this cache geometry — the paper's
    /// §4.3 correctness argument for bulk invalidation requires exact
    /// decoding.
    pub fn new_shared(
        config: Arc<SignatureConfig>,
        geom: CacheGeometry,
        num_versions: usize,
    ) -> Self {
        assert!(num_versions > 0, "at least one version slot is required");
        assert!(
            config.is_exactly_decodable(&geom),
            "signature configuration must be exactly δ-decodable for the cache geometry"
        );
        assert_eq!(config.line_bytes(), geom.line_bytes());
        let slots = (0..num_versions)
            .map(|_| Slot {
                r: Signature::with_shared(config.clone()),
                w: Signature::with_shared(config.clone()),
                w_sh: None,
                overflowed: false,
                in_use: false,
            })
            .collect();
        Bdm {
            config,
            geom,
            slots,
            running: None,
            delta_w_run: SetBitmask::new(geom.num_sets()),
            or_delta_w_pre: SetBitmask::new(geom.num_sets()),
        }
    }

    /// The shared signature configuration.
    pub fn config(&self) -> &Arc<SignatureConfig> {
        &self.config
    }

    /// The cache geometry the BDM fronts.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Number of version slots.
    pub fn num_versions(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a free version slot, or `None` if all are in use (the
    /// runtime must then spill a version's signatures to memory, §6.2.2).
    pub fn alloc_version(&mut self) -> Option<VersionId> {
        let i = self.slots.iter().position(|s| !s.in_use)?;
        self.slots[i].in_use = true;
        self.slots[i].clear();
        Some(VersionId(i))
    }

    /// Releases a version slot, clearing its signatures.
    pub fn free_version(&mut self, v: VersionId) {
        self.slot_mut(v).in_use = false;
        self.slots[v.0].clear();
        if self.running == Some(v) {
            self.running = None;
        }
        self.rebuild_registers();
    }

    /// Version slots currently in use.
    pub fn versions_in_use(&self) -> impl Iterator<Item = VersionId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.in_use)
            .map(|(i, _)| VersionId(i))
    }

    fn slot(&self, v: VersionId) -> &Slot {
        let s = &self.slots[v.0];
        assert!(s.in_use, "version {v:?} is not allocated");
        s
    }

    fn slot_mut(&mut self, v: VersionId) -> &mut Slot {
        let s = &mut self.slots[v.0];
        assert!(s.in_use, "version {v:?} is not allocated");
        s
    }

    /// Marks `v` as the version running on the CPU, updating the
    /// `δ(W_run)` / `OR(δ(W_pre))` registers — the paper updates the
    /// latter at every context switch (§4.5).
    pub fn set_running(&mut self, v: Option<VersionId>) {
        if let Some(v) = v {
            assert!(self.slots[v.0].in_use, "cannot run unallocated version");
        }
        self.running = v;
        self.rebuild_registers();
    }

    /// The currently running version, if any.
    pub fn running(&self) -> Option<VersionId> {
        self.running
    }

    fn rebuild_registers(&mut self) {
        self.delta_w_run.clear();
        self.or_delta_w_pre.clear();
        for (i, s) in self.slots.iter().enumerate() {
            if !s.in_use {
                continue;
            }
            let mask = s.w.decode_sets(&self.geom);
            if Some(VersionId(i)) == self.running {
                self.delta_w_run.or_assign(&mask);
            } else {
                self.or_delta_w_pre.or_assign(&mask);
            }
        }
    }

    /// Records a speculative load into `v`'s read signature.
    pub fn record_load(&mut self, v: VersionId, addr: Addr) {
        self.slot_mut(v).r.insert_addr(addr);
    }

    /// Records a speculative store into `v`'s write signature (and the
    /// shadow signature if one is active), updating `δ(W_run)` when `v` is
    /// the running version.
    pub fn record_store(&mut self, v: VersionId, addr: Addr) {
        let set = self.set_of(addr);
        {
            let slot = self.slot_mut(v);
            slot.w.insert_addr(addr);
            if let Some(sh) = &mut slot.w_sh {
                sh.insert_addr(addr);
            }
        }
        if self.running == Some(v) {
            self.delta_w_run.set(set);
        } else {
            self.or_delta_w_pre.set(set);
        }
    }

    /// The cache set `addr` maps to.
    pub fn set_of(&self, addr: Addr) -> u32 {
        self.geom.set_of_line(addr.line(self.geom.line_bytes()))
    }

    /// `v`'s read signature.
    pub fn read_signature(&self, v: VersionId) -> &Signature {
        &self.slot(v).r
    }

    /// `v`'s write signature.
    pub fn write_signature(&self, v: VersionId) -> &Signature {
        &self.slot(v).w
    }

    /// `v`'s shadow write signature, if Partial Overlap tracking started.
    pub fn shadow_signature(&self, v: VersionId) -> Option<&Signature> {
        self.slot(v).w_sh.as_ref()
    }

    /// Starts the shadow write signature for `v` — called at the point `v`
    /// spawns its first child (paper Fig. 9). Returns a snapshot of `v`'s
    /// current `W`, which the spawn message carries to the child's
    /// processor for bulk invalidation of stale clean lines.
    pub fn begin_shadow(&mut self, v: VersionId) -> Signature {
        let config = self.config.clone();
        let slot = self.slot_mut(v);
        slot.w_sh = Some(Signature::with_shared(config));
        slot.w.clone()
    }

    /// Bulk address disambiguation (paper §4.2, Eq. 1) of a committing
    /// thread's write signature against `v`'s signatures.
    pub fn disambiguate(&self, v: VersionId, w_c: &Signature) -> Disambiguation {
        let slot = self.slot(v);
        Disambiguation {
            conflicts_read: w_c.intersects(&slot.r),
            conflicts_write: w_c.intersects(&slot.w),
        }
    }

    /// Non-panicking [`Bdm::disambiguate`] for a `w_c` that arrived over a
    /// wire and may have been built under a different configuration than
    /// this BDM's — a malformed commit must be an error, not a panic.
    ///
    /// # Errors
    ///
    /// [`ConfigMismatch`] when `w_c`'s configuration differs from the BDM's.
    pub fn try_disambiguate(
        &self,
        v: VersionId,
        w_c: &Signature,
    ) -> Result<Disambiguation, ConfigMismatch> {
        let slot = self.slot(v);
        Ok(Disambiguation {
            conflicts_read: w_c.try_intersects(&slot.r)?,
            conflicts_write: w_c.try_intersects(&slot.w)?,
        })
    }

    /// Disambiguation of a single-address invalidation from a
    /// non-speculative thread (paper §4.2): membership of `addr` in `R ∪ W`.
    pub fn disambiguate_addr(&self, v: VersionId, addr: Addr) -> bool {
        let slot = self.slot(v);
        slot.r.contains_addr(addr) || slot.w.contains_addr(addr)
    }

    /// Whether an external request to cache set `set` must be nacked
    /// because dirty lines there belong to a speculative version (§4.5).
    pub fn holds_speculative_dirty_set(&self, set: u32) -> bool {
        self.delta_w_run.get(set) || self.or_delta_w_pre.get(set)
    }

    /// The `δ(W_run)` register.
    pub fn delta_w_run(&self) -> &SetBitmask {
        &self.delta_w_run
    }

    /// The `OR(δ(W_pre))` register.
    pub fn or_delta_w_pre(&self) -> &SetBitmask {
        &self.or_delta_w_pre
    }

    /// Marks `v` as having overflowed speculative dirty lines to memory.
    pub fn note_overflow(&mut self, v: VersionId) {
        self.slot_mut(v).overflowed = true;
    }

    /// `v`'s overflow bit.
    pub fn has_overflowed(&self, v: VersionId) -> bool {
        self.slot(v).overflowed
    }

    /// Whether a miss on `addr` by `v` needs to consult the overflow area
    /// (paper §6.2.2): only if the overflow bit is set *and* the membership
    /// test `addr ∈ W` passes.
    pub fn must_check_overflow(&self, v: VersionId, addr: Addr) -> bool {
        let slot = self.slot(v);
        slot.overflowed && slot.w.contains_addr(addr)
    }

    /// Commits `v`: takes its write signature (and shadow signature, if
    /// any) for broadcast and clears the slot — the paper's
    /// clear-a-register commit (§5.1). The slot stays allocated; pair it
    /// with [`Bdm::free_version`] when the thread is done.
    pub fn commit(&mut self, v: VersionId) -> CommitSignatures {
        let slot = self.slot_mut(v);
        let w = slot.w.clone();
        let w_sh = slot.w_sh.clone();
        slot.clear();
        self.rebuild_registers();
        CommitSignatures { w, w_sh }
    }

    /// [`Bdm::commit`] with the broadcast copies drawn from `arena` instead
    /// of the allocator — the commit fast path runs once per broadcast, so
    /// the machines recycle these buffers through their arenas.
    ///
    /// # Panics
    ///
    /// Panics if `arena` was built for a different configuration.
    pub fn commit_with(&mut self, v: VersionId, arena: &mut SignatureArena) -> CommitSignatures {
        let slot = self.slot_mut(v);
        let mut w = arena.take();
        w.copy_from(&slot.w);
        let w_sh = slot.w_sh.as_ref().map(|sh| {
            let mut s = arena.take();
            s.copy_from(sh);
            s
        });
        slot.clear();
        self.rebuild_registers();
        CommitSignatures { w, w_sh }
    }

    /// Clears `v`'s signatures without copying them out — the commit
    /// cleanup when the broadcast copy was already taken (e.g. through a
    /// [`SignatureArena`]), sparing the clone [`Bdm::commit`] would make.
    pub fn clear_version(&mut self, v: VersionId) {
        self.slot_mut(v).clear();
        self.rebuild_registers();
    }

    /// Clears `v`'s signatures on squash (cache-side invalidation is done
    /// by [`crate::flows`]).
    pub fn clear_on_squash(&mut self, v: VersionId) {
        self.clear_version(v);
    }

    /// Spills `v`'s signatures for an out-of-slots context switch
    /// (§6.2.2): returns them for safekeeping in memory and frees the slot.
    pub fn spill_version(&mut self, v: VersionId) -> SpilledVersion {
        let slot = self.slot(v).clone();
        self.free_version(v);
        SpilledVersion { r: slot.r, w: slot.w, w_sh: slot.w_sh, overflowed: slot.overflowed }
    }

    /// Reloads a previously spilled version into a free slot.
    ///
    /// Returns `None` (and gives the spill back) if no slot is free.
    pub fn reload_version(&mut self, spilled: SpilledVersion) -> Result<VersionId, SpilledVersion> {
        match self.alloc_version() {
            Some(v) => {
                let slot = self.slot_mut(v);
                slot.r = spilled.r;
                slot.w = spilled.w;
                slot.w_sh = spilled.w_sh;
                slot.overflowed = spilled.overflowed;
                self.rebuild_registers();
                Ok(v)
            }
            None => Err(spilled),
        }
    }

    /// Decoded cache-set bitmask of `v`'s write signature (`δ(W_v)`).
    pub fn decode_write_sets(&self, v: VersionId) -> SetBitmask {
        self.slot(v).w.decode_sets(&self.geom)
    }
}

/// Signatures broadcast by a committing thread: the write signature, plus
/// the shadow signature when Partial Overlap is active (§6.3).
#[derive(Debug, Clone)]
pub struct CommitSignatures {
    /// The full write signature `W`.
    pub w: Signature,
    /// The shadow write signature `W_sh` (writes since first-child spawn).
    pub w_sh: Option<Signature>,
}

/// A version's signatures spilled to memory when the BDM runs out of slots
/// (paper §6.2.2).
#[derive(Debug, Clone)]
pub struct SpilledVersion {
    /// Read signature.
    pub r: Signature,
    /// Write signature.
    pub w: Signature,
    /// Shadow write signature, if Partial Overlap tracking had started.
    pub w_sh: Option<Signature>,
    /// Overflow bit.
    pub overflowed: bool,
}

impl SpilledVersion {
    /// Disambiguates a committing write signature against this spilled
    /// version (performed "in memory" in the paper).
    pub fn disambiguate(&self, w_c: &Signature) -> Disambiguation {
        Disambiguation {
            conflicts_read: w_c.intersects(&self.r),
            conflicts_write: w_c.intersects(&self.w),
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn bdm() -> Bdm {
        Bdm::new(SignatureConfig::s14_tm(), CacheGeometry::tm_l1(), 2)
    }

    #[test]
    fn alloc_and_free_slots() {
        let mut b = bdm();
        let v0 = b.alloc_version().unwrap();
        let v1 = b.alloc_version().unwrap();
        assert_ne!(v0, v1);
        assert!(b.alloc_version().is_none());
        b.free_version(v0);
        assert!(b.alloc_version().is_some());
    }

    #[test]
    fn record_and_disambiguate() {
        let mut b = bdm();
        let v = b.alloc_version().unwrap();
        b.record_load(v, Addr::new(0x100));
        b.record_store(v, Addr::new(0x200));

        let mut w_c = Signature::with_shared(b.config().clone());
        w_c.insert_addr(Addr::new(0x100));
        let d = b.disambiguate(v, &w_c);
        assert!(d.conflicts_read && d.squash());

        let mut w_c2 = Signature::with_shared(b.config().clone());
        w_c2.insert_addr(Addr::new(0x200));
        let d2 = b.disambiguate(v, &w_c2);
        assert!(d2.conflicts_write && d2.squash());

        let mut w_c3 = Signature::with_shared(b.config().clone());
        w_c3.insert_addr(Addr::new(0x9000));
        assert!(!b.disambiguate(v, &w_c3).squash());
    }

    #[test]
    fn individual_invalidation_membership() {
        let mut b = bdm();
        let v = b.alloc_version().unwrap();
        b.record_load(v, Addr::new(0x100));
        assert!(b.disambiguate_addr(v, Addr::new(0x100)));
        assert!(!b.disambiguate_addr(v, Addr::new(0x5000)));
    }

    #[test]
    fn registers_track_running_vs_preempted() {
        let mut b = bdm();
        let v0 = b.alloc_version().unwrap();
        let v1 = b.alloc_version().unwrap();
        b.set_running(Some(v0));
        let a0 = Addr::new(0x40); // set 1
        let a1 = Addr::new(0x80); // set 2
        b.record_store(v0, a0);
        b.record_store(v1, a1);
        assert!(b.delta_w_run().get(b.set_of(a0)));
        assert!(!b.delta_w_run().get(b.set_of(a1)));
        assert!(b.or_delta_w_pre().get(b.set_of(a1)));
        // Context switch: v1 now runs.
        b.set_running(Some(v1));
        assert!(b.delta_w_run().get(b.set_of(a1)));
        assert!(b.or_delta_w_pre().get(b.set_of(a0)));
        assert!(b.holds_speculative_dirty_set(b.set_of(a0)));
    }

    #[test]
    fn commit_clears_signatures_and_registers() {
        let mut b = bdm();
        let v = b.alloc_version().unwrap();
        b.set_running(Some(v));
        b.record_store(v, Addr::new(0x40));
        b.record_load(v, Addr::new(0x80));
        let c = b.commit(v);
        assert!(!c.w.is_empty());
        assert!(b.write_signature(v).is_empty());
        assert!(b.read_signature(v).is_empty());
        assert!(!b.delta_w_run().any());
    }

    #[test]
    fn shadow_signature_tracks_post_spawn_writes_only() {
        let mut b = bdm();
        let v = b.alloc_version().unwrap();
        b.record_store(v, Addr::new(0x1000)); // pre-spawn
        let w_at_spawn = b.begin_shadow(v);
        assert!(w_at_spawn.contains_addr(Addr::new(0x1000)));
        b.record_store(v, Addr::new(0x2000)); // post-spawn
        let sh = b.shadow_signature(v).unwrap();
        assert!(sh.contains_addr(Addr::new(0x2000)));
        assert!(!sh.contains_addr(Addr::new(0x1000)));
        // Full W has both.
        assert!(b.write_signature(v).contains_addr(Addr::new(0x1000)));
        assert!(b.write_signature(v).contains_addr(Addr::new(0x2000)));
        let c = b.commit(v);
        assert!(c.w_sh.is_some());
    }

    #[test]
    fn overflow_filtering() {
        let mut b = bdm();
        let v = b.alloc_version().unwrap();
        b.record_store(v, Addr::new(0x300));
        assert!(!b.must_check_overflow(v, Addr::new(0x300)), "no overflow yet");
        b.note_overflow(v);
        assert!(b.has_overflowed(v));
        assert!(b.must_check_overflow(v, Addr::new(0x300)));
        assert!(!b.must_check_overflow(v, Addr::new(0x7000)), "membership filter");
    }

    #[test]
    fn spill_and_reload_round_trip() {
        let mut b = Bdm::new(SignatureConfig::s14_tm(), CacheGeometry::tm_l1(), 1);
        let v = b.alloc_version().unwrap();
        b.record_store(v, Addr::new(0x40));
        b.note_overflow(v);
        let spilled = b.spill_version(v);
        assert!(spilled.w.contains_addr(Addr::new(0x40)));
        assert!(spilled.overflowed);
        // Disambiguation still works against the spilled copy.
        let mut w_c = Signature::with_shared(b.config().clone());
        w_c.insert_addr(Addr::new(0x40));
        assert!(spilled.disambiguate(&w_c).squash());
        // Reload.
        let v2 = b.reload_version(spilled).unwrap();
        assert!(b.write_signature(v2).contains_addr(Addr::new(0x40)));
        assert!(b.has_overflowed(v2));
    }

    #[test]
    fn reload_fails_when_full() {
        let mut b = Bdm::new(SignatureConfig::s14_tm(), CacheGeometry::tm_l1(), 1);
        let v = b.alloc_version().unwrap();
        let spilled = b.spill_version(v);
        let _v2 = b.alloc_version().unwrap();
        assert!(b.reload_version(spilled).is_err());
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn using_freed_version_panics() {
        let mut b = bdm();
        let v = b.alloc_version().unwrap();
        b.free_version(v);
        b.record_load(v, Addr::new(0));
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn rejects_undecodable_config() {
        // A 4-bit single chunk cannot cover the 7 TM index bits.
        let cfg = SignatureConfig::new(
            vec![4],
            bulk_sig::BitPermutation::identity(),
            bulk_sig::Granularity::Line,
            64,
        );
        Bdm::new(cfg, CacheGeometry::tm_l1(), 1);
    }
}
