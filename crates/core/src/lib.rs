//! The Bulk Disambiguation Module and protocols — the primary contribution
//! of *Bulk Disambiguation of Speculative Threads in Multiprocessors*
//! (Ceze, Tuck, Caşcaval & Torrellas, ISCA 2006), built on the signature
//! primitives of [`bulk_sig`] and the memory substrate of [`bulk_mem`].
//!
//! The crate provides:
//!
//! * [`Bdm`] — the per-processor Bulk Disambiguation Module (paper Fig. 7):
//!   per-version R/W signature pairs, shadow signatures, overflow bits, and
//!   the `δ(W_run)` / `OR(δ(W_pre))` cache-set registers;
//! * [`flows`] — the commit/squash flowcharts of Fig. 5: bulk address
//!   disambiguation, bulk invalidation on squash and on remote commit, and
//!   the fine-grain word-merge path of §4.4;
//! * [`set_restriction`] — enforcement and verification of the Set
//!   Restriction (§4.3/§4.5) that makes bulk invalidation of dirty lines
//!   safe;
//! * [`SectionStack`] — closed nested transactions with partial rollback
//!   (§6.2.1); and
//! * spill/reload of version signatures for overflow and context switches
//!   (§6.2.2).
//!
//! # Example: the Fig. 1 scenario
//!
//! ```
//! use bulk_core::Bdm;
//! use bulk_mem::{Addr, CacheGeometry};
//! use bulk_sig::SignatureConfig;
//!
//! // Two processors, each with a BDM.
//! let mut px = Bdm::new(SignatureConfig::s14_tm(), CacheGeometry::tm_l1(), 1);
//! let mut py = Bdm::new(SignatureConfig::s14_tm(), CacheGeometry::tm_l1(), 1);
//! let vx = px.alloc_version().unwrap();
//! let vy = py.alloc_version().unwrap();
//!
//! px.record_store(vx, Addr::new(0x1000)); // x writes A
//! py.record_load(vy, Addr::new(0x1000));  // y reads A
//!
//! // x commits: it broadcasts only W_x; y bulk-disambiguates in one shot.
//! let commit = px.commit(vx);
//! assert!(py.disambiguate(vy, &commit.w).squash());
//! ```

#![warn(missing_docs)]

mod bdm;
pub mod flows;
mod msg;
mod nesting;
pub mod set_restriction;

pub use bdm::{Bdm, CommitSignatures, Disambiguation, SpilledVersion, VersionId};
pub use msg::{CommitEvent, CommitMsg, DeliveredSignatures};
pub use flows::{
    apply_remote_commit, invalidate_clean_matching, squash, CommitApplication,
    SquashInvalidation,
};
pub use nesting::SectionStack;
pub use set_restriction::{check_speculative_store, verify_set_restriction, StoreCheck};
