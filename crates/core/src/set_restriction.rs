//! The Set Restriction (paper §4.3, §4.5): at any time, all dirty lines in
//! one cache set belong to a single owner — one speculative thread, or the
//! non-speculative state. Together with exact δ decoding this makes bulk
//! invalidation of dirty lines safe despite aliased signatures.

use bulk_mem::{Addr, Cache, LineAddr};

use crate::{Bdm, VersionId};

/// The BDM controller's decision for a speculative store (paper §4.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreCheck {
    /// The store may proceed. Any listed dirty lines are non-speculative
    /// and must first be written back to memory ("safe writebacks"); they
    /// remain cached clean.
    Proceed {
        /// Non-speculative dirty lines of the target set to write back.
        safe_writebacks: Vec<LineAddr>,
    },
    /// The target set already holds dirty lines of a *different*
    /// speculative version (`δ(W_run)`, `OR(δ(W_pre))` = (0, 1)): a
    /// write-write set conflict. The runtime resolves it by squashing the
    /// more speculative thread, preempting, or merging (paper §4.5).
    ConflictWithPreempted,
}

impl StoreCheck {
    /// Whether the store may proceed.
    pub fn may_proceed(&self) -> bool {
        matches!(self, StoreCheck::Proceed { .. })
    }
}

/// Checks a speculative store by the *running* version `v` against the Set
/// Restriction, using only the BDM's two bitmask registers and the cache
/// set's dirty lines — never any per-line speculative metadata.
///
/// The caller must apply the returned safe writebacks (marking those lines
/// clean and accounting WB bandwidth) before letting the store update the
/// cache, then call [`Bdm::record_store`].
///
/// # Panics
///
/// Panics if `v` is not the BDM's running version.
pub fn check_speculative_store(bdm: &Bdm, v: VersionId, addr: Addr, cache: &Cache) -> StoreCheck {
    assert_eq!(bdm.running(), Some(v), "set-restriction check is for the running version");
    let set = bdm.set_of(addr);
    let run_bit = bdm.delta_w_run().get(set);
    let pre_bit = bdm.or_delta_w_pre().get(set);
    debug_assert!(
        !(run_bit && pre_bit),
        "set {set} owned by both running and preempted versions"
    );
    if pre_bit {
        StoreCheck::ConflictWithPreempted
    } else if run_bit {
        StoreCheck::Proceed { safe_writebacks: Vec::new() }
    } else {
        // (0,0): any dirty lines in the set are non-speculative; they must
        // be written back before the first speculative write to the set.
        StoreCheck::Proceed { safe_writebacks: cache.dirty_lines_in_set(set).collect() }
    }
}

/// Asserts (in tests and debug runs) that the Set Restriction holds for a
/// processor: every dirty line's set is owned by at most one speculative
/// version, and dirty lines in speculative-owned sets pass that owner's
/// write-signature membership test.
pub fn verify_set_restriction(bdm: &Bdm, cache: &Cache) -> Result<(), String> {
    let geom = bdm.geometry();
    for set in 0..geom.num_sets() {
        let owners: Vec<VersionId> = bdm
            .versions_in_use()
            .filter(|&v| bdm.decode_write_sets(v).get(set))
            .collect();
        if owners.len() > 1 && cache.set_has_dirty(set) {
            return Err(format!("set {set} dirty with {} speculative owners", owners.len()));
        }
        if let [owner] = owners[..] {
            for line in cache.dirty_lines_in_set(set) {
                if !bdm.write_signature(owner).contains_any_word_of_line(line) {
                    return Err(format!(
                        "dirty line {line} in speculative set {set} fails owner membership"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_mem::CacheGeometry;
    use bulk_sig::SignatureConfig;

    fn setup() -> (Bdm, Cache) {
        let geom = CacheGeometry::tm_l1();
        (Bdm::new(SignatureConfig::s14_tm(), geom, 2), Cache::new(geom))
    }

    #[test]
    fn first_write_to_clean_set_proceeds_without_writebacks() {
        let (mut bdm, cache) = setup();
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        match check_speculative_store(&bdm, v, Addr::new(0x40), &cache) {
            StoreCheck::Proceed { safe_writebacks } => assert!(safe_writebacks.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nonspeculative_dirty_lines_must_be_written_back() {
        let (mut bdm, mut cache) = setup();
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        // A non-speculative dirty line sits in the target set.
        let dirty = Addr::new(0x40).line(64);
        cache.fill_dirty(dirty);
        match check_speculative_store(&bdm, v, Addr::new(0x40), &cache) {
            StoreCheck::Proceed { safe_writebacks } => {
                assert_eq!(safe_writebacks, vec![dirty]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn second_write_to_owned_set_is_free() {
        let (mut bdm, mut cache) = setup();
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        bdm.record_store(v, Addr::new(0x40));
        cache.fill_dirty(Addr::new(0x40).line(64));
        match check_speculative_store(&bdm, v, Addr::new(0x2040), &cache) {
            StoreCheck::Proceed { safe_writebacks } => assert!(safe_writebacks.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn preempted_owner_conflicts() {
        let (mut bdm, cache) = setup();
        let v0 = bdm.alloc_version().unwrap();
        let v1 = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v0));
        bdm.record_store(v0, Addr::new(0x40));
        // v0 preempted, v1 runs and writes the same set.
        bdm.set_running(Some(v1));
        assert_eq!(
            check_speculative_store(&bdm, v1, Addr::new(0x2040), &cache),
            StoreCheck::ConflictWithPreempted
        );
    }

    #[test]
    fn verifier_accepts_clean_state_and_flags_violation() {
        let (mut bdm, mut cache) = setup();
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        bdm.record_store(v, Addr::new(0x40));
        cache.fill_dirty(Addr::new(0x40).line(64));
        assert!(verify_set_restriction(&bdm, &cache).is_ok());
        // Sneak an unrelated dirty line into the owned set.
        cache.fill_dirty(Addr::new(0x4040).line(64));
        assert!(verify_set_restriction(&bdm, &cache).is_err());
    }
}
