//! Closed nested transactions with partial rollback (paper §6.2.1).
//!
//! The transaction-begin/end statements divide a nested transaction into
//! sections; the BDM keeps one (R, W) signature pair per section. An
//! incoming `W_C` is disambiguated against the sections in order; a
//! violation in section *i* rolls back only sections *i..* (partial
//! rollback). At outer commit the broadcast write signature is the union
//! of all the sections' `W`s.

use std::sync::Arc;

use bulk_mem::Addr;
use bulk_sig::{ConfigMismatch, Signature, SignatureArena, SignatureConfig};

/// One code section of a nested transaction, with its signature pair.
#[derive(Debug, Clone)]
struct Section {
    r: Signature,
    w: Signature,
}

/// The per-section signature stack of a nested transaction.
///
/// ```
/// use bulk_core::SectionStack;
/// use bulk_sig::{Signature, SignatureConfig};
/// use bulk_mem::Addr;
///
/// let cfg = SignatureConfig::s14_tm().into_shared();
/// let mut tx = SectionStack::new(cfg.clone());
/// tx.begin_section(); // section 1
/// tx.record_store(Addr::new(0x40));
/// tx.begin_section(); // section 2 (inner transaction body)
/// tx.record_store(Addr::new(0x80));
///
/// // A conflicting commit against section 2 only rolls back section 2.
/// let mut w_c = Signature::with_shared(cfg);
/// w_c.insert_addr(Addr::new(0x80));
/// assert_eq!(tx.disambiguate(&w_c), Some(1));
/// let rolled_back = tx.rollback_to(1);
/// assert_eq!(rolled_back, 1);
/// // Section 1 survives; a fresh section 2 is reopened for re-execution.
/// assert_eq!(tx.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SectionStack {
    config: Arc<SignatureConfig>,
    sections: Vec<Section>,
}

impl SectionStack {
    /// Creates an empty stack (no open section).
    pub fn new(config: Arc<SignatureConfig>) -> Self {
        SectionStack { config, sections: Vec::new() }
    }

    /// Opens a new section (at `transaction begin` and `transaction end`
    /// boundaries). Returns its index.
    pub fn begin_section(&mut self) -> usize {
        self.sections.push(Section {
            r: Signature::with_shared(self.config.clone()),
            w: Signature::with_shared(self.config.clone()),
        });
        self.sections.len() - 1
    }

    /// Number of open sections.
    pub fn depth(&self) -> usize {
        self.sections.len()
    }

    /// Whether no section is open.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Records a load in the innermost section.
    ///
    /// # Panics
    ///
    /// Panics if no section is open.
    pub fn record_load(&mut self, addr: Addr) {
        self.sections
            .last_mut()
            .expect("no open section")
            .r
            .insert_addr(addr);
    }

    /// Records a store in the innermost section.
    ///
    /// # Panics
    ///
    /// Panics if no section is open.
    pub fn record_store(&mut self, addr: Addr) {
        self.sections
            .last_mut()
            .expect("no open section")
            .w
            .insert_addr(addr);
    }

    /// Disambiguates `w_c` against the sections **in order** (paper Fig. 8)
    /// and returns the index of the first violated section, if any.
    pub fn disambiguate(&self, w_c: &Signature) -> Option<usize> {
        self.sections
            .iter()
            .position(|s| w_c.intersects(&s.r) || w_c.intersects(&s.w))
    }

    /// Non-panicking [`SectionStack::disambiguate`] for a wire-derived
    /// `w_c` whose configuration may not match this stack's.
    ///
    /// # Errors
    ///
    /// [`ConfigMismatch`] when the configurations differ.
    pub fn try_disambiguate(&self, w_c: &Signature) -> Result<Option<usize>, ConfigMismatch> {
        for (i, s) in self.sections.iter().enumerate() {
            if w_c.try_intersects(&s.r)? || w_c.try_intersects(&s.w)? {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// Rolls back section `from` and all later ones, returning how many
    /// sections were discarded. Execution restarts at the beginning of
    /// section `from`, so a fresh section is reopened in its place.
    ///
    /// # Panics
    ///
    /// Panics if `from >= depth()`.
    pub fn rollback_to(&mut self, from: usize) -> usize {
        assert!(from < self.sections.len(), "rollback past stack depth");
        let discarded = self.sections.len() - from;
        self.sections.truncate(from);
        self.begin_section();
        discarded
    }

    /// The union of all sections' write signatures — what the outer
    /// transaction broadcasts at commit.
    pub fn commit_union(&self) -> Signature {
        let mut w = Signature::with_shared(self.config.clone());
        for s in &self.sections {
            w.union_assign(&s.w);
        }
        w
    }

    /// [`SectionStack::commit_union`] with the result buffer drawn from
    /// `arena` — the outer-commit path runs once per broadcast, so the
    /// machines recycle the union buffer instead of allocating it.
    pub fn commit_union_with(&self, arena: &mut SignatureArena) -> Signature {
        let mut w = arena.take();
        for s in &self.sections {
            w.union_assign(&s.w);
        }
        w
    }

    /// The union of the write signatures of sections `from..` — the bulk
    /// invalidation set for a partial rollback.
    ///
    /// # Panics
    ///
    /// Panics if `from >= depth()`.
    pub fn write_union_from(&self, from: usize) -> Signature {
        assert!(from < self.sections.len(), "section index past stack depth");
        let mut w = Signature::with_shared(self.config.clone());
        for s in &self.sections[from..] {
            w.union_assign(&s.w);
        }
        w
    }

    /// [`SectionStack::write_union_from`] with the result buffer drawn from
    /// `arena` (partial rollbacks happen on the squash hot path).
    ///
    /// # Panics
    ///
    /// Panics if `from >= depth()`.
    pub fn write_union_from_with(&self, from: usize, arena: &mut SignatureArena) -> Signature {
        assert!(from < self.sections.len(), "section index past stack depth");
        let mut w = arena.take();
        for s in &self.sections[from..] {
            w.union_assign(&s.w);
        }
        w
    }

    /// The union of all sections' read signatures (used for individual
    /// invalidation checks while nested).
    pub fn read_union(&self) -> Signature {
        let mut r = Signature::with_shared(self.config.clone());
        for s in &self.sections {
            r.union_assign(&s.r);
        }
        r
    }

    /// Clears all sections (outer commit or full squash).
    pub fn clear(&mut self) {
        self.sections.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Arc<SignatureConfig> {
        SignatureConfig::s14_tm().into_shared()
    }

    fn w_of(config: &Arc<SignatureConfig>, addr: u32) -> Signature {
        let mut w = Signature::with_shared(config.clone());
        w.insert_addr(Addr::new(addr));
        w
    }

    #[test]
    fn three_sections_mirror_paper_figure8() {
        let c = cfg();
        let mut tx = SectionStack::new(c.clone());
        tx.begin_section();
        tx.record_store(Addr::new(0x1000)); // W1
        tx.begin_section();
        tx.record_store(Addr::new(0x2000)); // W2
        tx.begin_section();
        tx.record_store(Addr::new(0x3000)); // W3
        assert_eq!(tx.depth(), 3);

        // Violation in section 3 leaves sections 1-2 intact.
        assert_eq!(tx.disambiguate(&w_of(&c, 0x3000)), Some(2));
        tx.rollback_to(2);
        assert_eq!(tx.depth(), 3); // fresh section 3 reopened
        assert!(tx.disambiguate(&w_of(&c, 0x3000)).is_none());
        assert_eq!(tx.disambiguate(&w_of(&c, 0x1000)), Some(0));

        // Outer commit broadcasts W1 ∪ W2 ∪ W3; the rolled-back section's
        // store is gone, so the union is exactly the two surviving inserts
        // (0x3000 may still alias-hit, but its bits are not in the union).
        let u = tx.commit_union();
        assert!(u.contains_addr(Addr::new(0x1000)));
        assert!(u.contains_addr(Addr::new(0x2000)));
        let mut expected = Signature::with_shared(c);
        expected.insert_addr(Addr::new(0x1000));
        expected.insert_addr(Addr::new(0x2000));
        assert_eq!(u, expected);
    }

    #[test]
    fn disambiguate_checks_reads_too() {
        let c = cfg();
        let mut tx = SectionStack::new(c.clone());
        tx.begin_section();
        tx.record_load(Addr::new(0x4000));
        assert_eq!(tx.disambiguate(&w_of(&c, 0x4000)), Some(0));
    }

    #[test]
    fn rollback_of_outermost_discards_everything_but_reopens() {
        let c = cfg();
        let mut tx = SectionStack::new(c);
        tx.begin_section();
        tx.record_store(Addr::new(0x10));
        tx.begin_section();
        assert_eq!(tx.rollback_to(0), 2);
        assert_eq!(tx.depth(), 1);
        assert!(tx.commit_union().is_empty());
    }

    #[test]
    fn read_union_covers_all_sections() {
        let c = cfg();
        let mut tx = SectionStack::new(c);
        tx.begin_section();
        tx.record_load(Addr::new(0x40));
        tx.begin_section();
        tx.record_load(Addr::new(0x80));
        let r = tx.read_union();
        assert!(r.contains_addr(Addr::new(0x40)));
        assert!(r.contains_addr(Addr::new(0x80)));
    }

    #[test]
    #[should_panic(expected = "no open section")]
    fn recording_without_section_panics() {
        SectionStack::new(cfg()).record_load(Addr::new(0));
    }

    #[test]
    fn write_union_from_covers_only_suffix_sections() {
        let c = cfg();
        let mut tx = SectionStack::new(c);
        tx.begin_section();
        tx.record_store(Addr::new(0x1000));
        tx.begin_section();
        tx.record_store(Addr::new(0x2000));
        tx.begin_section();
        tx.record_store(Addr::new(0x3000));
        let suffix = tx.write_union_from(1);
        assert!(suffix.contains_addr(Addr::new(0x2000)));
        assert!(suffix.contains_addr(Addr::new(0x3000)));
        // Exactly sections 1..: equal to the union built by hand.
        let mut expected = Signature::with_shared(tx.commit_union().config().clone());
        expected.insert_addr(Addr::new(0x2000));
        expected.insert_addr(Addr::new(0x3000));
        assert_eq!(suffix, expected);
    }

    #[test]
    #[should_panic(expected = "past stack depth")]
    fn write_union_from_rejects_out_of_range() {
        let mut tx = SectionStack::new(cfg());
        tx.begin_section();
        let _ = tx.write_union_from(1);
    }

    #[test]
    fn clear_resets() {
        let c = cfg();
        let mut tx = SectionStack::new(c);
        tx.begin_section();
        tx.record_store(Addr::new(0x40));
        tx.clear();
        assert!(tx.is_empty());
    }
}
