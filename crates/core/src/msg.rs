//! Typed commit-broadcast bus messages.
//!
//! A committing processor's broadcast is either the conventional address
//! list (eager/lazy baselines, modeled through the exact oracle sets) or a
//! Bulk write signature — carried *structurally* by [`CommitMsg`], sealed
//! with a CRC so in-flight corruption is detected at delivery. The
//! receive-side machines match on the variant instead of unwrapping an
//! `Option<Signature>`.

use bulk_sig::{SealedSignature, Signature};
use std::fmt;

/// What a commit broadcast carries on the bus.
#[derive(Debug, Clone)]
pub enum CommitMsg {
    /// Conventional protocol: the committed write addresses are enumerated
    /// individually (receivers consult the exact oracle sets).
    AddressList,
    /// Bulk protocol: the write signature `W_C`, plus the shadow
    /// signature union for Partial Overlap (paper §6.3) when in use.
    Signatures {
        /// The committed write signature, integrity-sealed.
        w: SealedSignature,
        /// `OR(W_sh)` of the preempted versions, if the scheme keeps
        /// shadow signatures.
        w_sh: Option<SealedSignature>,
    },
}

/// The payload a receiver acts on after opening a
/// [`CommitMsg::Signatures`] frame, with the delivery fault flags folded
/// over both seals.
#[derive(Debug, Clone)]
pub struct DeliveredSignatures {
    /// The committed write signature.
    pub w: Signature,
    /// The shadow-signature union, when the scheme carries one.
    pub w_sh: Option<Signature>,
    /// At least one seal failed its CRC and was repaired by retransmission.
    pub corruption_detected: bool,
    /// At least one seal was corrupted yet passed its CRC (an invariant
    /// violation if it ever happens — CRCs detect all single-bit faults).
    pub silent_corruption: bool,
}

impl CommitMsg {
    /// A Bulk broadcast of `w` with no shadow component.
    pub fn signatures(w: Signature) -> Self {
        CommitMsg::Signatures { w: SealedSignature::seal(w), w_sh: None }
    }

    /// A Bulk broadcast of `w` together with a shadow union `w_sh`.
    pub fn signatures_with_shadow(w: Signature, w_sh: Signature) -> Self {
        CommitMsg::Signatures {
            w: SealedSignature::seal(w),
            w_sh: Some(SealedSignature::seal(w_sh)),
        }
    }

    /// Whether this message carries signatures (and can thus be corrupted
    /// by the chaos harness).
    pub fn carries_signatures(&self) -> bool {
        matches!(self, CommitMsg::Signatures { .. })
    }

    /// Flips one in-flight bit of the write-signature payload. Returns
    /// `false` (no fault possible) for [`CommitMsg::AddressList`].
    pub fn corrupt_bit(&mut self, bit: u64) -> bool {
        match self {
            CommitMsg::AddressList => false,
            CommitMsg::Signatures { w, .. } => {
                w.corrupt_bit(bit);
                true
            }
        }
    }

    /// Opens the frame at the receiver side of the bus. `None` for an
    /// address-list broadcast (nothing sealed to open).
    pub fn deliver(self) -> Option<DeliveredSignatures> {
        match self {
            CommitMsg::AddressList => None,
            CommitMsg::Signatures { w, w_sh } => {
                let w = w.open();
                let (w_sh, sh_detected, sh_silent) = match w_sh.map(SealedSignature::open) {
                    Some(d) => (Some(d.signature), d.corruption_detected, d.silent_corruption),
                    None => (None, false, false),
                };
                Some(DeliveredSignatures {
                    corruption_detected: w.corruption_detected || sh_detected,
                    silent_corruption: w.silent_corruption || sh_silent,
                    w: w.signature,
                    w_sh,
                })
            }
        }
    }
}

/// One entry of a run's committed history: which thread (TM) or task
/// (TLS) committed, its per-thread commit ordinal, and the finish time.
///
/// Both execution substrates — the deterministic sim and the parallel
/// runtime — emit the same event type, which is what makes the
/// cross-runtime conformance check possible: two runs land in the same
/// *committed-order class* when their histories contain the same multiset
/// of `(thread, ordinal)` pairs and both histories pass the
/// serializability auditor. The `at` field is substrate-local time
/// (simulated cycles for the sim, a monotonic bus position for the
/// parallel runtime) and is deliberately excluded from the equivalence
/// relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CommitEvent {
    /// Committing thread (TM) or task index (TLS).
    pub thread: u32,
    /// This thread's commit ordinal (0 for its first commit, 1 for its
    /// second, ...). TLS tasks commit exactly once, so this is 0 there.
    pub ordinal: u64,
    /// Substrate-local completion time: cycles (sim) or bus log position
    /// (parallel runtime). Not part of the committed-order class.
    pub at: u64,
}

impl CommitEvent {
    /// The `(thread, ordinal)` identity used by the committed-order-class
    /// comparison (drops the substrate-local timestamp).
    pub fn identity(&self) -> (u32, u64) {
        (self.thread, self.ordinal)
    }
}

impl fmt::Display for CommitMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitMsg::AddressList => write!(f, "address-list"),
            CommitMsg::Signatures { w_sh: None, .. } => write!(f, "signature"),
            CommitMsg::Signatures { w_sh: Some(_), .. } => write!(f, "signature+shadow"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_mem::Addr;
    use bulk_sig::SignatureConfig;

    fn sig(addrs: &[u32]) -> Signature {
        let mut s = Signature::with_shared(SignatureConfig::s14_tm().into_shared());
        for &a in addrs {
            s.insert_addr(Addr::new(a));
        }
        s
    }

    #[test]
    fn address_list_delivers_nothing() {
        assert!(CommitMsg::AddressList.deliver().is_none());
        assert!(!CommitMsg::AddressList.clone().corrupt_bit(3));
    }

    #[test]
    fn signature_round_trip() {
        let w = sig(&[0x1000, 0x2000]);
        let d = CommitMsg::signatures(w.clone()).deliver().unwrap();
        assert_eq!(d.w, w);
        assert!(d.w_sh.is_none());
        assert!(!d.corruption_detected && !d.silent_corruption);
    }

    #[test]
    fn corrupted_signature_is_detected_and_repaired() {
        let w = sig(&[0x1000, 0x2000]);
        let w_sh = sig(&[0x4000]);
        let mut msg = CommitMsg::signatures_with_shadow(w.clone(), w_sh.clone());
        assert!(msg.corrupt_bit(123));
        let d = msg.deliver().unwrap();
        assert!(d.corruption_detected);
        assert!(!d.silent_corruption);
        assert_eq!(d.w, w);
        assert_eq!(d.w_sh.unwrap(), w_sh);
    }
}
