//! Projection of explored interleaving classes onto real-machine fault
//! schedules.
//!
//! The model's adversary controls more than the machines expose: it picks
//! bus-grant order and interleaves per-receiver deliveries, while the TM
//! and TLS machines arbitrate commits themselves and deliver a broadcast's
//! rounds atomically. What *does* project faithfully is the per-broadcast
//! fault pattern — how many arbiter crashes hit each broadcast and whether
//! the interconnect duplicated it. Every quiescent model execution is
//! therefore classified by its [`FaultEntry`] pattern, and each class
//! becomes one deterministic [`ScheduleScript`] the machines replay. The
//! conformance tests then assert the machine-observable outcomes the model
//! predicts for that class: every commit applied exactly once, dedup drops
//! equal to the class's extra delivery rounds, one epoch re-election and
//! one replay per crash, and a byte-identical metrics snapshot per script.

use std::collections::BTreeSet;

use bulk_chaos::{BroadcastSchedule, ScheduleScript};

use crate::model::FaultEntry;

/// The machine-checkable predictions the model makes for one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassExpectation {
    /// The schedule realizing the class.
    pub script: ScheduleScript,
    /// Arbiter crashes (= epoch re-elections = failover replays).
    pub crashes: u64,
    /// Duplicated deliveries the interconnect injects.
    pub duplicates: u64,
    /// Receiver-side dedup drops: one per delivery round beyond the
    /// first admitted one.
    pub dedup_drops: u64,
}

/// Converts one model fault pattern into a machine schedule.
pub fn schedule_for_class(pattern: &[FaultEntry]) -> ScheduleScript {
    ScheduleScript::from_pattern(
        pattern
            .iter()
            .map(|e| BroadcastSchedule {
                denials: 0,
                delay: 0,
                duplicate: e.dup,
                crashes: u32::from(e.crashes),
            })
            .collect(),
    )
}

/// Converts every explored class into a schedule plus its predicted
/// machine-observable outcome, in deterministic class order.
pub fn expectations(classes: &BTreeSet<Vec<FaultEntry>>) -> Vec<ClassExpectation> {
    classes
        .iter()
        .map(|pattern| {
            let script = schedule_for_class(pattern);
            ClassExpectation {
                crashes: script.total_crashes(),
                duplicates: script.total_duplicates(),
                dedup_drops: script.expected_dedup_drops(),
                script,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::model::ModelConfig;

    #[test]
    fn exhaustive_classes_project_to_distinct_labelled_schedules() {
        let report = explore(ModelConfig::exhaustive());
        assert!(report.passed(), "{}", report.summary());
        let exps = expectations(&report.classes);
        assert_eq!(exps.len(), report.classes.len());
        let names: BTreeSet<&str> =
            exps.iter().map(|e| e.script.name.as_str()).collect();
        assert_eq!(names.len(), exps.len(), "class labels must be unique");
        // The quiet class and at least one crash-during-replay class
        // (two crashes on one broadcast) must be present.
        assert!(names.contains("-.-.-"));
        assert!(exps.iter().any(|e| e.script.broadcasts.iter().any(|b| b.crashes >= 2)));
    }

    #[test]
    fn expectation_arithmetic_matches_the_schedule() {
        let pattern = vec![
            FaultEntry { crashes: 2, dup: true },
            FaultEntry::default(),
            FaultEntry { crashes: 0, dup: true },
        ];
        let exp = &expectations(&BTreeSet::from([pattern]))[0];
        assert_eq!(exp.crashes, 2);
        assert_eq!(exp.duplicates, 2);
        // Broadcast 0: 2 replays + 1 dup = 3 drops; broadcast 2: 1 drop.
        assert_eq!(exp.dedup_drops, 4);
        assert_eq!(exp.script.name, "c2+dup.-.c0+dup");
    }
}
