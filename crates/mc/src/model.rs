//! The compact state machine of the commit/arbiter-failover protocol.
//!
//! The model abstracts the TM/TLS machines down to the distributed
//! protocol the liveness engine implements (DESIGN.md §9): processors
//! that each broadcast a bounded number of commits, a single bus the
//! arbiter grants one current-epoch broadcast at a time, arbiter crashes
//! that advance the epoch and replay the in-flight message under the new
//! stamp, interconnect duplication, and receiver-side `(committer,
//! serial)` dedup. Unlike the machines — where a broadcast's delivery
//! rounds are atomic — the model delivers **per receiver**, so a crash
//! can strand a half-delivered message, its stale copy can drain
//! concurrently with the next epoch's broadcasts (two distinct commits
//! genuinely in flight), and every interleaving of those deliveries is a
//! distinct schedule.
//!
//! The correct protocol relies on three mechanisms, each of which a
//! [`Mutation`] can break:
//!
//! 1. **Receiver dedup on `(committer, serial)`** — a ticket's W_C is
//!    applied at most once however many copies arrive.
//! 2. **Replay re-stamping** — the failover arbiter replays the in-flight
//!    message stamped with the *new* epoch, so it passes the fence below.
//! 3. **Epoch fencing** — receivers drop deliveries stamped with a dead
//!    epoch (the lease-safety rule), so a stale copy draining after
//!    re-election can never interleave its applications with the new
//!    epoch's broadcasts.
//!
//! Checked properties:
//!
//! * **Exactly-once** — no receiver ever applies one ticket's W_C twice
//!   (checked eagerly at every apply).
//! * **Serializability** — all receivers apply commits in one total
//!   order (checked eagerly as pairwise prefix consistency).
//! * **No lost commits** — at quiescence every granted ticket has been
//!   applied by every receiver, crashes or not.

use std::collections::BTreeSet;
use std::fmt;

use crate::mutation::Mutation;

/// A commit's identity: `(committer, serial)` — what receiver dedup keys
/// on, and what must be applied exactly once everywhere.
pub type Ticket = (u8, u8);

/// Model bounds. State-space size is a function of these; the documented
/// exhaustive configuration is `procs: 3, commits_per_proc: 1,
/// max_crashes: 2, max_dups: 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Processors (2..=8; receiver sets are `u8` bitmasks).
    pub procs: u8,
    /// Commit broadcasts each processor performs.
    pub commits_per_proc: u8,
    /// Total arbiter crashes the adversary may inject (each must hit a
    /// broadcast mid-flight, like the machines' `arbiter_crash` fault).
    pub max_crashes: u8,
    /// Duplicated deliveries the interconnect may inject per broadcast.
    pub max_dups: u8,
    /// The protocol bug under test ([`Mutation::None`] = correct).
    pub mutation: Mutation,
}

impl ModelConfig {
    /// The documented exhaustive bounds: 3 processors, 1 commit each,
    /// 2 arbiter crashes (enabling crash-during-replay), 1 duplication
    /// per broadcast.
    pub fn exhaustive() -> Self {
        ModelConfig {
            procs: 3,
            commits_per_proc: 1,
            max_crashes: 2,
            max_dups: 1,
            mutation: Mutation::None,
        }
    }

    /// The same bounds under `mutation`.
    pub fn mutated(mutation: Mutation) -> Self {
        ModelConfig { mutation, ..ModelConfig::exhaustive() }
    }

    /// Total broadcasts a complete execution performs.
    pub fn total_commits(&self) -> u16 {
        u16::from(self.procs) * u16::from(self.commits_per_proc)
    }

    fn validate(&self) {
        assert!((2..=8).contains(&self.procs), "procs must be 2..=8");
        assert!(self.commits_per_proc >= 1, "need at least one commit per proc");
    }
}

/// One in-flight copy of a commit broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Msg {
    /// Committing processor.
    pub committer: u8,
    /// The committer's transaction serial.
    pub serial: u8,
    /// Epoch stamped at grant (or re-stamp) time.
    pub epoch: u8,
    /// Broadcast index in bus-grant order (for fault-pattern attribution).
    pub bindex: u8,
    /// Bitmask of receivers this copy has reached.
    pub delivered: u8,
    /// Interconnect duplications left for this copy.
    pub dups_left: u8,
    /// Whether this copy is a failover replay.
    pub replay: bool,
}

impl Msg {
    /// The commit identity this copy carries.
    pub fn ticket(&self) -> Ticket {
        (self.committer, self.serial)
    }

    /// Stable key identifying this copy in an [`Action`]: `(committer,
    /// serial, epoch, replay)` is unique among concurrently in-flight
    /// copies (replays are re-stamped; a non-re-stamped replay chain is
    /// cut off after one crash because no current-epoch copy remains).
    pub fn key(&self) -> (u8, u8, u8, bool) {
        (self.committer, self.serial, self.epoch, self.replay)
    }
}

/// The faults one broadcast absorbed — the unit of the interleaving-class
/// projection the conformance layer replays onto the machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultEntry {
    /// Arbiter crashes during this broadcast (1 = crash mid-broadcast,
    /// 2 = crash-during-replay as well).
    pub crashes: u8,
    /// Whether the interconnect duplicated a delivery of this broadcast.
    pub dup: bool,
}

/// One protocol state. `Ord`/`Hash` give the explorer exact state dedup.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State {
    /// Commits each processor has yet to start.
    pub remaining: Vec<u8>,
    /// Current arbiter epoch.
    pub epoch: u8,
    /// Current arbiter leader (rotates on crash).
    pub leader: u8,
    /// Crashes injected so far.
    pub crashes: u8,
    /// In-flight message copies, in creation order.
    pub inflight: Vec<Msg>,
    /// Per-receiver dedup filter contents (identity keys admitted).
    pub seen: Vec<BTreeSet<(u8, u8, u8)>>,
    /// Per-receiver applied commit order — the committed order each
    /// processor observed.
    pub order: Vec<Vec<Ticket>>,
    /// Per-broadcast fault attribution, indexed by grant order.
    pub pattern: Vec<FaultEntry>,
}

impl State {
    /// The initial state for `cfg`.
    pub fn initial(cfg: &ModelConfig) -> Self {
        cfg.validate();
        let p = usize::from(cfg.procs);
        State {
            remaining: vec![cfg.commits_per_proc; p],
            epoch: 0,
            leader: 0,
            crashes: 0,
            inflight: Vec::new(),
            seen: vec![BTreeSet::new(); p],
            order: vec![Vec::new(); p],
            pattern: Vec::new(),
        }
    }

    /// Whether every broadcast has started and every copy has drained.
    pub fn quiescent(&self) -> bool {
        self.inflight.is_empty() && self.remaining.iter().all(|&r| r == 0)
    }

    /// Number of *distinct commits* currently in flight (stale copies of
    /// an old epoch count: after a failover the previous broadcast's
    /// orphan can drain concurrently with the new epoch's broadcast).
    pub fn inflight_commits(&self) -> usize {
        self.inflight.iter().map(Msg::ticket).collect::<BTreeSet<_>>().len()
    }

    fn current_epoch_msg(&self) -> Option<usize> {
        self.inflight.iter().position(|m| m.epoch == self.epoch)
    }
}

/// One transition of the model. Message-bearing actions name the copy by
/// its stable [`Msg::key`], so a recorded trace replays against a fresh
/// model without relying on internal indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// The arbiter grants the bus to `proc`'s next commit.
    Grant {
        /// Committing processor.
        proc: u8,
    },
    /// The copy `msg` reaches receiver `to` for the first time.
    Deliver {
        /// Key of the in-flight copy ([`Msg::key`]).
        msg: (u8, u8, u8, bool),
        /// Receiving processor.
        to: u8,
    },
    /// The interconnect re-delivers the copy `msg` to `to`.
    Duplicate {
        /// Key of the in-flight copy ([`Msg::key`]).
        msg: (u8, u8, u8, bool),
        /// Receiving processor.
        to: u8,
    },
    /// The arbiter crashes mid-broadcast; the epoch advances, leadership
    /// rotates, and the in-flight message is replayed under the new stamp.
    Crash,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |k: &(u8, u8, u8, bool)| {
            format!(
                "{}({},{})@e{}",
                if k.3 { "replay" } else { "commit" },
                k.0,
                k.1,
                k.2
            )
        };
        match self {
            Action::Grant { proc } => write!(f, "grant bus to proc {proc}"),
            Action::Deliver { msg, to } => write!(f, "deliver {} -> proc {to}", name(msg)),
            Action::Duplicate { msg, to } => {
                write!(f, "duplicate {} -> proc {to}", name(msg))
            }
            Action::Crash => write!(f, "arbiter crashes; epoch++, replay in-flight"),
        }
    }
}

/// A property the protocol violated, with enough context to read the
/// counterexample without the state dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Receiver `receiver` applied `ticket`'s W_C a second time.
    DuplicateApplication {
        /// The twice-applied commit.
        ticket: Ticket,
        /// The receiver that applied it twice.
        receiver: u8,
    },
    /// Two receivers applied the same two commits in opposite orders.
    OrderDivergence {
        /// First commit of the conflicting pair.
        a: Ticket,
        /// Second commit of the conflicting pair.
        b: Ticket,
        /// Receiver that applied `a` before `b`.
        r1: u8,
        /// Receiver that applied `b` before `a`.
        r2: u8,
    },
    /// At quiescence, `receiver` never applied `ticket`'s W_C.
    LostCommit {
        /// The commit that was lost.
        ticket: Ticket,
        /// The receiver that never applied it.
        receiver: u8,
    },
    /// Work remains but no action is enabled (must be unreachable).
    Stuck,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateApplication { ticket, receiver } => write!(
                f,
                "exactly-once violated: proc {receiver} applied W_C of commit \
                 ({},{}) twice",
                ticket.0, ticket.1
            ),
            Violation::OrderDivergence { a, b, r1, r2 } => write!(
                f,
                "serializability violated: proc {r1} committed ({},{}) before \
                 ({},{}) but proc {r2} saw the opposite order",
                a.0, a.1, b.0, b.1
            ),
            Violation::LostCommit { ticket, receiver } => write!(
                f,
                "commit lost across re-election: proc {receiver} never applied \
                 W_C of commit ({},{})",
                ticket.0, ticket.1
            ),
            Violation::Stuck => write!(f, "deadlock: work remains but nothing is enabled"),
        }
    }
}

/// The protocol model: applies [`Action`]s to [`State`]s under the
/// configured bounds and mutation.
#[derive(Debug, Clone, Copy)]
pub struct Model {
    cfg: ModelConfig,
}

impl Model {
    /// A model over `cfg`.
    pub fn new(cfg: ModelConfig) -> Self {
        cfg.validate();
        Model { cfg }
    }

    /// The bounds in force.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The initial state.
    pub fn initial(&self) -> State {
        State::initial(&self.cfg)
    }

    /// All enabled actions of `state`, in deterministic order.
    pub fn enabled(&self, state: &State) -> Vec<Action> {
        let mut out = Vec::new();
        // Grant: the bus is free when no current-epoch copy is in flight.
        // (Stale copies of dead epochs may still be draining.)
        if state.current_epoch_msg().is_none() {
            for p in 0..self.cfg.procs {
                if state.remaining[usize::from(p)] > 0 {
                    out.push(Action::Grant { proc: p });
                }
            }
        }
        for m in &state.inflight {
            for r in 0..self.cfg.procs {
                if r == m.committer {
                    continue;
                }
                let bit = 1u8 << r;
                if m.delivered & bit == 0 {
                    out.push(Action::Deliver { msg: m.key(), to: r });
                } else if m.dups_left > 0 {
                    out.push(Action::Duplicate { msg: m.key(), to: r });
                }
            }
        }
        // Crash: only mid-broadcast, like the machines' fault hook.
        if state.crashes < self.cfg.max_crashes && state.current_epoch_msg().is_some() {
            out.push(Action::Crash);
        }
        out
    }

    /// Applies `action` to a copy of `state`; returns the successor and
    /// the violation the step exposed, if any.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not enabled in `state` (the explorer only
    /// applies enabled actions; [`Model::replay`] validates first).
    pub fn apply(&self, state: &State, action: Action) -> (State, Option<Violation>) {
        let mut s = state.clone();
        let violation = match action {
            Action::Grant { proc } => {
                let p = usize::from(proc);
                assert!(s.remaining[p] > 0, "grant for a finished proc");
                assert!(s.current_epoch_msg().is_none(), "bus is occupied");
                let serial = self.cfg.commits_per_proc - s.remaining[p];
                s.remaining[p] -= 1;
                let bindex = s.pattern.len() as u8;
                s.pattern.push(FaultEntry::default());
                s.inflight.push(Msg {
                    committer: proc,
                    serial,
                    epoch: s.epoch,
                    bindex,
                    delivered: 0,
                    dups_left: self.cfg.max_dups,
                    replay: false,
                });
                None
            }
            Action::Deliver { msg, to } => {
                let mi = self.find_msg(&s, msg);
                assert!(s.inflight[mi].delivered & (1 << to) == 0, "already delivered");
                s.inflight[mi].delivered |= 1 << to;
                let v = self.receive(&mut s, mi, to);
                self.retire_if_drained(&mut s, mi);
                v
            }
            Action::Duplicate { msg, to } => {
                let mi = self.find_msg(&s, msg);
                assert!(s.inflight[mi].dups_left > 0, "no duplication budget left");
                assert!(s.inflight[mi].delivered & (1 << to) != 0, "nothing to duplicate");
                s.inflight[mi].dups_left -= 1;
                let v = self.receive(&mut s, mi, to);
                if s.pattern.is_empty() {
                    unreachable!("duplicate before any grant");
                }
                let bi = usize::from(s.inflight[mi].bindex);
                s.pattern[bi].dup = true;
                v
            }
            Action::Crash => {
                let mi = s.current_epoch_msg().expect("crash requires an in-flight broadcast");
                s.crashes += 1;
                s.epoch += 1;
                s.leader = (s.leader + 1) % self.cfg.procs;
                let m = s.inflight[mi];
                s.pattern[usize::from(m.bindex)].crashes += 1;
                match self.cfg.mutation {
                    // The crashed arbiter's successor forgets the
                    // in-flight message entirely.
                    Mutation::SkipReplay => {}
                    // The replay goes out under the dead epoch's stamp:
                    // every receiver fences it.
                    Mutation::ReplayWithoutRestamp => {
                        s.inflight.push(Msg {
                            epoch: m.epoch,
                            delivered: 0,
                            dups_left: 0,
                            replay: true,
                            ..m
                        });
                    }
                    _ => {
                        s.inflight.push(Msg {
                            epoch: s.epoch,
                            delivered: 0,
                            dups_left: 0,
                            replay: true,
                            ..m
                        });
                    }
                }
                None
            }
        };
        (s, violation)
    }

    /// Checks a quiescent state for lost commits. Returns the first loss
    /// in deterministic order, if any.
    pub fn check_quiescent(&self, state: &State) -> Option<Violation> {
        debug_assert!(state.quiescent());
        for p in 0..self.cfg.procs {
            for serial in 0..self.cfg.commits_per_proc {
                let ticket = (p, serial);
                for r in 0..self.cfg.procs {
                    if r == p {
                        continue;
                    }
                    if !state.order[usize::from(r)].contains(&ticket) {
                        return Some(Violation::LostCommit { ticket, receiver: r });
                    }
                }
            }
        }
        None
    }

    /// Replays a recorded trace from the initial state, validating that
    /// each action is enabled. Returns the violation the final step
    /// exposes (including the quiescence check), or `None` if the trace
    /// ends violation-free — used to certify counterexamples.
    pub fn replay(&self, trace: &[Action]) -> Result<Option<Violation>, String> {
        let mut state = self.initial();
        for (i, &action) in trace.iter().enumerate() {
            if !self.enabled(&state).contains(&action) {
                return Err(format!("step {i}: `{action}` is not enabled"));
            }
            let (next, violation) = self.apply(&state, action);
            if let Some(v) = violation {
                if i + 1 != trace.len() {
                    return Err(format!("step {i}: early violation `{v}`"));
                }
                return Ok(Some(v));
            }
            state = next;
        }
        if state.quiescent() {
            return Ok(self.check_quiescent(&state));
        }
        Ok(None)
    }

    fn find_msg(&self, state: &State, key: (u8, u8, u8, bool)) -> usize {
        state
            .inflight
            .iter()
            .position(|m| m.key() == key)
            .expect("action names an in-flight copy")
    }

    /// Receiver logic for one delivery of `state.inflight[mi]` at `to`:
    /// epoch fence, dedup, then apply + eager property checks.
    fn receive(&self, state: &mut State, mi: usize, to: u8) -> Option<Violation> {
        let m = state.inflight[mi];
        // Lease safety: deliveries stamped by a dead epoch are fenced.
        if m.epoch < state.epoch && self.cfg.mutation != Mutation::NoFencing {
            return None;
        }
        // Receiver dedup. The correct identity is (committer, serial);
        // the StaleEpochApply mutation wrongly folds the stamp into the
        // identity, so a re-stamped replay reads as a fresh commit.
        let identity = match self.cfg.mutation {
            Mutation::StaleEpochApply => (m.committer, m.serial, m.epoch),
            _ => (m.committer, m.serial, 0),
        };
        let r = usize::from(to);
        if self.cfg.mutation != Mutation::SkipDedup && !state.seen[r].insert(identity) {
            return None;
        }
        if self.cfg.mutation == Mutation::SkipDedup {
            state.seen[r].insert(identity);
        }
        // Apply W_C.
        let ticket = m.ticket();
        state.order[r].push(ticket);
        if state.order[r].iter().filter(|t| **t == ticket).count() > 1 {
            return Some(Violation::DuplicateApplication { ticket, receiver: to });
        }
        // Eager pairwise order consistency: every commit this receiver
        // applied before `ticket` must precede it everywhere else too.
        for &a in state.order[r].iter().take(state.order[r].len() - 1) {
            for q in 0..state.order.len() {
                if q == r {
                    continue;
                }
                let o = &state.order[q];
                let pa = o.iter().position(|t| *t == a);
                let pb = o.iter().position(|t| *t == ticket);
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    if pb < pa {
                        return Some(Violation::OrderDivergence {
                            a,
                            b: ticket,
                            r1: to,
                            r2: q as u8,
                        });
                    }
                }
            }
        }
        None
    }

    fn retire_if_drained(&self, state: &mut State, mi: usize) {
        let m = state.inflight[mi];
        let mut all = 0u8;
        for r in 0..self.cfg.procs {
            if r != m.committer {
                all |= 1 << r;
            }
        }
        if m.delivered == all {
            state.inflight.remove(mi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Model {
        Model::new(ModelConfig::exhaustive())
    }

    #[test]
    fn initial_state_is_not_quiescent_and_grants_are_enabled() {
        let m = model();
        let s0 = m.initial();
        assert!(!s0.quiescent());
        let enabled = m.enabled(&s0);
        assert_eq!(
            enabled,
            vec![
                Action::Grant { proc: 0 },
                Action::Grant { proc: 1 },
                Action::Grant { proc: 2 }
            ]
        );
    }

    #[test]
    fn happy_path_commits_exactly_once_everywhere() {
        let m = model();
        let mut s = m.initial();
        for p in 0..3u8 {
            let (next, v) = m.apply(&s, Action::Grant { proc: p });
            s = next;
            assert_eq!(v, None);
            let key = (p, 0, s.epoch, false);
            for r in (0..3u8).filter(|r| *r != p) {
                let (next, v) = m.apply(&s, Action::Deliver { msg: key, to: r });
                s = next;
                assert_eq!(v, None);
            }
        }
        assert!(s.quiescent());
        assert_eq!(m.check_quiescent(&s), None);
        assert_eq!(s.order[1], vec![(0, 0), (2, 0)]);
    }

    #[test]
    fn crash_replays_under_the_new_epoch_and_dedup_drops_the_second_copy() {
        let m = model();
        let mut s = m.initial();
        s = m.apply(&s, Action::Grant { proc: 0 }).0;
        // Receiver 1 gets the original pre-crash.
        s = m.apply(&s, Action::Deliver { msg: (0, 0, 0, false), to: 1 }).0;
        let (next, v) = m.apply(&s, Action::Crash);
        s = next;
        assert_eq!(v, None);
        assert_eq!((s.epoch, s.leader, s.crashes), (1, 1, 1));
        assert_eq!(s.inflight.len(), 2, "original (stale) + re-stamped replay");
        assert_eq!(s.inflight_commits(), 1);
        // The replay reaches both receivers: 1 dedups, 2 applies.
        let (next, v) = m.apply(&s, Action::Deliver { msg: (0, 0, 1, true), to: 1 });
        s = next;
        assert_eq!(v, None);
        let (next, v) = m.apply(&s, Action::Deliver { msg: (0, 0, 1, true), to: 2 });
        s = next;
        assert_eq!(v, None);
        // The stale original drains to receiver 2: fenced, not applied.
        let (next, v) = m.apply(&s, Action::Deliver { msg: (0, 0, 0, false), to: 2 });
        s = next;
        assert_eq!(v, None);
        assert_eq!(s.order[1], vec![(0, 0)]);
        assert_eq!(s.order[2], vec![(0, 0)]);
        assert_eq!(s.pattern[0], FaultEntry { crashes: 1, dup: false });
    }

    #[test]
    fn stale_drain_allows_two_distinct_commits_in_flight() {
        let m = model();
        let mut s = m.initial();
        s = m.apply(&s, Action::Grant { proc: 0 }).0;
        s = m.apply(&s, Action::Crash).0;
        // Replay fully delivers; the stale original has not drained.
        s = m.apply(&s, Action::Deliver { msg: (0, 0, 1, true), to: 1 }).0;
        s = m.apply(&s, Action::Deliver { msg: (0, 0, 1, true), to: 2 }).0;
        // Bus is free (no current-epoch copy): proc 1 is granted while the
        // stale copy of proc 0's commit is still in flight.
        s = m.apply(&s, Action::Grant { proc: 1 }).0;
        assert_eq!(s.inflight_commits(), 2);
    }

    #[test]
    fn replay_certifies_a_recorded_trace() {
        let m = Model::new(ModelConfig::mutated(Mutation::StaleEpochApply));
        let trace = vec![
            Action::Grant { proc: 0 },
            Action::Deliver { msg: (0, 0, 0, false), to: 1 },
            Action::Crash,
            Action::Deliver { msg: (0, 0, 1, true), to: 1 },
        ];
        let v = m.replay(&trace).expect("trace is well-formed");
        assert_eq!(
            v,
            Some(Violation::DuplicateApplication { ticket: (0, 0), receiver: 1 })
        );
        // The same trace is violation-free on the correct protocol.
        assert_eq!(model().replay(&trace), Ok(None));
    }

    #[test]
    fn replay_rejects_disabled_actions() {
        let m = model();
        let err = m
            .replay(&[Action::Crash])
            .expect_err("crash with nothing in flight is not enabled");
        assert!(err.contains("not enabled"), "{err}");
    }
}
