//! Seeded protocol bugs: the model checker's teeth.
//!
//! A checker that has never failed proves nothing. Each [`Mutation`]
//! disables exactly one of the protocol's defense mechanisms; the
//! mutation suite asserts that the explorer produces a minimal
//! counterexample for every seeded bug while the unmutated protocol
//! passes exhaustively at the same bounds. [`Mutation::NoFencing`] is the
//! deliberate exception: it removes a mechanism the other two layers make
//! redundant at these bounds, and the suite asserts *no* counterexample —
//! the model proving a redundancy instead of a bug.

use std::fmt;

/// A protocol bug injected into the model's transition relation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mutation {
    /// The correct protocol.
    #[default]
    None,
    /// Receivers apply every delivery without consulting the
    /// `(committer, serial)` dedup filter. Any duplicated or replayed
    /// delivery then applies a W_C twice — the bug the liveness engine's
    /// `DedupFilter` exists to prevent.
    SkipDedup,
    /// Receivers fold the epoch stamp into the dedup identity
    /// (`(committer, serial, epoch)` instead of `(committer, serial)`).
    /// A failover replay is re-stamped with the new epoch, so a receiver
    /// that already applied the original treats the replay as a fresh
    /// commit and applies the stale epoch's W_C again.
    StaleEpochApply,
    /// The failover arbiter replays the in-flight message without
    /// re-stamping it. The replay carries the dead epoch, every receiver
    /// fences it, and receivers the original never reached lose the
    /// commit.
    ReplayWithoutRestamp,
    /// The failover arbiter forgets the in-flight message entirely:
    /// receivers the original never reached lose the commit.
    SkipReplay,
    /// Receivers apply deliveries stamped by dead epochs instead of
    /// fencing them. At these bounds this is *safe* — bus serialization
    /// plus dedup mask it — and the suite asserts the explorer finds no
    /// counterexample, demonstrating a discharged redundancy.
    NoFencing,
}

impl Mutation {
    /// The seeded bugs, each of which must yield a counterexample.
    pub fn seeded_bugs() -> [Mutation; 4] {
        [
            Mutation::SkipDedup,
            Mutation::StaleEpochApply,
            Mutation::ReplayWithoutRestamp,
            Mutation::SkipReplay,
        ]
    }

    /// Stable kebab-case name (CLI argument and artifact file names).
    pub fn as_str(&self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipDedup => "skip-dedup",
            Mutation::StaleEpochApply => "stale-epoch-apply",
            Mutation::ReplayWithoutRestamp => "replay-without-restamp",
            Mutation::SkipReplay => "skip-replay",
            Mutation::NoFencing => "no-fencing",
        }
    }

    /// Parses a kebab-case mutation name.
    pub fn parse(s: &str) -> Option<Mutation> {
        Some(match s {
            "none" => Mutation::None,
            "skip-dedup" => Mutation::SkipDedup,
            "stale-epoch-apply" => Mutation::StaleEpochApply,
            "replay-without-restamp" => Mutation::ReplayWithoutRestamp,
            "skip-replay" => Mutation::SkipReplay,
            "no-fencing" => Mutation::NoFencing,
            _ => return None,
        })
    }

    /// Whether the suite expects the explorer to find a counterexample.
    pub fn expects_counterexample(&self) -> bool {
        !matches!(self, Mutation::None | Mutation::NoFencing)
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in [
            Mutation::None,
            Mutation::SkipDedup,
            Mutation::StaleEpochApply,
            Mutation::ReplayWithoutRestamp,
            Mutation::SkipReplay,
            Mutation::NoFencing,
        ] {
            assert_eq!(Mutation::parse(m.as_str()), Some(m));
        }
        assert_eq!(Mutation::parse("bogus"), None);
    }

    #[test]
    fn seeded_bugs_all_expect_counterexamples() {
        assert!(Mutation::seeded_bugs().iter().all(Mutation::expects_counterexample));
        assert!(!Mutation::None.expects_counterexample());
        assert!(!Mutation::NoFencing.expects_counterexample());
    }
}
