//! `mc_explore` — the CI entry point of the protocol model checker.
//!
//! Default run: explore the documented exhaustive bounds with the correct
//! protocol (must pass), then run the mutation suite (every seeded bug
//! must yield a minimal certified counterexample; `no-fencing` must NOT,
//! demonstrating a discharged redundancy). Counterexample traces are
//! written to `--out <dir>` as `counterexample-<mutation>.txt` so CI can
//! upload them as artifacts. Exits 1 if the unmutated protocol fails or a
//! seeded bug escapes detection, 2 on bad invocation.
//!
//! `--smoke` explores a reduced configuration (2 procs, 1 crash) at a
//! small depth bound plus a single mutation — the sub-second check
//! `scripts/verify.sh` runs.

use std::path::PathBuf;
use std::process::ExitCode;

use bulk_mc::{explore, explore_bounded, ExploreReport, ModelConfig, Mutation};

const USAGE: &str = "\
mc_explore — exhaustive model checking of the Bulk commit/failover protocol

USAGE:
  mc_explore [--smoke] [--mutation <name>] [--out <dir>]
             [--procs <n>] [--commits <n>] [--crashes <n>] [--dups <n>]
             [--max-depth <n>]

  Default: exhaustive bounds (3 procs, 1 commit each, 2 crashes, 1 dup)
  with the correct protocol, then the full mutation suite.

  --smoke            reduced bounds + depth cap + one mutation (fast gate)
  --mutation <name>  check only this mutation (none | skip-dedup |
                     stale-epoch-apply | replay-without-restamp |
                     skip-replay | no-fencing)
  --out <dir>        write counterexample-<mutation>.txt artifacts here
  --procs/--commits/--crashes/--dups  override the bounds
  --max-depth <n>    bound exploration depth (reports TRUNCATED)
";

struct Args {
    smoke: bool,
    only: Option<Mutation>,
    out: Option<PathBuf>,
    cfg: ModelConfig,
    max_depth: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        only: None,
        out: None,
        cfg: ModelConfig::exhaustive(),
        max_depth: usize::MAX,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("flag {flag} needs a value"));
        let num = |v: String, what: &str| -> Result<u8, String> {
            v.parse().map_err(|_| format!("{what}: bad number `{v}`"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--mutation" => {
                let v = value()?;
                args.only =
                    Some(Mutation::parse(&v).ok_or(format!("unknown mutation `{v}`"))?);
            }
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--procs" => args.cfg.procs = num(value()?, "--procs")?,
            "--commits" => args.cfg.commits_per_proc = num(value()?, "--commits")?,
            "--crashes" => args.cfg.max_crashes = num(value()?, "--crashes")?,
            "--dups" => args.cfg.max_dups = num(value()?, "--dups")?,
            "--max-depth" => {
                let v = value()?;
                args.max_depth =
                    v.parse().map_err(|_| format!("--max-depth: bad number `{v}`"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.smoke {
        args.cfg.procs = 2;
        args.cfg.max_crashes = 1;
        args.max_depth = args.max_depth.min(16);
    }
    Ok(args)
}

fn run_one(cfg: ModelConfig, max_depth: usize, out: Option<&PathBuf>) -> (ExploreReport, bool) {
    let mutation = cfg.mutation;
    let report = if max_depth == usize::MAX {
        explore(cfg)
    } else {
        explore_bounded(cfg, max_depth)
    };
    let expect_cx = mutation.expects_counterexample();
    let ok = report.passed() != expect_cx;
    let verdict = match (report.passed(), expect_cx) {
        (true, false) => "PASS (no violation, as required)",
        (false, true) => "PASS (seeded bug caught)",
        (true, true) => "FAIL (seeded bug escaped detection)",
        (false, false) => "FAIL (correct protocol violated a property)",
    };
    println!("[{mutation}] {} — {verdict}", report.summary());
    if let Some(cx) = &report.counterexample {
        println!("  minimal counterexample ({} steps):", cx.trace.len());
        print!("{}", cx.render());
        if let Some(dir) = out {
            let path = dir.join(format!("counterexample-{mutation}.txt"));
            let body = format!(
                "mutation: {mutation}\nbounds: {:?}\nsummary: {}\n\n{}",
                report.config,
                report.summary(),
                cx.render()
            );
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, body))
            {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  wrote {}", path.display());
            }
        }
    }
    (report, ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mutations: Vec<Mutation> = match args.only {
        Some(m) => vec![m],
        // With 2 procs a fully-delivered broadcast retires before the
        // interconnect can duplicate it, so the smoke bug must be a
        // crash-path one: skip-replay loses a commit at depth ~5.
        None if args.smoke => vec![Mutation::None, Mutation::SkipReplay],
        None => {
            let mut all = vec![Mutation::None];
            all.extend(Mutation::seeded_bugs());
            all.push(Mutation::NoFencing);
            all
        }
    };

    let mut failed = false;
    for mutation in mutations {
        let cfg = ModelConfig { mutation, ..args.cfg };
        let (_, ok) = run_one(cfg, args.max_depth, args.out.as_ref());
        failed |= !ok;
    }
    if failed {
        eprintln!("mc_explore: FAIL");
        ExitCode::FAILURE
    } else {
        println!("mc_explore: all checks passed");
        ExitCode::SUCCESS
    }
}
