//! Exhaustive breadth-first interleaving explorer with exact state dedup.
//!
//! The explorer enumerates every reachable interleaving of the protocol
//! model under the configured bounds: a frontier of distinct states is
//! expanded level by level, successors are deduplicated against a hash
//! map of every state seen so far, and parent links record the first
//! (therefore shortest) path to each state. Because expansion is
//! breadth-first, the first violation encountered sits at minimal depth —
//! the reconstructed trace is a *minimal counterexample*, which
//! [`Model::replay`] then certifies against a fresh model before it is
//! reported.
//!
//! Quiescent states (all broadcasts granted, all copies drained) are
//! additionally checked for lost commits, and their per-broadcast fault
//! attribution is collected into the set of **interleaving classes**:
//! the distinct `(crashes, duplicated)` patterns the adversary realized,
//! which the conformance layer replays onto the real machines.

use std::collections::{BTreeSet, HashMap};

use crate::model::{Action, FaultEntry, Model, ModelConfig, State, Violation};

/// A certified minimal violating execution.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated property.
    pub violation: Violation,
    /// The shortest action sequence reaching it, from the initial state.
    pub trace: Vec<Action>,
}

impl Counterexample {
    /// Renders the trace as numbered steps with the violation last —
    /// the artifact format the CI job uploads.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, a) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {:>2}. {a}\n", i + 1));
        }
        out.push_str(&format!("  => {}\n", self.violation));
        out
    }
}

/// What an exhaustive exploration found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The bounds explored.
    pub config: ModelConfig,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (edges of the reachable graph).
    pub transitions: usize,
    /// Distinct quiescent (fully drained) states reached.
    pub quiescent: usize,
    /// Depth of the deepest state (longest shortest-path).
    pub max_depth: usize,
    /// Most message copies simultaneously in flight in any state.
    pub max_inflight_msgs: usize,
    /// Most *distinct commits* simultaneously in flight in any state
    /// (> 1 exercises stale-copy drain concurrent with a fresh grant).
    pub max_inflight_commits: usize,
    /// Interleaving classes: the distinct per-broadcast fault patterns
    /// observed at quiescence, in deterministic order.
    pub classes: BTreeSet<Vec<FaultEntry>>,
    /// Whether a depth bound cut the exploration short.
    pub truncated: bool,
    /// The minimal certified counterexample, if any property failed.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// Whether every explored interleaving satisfied every property.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} states, {} transitions, {} quiescent, depth {}, \
             {} classes, max inflight commits {}{}{}",
            self.states,
            self.transitions,
            self.quiescent,
            self.max_depth,
            self.classes.len(),
            self.max_inflight_commits,
            if self.truncated { ", TRUNCATED" } else { "" },
            match &self.counterexample {
                Some(cx) => format!(", VIOLATION at depth {}", cx.trace.len()),
                None => String::new(),
            }
        )
    }
}

/// Exhaustively explores every interleaving of `cfg` (no depth bound).
pub fn explore(cfg: ModelConfig) -> ExploreReport {
    explore_bounded(cfg, usize::MAX)
}

/// Explores every interleaving of `cfg` up to `max_depth` actions deep.
/// The exhaustive configuration quiesces well before depth 64; a small
/// bound makes a fast CI smoke that still covers thousands of schedules.
pub fn explore_bounded(cfg: ModelConfig, max_depth: usize) -> ExploreReport {
    let model = Model::new(cfg);
    let initial = model.initial();

    // Arena of distinct states with parent links for trace reconstruction.
    let mut arena: Vec<State> = vec![initial.clone()];
    let mut parent: Vec<Option<(usize, Action)>> = vec![None];
    let mut visited: HashMap<State, usize> = HashMap::new();
    visited.insert(initial, 0);

    let mut report = ExploreReport {
        config: cfg,
        states: 1,
        transitions: 0,
        quiescent: 0,
        max_depth: 0,
        max_inflight_msgs: 0,
        max_inflight_commits: 0,
        classes: BTreeSet::new(),
        truncated: false,
        counterexample: None,
    };

    let mut frontier: Vec<usize> = vec![0];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        if depth >= max_depth {
            report.truncated = true;
            break;
        }
        let mut next_frontier = Vec::new();
        for &si in &frontier {
            let state = arena[si].clone();
            report.max_inflight_msgs = report.max_inflight_msgs.max(state.inflight.len());
            report.max_inflight_commits =
                report.max_inflight_commits.max(state.inflight_commits());
            if state.quiescent() {
                report.quiescent += 1;
                report.classes.insert(state.pattern.clone());
                if let Some(v) = model.check_quiescent(&state) {
                    return certify(report, &model, &parent, si, None, v);
                }
                continue;
            }
            let enabled = model.enabled(&state);
            if enabled.is_empty() {
                return certify(report, &model, &parent, si, None, Violation::Stuck);
            }
            for action in enabled {
                report.transitions += 1;
                let (succ, violation) = model.apply(&state, action);
                if let Some(v) = violation {
                    return certify(report, &model, &parent, si, Some(action), v);
                }
                if !visited.contains_key(&succ) {
                    let id = arena.len();
                    visited.insert(succ.clone(), id);
                    arena.push(succ);
                    parent.push(Some((si, action)));
                    report.states += 1;
                    report.max_depth = report.max_depth.max(depth + 1);
                    next_frontier.push(id);
                }
            }
        }
        frontier = next_frontier;
        depth += 1;
    }
    report
}

/// Reconstructs the shortest trace to `si` (plus `last`, if the violation
/// fired on an outgoing action rather than at quiescence), certifies it by
/// replay on a fresh model, and attaches it to the report.
fn certify(
    mut report: ExploreReport,
    model: &Model,
    parent: &[Option<(usize, Action)>],
    si: usize,
    last: Option<Action>,
    violation: Violation,
) -> ExploreReport {
    let mut trace = Vec::new();
    let mut cur = si;
    while let Some((prev, action)) = parent[cur] {
        trace.push(action);
        cur = prev;
    }
    trace.reverse();
    trace.extend(last);
    match model.replay(&trace) {
        Ok(Some(certified)) => {
            assert_eq!(
                certified, violation,
                "replay certified a different violation than the explorer found"
            );
        }
        Ok(None) => panic!(
            "explorer found `{violation}` but replaying its trace shows no violation"
        ),
        Err(e) => panic!("counterexample trace failed to replay: {e}"),
    }
    report.counterexample = Some(Counterexample { violation, trace });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::Mutation;

    #[test]
    fn smoke_bounds_pass_quickly() {
        let cfg = ModelConfig {
            procs: 2,
            commits_per_proc: 1,
            max_crashes: 1,
            max_dups: 1,
            mutation: Mutation::None,
        };
        let report = explore(cfg);
        assert!(report.passed(), "{}", report.summary());
        assert!(!report.truncated);
        assert!(report.quiescent > 0);
        assert!(report.classes.contains(&vec![FaultEntry::default(); 2]));
    }

    #[test]
    fn bounded_depth_truncates_without_false_violations() {
        let report = explore_bounded(ModelConfig::exhaustive(), 4);
        assert!(report.passed());
        assert!(report.truncated);
        assert!(report.states > 1);
    }

    #[test]
    fn skip_dedup_yields_a_minimal_duplicate_application() {
        let report = explore(ModelConfig::mutated(Mutation::SkipDedup));
        let cx = report.counterexample.expect("skip-dedup must fail");
        assert!(matches!(cx.violation, Violation::DuplicateApplication { .. }));
        // Minimal: grant, deliver, duplicate the same delivery.
        assert_eq!(cx.trace.len(), 3, "{}", cx.render());
    }

    #[test]
    fn skip_replay_loses_a_commit() {
        let report = explore(ModelConfig::mutated(Mutation::SkipReplay));
        let cx = report.counterexample.expect("skip-replay must fail");
        assert!(matches!(cx.violation, Violation::LostCommit { .. }), "{}", cx.render());
    }
}
