//! `bulk-mc`: an explicit-state model checker for the Bulk
//! commit/squash/arbiter-failover protocol.
//!
//! The liveness engine (DESIGN.md §9) claims three distributed-protocol
//! properties: every committed W_C is applied **exactly once** per
//! receiver across arbiter crashes, all receivers observe **one
//! serializable committed order**, and **no commit is lost** during epoch
//! re-election. This crate checks those claims three ways:
//!
//! 1. **Exhaustive exploration** — [`model`] is a compact state machine
//!    of the protocol (processors, one arbiter-granted bus, per-receiver
//!    delivery, crashes with re-stamped replay, interconnect duplication,
//!    `(committer, serial)` dedup); [`explore()`] enumerates *every*
//!    interleaving under documented bounds with exact state dedup and
//!    reports minimal certified counterexamples.
//! 2. **Mutation testing** — [`mutation`] seeds protocol bugs (skip the
//!    dedup check, fold the epoch into the dedup identity, replay without
//!    re-stamping, skip replay); each must produce a counterexample while
//!    the unmutated protocol passes exhaustively.
//! 3. **Conformance replay** — [`conformance`] projects every explored
//!    interleaving class onto a deterministic
//!    [`ScheduleScript`](bulk_chaos::ScheduleScript); the repo-level
//!    conformance tests drive the real TM and TLS machines through each
//!    class and assert the machine outcomes match the model's
//!    predictions.
//!
//! `specs/tla/` carries TLA+ twins of this model (`BulkCommit.tla`,
//! `ArbiterFailover.tla`) for readers who want the properties in temporal
//! logic; the Rust model is the one CI executes.

#![deny(missing_docs)]

pub mod conformance;
pub mod explore;
pub mod model;
pub mod mutation;

pub use conformance::{expectations, schedule_for_class, ClassExpectation};
pub use explore::{explore, explore_bounded, Counterexample, ExploreReport};
pub use model::{Action, FaultEntry, Model, ModelConfig, Msg, State, Ticket, Violation};
pub use mutation::Mutation;
