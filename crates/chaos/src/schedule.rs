//! Deterministic fault schedules: the bridge from the model checker to
//! the real machines.
//!
//! A [`FaultPlan`](crate::FaultPlan) normally draws its decisions from a
//! seeded PRNG — good for soaking, useless for *replaying a specific
//! interleaving class*. A [`ScheduleScript`] is the alternative driver:
//! an explicit per-broadcast list of fault bundles (arbitration denials,
//! interconnect delay, duplication, arbiter crashes), consumed in commit
//! order. The `bulk-mc` model checker serializes every interleaving class
//! it explores as one of these scripts, and the conformance tests drive
//! the TM and TLS machines through each class, asserting the machines'
//! committed order and dedup behaviour match the model's.
//!
//! A scripted plan injects *nothing* the script does not name: no bit
//! flips, no forced context switches, no evictions — the schedule is the
//! whole fault universe, so a run is a pure function of (workload, scheme,
//! script).

use crate::fault::{ChaosConfig, FaultPlan};

/// The faults injected into one commit broadcast, in the order the
/// machines consult them: arbitration denials first, then interconnect
/// delay and duplication, then arbiter crashes mid-broadcast.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BroadcastSchedule {
    /// Consecutive arbitration denials before the grant (each costs the
    /// scripted backoff base, doubling per retry).
    pub denials: u32,
    /// Interconnect delay added to the broadcast, in cycles.
    pub delay: u64,
    /// Whether the broadcast is delivered a second time by the
    /// interconnect (chaos duplication; receivers must dedup).
    pub duplicate: bool,
    /// Arbiter crashes during this broadcast. The first crash hits the
    /// original transmission; each further crash hits the *replay* of the
    /// previous epoch (crash-during-replay). Every crash forces an epoch
    /// re-election and one more replay round.
    pub crashes: u32,
}

impl BroadcastSchedule {
    /// A broadcast with no faults at all.
    pub const QUIET: BroadcastSchedule =
        BroadcastSchedule { denials: 0, delay: 0, duplicate: false, crashes: 0 };

    /// Delivery rounds a liveness-armed machine performs for this
    /// broadcast: the original, plus one per duplication, plus one replay
    /// per crash. Receiver-side dedup admits exactly one of them, so the
    /// expected dedup-drop count is `rounds() - 1`.
    pub fn rounds(&self) -> u64 {
        1 + u64::from(self.duplicate) + u64::from(self.crashes)
    }
}

/// A deterministic fault schedule: one [`BroadcastSchedule`] per commit
/// broadcast, consumed in the order the machine's commits reach the
/// arbiter. Broadcasts past the end of the script are fault-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleScript {
    /// Human-readable class label (e.g. `"crash@0x2+dup@1"`), carried into
    /// failure messages so a conformance mismatch names its class.
    pub name: String,
    /// Per-broadcast fault bundles, indexed by commit order.
    pub broadcasts: Vec<BroadcastSchedule>,
}

impl ScheduleScript {
    /// A script with no faults (the quiescent class).
    pub fn quiet(name: impl Into<String>) -> Self {
        ScheduleScript { name: name.into(), broadcasts: Vec::new() }
    }

    /// Total arbiter crashes the script injects.
    pub fn total_crashes(&self) -> u64 {
        self.broadcasts.iter().map(|b| u64::from(b.crashes)).sum()
    }

    /// Total duplicated deliveries the script injects.
    pub fn total_duplicates(&self) -> u64 {
        self.broadcasts.iter().filter(|b| b.duplicate).count() as u64
    }

    /// Expected receiver-side dedup drops for a liveness-armed run that
    /// performs at least `self.broadcasts.len()` commits: every delivery
    /// round after the first admitted one is dropped.
    pub fn expected_dedup_drops(&self) -> u64 {
        self.broadcasts.iter().map(|b| b.rounds() - 1).sum()
    }

    /// A compact stable label for the script's fault pattern, used as the
    /// default `name`: `-` for a quiet broadcast, `[cNdD]` otherwise
    /// (crash count, duplicate flag, denials, delay).
    pub fn pattern_label(broadcasts: &[BroadcastSchedule]) -> String {
        let mut s = String::new();
        for (i, b) in broadcasts.iter().enumerate() {
            if i > 0 {
                s.push('.');
            }
            if *b == BroadcastSchedule::QUIET {
                s.push('-');
            } else {
                s.push_str(&format!("c{}", b.crashes));
                if b.duplicate {
                    s.push_str("+dup");
                }
                if b.denials > 0 {
                    s.push_str(&format!("+deny{}", b.denials));
                }
                if b.delay > 0 {
                    s.push_str(&format!("+delay{}", b.delay));
                }
            }
        }
        if s.is_empty() {
            s.push_str("quiet");
        }
        s
    }

    /// Builds a script from a fault pattern, labelling it with
    /// [`ScheduleScript::pattern_label`].
    pub fn from_pattern(broadcasts: Vec<BroadcastSchedule>) -> Self {
        let name = ScheduleScript::pattern_label(&broadcasts);
        ScheduleScript { name, broadcasts }
    }

    /// Arms a [`FaultPlan`] that injects exactly this schedule and nothing
    /// else. The plan reports `seed() == 0`; a scripted run's identity is
    /// the script, not a seed.
    pub fn into_plan(self) -> FaultPlan {
        FaultPlan::scripted(self)
    }
}

/// Cursor state of a scripted [`FaultPlan`]: which broadcast is current
/// and how much of its fault bundle remains unconsumed.
#[derive(Debug, Clone)]
pub(crate) struct ScriptState {
    script: ScheduleScript,
    /// Index of the broadcast currently being served; `usize::MAX` before
    /// the first `deny_commit(0)`.
    cursor: usize,
    crashes_left: u32,
    duplicate_left: bool,
    delay_left: u64,
    denials: u32,
}

impl ScriptState {
    pub(crate) fn new(script: ScheduleScript) -> Self {
        ScriptState {
            script,
            cursor: usize::MAX,
            crashes_left: 0,
            duplicate_left: false,
            delay_left: 0,
            denials: 0,
        }
    }

    pub(crate) fn script(&self) -> &ScheduleScript {
        &self.script
    }

    /// Advances to the next broadcast's fault bundle. Called at the first
    /// arbitration attempt of each commit (the first hook every machine
    /// consults per broadcast).
    pub(crate) fn begin_broadcast(&mut self) {
        self.cursor = self.cursor.wrapping_add(1);
        let b = self
            .script
            .broadcasts
            .get(self.cursor)
            .copied()
            .unwrap_or(BroadcastSchedule::QUIET);
        self.crashes_left = b.crashes;
        self.duplicate_left = b.duplicate;
        self.delay_left = b.delay;
        self.denials = b.denials;
    }

    pub(crate) fn deny(&mut self, attempt: u32) -> bool {
        attempt < self.denials
    }

    pub(crate) fn take_delay(&mut self) -> u64 {
        std::mem::take(&mut self.delay_left)
    }

    pub(crate) fn take_duplicate(&mut self) -> bool {
        std::mem::take(&mut self.duplicate_left)
    }

    pub(crate) fn take_crash(&mut self) -> bool {
        if self.crashes_left > 0 {
            self.crashes_left -= 1;
            true
        } else {
            false
        }
    }
}

/// The [`ChaosConfig`] a scripted plan runs under: every probabilistic
/// fault is off, backoff costs are fixed and small, and the
/// crash-per-broadcast bound is wide enough for any scripted class.
pub(crate) fn scripted_config() -> ChaosConfig {
    ChaosConfig {
        seed: 0,
        denial_prob: 0.0,
        max_denials: u32::MAX,
        backoff_base: 16,
        backoff_cap: 256,
        delay_prob: 0.0,
        delay_max: 0,
        dup_prob: 0.0,
        flip_prob: 0.0,
        ctx_switch_prob: 0.0,
        ctx_switch_cycles: 60,
        evict_prob: 0.0,
        retransmit_cycles: 80,
        arbiter_crash_prob: 0.0,
        reelect_cycles: 120,
        max_crashes_per_broadcast: u32::MAX,
        worker_kill_prob: 0.0,
        max_worker_kills: 0,
        thread_stall_prob: 0.0,
        thread_stall_ns: 0,
        publish_delay_prob: 0.0,
        publish_delay_ns: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy() -> ScheduleScript {
        ScheduleScript::from_pattern(vec![
            BroadcastSchedule { crashes: 2, duplicate: false, denials: 1, delay: 5 },
            BroadcastSchedule::QUIET,
            BroadcastSchedule { crashes: 0, duplicate: true, denials: 0, delay: 0 },
        ])
    }

    #[test]
    fn pattern_label_is_stable_and_readable() {
        let s = crashy();
        assert_eq!(s.name, "c2+deny1+delay5.-.c0+dup");
        assert_eq!(ScheduleScript::pattern_label(&[]), "quiet");
    }

    #[test]
    fn totals_and_expected_drops() {
        let s = crashy();
        assert_eq!(s.total_crashes(), 2);
        assert_eq!(s.total_duplicates(), 1);
        // Broadcast 0 has 2 replays (drops), broadcast 2 one duplicate.
        assert_eq!(s.expected_dedup_drops(), 3);
    }

    #[test]
    fn scripted_plan_replays_the_bundle_in_machine_hook_order() {
        let mut plan = crashy().into_plan();
        // Broadcast 0: one denial, 5-cycle delay, no dup, two crashes.
        assert!(plan.deny_commit(0).is_some());
        assert_eq!(plan.deny_commit(1), None);
        assert_eq!(plan.broadcast_delay(), 5);
        assert!(!plan.duplicate_broadcast());
        assert!(plan.arbiter_crash());
        assert!(plan.arbiter_crash());
        assert!(!plan.arbiter_crash());
        // Broadcast 1: quiet.
        assert_eq!(plan.deny_commit(0), None);
        assert_eq!(plan.broadcast_delay(), 0);
        assert!(!plan.duplicate_broadcast());
        assert!(!plan.arbiter_crash());
        // Broadcast 2: duplicate only.
        assert_eq!(plan.deny_commit(0), None);
        assert_eq!(plan.broadcast_delay(), 0);
        assert!(plan.duplicate_broadcast());
        assert!(!plan.arbiter_crash());
        // Broadcasts past the script are fault-free.
        assert_eq!(plan.deny_commit(0), None);
        assert!(!plan.arbiter_crash());
        let stats = plan.take_stats();
        assert_eq!(stats.denials, 1);
        assert_eq!(stats.broadcast_delays, 1);
        assert_eq!(stats.duplicated_broadcasts, 1);
        assert_eq!(stats.arbiter_crashes, 2);
    }

    #[test]
    fn scripted_plans_never_inject_unscripted_faults() {
        let mut plan = ScheduleScript::quiet("q").into_plan();
        for attempt in 0..4 {
            assert_eq!(plan.deny_commit(attempt), None);
        }
        for _ in 0..100 {
            assert!(!plan.force_context_switch());
            assert!(!plan.force_eviction());
            assert!(!plan.duplicate_broadcast());
            assert_eq!(plan.broadcast_delay(), 0);
        }
        assert_eq!(plan.pick(7), 0);
        assert_eq!(plan.stats().total_injected(), 0);
    }
}
