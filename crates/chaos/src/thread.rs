//! Fault injection for the real-thread parallel runtime.
//!
//! The sim-facing [`FaultPlan`](crate::FaultPlan) hooks the simulated
//! clock; real OS threads have none, so the parallel runtime gets its
//! own injector built from two pieces:
//!
//! * [`ThreadChaos`] — the run-wide shared state: the explicit
//!   [`KillSpec`] schedule (each spec fires exactly once, across the
//!   whole run), the probabilistic-kill budget, and per-processor event
//!   counters that stay monotonic *across respawns*, so "the Nth
//!   broadcast of processor P" names the same event no matter how many
//!   incarnations P has been through.
//! * [`WorkerChaos`] — one worker incarnation's view: a deterministic
//!   RNG seeded from `(seed, proc, incarnation)` drives the
//!   probabilistic kills, stalls and delayed publishes, so the explicit
//!   schedule is exactly reproducible and the probabilistic stream is
//!   reproducible per `(seed, incarnation)` event order.
//!
//! The injector only *decides*; the runtime carries the decision out
//! (returning a typed halt from the worker loop, sleeping for a stall,
//! delaying a publish). That keeps the chaos crate free of any threading
//! policy and makes the decisions unit-testable in isolation.

use crate::ChaosConfig;
use bulk_rng::{Rng, SeedableRng, SmallRng};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where in the commit protocol a worker is killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// After winning the bus-slot claim CAS, before stamping a ticket:
    /// the orphaned slot is claimed but carries no serial yet.
    Claim,
    /// After stamping the commit ticket, before publishing the record:
    /// the nastiest window — a serial was consumed but never hit the log.
    Publish,
    /// While applying a peer's record from the log (no slot is held).
    Apply,
}

impl CrashPoint {
    /// Stable kebab-case name, usable as a report/artifact tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            CrashPoint::Claim => "claim",
            CrashPoint::Publish => "publish",
            CrashPoint::Apply => "apply",
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One scripted worker kill: processor `proc` dies at its `at`-th
/// matching event (0-based; slot claims for [`CrashPoint::Claim`] and
/// [`CrashPoint::Publish`], record applications for
/// [`CrashPoint::Apply`]). Event counts are cumulative across respawns,
/// and each spec fires exactly once per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The processor (TM workload thread / TLS pool worker) to kill.
    pub proc: usize,
    /// Protocol point at which it dies.
    pub point: CrashPoint,
    /// Which occurrence of that point triggers the kill (0-based).
    pub at: u64,
}

/// Run-wide shared state of the real-thread fault injector. One per run,
/// shared (`Arc`) by every worker incarnation and the supervisor.
#[derive(Debug)]
pub struct ThreadChaos {
    cfg: Option<ChaosConfig>,
    kills: Vec<KillSpec>,
    consumed: Vec<AtomicBool>,
    /// Remaining probabilistic kills (explicit specs are not budgeted).
    kill_budget: AtomicU32,
    /// Cumulative successful slot claims per processor.
    claims: Vec<AtomicU64>,
    /// Cumulative record applications per processor.
    applies: Vec<AtomicU64>,
}

impl ThreadChaos {
    /// Shared injector state for `procs` processors. `cfg` arms the
    /// probabilistic faults (worker kills, stalls, delayed publishes);
    /// `kills` is the explicit deterministic schedule. Either may be
    /// empty/`None` — an unarmed injector never fires.
    pub fn new(procs: usize, cfg: Option<ChaosConfig>, kills: Vec<KillSpec>) -> Arc<Self> {
        let budget = cfg.as_ref().map_or(0, |c| c.max_worker_kills);
        Arc::new(ThreadChaos {
            consumed: kills.iter().map(|_| AtomicBool::new(false)).collect(),
            kills,
            cfg,
            kill_budget: AtomicU32::new(budget),
            claims: (0..procs).map(|_| AtomicU64::new(0)).collect(),
            applies: (0..procs).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Upper bound on worker kills this injector can ever fire: the
    /// explicit schedule plus the probabilistic budget. The runtime
    /// sizes its bus-log fence slack (and respawn planning) from this.
    pub fn crash_bound(&self) -> usize {
        self.kills.len() + self.cfg.as_ref().map_or(0, |c| c.max_worker_kills as usize)
    }

    /// A worker incarnation's handle. `incarnation` is 0 for the
    /// original spawn and increments per respawn, so respawned workers
    /// draw a fresh (but still seed-determined) probabilistic stream.
    pub fn worker(self: &Arc<Self>, proc: usize, incarnation: u32) -> WorkerChaos {
        let seed = self.cfg.as_ref().map_or(0, |c| c.seed);
        let mix = seed
            ^ (proc as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (incarnation as u64).wrapping_mul(0xd1b5_4a32_d192_ed03);
        WorkerChaos { shared: Arc::clone(self), proc, rng: SmallRng::seed_from_u64(mix) }
    }

    fn take_kill_budget(&self) -> bool {
        self.kill_budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
            .is_ok()
    }

    fn explicit_kill(&self, proc: usize, n: u64, apply: bool) -> Option<CrashPoint> {
        for (i, k) in self.kills.iter().enumerate() {
            let point_matches = (k.point == CrashPoint::Apply) == apply;
            if k.proc == proc
                && k.at == n
                && point_matches
                && !self.consumed[i].swap(true, Ordering::AcqRel)
            {
                return Some(k.point);
            }
        }
        None
    }
}

/// One worker incarnation's deterministic fault stream. Not `Sync`: each
/// worker owns exactly one.
#[derive(Debug)]
pub struct WorkerChaos {
    shared: Arc<ThreadChaos>,
    proc: usize,
    rng: SmallRng,
}

impl WorkerChaos {
    /// Consulted after every successful bus-slot claim. `Some(point)`
    /// means the worker must die at that point of the in-flight commit
    /// ([`CrashPoint::Claim`] or [`CrashPoint::Publish`], never
    /// [`CrashPoint::Apply`]).
    pub fn on_claim(&mut self) -> Option<CrashPoint> {
        let n = self.shared.claims[self.proc].fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.shared.explicit_kill(self.proc, n, false) {
            return Some(p);
        }
        let cfg = self.shared.cfg.as_ref()?;
        if cfg.worker_kill_prob > 0.0
            && self.rng.random::<f64>() < cfg.worker_kill_prob
            && self.shared.take_kill_budget()
        {
            return Some(if self.rng.random() { CrashPoint::Claim } else { CrashPoint::Publish });
        }
        None
    }

    /// Consulted after every record application. `true` means the worker
    /// dies here ([`CrashPoint::Apply`] — no bus slot is held).
    pub fn on_apply(&mut self) -> bool {
        let n = self.shared.applies[self.proc].fetch_add(1, Ordering::Relaxed);
        if self.shared.explicit_kill(self.proc, n, true).is_some() {
            return true;
        }
        let Some(cfg) = self.shared.cfg.as_ref() else { return false };
        cfg.worker_kill_prob > 0.0
            && self.rng.random::<f64>() < cfg.worker_kill_prob
            && self.shared.take_kill_budget()
    }

    /// Consulted at poll sites: `Some(d)` stalls the worker for `d`
    /// (simulating a descheduled/hung peer the watchdog must tolerate
    /// below its bound and report above it).
    pub fn maybe_stall(&mut self) -> Option<Duration> {
        let cfg = self.shared.cfg.as_ref()?;
        (cfg.thread_stall_prob > 0.0 && self.rng.random::<f64>() < cfg.thread_stall_prob)
            .then(|| Duration::from_nanos(cfg.thread_stall_ns))
    }

    /// Consulted between claiming a slot and publishing into it:
    /// `Some(d)` widens the claim-to-publish window every reader spins
    /// through, the exact window worker death orphans.
    pub fn publish_delay(&mut self) -> Option<Duration> {
        let cfg = self.shared.cfg.as_ref()?;
        (cfg.publish_delay_prob > 0.0 && self.rng.random::<f64>() < cfg.publish_delay_prob)
            .then(|| Duration::from_nanos(cfg.publish_delay_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_kill_fires_exactly_once_at_nth_claim() {
        let chaos = ThreadChaos::new(
            2,
            None,
            vec![KillSpec { proc: 1, point: CrashPoint::Publish, at: 2 }],
        );
        let mut w0 = chaos.worker(0, 0);
        let mut w1 = chaos.worker(1, 0);
        for _ in 0..8 {
            assert_eq!(w0.on_claim(), None, "spec targets proc 1, not 0");
        }
        assert_eq!(w1.on_claim(), None); // claim 0
        assert_eq!(w1.on_claim(), None); // claim 1
        assert_eq!(w1.on_claim(), Some(CrashPoint::Publish)); // claim 2
        // The respawned incarnation continues the cumulative count and
        // the consumed spec never fires again.
        let mut w1b = chaos.worker(1, 1);
        for _ in 0..8 {
            assert_eq!(w1b.on_claim(), None);
        }
    }

    #[test]
    fn apply_kills_use_their_own_counter() {
        let chaos =
            ThreadChaos::new(1, None, vec![KillSpec { proc: 0, point: CrashPoint::Apply, at: 1 }]);
        let mut w = chaos.worker(0, 0);
        assert_eq!(w.on_claim(), None, "claim events must not consume an Apply spec");
        assert!(!w.on_apply()); // apply 0
        assert!(w.on_apply()); // apply 1
        assert!(!w.on_apply(), "consumed");
    }

    #[test]
    fn probabilistic_kills_respect_the_budget() {
        let cfg = ChaosConfig {
            worker_kill_prob: 1.0,
            max_worker_kills: 3,
            ..ChaosConfig::new(42)
        };
        let chaos = ThreadChaos::new(1, Some(cfg), Vec::new());
        let mut w = chaos.worker(0, 0);
        let kills = (0..100).filter(|_| w.on_claim().is_some()).count();
        assert_eq!(kills, 3, "budget must cap probabilistic kills");
        assert_eq!(chaos.crash_bound(), 3);
    }

    #[test]
    fn unarmed_injector_never_fires() {
        let chaos = ThreadChaos::new(1, None, Vec::new());
        let mut w = chaos.worker(0, 0);
        for _ in 0..64 {
            assert_eq!(w.on_claim(), None);
            assert!(!w.on_apply());
            assert_eq!(w.maybe_stall(), None);
            assert_eq!(w.publish_delay(), None);
        }
        assert_eq!(chaos.crash_bound(), 0);
    }

    #[test]
    fn same_seed_same_incarnation_is_deterministic() {
        let cfg = ChaosConfig::worker_crash(7);
        let mk = || ThreadChaos::new(1, Some(cfg.clone()), Vec::new());
        let (a, b) = (mk(), mk());
        let (mut wa, mut wb) = (a.worker(0, 0), b.worker(0, 0));
        for _ in 0..200 {
            assert_eq!(wa.on_claim(), wb.on_claim());
            assert_eq!(wa.maybe_stall(), wb.maybe_stall());
            assert_eq!(wa.publish_delay(), wb.publish_delay());
        }
    }
}
