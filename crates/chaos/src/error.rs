//! Typed errors for machine construction and execution.

use bulk_trace::TraceError;
use std::fmt;

/// A typed failure from `TmMachine`/`TlsMachine` construction or
/// execution — the replacement for the `expect()`/`panic!` sites on
/// trace- and message-shaped paths. The CLI surfaces these with a
/// nonzero exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The workload has no threads/tasks to run.
    EmptyWorkload {
        /// Which machine rejected it (`"tm"` or `"tls"`).
        machine: &'static str,
    },
    /// A thread/task trace failed structural validation.
    Trace {
        /// The offending thread (TM) or task (TLS) index.
        thread: usize,
        /// What was wrong with its trace.
        source: TraceError,
    },
    /// A speculative operation found no allocated BDM version where the
    /// protocol requires one.
    MissingVersion {
        /// The thread/task executing the operation.
        thread: usize,
        /// Its program counter at the failure.
        pc: usize,
        /// Which protocol step was underway.
        context: &'static str,
    },
    /// A commit broadcast arrived whose payload shape does not match the
    /// scheme (e.g. a Bulk receiver got an address-list message).
    MalformedCommit {
        /// The receiving scheme.
        scheme: &'static str,
        /// The payload shape that arrived.
        payload: &'static str,
    },
    /// Every live thread is stalled on another transaction: a conflict
    /// cycle the eager protocol cannot break.
    ConflictDeadlock {
        /// Simulated cycle at detection.
        cycle: u64,
    },
    /// The machine stopped making forward progress (TLS progress budget
    /// exhausted, or nothing runnable with work outstanding).
    NoProgress {
        /// Steps executed before giving up.
        steps: u64,
        /// What the machine was waiting for.
        context: &'static str,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::EmptyWorkload { machine } => {
                write!(f, "{machine} workload has no threads/tasks")
            }
            MachineError::Trace { thread, source } => {
                write!(f, "invalid trace for thread {thread}: {source}")
            }
            MachineError::MissingVersion { thread, pc, context } => {
                write!(f, "thread {thread} has no BDM version at pc {pc} during {context}")
            }
            MachineError::MalformedCommit { scheme, payload } => {
                write!(f, "{scheme} receiver got a {payload} commit payload")
            }
            MachineError::ConflictDeadlock { cycle } => {
                write!(f, "conflict deadlock: every live thread stalled at cycle {cycle}")
            }
            MachineError::NoProgress { steps, context } => {
                write!(f, "no forward progress after {steps} steps ({context})")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Trace { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<(usize, TraceError)> for MachineError {
    fn from((thread, source): (usize, TraceError)) -> Self {
        MachineError::Trace { thread, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_detail() {
        let e = MachineError::Trace {
            thread: 3,
            source: TraceError::UnclosedTransactions { open: 2 },
        };
        let s = e.to_string();
        assert!(s.contains("thread 3") && s.contains("2 unclosed"), "{s}");
        assert!(std::error::Error::source(&e).is_some());

        let e = MachineError::MissingVersion { thread: 1, pc: 42, context: "commit" };
        assert!(e.to_string().contains("pc 42"));
    }
}
