//! The runtime invariant auditor.

use bulk_core::{set_restriction::verify_set_restriction, Bdm};
use bulk_mem::Cache;
use std::fmt;

/// Which correctness invariant a violation report is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// The Set Restriction (§4.3/§4.5): dirty lines of one cache set owned
    /// by more than one speculative version, or failing owner membership.
    SetRestriction,
    /// Signature-vs-oracle containment: an address in a thread's exact
    /// read/write set is *not* a member of its signature. Signatures may
    /// alias (false positives) but must never miss (false negatives).
    SignatureContainment,
    /// The committed order is not serializable: a surviving speculative
    /// thread still holds an un-disambiguated overlap with a committed
    /// write set.
    Serializability,
    /// A thread's clock or the global commit order went backwards.
    ClockMonotonicity,
    /// A corrupted signature passed its CRC and was silently accepted.
    UndetectedCorruption,
    /// The serialized-fallback token protocol broke: the token was held by
    /// a finished thread, double-granted, or a commit slot was cleared out
    /// of order. These were `debug_assert!`s inside the machines; as
    /// auditor checks, release-mode chaos soaks catch them too.
    TokenProtocol,
    /// Cycle-accounting conservation broke: the trace reducer found
    /// overlapping same-timeline spans, a span running backwards or past
    /// its actor's final clock, or an actor claiming more cycles than its
    /// timeline holds — so the Fig. 13 categories cannot sum to the
    /// total.
    CycleConservation,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::SetRestriction => "set-restriction",
            InvariantKind::SignatureContainment => "signature-containment",
            InvariantKind::Serializability => "serializability",
            InvariantKind::ClockMonotonicity => "clock-monotonicity",
            InvariantKind::UndetectedCorruption => "undetected-corruption",
            InvariantKind::TokenProtocol => "token-protocol",
            InvariantKind::CycleConservation => "cycle-conservation",
        };
        f.write_str(name)
    }
}

/// A structured invariant-violation report: what broke, where, when, and
/// the seed that replays it. Produced instead of a panic so a chaos run
/// can finish, aggregate, and exit nonzero.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// The violated invariant.
    pub kind: InvariantKind,
    /// The scheme under test (e.g. `"Bulk"`, `"tls/Lazy"`).
    pub scheme: String,
    /// The thread (TM) or processor (TLS) the violation was observed on.
    pub thread: usize,
    /// Simulated cycle of the observation.
    pub cycle: u64,
    /// The chaos seed in force, when the run was seeded.
    pub seed: Option<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} violated on thread {} at cycle {}: {}",
            self.scheme, self.kind, self.thread, self.cycle, self.detail
        )?;
        if let Some(seed) = self.seed {
            write!(f, " (replay: BULK_CHAOS_SEED={seed})")?;
        }
        Ok(())
    }
}

/// Collects invariant checks during a machine run. Disabled by default
/// (zero cost on the hot path beyond one branch); when enabled, the
/// machines feed it after every commit, squash, and invalidation.
pub struct Auditor {
    enabled: bool,
    scheme: String,
    seed: Option<u64>,
    clocks: Vec<u64>,
    last_commit_finish: u64,
    checks: u64,
    violations: Vec<InvariantViolation>,
}

impl Auditor {
    /// An auditor that records nothing (the default for plain runs).
    pub fn off() -> Self {
        Auditor {
            enabled: false,
            scheme: String::new(),
            seed: None,
            clocks: Vec::new(),
            last_commit_finish: 0,
            checks: 0,
            violations: Vec::new(),
        }
    }

    /// An active auditor for a run of `scheme` with `threads`
    /// threads/processors, tagged with the chaos seed when one is set.
    pub fn new(scheme: impl Into<String>, threads: usize, seed: Option<u64>) -> Self {
        Auditor {
            enabled: true,
            scheme: scheme.into(),
            seed,
            clocks: vec![0; threads],
            last_commit_finish: 0,
            checks: 0,
            violations: Vec::new(),
        }
    }

    /// Whether checks should be fed to this auditor at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of individual invariant checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Records a violation found by a machine-side check.
    pub fn record(&mut self, kind: InvariantKind, thread: usize, cycle: u64, detail: String) {
        if !self.enabled {
            return;
        }
        self.violations.push(InvariantViolation {
            kind,
            scheme: self.scheme.clone(),
            thread,
            cycle,
            seed: self.seed,
            detail,
        });
    }

    /// Checks a thread-local clock observation for monotonicity.
    pub fn observe_clock(&mut self, thread: usize, now: u64) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        if thread >= self.clocks.len() {
            self.clocks.resize(thread + 1, 0);
        }
        let prev = self.clocks[thread];
        if now < prev {
            self.record(
                InvariantKind::ClockMonotonicity,
                thread,
                now,
                format!("thread clock went backwards: {prev} -> {now}"),
            );
        }
        self.clocks[thread] = now.max(prev);
    }

    /// Checks the global commit order: `thread`'s commit finishing at
    /// `finish` must not precede an already-observed commit.
    pub fn observe_commit(&mut self, thread: usize, finish: u64) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        if finish < self.last_commit_finish {
            self.record(
                InvariantKind::ClockMonotonicity,
                thread,
                finish,
                format!(
                    "commit order went backwards: finish {finish} after {}",
                    self.last_commit_finish
                ),
            );
        }
        self.last_commit_finish = self.last_commit_finish.max(finish);
    }

    /// Runs the Set Restriction verifier for one processor's BDM + cache.
    pub fn audit_set_restriction(&mut self, thread: usize, cycle: u64, bdm: &Bdm, cache: &Cache) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        if let Err(detail) = verify_set_restriction(bdm, cache) {
            self.record(InvariantKind::SetRestriction, thread, cycle, detail);
        }
    }

    /// Records a signature-containment check result (the machine computes
    /// membership itself, since granularity and set shapes are its own).
    pub fn audit_containment(&mut self, thread: usize, cycle: u64, missing: Option<String>) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        if let Some(detail) = missing {
            self.record(InvariantKind::SignatureContainment, thread, cycle, detail);
        }
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Drains the recorded violations (for folding into run stats).
    pub fn take_violations(&mut self) -> Vec<InvariantViolation> {
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_mem::{Addr, CacheGeometry};
    use bulk_sig::SignatureConfig;

    #[test]
    fn disabled_auditor_records_nothing() {
        let mut a = Auditor::off();
        a.observe_clock(0, 10);
        a.observe_clock(0, 5);
        a.record(InvariantKind::Serializability, 0, 0, "x".into());
        assert!(a.violations().is_empty());
        assert_eq!(a.checks(), 0);
    }

    #[test]
    fn clock_regression_is_reported_with_seed() {
        let mut a = Auditor::new("Bulk", 2, Some(42));
        a.observe_clock(1, 100);
        a.observe_clock(1, 90);
        let v = &a.violations()[0];
        assert_eq!(v.kind, InvariantKind::ClockMonotonicity);
        assert_eq!((v.thread, v.seed), (1, Some(42)));
        assert!(v.to_string().contains("BULK_CHAOS_SEED=42"), "{v}");
    }

    #[test]
    fn commit_order_regression_is_reported() {
        let mut a = Auditor::new("Lazy", 2, None);
        a.observe_commit(0, 500);
        a.observe_commit(1, 400);
        assert_eq!(a.violations().len(), 1);
        assert!(a.violations()[0].to_string().contains("commit order"));
    }

    #[test]
    fn set_restriction_audit_flags_seeded_violation() {
        let geom = CacheGeometry::tm_l1();
        let mut bdm = Bdm::new(SignatureConfig::s14_tm(), geom, 2);
        let mut cache = Cache::new(geom);
        let v = bdm.alloc_version().unwrap();
        bdm.set_running(Some(v));
        bdm.record_store(v, Addr::new(0x40));
        cache.fill_dirty(Addr::new(0x40).line(64));

        let mut a = Auditor::new("Bulk", 1, None);
        a.audit_set_restriction(0, 10, &bdm, &cache);
        assert!(a.violations().is_empty());

        // An alien dirty line in the speculatively-owned set.
        cache.fill_dirty(Addr::new(0x4040).line(64));
        a.audit_set_restriction(0, 20, &bdm, &cache);
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].kind, InvariantKind::SetRestriction);
        assert_eq!(a.take_violations().len(), 1);
        assert!(a.violations().is_empty());
    }
}
