//! Chaos harness for the Bulk machines: deterministic fault injection,
//! runtime invariant auditing, and typed machine errors.
//!
//! The paper's central claim is that Bulk stays *correct* under adversity:
//! signature aliasing, cache overflow, and context switches may cost
//! performance but never correctness (§3, §6.2). This crate turns that
//! claim into something the simulator continuously checks rather than
//! asserts:
//!
//! * [`FaultPlan`] — a seeded, replayable fault injector. The TM/TLS
//!   machines consult it at protocol hook points (commit arbitration,
//!   broadcast, per-op scheduling) and it deterministically injects
//!   arbitration denials with bounded exponential backoff, delayed and
//!   duplicated commit broadcasts, in-flight signature bit flips, forced
//!   context switches, and forced cache evictions. Every decision derives
//!   from one `u64` seed — printing `BULK_CHAOS_SEED=<seed>` makes any
//!   failure exactly replayable.
//! * [`Auditor`] — a runtime invariant checker. After commits, squashes,
//!   and invalidations the machines feed it Set Restriction checks
//!   (§4.3/§4.5), signature-vs-oracle containment (a signature may alias
//!   but must never *miss* an address it encoded), committed-order
//!   serializability, and clock monotonicity. A violation becomes a
//!   structured [`InvariantViolation`] report — thread, cycle, scheme,
//!   replay seed — instead of a panic.
//! * [`MachineError`] — typed errors for machine construction and
//!   execution (malformed traces, missing versions, deadlock, lost
//!   progress), replacing `expect()` on trace- and message-shaped paths.
//! * [`ThreadChaos`] / [`WorkerChaos`] — fault injection for the
//!   real-thread parallel runtime, where no simulated clock exists:
//!   explicit [`KillSpec`] schedules and seeded probabilistic worker
//!   kills at commit-protocol [`CrashPoint`]s, plus injected stalls and
//!   delayed publishes, all deterministic per seed and monotonic across
//!   worker respawns.
//! * [`ScheduleScript`] — the deterministic alternative to the seeded
//!   injector: an explicit per-broadcast fault schedule (denials, delay,
//!   duplication, arbiter crashes) that `FaultPlan::scripted` replays
//!   verbatim. The `bulk-mc` model checker serializes every interleaving
//!   class it explores as one of these, and the conformance tests drive
//!   the machines through each class.

#![warn(missing_docs)]

mod audit;
mod error;
mod fault;
mod schedule;
mod thread;

pub use audit::{Auditor, InvariantKind, InvariantViolation};
pub use error::MachineError;
pub use fault::{ChaosConfig, FaultPlan, FaultStats};
pub use schedule::{BroadcastSchedule, ScheduleScript};
pub use thread::{CrashPoint, KillSpec, ThreadChaos, WorkerChaos};
