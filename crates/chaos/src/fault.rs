//! The deterministic fault injector.

use bulk_core::CommitMsg;
use bulk_rng::{Rng, SeedableRng, SmallRng};

/// Fault probabilities and magnitudes for one chaos run. All decisions
/// derive from `seed`; two plans built from the same config replay the
/// same fault sequence against the same machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The replay seed (what `BULK_CHAOS_SEED` prints).
    pub seed: u64,
    /// Per-attempt probability that commit arbitration is denied.
    pub denial_prob: f64,
    /// Hard bound on consecutive denials of one commit: the backoff is
    /// *bounded* and the arbiter must eventually grant, so commit always
    /// makes progress.
    pub max_denials: u32,
    /// Backoff after the first denial, in cycles; doubles per retry.
    pub backoff_base: u64,
    /// Cap on a single backoff wait.
    pub backoff_cap: u64,
    /// Probability a commit broadcast is delayed in the interconnect.
    pub delay_prob: f64,
    /// Maximum broadcast delay, in cycles.
    pub delay_max: u64,
    /// Probability a commit broadcast is delivered twice.
    pub dup_prob: f64,
    /// Probability one bit of a signature-carrying broadcast is flipped
    /// in flight.
    pub flip_prob: f64,
    /// Per-operation probability of a forced context switch (the OS
    /// preempts the processor; signatures spill and reload, §6.2.2).
    pub ctx_switch_prob: f64,
    /// Cycles a forced context switch costs.
    pub ctx_switch_cycles: u64,
    /// Per-operation probability of a forced cache eviction (capacity
    /// pressure; speculative dirty victims exercise the overflow path).
    pub evict_prob: f64,
    /// Cycles a detected-corruption retransmission costs.
    pub retransmit_cycles: u64,
    /// Per-broadcast probability that the commit arbiter crashes
    /// mid-broadcast (after the bus grant, before every receiver has
    /// acknowledged). Recovery — epoch re-election and idempotent replay
    /// of the in-flight message — is the liveness engine's job; with no
    /// engine armed the machines never consult this fault, so the default
    /// chaos mix is unchanged. Zero by default.
    pub arbiter_crash_prob: f64,
    /// Cycles one arbiter re-election costs (lease timeout + election
    /// round), charged before the replay.
    pub reelect_cycles: u64,
    /// Hard bound on arbiter crashes within one broadcast (the first
    /// crash hits the original transmission, later ones hit the replays —
    /// crash-during-replay). The machines stop consulting
    /// [`FaultPlan::arbiter_crash`] once a broadcast has absorbed this
    /// many, so recovery always terminates.
    pub max_crashes_per_broadcast: u32,
    /// Per-event probability that a real-thread worker is killed at a
    /// commit-protocol point (claim/publish/apply — see
    /// [`CrashPoint`](crate::CrashPoint)). Consulted only by the
    /// parallel runtime's [`ThreadChaos`](crate::ThreadChaos); the sim
    /// machines never read it. Zero by default.
    pub worker_kill_prob: f64,
    /// Hard budget on probabilistic worker kills per run (explicit
    /// [`KillSpec`](crate::KillSpec) schedules are not budgeted), so
    /// respawn recovery always terminates.
    pub max_worker_kills: u32,
    /// Per-poll probability a real-thread worker stalls (sleeps) instead
    /// of making progress — a descheduled peer the wall-clock watchdog
    /// must tolerate below its bound. Zero by default.
    pub thread_stall_prob: f64,
    /// Length of one injected thread stall, in wall-clock nanoseconds.
    pub thread_stall_ns: u64,
    /// Per-publish probability the claim-to-publish window is widened by
    /// a delay — every reader spins through exactly the window a worker
    /// death orphans. Zero by default.
    pub publish_delay_prob: f64,
    /// Length of one injected publish delay, in wall-clock nanoseconds.
    pub publish_delay_ns: u64,
}

impl ChaosConfig {
    /// The default fault mix for `seed` — lively enough to exercise every
    /// hook on small workloads, bounded enough to terminate quickly.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            denial_prob: 0.20,
            max_denials: 4,
            backoff_base: 16,
            backoff_cap: 256,
            delay_prob: 0.15,
            delay_max: 40,
            dup_prob: 0.10,
            flip_prob: 0.25,
            ctx_switch_prob: 0.01,
            ctx_switch_cycles: 60,
            evict_prob: 0.03,
            retransmit_cycles: 80,
            arbiter_crash_prob: 0.0,
            reelect_cycles: 120,
            max_crashes_per_broadcast: 4,
            worker_kill_prob: 0.0,
            max_worker_kills: 0,
            thread_stall_prob: 0.0,
            thread_stall_ns: 0,
            publish_delay_prob: 0.0,
            publish_delay_ns: 0,
        }
    }

    /// The default mix plus arbiter crashes: every broadcast has a real
    /// chance of losing the arbiter mid-flight, forcing an epoch
    /// re-election and an idempotent replay. Requires a liveness engine
    /// on the machine; used by the liveness soak and the CI soak job.
    pub fn arbiter_crash(seed: u64) -> Self {
        ChaosConfig {
            arbiter_crash_prob: 0.25,
            ..ChaosConfig::new(seed)
        }
    }

    /// Real-thread worker faults for the parallel runtime: seeded worker
    /// kills at commit-protocol points (bounded by `max_worker_kills`),
    /// short injected stalls, and widened claim-to-publish windows. The
    /// sim-facing probabilities stay at their defaults but are never
    /// consulted by the parallel runtime; what this preset arms is the
    /// [`ThreadChaos`](crate::ThreadChaos) stream (`--chaos` under
    /// `--runtime par`). Stalls are kept far below the runtime's
    /// wall-clock watchdog bound so a chaos run is slow, not stalled.
    pub fn worker_crash(seed: u64) -> Self {
        ChaosConfig {
            worker_kill_prob: 0.02,
            max_worker_kills: 3,
            thread_stall_prob: 0.01,
            thread_stall_ns: 200_000,
            publish_delay_prob: 0.05,
            publish_delay_ns: 50_000,
            ..ChaosConfig::new(seed)
        }
    }

    /// A squash-storm-leaning mix: aggressive corruption and duplication
    /// with calm arbitration, to drive the aliasing-squash rate up and
    /// exercise the liveness engine's storm throttle.
    pub fn storm(seed: u64) -> Self {
        ChaosConfig {
            denial_prob: 0.05,
            dup_prob: 0.30,
            flip_prob: 0.50,
            ..ChaosConfig::new(seed)
        }
    }
}

/// Counters of what a [`FaultPlan`] injected and what the machines
/// reported back about detection. Folded into `TmStats`/`TlsStats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Commit-arbitration denials injected.
    pub denials: u64,
    /// Total cycles spent in arbitration backoff.
    pub backoff_cycles: u64,
    /// Commit broadcasts delayed.
    pub broadcast_delays: u64,
    /// Total cycles of injected broadcast delay.
    pub delay_cycles: u64,
    /// Commit broadcasts delivered twice.
    pub duplicated_broadcasts: u64,
    /// Signature bits flipped in flight.
    pub corruptions_injected: u64,
    /// Corruptions the receivers' CRC check caught (must equal
    /// `corruptions_injected` — single-bit faults are always detectable).
    pub corruptions_detected: u64,
    /// Corruptions that slipped past the CRC (always an invariant
    /// violation; must stay zero).
    pub silent_corruptions: u64,
    /// Context switches forced onto running speculative threads.
    pub forced_context_switches: u64,
    /// Cache evictions forced by injected capacity pressure.
    pub forced_evictions: u64,
    /// Arbiter crashes injected mid-broadcast.
    pub arbiter_crashes: u64,
}

impl FaultStats {
    /// Accumulates another run's counters (for sweep aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.denials += other.denials;
        self.backoff_cycles += other.backoff_cycles;
        self.broadcast_delays += other.broadcast_delays;
        self.delay_cycles += other.delay_cycles;
        self.duplicated_broadcasts += other.duplicated_broadcasts;
        self.corruptions_injected += other.corruptions_injected;
        self.corruptions_detected += other.corruptions_detected;
        self.silent_corruptions += other.silent_corruptions;
        self.forced_context_switches += other.forced_context_switches;
        self.forced_evictions += other.forced_evictions;
        self.arbiter_crashes += other.arbiter_crashes;
    }

    /// Total faults injected, across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.denials
            + self.broadcast_delays
            + self.duplicated_broadcasts
            + self.corruptions_injected
            + self.forced_context_switches
            + self.forced_evictions
            + self.arbiter_crashes
    }
}

/// A seeded stream of fault decisions, consulted by the machines at their
/// protocol hook points. The machines query it in deterministic
/// (clock-ordered) execution order, so a run is a pure function of
/// (workload, scheme, config, chaos seed).
pub struct FaultPlan {
    cfg: ChaosConfig,
    rng: SmallRng,
    stats: FaultStats,
    script: Option<crate::schedule::ScriptState>,
}

impl FaultPlan {
    /// A plan drawing its decisions from `cfg.seed`.
    pub fn new(cfg: ChaosConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xC4A0_5Fau64);
        FaultPlan { cfg, rng, stats: FaultStats::default(), script: None }
    }

    /// A plan with the default fault mix for `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan::new(ChaosConfig::new(seed))
    }

    /// A plan that injects exactly `script` and nothing else: every
    /// probabilistic fault is disabled and each hook answers from the
    /// script's per-broadcast bundles, consumed in commit order. This is
    /// how the `bulk-mc` conformance layer replays a model-checked
    /// interleaving class onto a real machine.
    pub fn scripted(script: crate::schedule::ScheduleScript) -> Self {
        let cfg = crate::schedule::scripted_config();
        let rng = SmallRng::seed_from_u64(0);
        FaultPlan {
            cfg,
            rng,
            stats: FaultStats::default(),
            script: Some(crate::schedule::ScriptState::new(script)),
        }
    }

    /// The schedule driving this plan, if it is scripted.
    pub fn script(&self) -> Option<&crate::schedule::ScheduleScript> {
        self.script.as_ref().map(|s| s.script())
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// The fault mix in force.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Consulted once per commit-arbitration attempt. `Some(backoff)`
    /// means the arbiter denied this attempt and the committer must wait
    /// `backoff` cycles before retrying; `None` means the grant went
    /// through. Denials are bounded: attempt `max_denials` is always
    /// granted, so arbitration cannot livelock.
    pub fn deny_commit(&mut self, attempt: u32) -> Option<u64> {
        if let Some(script) = &mut self.script {
            // The first arbitration attempt is the first hook a machine
            // consults for a broadcast: advance the script's cursor here.
            if attempt == 0 {
                script.begin_broadcast();
            }
            if !script.deny(attempt) {
                return None;
            }
        } else if attempt >= self.cfg.max_denials
            || self.rng.random::<f64>() >= self.cfg.denial_prob
        {
            return None;
        }
        let backoff = self
            .cfg
            .backoff_base
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cfg.backoff_cap)
            .max(1);
        self.stats.denials += 1;
        self.stats.backoff_cycles += backoff;
        Some(backoff)
    }

    /// Cycles of interconnect delay to add to the current commit
    /// broadcast (0 = delivered on time).
    pub fn broadcast_delay(&mut self) -> u64 {
        let d = if let Some(script) = &mut self.script {
            script.take_delay()
        } else if self.rng.random::<f64>() >= self.cfg.delay_prob || self.cfg.delay_max == 0 {
            0
        } else {
            self.rng.random_range(1..self.cfg.delay_max + 1)
        };
        if d > 0 {
            self.stats.broadcast_delays += 1;
            self.stats.delay_cycles += d;
        }
        d
    }

    /// Whether the current commit broadcast is delivered a second time
    /// (receivers must tolerate the duplicate — the protocol is
    /// idempotent for already-squashed and committed receivers).
    pub fn duplicate_broadcast(&mut self) -> bool {
        let dup = if let Some(script) = &mut self.script {
            script.take_duplicate()
        } else {
            self.rng.random::<f64>() < self.cfg.dup_prob
        };
        if dup {
            self.stats.duplicated_broadcasts += 1;
        }
        dup
    }

    /// Possibly flips one in-flight bit of a signature-carrying commit
    /// message. Returns `true` if a corruption was injected.
    pub fn maybe_corrupt(&mut self, msg: &mut CommitMsg) -> bool {
        if self.script.is_some()
            || !msg.carries_signatures()
            || self.rng.random::<f64>() >= self.cfg.flip_prob
        {
            return false;
        }
        let bit = self.rng.random::<u64>();
        let injected = msg.corrupt_bit(bit);
        if injected {
            self.stats.corruptions_injected += 1;
        }
        injected
    }

    /// Machine feedback after a broadcast delivery: did the CRC catch an
    /// injected corruption, or did one slip through silently?
    pub fn note_delivery(&mut self, corruption_detected: bool, silent_corruption: bool) {
        if corruption_detected {
            self.stats.corruptions_detected += 1;
        }
        if silent_corruption {
            self.stats.silent_corruptions += 1;
        }
    }

    /// Consulted once per commit broadcast *when a liveness engine is
    /// armed*: does the arbiter crash mid-broadcast? Machines without a
    /// liveness engine must not call this (they could not recover), which
    /// also keeps the fault stream of engine-less runs unchanged.
    pub fn arbiter_crash(&mut self) -> bool {
        let hit = if let Some(script) = &mut self.script {
            script.take_crash()
        } else if self.cfg.arbiter_crash_prob <= 0.0 {
            return false;
        } else {
            self.rng.random::<f64>() < self.cfg.arbiter_crash_prob
        };
        if hit {
            self.stats.arbiter_crashes += 1;
        }
        hit
    }

    /// Consulted once per executed operation: force a context switch on
    /// this processor now?
    pub fn force_context_switch(&mut self) -> bool {
        if self.script.is_some() {
            return false;
        }
        let hit = self.rng.random::<f64>() < self.cfg.ctx_switch_prob;
        if hit {
            self.stats.forced_context_switches += 1;
        }
        hit
    }

    /// Consulted once per executed operation: evict a resident line now?
    pub fn force_eviction(&mut self) -> bool {
        if self.script.is_some() {
            return false;
        }
        let hit = self.rng.random::<f64>() < self.cfg.evict_prob;
        if hit {
            self.stats.forced_evictions += 1;
        }
        hit
    }

    /// A deterministic index in `[0, n)` — victim selection for forced
    /// evictions (callers must present candidates in a deterministic
    /// order).
    pub fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if self.script.is_some() {
            return 0;
        }
        self.rng.random_range(0..n)
    }

    /// The counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Drains the counters (for folding into machine stats at run end).
    pub fn take_stats(&mut self) -> FaultStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_mem::Addr;
    use bulk_sig::{Signature, SignatureConfig};

    fn drain(plan: &mut FaultPlan, ops: usize) -> FaultStats {
        for attempt in 0..3u32 {
            let _ = plan.deny_commit(attempt);
        }
        for _ in 0..ops {
            let _ = plan.broadcast_delay();
            let _ = plan.duplicate_broadcast();
            let _ = plan.force_context_switch();
            let _ = plan.force_eviction();
        }
        plan.take_stats()
    }

    #[test]
    fn same_seed_replays_identical_decisions() {
        let a = drain(&mut FaultPlan::seeded(7), 500);
        let b = drain(&mut FaultPlan::seeded(7), 500);
        assert_eq!(a, b);
        let c = drain(&mut FaultPlan::seeded(8), 500);
        assert_ne!(a, c, "different seeds should draw different fault mixes");
    }

    #[test]
    fn denials_are_bounded_by_max_attempts() {
        let mut plan = FaultPlan::seeded(3);
        let max = plan.config().max_denials;
        for _ in 0..200 {
            // However unlucky the stream, attempt `max` is always granted.
            assert_eq!(plan.deny_commit(max), None);
        }
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let mut cfg = ChaosConfig::new(1);
        cfg.denial_prob = 1.0; // deny every attempt up to the bound
        let mut plan = FaultPlan::new(cfg.clone());
        let waits: Vec<u64> =
            (0..cfg.max_denials).map(|a| plan.deny_commit(a).expect("denied")).collect();
        assert!(waits.windows(2).all(|w| w[0] <= w[1]), "non-decreasing: {waits:?}");
        assert_eq!(*waits.last().unwrap(), cfg.backoff_cap.min(cfg.backoff_base << 3));
        assert_eq!(plan.stats().denials, u64::from(cfg.max_denials));
    }

    #[test]
    fn corruption_only_applies_to_signature_payloads() {
        let mut cfg = ChaosConfig::new(5);
        cfg.flip_prob = 1.0;
        let mut plan = FaultPlan::new(cfg);
        let mut addr_list = CommitMsg::AddressList;
        assert!(!plan.maybe_corrupt(&mut addr_list));
        assert_eq!(plan.stats().corruptions_injected, 0);

        let mut sig = Signature::with_shared(SignatureConfig::s14_tm().into_shared());
        sig.insert_addr(Addr::new(0x40));
        let mut msg = CommitMsg::signatures(sig);
        assert!(plan.maybe_corrupt(&mut msg));
        let d = msg.deliver().unwrap();
        assert!(d.corruption_detected && !d.silent_corruption);
        plan.note_delivery(d.corruption_detected, d.silent_corruption);
        let stats = plan.stats();
        assert_eq!((stats.corruptions_injected, stats.corruptions_detected), (1, 1));
        assert_eq!(stats.silent_corruptions, 0);
    }

    #[test]
    fn arbiter_crashes_only_when_configured() {
        // The default mix never crashes the arbiter — and, crucially,
        // consulting the fault must not consume randomness, so arming a
        // liveness engine under the default mix leaves the fault stream
        // of every other hook unchanged.
        let mut consulted = FaultPlan::seeded(4);
        let mut untouched = FaultPlan::seeded(4);
        for _ in 0..50 {
            assert!(!consulted.arbiter_crash());
        }
        let a = drain(&mut consulted, 200);
        let b = drain(&mut untouched, 200);
        assert_eq!(a, b);

        let mut plan = FaultPlan::new(ChaosConfig::arbiter_crash(4));
        let crashes = (0..100).filter(|_| plan.arbiter_crash()).count() as u64;
        assert!(crashes > 0, "arbiter-crash profile should crash sometimes");
        assert_eq!(plan.stats().arbiter_crashes, crashes);
        assert_eq!(plan.take_stats().total_injected(), crashes);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = drain(&mut FaultPlan::seeded(11), 300);
        let b = drain(&mut FaultPlan::seeded(12), 300);
        let total = a.total_injected() + b.total_injected();
        a.merge(&b);
        assert_eq!(a.total_injected(), total);
        assert!(total > 0, "default mix should inject something in 300 ops");
    }
}
