//! Per-application workload profiles.
//!
//! One [`TlsProfile`] per SPECint2000 application of the paper's Table 6
//! and one [`TmProfile`] per Java application of Table 7. Footprints
//! (read/write/dependence set sizes) are taken directly from the paper;
//! behavioural knobs (contention, live-in consumption, violation rates,
//! nesting, the SPECjbb2000 RMW pattern) are tuned so the simulated runs
//! land in the qualitative ranges the paper reports.

use crate::{TlsProfile, TmProfile};

/// The nine SPECint2000 stand-ins used in the TLS experiments
/// (the paper runs all of SPECint2000 except eon, gcc and perlbmk).
pub fn tls_profiles() -> Vec<TlsProfile> {
    let base = TlsProfile {
        name: "",
        tasks: 400,
        avg_task_instrs: 0,
        rd_words: 0.0,
        wr_words: 0.0,
        live_ins: 1,
        live_in_prob: 0.3,
        violation_prob: 0.05,
        word_share_prob: 0.2,
        hot_words: 2048,
        hot_read_frac: 0.45,
        stream_frac: 0.15,
        scatter_write_prob: 0.02,
        imbalance: 0.15,
    };
    vec![
        TlsProfile {
            name: "bzip2",
            avg_task_instrs: 300,
            rd_words: 30.2,
            wr_words: 4.9,
            live_ins: 1,
            live_in_prob: 0.15,
            violation_prob: 0.08,
            ..base.clone()
        },
        TlsProfile {
            name: "crafty",
            avg_task_instrs: 1100,
            rd_words: 109.0,
            wr_words: 23.2,
            live_ins: 3,
            live_in_prob: 0.12,
            violation_prob: 0.06,
            word_share_prob: 0.5,
            ..base.clone()
        },
        TlsProfile {
            name: "gap",
            avg_task_instrs: 450,
            rd_words: 42.4,
            wr_words: 13.4,
            live_ins: 7,
            live_in_prob: 0.18,
            violation_prob: 0.02,
            ..base.clone()
        },
        TlsProfile {
            name: "gzip",
            avg_task_instrs: 160,
            rd_words: 14.3,
            wr_words: 4.8,
            live_ins: 2,
            live_in_prob: 0.16,
            violation_prob: 0.10,
            ..base.clone()
        },
        TlsProfile {
            name: "mcf",
            avg_task_instrs: 140,
            rd_words: 12.3,
            wr_words: 0.7,
            live_ins: 1,
            live_in_prob: 0.06,
            violation_prob: 0.04,
            word_share_prob: 0.05,
            ..base.clone()
        },
        TlsProfile {
            name: "parser",
            avg_task_instrs: 320,
            rd_words: 29.6,
            wr_words: 7.1,
            live_ins: 2,
            live_in_prob: 0.15,
            violation_prob: 0.07,
            ..base.clone()
        },
        TlsProfile {
            name: "twolf",
            avg_task_instrs: 420,
            rd_words: 41.1,
            wr_words: 6.4,
            live_ins: 1,
            live_in_prob: 0.10,
            violation_prob: 0.09,
            ..base.clone()
        },
        TlsProfile {
            name: "vortex",
            avg_task_instrs: 380,
            rd_words: 34.7,
            wr_words: 23.5,
            live_ins: 4,
            live_in_prob: 0.12,
            violation_prob: 0.03,
            word_share_prob: 0.6,
            ..base.clone()
        },
        TlsProfile {
            name: "vpr",
            avg_task_instrs: 430,
            rd_words: 43.1,
            wr_words: 8.7,
            live_ins: 1,
            live_in_prob: 0.10,
            violation_prob: 0.05,
            ..base
        },
    ]
}

/// The seven Java-workload stand-ins used in the TM experiments (Table 4):
/// six Java Grande benchmarks plus SPECjbb2000.
pub fn tm_profiles() -> Vec<TmProfile> {
    let base = TmProfile {
        name: "",
        threads: 8,
        txs_per_thread: 60,
        rd_lines: 0.0,
        wr_lines: 0.0,
        hot_lines: 512,
        hot_read_frac: 0.15,
        heap_read_frac: 0.15,
        hot_write_frac: 0.012,
        nest_prob: 0.12,
        rmw_prob: 0.0,
        non_tx_accesses: 6,
        non_tx_hot_write: 0.02,
        compute_per_access: 10,
        large_tx_prob: 0.06,
        private_lines: 512,
    };
    vec![
        TmProfile {
            name: "cb",
            rd_lines: 73.6,
            wr_lines: 26.9,
            hot_write_frac: 0.016,
            ..base.clone()
        },
        TmProfile {
            name: "jgrt",
            rd_lines: 67.1,
            wr_lines: 22.1,
            hot_write_frac: 0.018,
            ..base.clone()
        },
        TmProfile {
            name: "lu",
            rd_lines: 81.7,
            wr_lines: 27.3,
            hot_write_frac: 0.011,
            ..base.clone()
        },
        TmProfile {
            name: "mc",
            rd_lines: 51.6,
            wr_lines: 17.6,
            hot_write_frac: 0.010,
            ..base.clone()
        },
        TmProfile {
            name: "moldyn",
            rd_lines: 70.2,
            wr_lines: 25.1,
            hot_write_frac: 0.011,
            ..base.clone()
        },
        TmProfile {
            name: "series",
            rd_lines: 86.9,
            wr_lines: 25.9,
            hot_write_frac: 0.010,
            ..base.clone()
        },
        TmProfile {
            name: "sjbb2k",
            rd_lines: 41.6,
            wr_lines: 11.2,
            hot_write_frac: 0.010,
            rmw_prob: 0.25,
            non_tx_accesses: 10,
            ..base
        },
    ]
}

/// Looks up a TLS profile by application name.
pub fn tls_profile(name: &str) -> Option<TlsProfile> {
    tls_profiles().into_iter().find(|p| p.name == name)
}

/// Looks up a TM profile by application name.
pub fn tm_profile(name: &str) -> Option<TmProfile> {
    tm_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_tls_apps_match_table6_footprints() {
        let ps = tls_profiles();
        assert_eq!(ps.len(), 9);
        let expected = [
            ("bzip2", 30.2, 4.9),
            ("crafty", 109.0, 23.2),
            ("gap", 42.4, 13.4),
            ("gzip", 14.3, 4.8),
            ("mcf", 12.3, 0.7),
            ("parser", 29.6, 7.1),
            ("twolf", 41.1, 6.4),
            ("vortex", 34.7, 23.5),
            ("vpr", 43.1, 8.7),
        ];
        for (name, rd, wr) in expected {
            let p = tls_profile(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.rd_words, rd);
            assert_eq!(p.wr_words, wr);
        }
    }

    #[test]
    fn seven_tm_apps_match_table7_footprints() {
        let ps = tm_profiles();
        assert_eq!(ps.len(), 7);
        let expected = [
            ("cb", 73.6, 26.9),
            ("jgrt", 67.1, 22.1),
            ("lu", 81.7, 27.3),
            ("mc", 51.6, 17.6),
            ("moldyn", 70.2, 25.1),
            ("series", 86.9, 25.9),
            ("sjbb2k", 41.6, 11.2),
        ];
        for (name, rd, wr) in expected {
            let p = tm_profile(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.rd_lines, rd);
            assert_eq!(p.wr_lines, wr);
            assert_eq!(p.threads, 8);
        }
    }

    #[test]
    fn only_sjbb_has_the_rmw_pattern() {
        for p in tm_profiles() {
            if p.name == "sjbb2k" {
                assert!(p.rmw_prob > 0.0);
            } else {
                assert_eq!(p.rmw_prob, 0.0);
            }
        }
    }

    #[test]
    fn lookups_miss_gracefully() {
        assert!(tls_profile("eon").is_none());
        assert!(tm_profile("nope").is_none());
    }
}
