//! A plain-text interchange format for workload traces, so experiments can
//! be archived, diffed and replayed outside the generators.
//!
//! The format is line-oriented and self-describing:
//!
//! ```text
//! TM <name>
//! thread
//! B              # begin transaction
//! R <hex-addr>   # read
//! W <hex-addr>   # write
//! C <n>          # compute n instructions
//! E              # end transaction
//! thread
//! ...
//! ```
//!
//! and for TLS, `TLS <name>` with `task` section headers and an extra `S`
//! (spawn) opcode. Parsing is strict: any malformed line is an error with
//! its line number.

use std::fmt::Write as _;

use bulk_mem::Addr;

use crate::{TaskTrace, ThreadTrace, TlsOp, TlsWorkload, TmOp, TmWorkload};

/// Error produced when parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn err(line: usize, message: impl Into<String>) -> ParseTraceError {
    ParseTraceError { line, message: message.into() }
}

/// Serializes a TM workload.
pub fn tm_to_string(w: &TmWorkload) -> String {
    let mut out = String::new();
    writeln!(out, "TM {}", w.name).expect("infallible");
    for t in &w.threads {
        out.push_str("thread\n");
        for op in &t.ops {
            match op {
                TmOp::Begin => out.push_str("B\n"),
                TmOp::End => out.push_str("E\n"),
                TmOp::Read(a) => {
                    writeln!(out, "R {:x}", a.raw()).expect("infallible");
                }
                TmOp::Write(a) => {
                    writeln!(out, "W {:x}", a.raw()).expect("infallible");
                }
                TmOp::Compute(n) => {
                    writeln!(out, "C {n}").expect("infallible");
                }
            }
        }
    }
    out
}

/// Parses a TM workload serialized by [`tm_to_string`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on any malformed or out-of-place line.
pub fn tm_from_str(s: &str) -> Result<TmWorkload, ParseTraceError> {
    let mut lines = s.lines().enumerate();
    let (_, head) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    let name = head
        .strip_prefix("TM ")
        .ok_or_else(|| err(1, "expected header `TM <name>`"))?
        .to_string();
    let mut w = TmWorkload { name, threads: Vec::new() };
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "thread" {
            w.threads.push(ThreadTrace::default());
            continue;
        }
        let thread = w
            .threads
            .last_mut()
            .ok_or_else(|| err(lineno, "op before first `thread`"))?;
        thread.ops.push(parse_tm_op(line, lineno)?);
    }
    Ok(w)
}

fn parse_tm_op(line: &str, lineno: usize) -> Result<TmOp, ParseTraceError> {
    let mut parts = line.split_whitespace();
    let op = parts.next().ok_or_else(|| err(lineno, "blank op"))?;
    let arg = parts.next();
    if parts.next().is_some() {
        return Err(err(lineno, "trailing tokens"));
    }
    match (op, arg) {
        ("B", None) => Ok(TmOp::Begin),
        ("E", None) => Ok(TmOp::End),
        ("R", Some(a)) => Ok(TmOp::Read(parse_addr(a, lineno)?)),
        ("W", Some(a)) => Ok(TmOp::Write(parse_addr(a, lineno)?)),
        ("C", Some(n)) => Ok(TmOp::Compute(
            n.parse().map_err(|_| err(lineno, format!("bad compute count `{n}`")))?,
        )),
        _ => Err(err(lineno, format!("unrecognized op `{line}`"))),
    }
}

/// Serializes a TLS workload.
pub fn tls_to_string(w: &TlsWorkload) -> String {
    let mut out = String::new();
    writeln!(out, "TLS {}", w.name).expect("infallible");
    for t in &w.tasks {
        out.push_str("task\n");
        for op in &t.ops {
            match op {
                TlsOp::Spawn => out.push_str("S\n"),
                TlsOp::Read(a) => {
                    writeln!(out, "R {:x}", a.raw()).expect("infallible");
                }
                TlsOp::Write(a) => {
                    writeln!(out, "W {:x}", a.raw()).expect("infallible");
                }
                TlsOp::Compute(n) => {
                    writeln!(out, "C {n}").expect("infallible");
                }
            }
        }
    }
    out
}

/// Parses a TLS workload serialized by [`tls_to_string`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on any malformed or out-of-place line.
pub fn tls_from_str(s: &str) -> Result<TlsWorkload, ParseTraceError> {
    let mut lines = s.lines().enumerate();
    let (_, head) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    let name = head
        .strip_prefix("TLS ")
        .ok_or_else(|| err(1, "expected header `TLS <name>`"))?
        .to_string();
    let mut w = TlsWorkload { name, tasks: Vec::new() };
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "task" {
            w.tasks.push(TaskTrace::default());
            continue;
        }
        let task = w
            .tasks
            .last_mut()
            .ok_or_else(|| err(lineno, "op before first `task`"))?;
        let mut parts = line.split_whitespace();
        let op = parts.next().ok_or_else(|| err(lineno, "blank op"))?;
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(err(lineno, "trailing tokens"));
        }
        let parsed = match (op, arg) {
            ("S", None) => TlsOp::Spawn,
            ("R", Some(a)) => TlsOp::Read(parse_addr(a, lineno)?),
            ("W", Some(a)) => TlsOp::Write(parse_addr(a, lineno)?),
            ("C", Some(n)) => TlsOp::Compute(
                n.parse().map_err(|_| err(lineno, format!("bad compute count `{n}`")))?,
            ),
            _ => return Err(err(lineno, format!("unrecognized op `{line}`"))),
        };
        task.ops.push(parsed);
    }
    Ok(w)
}

fn parse_addr(tok: &str, lineno: usize) -> Result<Addr, ParseTraceError> {
    u32::from_str_radix(tok, 16)
        .map(Addr::new)
        .map_err(|_| err(lineno, format!("bad hex address `{tok}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn tm_round_trip() {
        let mut p = profiles::tm_profile("mc").unwrap();
        p.txs_per_thread = 3;
        let w = p.generate(1);
        let text = tm_to_string(&w);
        let back = tm_from_str(&text).unwrap();
        assert_eq!(back.name, w.name);
        assert_eq!(back.threads, w.threads);
    }

    #[test]
    fn tls_round_trip() {
        let mut p = profiles::tls_profile("gzip").unwrap();
        p.tasks = 5;
        let w = p.generate(1);
        let text = tls_to_string(&w);
        let back = tls_from_str(&text).unwrap();
        assert_eq!(back.name, w.name);
        assert_eq!(back.tasks, w.tasks);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let bad = "TM t\nthread\nR zz\n";
        let e = tm_from_str(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("bad hex address"));
    }

    #[test]
    fn parse_rejects_op_before_section() {
        let e = tm_from_str("TM t\nB\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = tls_from_str("TLS t\nS\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parse_rejects_bad_header_and_empty() {
        assert!(tm_from_str("").is_err());
        assert!(tm_from_str("TLS x\n").is_err());
        assert!(tls_from_str("TM x\n").is_err());
    }

    #[test]
    fn parse_rejects_trailing_tokens() {
        let e = tm_from_str("TM t\nthread\nR 10 20\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let w = tm_from_str("TM t\n\nthread\n\nB\nE\n").unwrap();
        assert_eq!(w.threads.len(), 1);
        assert_eq!(w.threads[0].ops, vec![TmOp::Begin, TmOp::End]);
    }
}
