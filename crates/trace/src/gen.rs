//! Synthetic workload generators.
//!
//! The paper ran SPECint2000 binaries under a TLS compiler and traced Java
//! applications under Jikes RVM — neither of which is reproducible here.
//! These generators produce task/transaction address streams whose
//! *footprints and sharing behaviour* are calibrated to what the paper
//! itself reports per application (Tables 6 and 7): read/write set sizes,
//! fine-grain cross-task sharing (live-ins), true-dependence rates, hot-set
//! contention, transaction nesting, and the SPECjbb2000 read-modify-write
//! pattern of Fig. 12. Generation is fully deterministic given a seed.

use bulk_mem::Addr;
use bulk_rng::{Rng, SeedableRng, SmallRng};

use crate::{TaskTrace, ThreadTrace, TlsOp, TlsWorkload, TmOp, TmWorkload};

// Synthetic addresses live entirely in address bits that the default S14
// signature covers under the paper's TM and TLS permutations (skipping the
// "hole" bits the chunks do not see: TLS word bits 10 and 20, TM line bit
// 14). Real program footprints span megabytes and vary those bits richly;
// to mimic that, read-mostly lines are scattered by a bijective hash,
// while written lines combine a *designed cache set* (so task versions
// co-resident on a processor do not collide under the Set Restriction)
// with an independently scrambled tag. Line-address bit 17 separates the
// two spaces.

/// Usable line-address bit positions: {0-5, 7-13, 15, 17}.
fn place_bits(v: u32) -> u32 {
    let mut out = v & 0x3f; // line bits 0-5 (the cache-set bits)
    out |= (v & 0x1fc0) << 1; // -> line bits 7-13
    out |= (v & 0x2000) << 2; // -> line bit 15
    out
}

/// Maps a compact 14-bit index to a scattered read-region line
/// (line bit 17 clear).
pub fn read_line(idx: u32) -> bulk_mem::LineAddr {
    debug_assert!(idx < 1 << 14);
    bulk_mem::LineAddr::new(place_bits(idx.wrapping_mul(10837) & 0x3fff))
}

/// Maps a written-region unit to a line in the designed cache `set`
/// (line bit 17 set; tags scrambled so nearby units differ in high bits).
pub fn written_line(unit: u32, set: u32) -> bulk_mem::LineAddr {
    debug_assert!(unit < 256);
    let tag = (unit * 37) % 256;
    bulk_mem::LineAddr::new(place_bits((set & 0x3f) | (tag << 6)) | 1 << 17)
}

fn read_word(idx: u32, w: u32) -> Addr {
    Addr::new((read_line(idx).raw() << 6) + (w % 16) * 4)
}

fn written_word(unit: u32, set: u32, w: u32) -> Addr {
    Addr::new((written_line(unit, set).raw() << 6) + (w % 16) * 4)
}

/// A TM line address built from 64-line allocation chunks: a 4-bit C1 tag
/// (placed at line bits {6, 9, 11, 17}, all C1 sources under the TM
/// permutation), a 9-bit scrambled C2 tag (at {7, 8, 10, 12, 13, 15, 16,
/// 18, 19}, all C2 sources) and a 6-bit in-chunk line index. Per-thread
/// footprints thus occupy distinct field-value subspaces — as disjoint
/// real heaps do — while the shared hot/heap chunks provide the residual
/// aliasing the paper measures.
fn tm_chunk_line(c1_tag: u32, c2_seq: u32, k: u32) -> bulk_mem::LineAddr {
    debug_assert!(c1_tag < 16 && c2_seq < 512 && k < 64);
    let c2 = (c2_seq * 73) % 512;
    let mut b = k & 0x3f;
    b |= (c1_tag & 1) << 6
        | ((c1_tag >> 1) & 1) << 9
        | ((c1_tag >> 2) & 1) << 11
        | ((c1_tag >> 3) & 1) << 17;
    b |= (c2 & 1) << 7
        | ((c2 >> 1) & 1) << 8
        | ((c2 >> 2) & 1) << 10
        | ((c2 >> 3) & 1) << 12
        | ((c2 >> 4) & 1) << 13
        | ((c2 >> 5) & 1) << 15
        | ((c2 >> 6) & 1) << 16
        | ((c2 >> 7) & 1) << 18
        | ((c2 >> 8) & 1) << 19;
    bulk_mem::LineAddr::new(b)
}

/// TM region `r` line addresses: region 0 is the 512-line hot region,
/// regions 1-8 are per-thread private regions (512 lines), region 9 is a
/// large shared read-only heap (8192 lines) that shares C1 tag space with
/// the hot region.
pub fn tm_region_line(r: u32, line: u32) -> bulk_mem::LineAddr {
    let chunk = line / 64;
    let k = line % 64;
    match r {
        0 => {
            debug_assert!(line < 512);
            tm_chunk_line(8 + chunk, 64 + chunk, k)
        }
        1..=8 => {
            debug_assert!(line < 512);
            // Thread C1 tags 0-7; the hot region and heap use tags 8-15.
            tm_chunk_line(r - 1, (r - 1) * 8 + chunk, k)
        }
        9 => {
            debug_assert!(line < 8192);
            tm_chunk_line(8 + chunk % 8, 72 + chunk, k)
        }
        _ => panic!("unknown TM region {r}"),
    }
}

fn tm_region_word(r: u32, line: u32) -> Addr {
    Addr::new(tm_region_line(r, line).raw() << 6)
}

// Read-region compact-index map.
/// Hot (contended, shared) region: 512 lines.
pub const HOT_IDX: u32 = 0;
/// Cold streaming region (always-miss reads): 7680 lines.
pub const STREAM_IDX: u32 = 512;
/// TM per-thread private regions: 1024 lines per thread.
pub const PRIVATE_IDX: u32 = 8192;

// Written-region unit map (TLS write targets).
/// Per-task 4-line write frames: a ring of 32 frames.
pub const FRAME_UNIT: u32 = 0;
/// Live-in slots (parent→child forwarding): a ring of 64 lines.
pub const LIVEIN_UNIT: u32 = 128;
/// Violation slots (true cross-task dependences): a ring of 48 lines.
pub const VIO_UNIT: u32 = 192;
/// Word-shared lines (fine-grain merge traffic): a ring of 16 lines.
pub const WS_UNIT: u32 = 240;

/// The cache-set lane of TLS task `t`: successive in-flight tasks stay at
/// least 6 sets apart (stride 14 over 64 sets), so the 6 sets a task's
/// write targets occupy never collide with a co-resident task's.
fn task_lane(t: u32) -> u32 {
    (t * 14) % 64
}

fn hot_word(hot_words: u32, rng: &mut SmallRng) -> Addr {
    let w = rng.random_range(0..hot_words);
    read_word(HOT_IDX + w / 16, w % 16)
}

/// Parameters of one synthetic TLS application (one SPECint stand-in).
///
/// `rd_words`/`wr_words`/`live_ins` come straight from the paper's Table 6;
/// the behavioural knobs are tuned so the simulated squash/merge rates land
/// in the paper's reported ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct TlsProfile {
    /// Application name.
    pub name: &'static str,
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Mean non-memory instructions per task.
    pub avg_task_instrs: u32,
    /// Mean read-set size in words (Table 6).
    pub rd_words: f64,
    /// Mean write-set size in words (Table 6).
    pub wr_words: f64,
    /// Words a child reads that its parent wrote pre-spawn (Table 6 dep
    /// set).
    pub live_ins: u32,
    /// Fraction of tasks that actually consume their parent's live-ins.
    pub live_in_prob: f64,
    /// Probability a task writes, late, a word its successor reads early —
    /// a true dependence violation.
    pub violation_prob: f64,
    /// Probability a task writes its word lane of a shared line (exercises
    /// fine-grain word merging, §4.4).
    pub word_share_prob: f64,
    /// Shared hot-region size in words.
    pub hot_words: u32,
    /// Fraction of reads that hit the (warm, read-shared) hot region.
    pub hot_read_frac: f64,
    /// Fraction of reads that stream through cold memory (always miss).
    pub stream_frac: f64,
    /// Probability a task scatters one write into the hot region —
    /// the source of rare cross-task write conflicts and of the paper's
    /// occasional write–write set conflicts.
    pub scatter_write_prob: f64,
    /// Relative spread of task sizes (0 = uniform).
    pub imbalance: f64,
}

impl TlsProfile {
    /// Generates the deterministic workload for this profile.
    pub fn generate(&self, seed: u64) -> TlsWorkload {
        let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(self.name));
        let mut tasks = Vec::with_capacity(self.tasks);
        for i in 0..self.tasks as u32 {
            tasks.push(self.generate_task(i, &mut rng));
        }
        TlsWorkload { name: self.name.to_string(), tasks }
    }

    fn generate_task(&self, i: u32, rng: &mut SmallRng) -> TaskTrace {
        let mut ops = Vec::new();
        let scale = 1.0 + self.imbalance * (rng.random::<f64>() * 2.0 - 1.0);
        let instrs = ((self.avg_task_instrs as f64) * scale.max(0.2)) as u32;

        // Write targets are clustered (frame-like, as real write sets are)
        // and placed in the task's set lane, so versions co-resident on a
        // processor never dirty the same cache set by construction —
        // leaving write–write set conflicts to the rare scattered hot and
        // word-shared writes, as in the paper's Table 6.
        let livein_word =
            |t: u32, k: u32| written_word(LIVEIN_UNIT + t % 64, (task_lane(t) + 4) % 64, k);
        let vio_word = |t: u32| written_word(VIO_UNIT + t % 48, (task_lane(t) + 5) % 64, 0);
        let frame_word = |t: u32, w: u32| {
            let w = w % 64;
            written_word(
                FRAME_UNIT + 4 * (t % 32) + w / 16,
                (task_lane(t) + w / 16) % 64,
                w % 16,
            )
        };

        // --- Pre-spawn: produce live-ins for the child. ---
        ops.push(TlsOp::Compute(instrs / 8));
        for k in 0..self.live_ins {
            ops.push(TlsOp::Write(livein_word(i, k)));
        }
        ops.push(TlsOp::Spawn);

        // --- Post-spawn body. ---
        // Consume the parent's live-ins early (fine-grain sharing).
        let consumes = i > 0 && rng.random::<f64>() < self.live_in_prob;
        if consumes {
            for k in 0..self.live_ins {
                ops.push(TlsOp::Read(livein_word(i - 1, k)));
            }
        }
        // Early read of the violation slot the predecessor may write late.
        if i > 0 {
            ops.push(TlsOp::Read(vio_word(i - 1)));
        }

        // The 1.4 factor compensates for footprint-set deduplication of
        // repeated hot-region and own-frame reads.
        let body_reads =
            ((poisson_ish(self.rd_words, rng) as f64 * 1.4) as u32)
                .saturating_sub(self.live_ins + 1);
        let body_writes = (poisson_ish(self.wr_words, rng) as u32)
            .saturating_sub(self.live_ins)
            .max(1);
        let accesses = body_reads + body_writes;
        let chunk = instrs / (accesses + 2);

        // Writes first: clustered into the task's frame, so later frame
        // reads hit locally (write-then-read locality).
        let mut frame_next = 0u32;
        for w in 0..body_writes {
            ops.push(TlsOp::Compute(chunk));
            if w == 0 && rng.random::<f64>() < self.word_share_prob {
                // This task's word lane of a line shared with its
                // neighbour task: exercises word merging (§4.4).
                let pair = i / 2;
                let lane = (i % 2) * 8 + (i / 64) % 8;
                ops.push(TlsOp::Write(written_word(
                    WS_UNIT + pair % 16,
                    (pair * 14 + 7) % 64,
                    lane,
                )));
            } else if rng.random::<f64>() < self.scatter_write_prob {
                ops.push(TlsOp::Write(hot_word(self.hot_words, rng)));
            } else {
                ops.push(TlsOp::Write(frame_word(i, frame_next)));
                frame_next += 1;
            }
        }
        let mut stream_next = 0u32;
        for _ in 0..body_reads {
            ops.push(TlsOp::Compute(chunk));
            let x: f64 = rng.random();
            if x < self.hot_read_frac {
                ops.push(TlsOp::Read(hot_word(self.hot_words, rng)));
            } else if x < self.hot_read_frac + self.stream_frac {
                // Fresh line every time: a compulsory miss.
                ops.push(TlsOp::Read(read_word(
                    STREAM_IDX + (i % 960) * 8 + stream_next % 8,
                    stream_next / 8,
                )));
                stream_next += 1;
            } else {
                // Re-read the task's own frame (hits after the writes).
                let w = rng.random_range(0..frame_next.max(1));
                ops.push(TlsOp::Read(frame_word(i, w)));
            }
        }

        // Late write creating a true dependence for the successor.
        if rng.random::<f64>() < self.violation_prob {
            ops.push(TlsOp::Write(vio_word(i)));
        }
        ops.push(TlsOp::Compute(instrs / 8));
        TaskTrace { ops }
    }
}

/// Parameters of one synthetic TM application (one Java-workload stand-in).
#[derive(Debug, Clone, PartialEq)]
pub struct TmProfile {
    /// Application name.
    pub name: &'static str,
    /// Number of threads (the paper's TM machine has 8 processors).
    pub threads: usize,
    /// Transactions per thread.
    pub txs_per_thread: usize,
    /// Mean read-set size in lines (Table 7).
    pub rd_lines: f64,
    /// Mean write-set size in lines (Table 7).
    pub wr_lines: f64,
    /// Shared hot-region size in lines.
    pub hot_lines: u32,
    /// Fraction of reads from the hot region.
    pub hot_read_frac: f64,
    /// Fraction of reads roaming the large shared read-only heap.
    pub heap_read_frac: f64,
    /// Fraction of writes to the hot region (drives conflicts).
    pub hot_write_frac: f64,
    /// Probability a transaction contains one nested inner transaction.
    pub nest_prob: f64,
    /// Probability a transaction performs the Fig. 12 read-modify-write of
    /// a single contended word (the SPECjbb2000 pattern).
    pub rmw_prob: f64,
    /// Non-transactional accesses between transactions.
    pub non_tx_accesses: u32,
    /// Probability a non-transactional access writes a hot line.
    pub non_tx_hot_write: f64,
    /// Mean compute instructions between accesses.
    pub compute_per_access: u32,
    /// Probability of a large (footprint ×4) transaction, to exercise
    /// cache overflow (§6.2.2).
    pub large_tx_prob: f64,
    /// Private working-set size in lines per thread.
    pub private_lines: u32,
}

impl TmProfile {
    /// Generates the deterministic workload for this profile.
    pub fn generate(&self, seed: u64) -> TmWorkload {
        let mut threads = Vec::with_capacity(self.threads);
        for t in 0..self.threads as u32 {
            let mut rng = SmallRng::seed_from_u64(
                seed ^ hash_name(self.name) ^ (u64::from(t) << 32),
            );
            threads.push(self.generate_thread(t, &mut rng));
        }
        TmWorkload { name: self.name.to_string(), threads }
    }

    fn hot_line_word(&self, rng: &mut SmallRng) -> Addr {
        // Half the hot reads go to the small truly-contended subset that
        // hot writes target; the rest roam the whole hot region.
        if rng.random::<f64>() < 0.5 {
            tm_region_word(0, rng.random_range(0..32))
        } else {
            tm_region_word(0, rng.random_range(0..self.hot_lines.min(512)))
        }
    }

    fn contended_line_word(&self, rng: &mut SmallRng) -> Addr {
        tm_region_word(0, rng.random_range(0..32))
    }

    fn private_line_word(&self, t: u32, rng: &mut SmallRng) -> Addr {
        tm_region_word(1 + t, rng.random_range(0..self.private_lines.min(512)))
    }

    fn generate_thread(&self, t: u32, rng: &mut SmallRng) -> ThreadTrace {
        let mut ops = Vec::new();
        for tx in 0..self.txs_per_thread {
            self.generate_tx(t, tx as u32, rng, &mut ops);
            // Non-transactional gap.
            for _ in 0..self.non_tx_accesses {
                ops.push(TmOp::Compute(self.compute_per_access));
                if rng.random::<f64>() < self.non_tx_hot_write {
                    ops.push(TmOp::Write(self.hot_line_word(rng)));
                } else if rng.random::<f64>() < 0.5 {
                    ops.push(TmOp::Read(self.private_line_word(t, rng)));
                } else {
                    ops.push(TmOp::Write(self.private_line_word(t, rng)));
                }
            }
        }
        ThreadTrace { ops }
    }

    fn generate_tx(&self, t: u32, tx: u32, rng: &mut SmallRng, ops: &mut Vec<TmOp>) {
        // Large transactions exercise cache overflow; the normalization
        // keeps the *mean* footprint at the Table 7 targets.
        let norm = 1.0 + self.large_tx_prob * 3.0;
        let mut scale =
            if rng.random::<f64>() < self.large_tx_prob { 4.0 } else { 1.0 } / norm;
        // The SPECjbb2000 pattern of Fig. 12: short transactions that read
        // a contended word early, against long transactions that write it
        // — Eager squashes or stalls the readers at the store, Lazy lets
        // the short readers commit first.
        let rmw = rng.random::<f64>() < self.rmw_prob;
        let reader_role = rmw && tx.is_multiple_of(2);
        if rmw {
            scale *= if reader_role { 0.35 } else { 1.65 };
        }
        let reads = (poisson_ish(self.rd_lines * scale, rng) as u32).max(1);
        let writes = (poisson_ish(self.wr_lines * scale, rng) as u32).max(1);
        let nested = rng.random::<f64>() < self.nest_prob;

        ops.push(TmOp::Begin);
        let rmw_addr = tm_region_word(0, rng.random_range(0..8));
        if rmw {
            if reader_role {
                ops.push(TmOp::Read(rmw_addr));
            } else {
                // The writer holds the contended word for its whole (long)
                // transaction: Eager stalls/squashes every reader arriving
                // in that window; Lazy lets the short readers commit.
                ops.push(TmOp::Write(rmw_addr));
            }
        }
        // Writes cluster into a per-transaction chunk of the private
        // region that rotates across transactions (working-set locality,
        // which also keeps the Set Restriction's safe writebacks at the
        // paper's low per-transaction rates); reads roam the region.
        let chunk_base = (tx.wrapping_mul(37)) % 448;
        let mut next_write = 0u32;
        let mut emit_access = |is_read: bool, ops: &mut Vec<TmOp>, rng: &mut SmallRng| {
            ops.push(TmOp::Compute(self.compute_per_access));
            let a = if is_read {
                let x: f64 = rng.random();
                if x < self.hot_read_frac {
                    self.hot_line_word(rng)
                } else if x < self.hot_read_frac + self.heap_read_frac {
                    tm_region_word(9, rng.random_range(0..8192))
                } else {
                    self.private_line_word(t, rng)
                }
            } else if rng.random::<f64>() < self.hot_write_frac {
                self.contended_line_word(rng)
            } else {
                let line = (chunk_base + next_write) % 512;
                next_write += 1;
                tm_region_word(1 + t, line)
            };
            ops.push(if is_read { TmOp::Read(a) } else { TmOp::Write(a) });
        };

        // Body: interleave reads/writes; optionally open a nested inner
        // transaction covering the middle third.
        let total = reads + writes;
        let inner_begin = total / 3;
        let inner_end = 2 * total / 3;
        let mut writes_left = writes;
        let mut reads_left = reads;
        for k in 0..total {
            if nested && k == inner_begin {
                ops.push(TmOp::Begin);
            }
            // Interleave deterministically in ratio.
            let do_write = writes_left > 0
                && (reads_left == 0 || (k * writes) % total < writes);
            if do_write {
                emit_access(false, ops, rng);
                writes_left -= 1;
            } else {
                emit_access(true, ops, rng);
                reads_left -= 1;
            }
            if nested && k + 1 == inner_end {
                ops.push(TmOp::End);
            }
        }
        ops.push(TmOp::End);
    }
}

/// A cheap integer "Poisson-like" sample: mean `mean`, bounded spread —
/// enough to vary footprints without a stats dependency.
fn poisson_ish(mean: f64, rng: &mut SmallRng) -> u64 {
    let spread = (mean / 2.0).max(1.0);
    let x = mean + (rng.random::<f64>() * 2.0 - 1.0) * spread;
    x.max(0.0).round() as u64
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn tls_generation_is_deterministic() {
        let p = &profiles::tls_profiles()[0];
        let a = p.generate(42);
        let b = p.generate(42);
        assert_eq!(a.tasks, b.tasks);
        let c = p.generate(43);
        assert_ne!(a.tasks, c.tasks);
    }

    #[test]
    fn tls_tasks_have_spawn_and_plausible_footprints() {
        let p = &profiles::tls_profiles()[1]; // crafty: large sets
        let w = p.generate(1);
        assert_eq!(w.tasks.len(), p.tasks);
        let mut rd = 0usize;
        let mut wr = 0usize;
        for t in &w.tasks {
            assert!(t.spawn_index().is_some());
            rd += t.ops.iter().filter(|o| matches!(o, TlsOp::Read(_))).count();
            wr += t.ops.iter().filter(|o| matches!(o, TlsOp::Write(_))).count();
        }
        let rd_avg = rd as f64 / w.tasks.len() as f64;
        let wr_avg = wr as f64 / w.tasks.len() as f64;
        assert!((rd_avg - p.rd_words).abs() < p.rd_words * 0.5, "rd {rd_avg}");
        assert!((wr_avg - p.wr_words).abs() < p.wr_words * 0.5, "wr {wr_avg}");
    }

    #[test]
    fn tm_generation_valid_nesting_and_footprints() {
        for p in profiles::tm_profiles() {
            let w = p.generate(7);
            assert_eq!(w.threads.len(), p.threads);
            for t in &w.threads {
                t.validate(2).unwrap();
                assert!(t.tx_access_count() > 0);
            }
        }
    }

    #[test]
    fn tm_generation_is_deterministic() {
        let p = &profiles::tm_profiles()[0];
        assert_eq!(p.generate(9).threads, p.generate(9).threads);
    }

    #[test]
    fn read_lines_are_injective_and_avoid_hole_bits() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for idx in 0..1u32 << 14 {
            let l = read_line(idx).raw();
            assert!(seen.insert(l), "collision at idx {idx}");
            // Hole bits the default signatures do not cover stay zero:
            // line bit 6 (TLS word bit 10), 14 (TM), 16 (TLS word bit 20),
            // and bit 17 is reserved for written lines.
            assert_eq!(l & (1 << 6 | 1 << 14 | 1 << 16 | 1 << 17), 0, "idx {idx}");
        }
    }

    #[test]
    fn written_lines_are_injective_and_disjoint_from_read_lines() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for unit in 0..256u32 {
            for set in 0..64u32 {
                let l = written_line(unit, set).raw();
                assert!(seen.insert(l), "collision unit={unit} set={set}");
                assert_eq!(l & (1 << 17), 1 << 17);
                assert_eq!(l & 0x3f, set, "set bits pass through");
                assert_eq!(l & (1 << 6 | 1 << 14 | 1 << 16), 0);
            }
        }
    }

    #[test]
    fn written_unit_ranges_are_disjoint() {
        // Evaluated through a function so the check stays a runtime test
        // even though the operands are constants.
        fn check(lo: u32, span: u32, hi: u32) -> bool {
            lo + span <= hi
        }
        assert!(check(FRAME_UNIT, 128, LIVEIN_UNIT));
        assert!(check(LIVEIN_UNIT, 64, VIO_UNIT));
        assert!(check(VIO_UNIT, 48, WS_UNIT));
        assert!(check(WS_UNIT, 16, 256));
        assert!(check(PRIVATE_IDX, 8 * 1024, 1 << 14));
    }

    #[test]
    fn co_resident_task_lanes_stay_apart() {
        for t in 0..256u32 {
            for k in 1..=8u32 {
                let a = task_lane(t) as i32;
                let b = task_lane(t + k) as i32;
                let d = (a - b).rem_euclid(64).min((b - a).rem_euclid(64));
                assert!(d >= 6, "t={t} k={k} lanes {a},{b}");
            }
        }
    }

    #[test]
    fn poisson_ish_is_nonnegative_and_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 2000;
        let mean = 22.0;
        let sum: u64 = (0..n).map(|_| poisson_ish(mean, &mut rng)).sum();
        let avg = sum as f64 / n as f64;
        assert!((avg - mean).abs() < 1.5, "avg {avg}");
    }
}
