//! Workloads for the Bulk reproduction: trace operation types, synthetic
//! workload generators calibrated to the paper's Tables 6 and 7, and the
//! Fig. 12 pathological microbenchmarks.
//!
//! The paper evaluated TLS on compiler-tasked SPECint2000 and TM on traced
//! Java programs; neither toolchain is reproducible here, so this crate
//! substitutes deterministic synthetic generators whose footprints and
//! sharing behaviour match what the paper reports per application (see
//! DESIGN.md §2 for the substitution argument).
//!
//! ```
//! use bulk_trace::profiles;
//!
//! let crafty = profiles::tls_profile("crafty").unwrap();
//! let workload = crafty.generate(42);
//! assert_eq!(workload.tasks.len(), crafty.tasks);
//! ```

#![warn(missing_docs)]

mod gen;
pub mod io;
pub mod jobspec;
mod ops;
pub mod patterns;
pub mod profiles;
pub mod stats;

pub use gen::{
    read_line, tm_region_line, written_line, TlsProfile, TmProfile, FRAME_UNIT, HOT_IDX, LIVEIN_UNIT,
    PRIVATE_IDX, STREAM_IDX, VIO_UNIT, WS_UNIT,
};
pub use ops::{TaskTrace, ThreadTrace, TlsOp, TlsWorkload, TmOp, TmWorkload, TraceError};
