//! Static workload statistics: footprints and sharing measured directly on
//! a trace, independent of any simulator. Used to validate that the
//! generators hit the paper's Table 6/7 targets and useful for sizing
//! signatures before a run.

use std::collections::HashSet;

use bulk_mem::{LineAddr, WordAddr};

use crate::{TlsOp, TlsWorkload, TmOp, TmWorkload};

/// Footprint statistics of a TM workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TmWorkloadStats {
    /// Number of (outer) transactions.
    pub transactions: usize,
    /// Mean read-set size in lines per transaction.
    pub avg_rd_lines: f64,
    /// Mean write-set size in lines per transaction.
    pub avg_wr_lines: f64,
    /// Mean transactional accesses per transaction.
    pub avg_accesses: f64,
    /// Fraction of transactions containing a nested transaction.
    pub nested_frac: f64,
    /// Accesses outside any transaction.
    pub non_tx_accesses: usize,
    /// Distinct lines written by 2+ threads (transactionally).
    pub shared_written_lines: usize,
}

/// Computes [`TmWorkloadStats`] for a workload.
pub fn tm_workload_stats(w: &TmWorkload) -> TmWorkloadStats {
    let mut transactions = 0usize;
    let mut rd_total = 0usize;
    let mut wr_total = 0usize;
    let mut acc_total = 0usize;
    let mut nested = 0usize;
    let mut non_tx = 0usize;
    let mut writers: std::collections::HashMap<LineAddr, HashSet<usize>> = Default::default();

    for (tid, t) in w.threads.iter().enumerate() {
        let mut depth = 0usize;
        let mut rd: HashSet<LineAddr> = HashSet::new();
        let mut wr: HashSet<LineAddr> = HashSet::new();
        let mut was_nested = false;
        for op in &t.ops {
            match op {
                TmOp::Begin => {
                    depth += 1;
                    if depth == 2 {
                        was_nested = true;
                    }
                }
                TmOp::End => {
                    depth -= 1;
                    if depth == 0 {
                        transactions += 1;
                        rd_total += rd.len();
                        wr_total += wr.len();
                        acc_total += rd.len() + wr.len();
                        nested += usize::from(was_nested);
                        rd.clear();
                        wr.clear();
                        was_nested = false;
                    }
                }
                TmOp::Read(a) if depth > 0 => {
                    rd.insert(a.line(64));
                }
                TmOp::Write(a) if depth > 0 => {
                    let l = a.line(64);
                    wr.insert(l);
                    writers.entry(l).or_default().insert(tid);
                }
                TmOp::Read(_) | TmOp::Write(_) => non_tx += 1,
                TmOp::Compute(_) => {}
            }
        }
    }
    let n = transactions.max(1) as f64;
    TmWorkloadStats {
        transactions,
        avg_rd_lines: rd_total as f64 / n,
        avg_wr_lines: wr_total as f64 / n,
        avg_accesses: acc_total as f64 / n,
        nested_frac: nested as f64 / n,
        non_tx_accesses: non_tx,
        shared_written_lines: writers.values().filter(|s| s.len() >= 2).count(),
    }
}

/// Footprint statistics of a TLS workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TlsWorkloadStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Mean read-set size in words per task.
    pub avg_rd_words: f64,
    /// Mean write-set size in words per task.
    pub avg_wr_words: f64,
    /// Mean instructions per task.
    pub avg_instrs: f64,
    /// Fraction of tasks whose reads include a word some *earlier* task
    /// writes (upward exposed sharing — squash candidates).
    pub cross_task_read_frac: f64,
}

/// Computes [`TlsWorkloadStats`] for a workload.
pub fn tls_workload_stats(w: &TlsWorkload) -> TlsWorkloadStats {
    let mut rd_total = 0usize;
    let mut wr_total = 0usize;
    let mut instr_total = 0u64;
    let mut cross = 0usize;
    let mut written_before: HashSet<WordAddr> = HashSet::new();

    for t in &w.tasks {
        let mut rd: HashSet<WordAddr> = HashSet::new();
        let mut wr: HashSet<WordAddr> = HashSet::new();
        for op in &t.ops {
            match op {
                TlsOp::Read(a) => {
                    rd.insert(a.word());
                }
                TlsOp::Write(a) => {
                    wr.insert(a.word());
                }
                _ => {}
            }
        }
        instr_total += t.instr_count();
        rd_total += rd.len();
        wr_total += wr.len();
        if rd.iter().any(|w| written_before.contains(w)) {
            cross += 1;
        }
        written_before.extend(wr);
    }
    let n = w.tasks.len().max(1) as f64;
    TlsWorkloadStats {
        tasks: w.tasks.len(),
        avg_rd_words: rd_total as f64 / n,
        avg_wr_words: wr_total as f64 / n,
        avg_instrs: instr_total as f64 / n,
        cross_task_read_frac: cross as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn tm_stats_track_table7_targets() {
        for p in profiles::tm_profiles() {
            let mut p = p;
            p.txs_per_thread = 20;
            let w = p.generate(11);
            let s = tm_workload_stats(&w);
            assert_eq!(s.transactions, p.threads * p.txs_per_thread, "{}", p.name);
            assert!(
                (s.avg_rd_lines - p.rd_lines).abs() < p.rd_lines * 0.35,
                "{}: rd {} vs {}",
                p.name,
                s.avg_rd_lines,
                p.rd_lines
            );
            assert!(
                (s.avg_wr_lines - p.wr_lines).abs() < p.wr_lines * 0.35,
                "{}: wr {} vs {}",
                p.name,
                s.avg_wr_lines,
                p.wr_lines
            );
            if p.nest_prob > 0.0 {
                assert!(s.nested_frac > 0.0, "{}", p.name);
            }
            assert!(s.non_tx_accesses > 0, "{}", p.name);
            assert!(s.shared_written_lines > 0, "{}: contention exists", p.name);
        }
    }

    #[test]
    fn tls_stats_track_table6_targets() {
        for p in profiles::tls_profiles() {
            let mut p = p;
            p.tasks = 150;
            let w = p.generate(11);
            let s = tls_workload_stats(&w);
            assert_eq!(s.tasks, 150);
            // Generators overshoot raw reads ~1.4x to compensate for set
            // dedup; the deduplicated footprint should be near the target.
            assert!(
                (s.avg_rd_words - p.rd_words).abs() < p.rd_words * 0.45,
                "{}: rd {} vs {}",
                p.name,
                s.avg_rd_words,
                p.rd_words
            );
            assert!(s.avg_instrs > 0.0);
            assert!(
                s.cross_task_read_frac > 0.0,
                "{}: tasks must share (live-ins / violations)",
                p.name
            );
        }
    }

    #[test]
    fn empty_workloads_are_safe() {
        let s = tm_workload_stats(&TmWorkload::default());
        assert_eq!(s.transactions, 0);
        let s = tls_workload_stats(&TlsWorkload::default());
        assert_eq!(s.tasks, 0);
    }
}
