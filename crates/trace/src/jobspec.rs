//! Job specifications for the `bulkd` daemon: one line-delimited JSON
//! object per submitted run, naming the machine, application profile,
//! scheme, seed and runtime.
//!
//! The wire format is a *flat* JSON object — string, unsigned-integer
//! and boolean values only, no nesting — parsed by a hand-rolled,
//! dependency-free reader with typed errors. A spec round-trips through
//! [`JobSpec::to_json_line`] deterministically, so the daemon can echo
//! the canonical form of what it accepted and two submissions of the
//! same spec compare byte-identically.
//!
//! ```
//! use bulk_trace::jobspec::JobSpec;
//!
//! let spec = JobSpec::parse(
//!     r#"{"machine": "tm", "app": "mc", "scheme": "bulk", "seed": 7}"#,
//! ).unwrap();
//! assert_eq!(spec.machine, bulk_trace::jobspec::Machine::Tm);
//! assert_eq!(spec.seed, 7);
//! assert_eq!(spec.runtime, bulk_trace::jobspec::JobRuntime::Sim);
//! ```

use std::fmt;

/// Which machine family a job drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// The transactional-memory machine (`bulk tm`).
    Tm,
    /// The thread-level-speculation machine (`bulk tls`).
    Tls,
}

impl Machine {
    /// Stable lowercase name (`tm` / `tls`), as used on the wire and in
    /// scrape labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Machine::Tm => "tm",
            Machine::Tls => "tls",
        }
    }
}

/// Which execution substrate runs the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobRuntime {
    /// The deterministic simulator (the oracle).
    Sim,
    /// The parallel runtime on real OS threads.
    Par,
}

impl JobRuntime {
    /// Stable lowercase name (`sim` / `par`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobRuntime::Sim => "sim",
            JobRuntime::Par => "par",
        }
    }
}

/// A typed job-spec parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpecError {
    /// The line is not a flat JSON object of string/number/bool values.
    Malformed(String),
    /// A required key is absent.
    MissingKey(&'static str),
    /// A key holds a value of the wrong JSON type.
    WrongType {
        /// The offending key.
        key: String,
        /// The JSON type the key requires.
        expected: &'static str,
    },
    /// A key holds an unrecognized enumeration value.
    BadValue {
        /// The offending key.
        key: &'static str,
        /// The value submitted.
        value: String,
        /// Human-readable list of accepted values.
        allowed: &'static str,
    },
    /// The object contains a key the daemon does not understand —
    /// rejected rather than ignored so a typo never silently changes a
    /// run.
    UnknownKey(String),
}

impl fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSpecError::Malformed(m) => write!(f, "malformed job spec: {m}"),
            JobSpecError::MissingKey(k) => write!(f, "job spec missing required key `{k}`"),
            JobSpecError::WrongType { key, expected } => {
                write!(f, "job spec key `{key}` must be a {expected}")
            }
            JobSpecError::BadValue { key, value, allowed } => {
                write!(f, "job spec key `{key}`: `{value}` is not one of {allowed}")
            }
            JobSpecError::UnknownKey(k) => write!(f, "job spec has unknown key `{k}`"),
        }
    }
}

impl std::error::Error for JobSpecError {}

/// A scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// A JSON string (unescaped).
    Str(String),
    /// A non-negative integer (the only number shape specs use).
    Num(u64),
    /// A JSON boolean.
    Bool(bool),
}

/// Parses one line as a flat JSON object (`{"k": "v", "n": 3, …}`):
/// string keys, scalar values, no nesting, duplicate keys rejected.
/// Shared by [`JobSpec::parse`] and the daemon's control commands.
///
/// # Errors
///
/// Returns [`JobSpecError::Malformed`] describing the first syntax
/// problem.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, FlatValue)>, JobSpecError> {
    let mut p = Parser { s: line.as_bytes(), i: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out: Vec<(String, FlatValue)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.i += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if out.iter().any(|(k, _)| *k == key) {
                return Err(JobSpecError::Malformed(format!("duplicate key `{key}`")));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(JobSpecError::Malformed(format!(
                        "expected `,` or `}}`, found {other:?}"
                    )))
                }
            }
        }
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(JobSpecError::Malformed("trailing bytes after object".to_string()));
    }
    Ok(out)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JobSpecError> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(JobSpecError::Malformed(format!(
                "expected `{}`, found {got:?}",
                b as char
            ))),
        }
    }

    fn string(&mut self) -> Result<String, JobSpecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(JobSpecError::Malformed("unterminated string".to_string())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or_else(|| {
                                JobSpecError::Malformed("truncated \\u escape".to_string())
                            })?;
                            let v = (d as char).to_digit(16).ok_or_else(|| {
                                JobSpecError::Malformed("bad \\u escape digit".to_string())
                            })?;
                            code = code * 16 + v;
                        }
                        // Specs are BMP-only; surrogates are rejected.
                        let c = char::from_u32(code).ok_or_else(|| {
                            JobSpecError::Malformed(format!("\\u{code:04x} is not a scalar value"))
                        })?;
                        out.push(c);
                    }
                    other => {
                        return Err(JobSpecError::Malformed(format!("bad escape {other:?}")))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(JobSpecError::Malformed("raw control char in string".to_string()))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.i - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self.s.get(start..end).ok_or_else(|| {
                        JobSpecError::Malformed("truncated UTF-8 sequence".to_string())
                    })?;
                    let s = std::str::from_utf8(chunk).map_err(|_| {
                        JobSpecError::Malformed("invalid UTF-8 in string".to_string())
                    })?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<FlatValue, JobSpecError> {
        match self.peek() {
            Some(b'"') => Ok(FlatValue::Str(self.string()?)),
            Some(b't') => self.literal("true", FlatValue::Bool(true)),
            Some(b'f') => self.literal("false", FlatValue::Bool(false)),
            Some(b'0'..=b'9') => {
                let start = self.i;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.i += 1;
                }
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return Err(JobSpecError::Malformed(
                        "job specs take non-negative integers only".to_string(),
                    ));
                }
                let text = std::str::from_utf8(&self.s[start..self.i]).expect("digits are ascii");
                let n = text.parse().map_err(|_| {
                    JobSpecError::Malformed(format!("number out of range: `{text}`"))
                })?;
                Ok(FlatValue::Num(n))
            }
            Some(b'{') | Some(b'[') => Err(JobSpecError::Malformed(
                "job specs are flat objects; nested values are not allowed".to_string(),
            )),
            other => Err(JobSpecError::Malformed(format!("unexpected value start {other:?}"))),
        }
    }

    fn literal(&mut self, lit: &str, v: FlatValue) -> Result<FlatValue, JobSpecError> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(JobSpecError::Malformed(format!("bad literal (expected `{lit}`)")))
        }
    }
}

/// One submitted run: what to execute and under which substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen job name; the daemon generates `job-<n>` if absent.
    pub id: Option<String>,
    /// TM or TLS.
    pub machine: Machine,
    /// Application profile name (see `bulk list`).
    pub app: String,
    /// Scheme name in CLI kebab form (`bulk`, `eager`, `lazy`, …);
    /// validated downstream by the machine crates' `FromStr`.
    pub scheme: String,
    /// Workload seed (default 42, like the CLI).
    pub seed: u64,
    /// Execution substrate (default sim).
    pub runtime: JobRuntime,
    /// TM: transactions per thread override.
    pub txs: Option<u64>,
    /// TLS: task-count override.
    pub tasks: Option<u64>,
    /// Wall-clock budget for the run; the daemon's default applies if
    /// absent. `0` disables the watchdog for this job.
    pub timeout_ms: Option<u64>,
    /// Test hook: stall the worker this long *before* running, so a
    /// hung job (and the watchdog that reaps it) can be exercised
    /// deterministically.
    pub hang_ms: Option<u64>,
}

impl JobSpec {
    /// Parses one line-delimited JSON job spec.
    ///
    /// # Errors
    ///
    /// Returns a typed [`JobSpecError`]; unknown keys are rejected.
    pub fn parse(line: &str) -> Result<JobSpec, JobSpecError> {
        let pairs = parse_flat_object(line)?;
        let mut spec = JobSpec {
            id: None,
            machine: Machine::Tm,
            app: String::new(),
            scheme: String::new(),
            seed: 42,
            runtime: JobRuntime::Sim,
            txs: None,
            tasks: None,
            timeout_ms: None,
            hang_ms: None,
        };
        let (mut saw_machine, mut saw_app, mut saw_scheme) = (false, false, false);
        for (key, value) in pairs {
            match key.as_str() {
                "id" => spec.id = Some(take_str(&key, value)?),
                "machine" => {
                    saw_machine = true;
                    spec.machine = match take_str(&key, value)?.as_str() {
                        "tm" => Machine::Tm,
                        "tls" => Machine::Tls,
                        other => {
                            return Err(JobSpecError::BadValue {
                                key: "machine",
                                value: other.to_string(),
                                allowed: "`tm`, `tls`",
                            })
                        }
                    };
                }
                "app" => {
                    saw_app = true;
                    spec.app = take_str(&key, value)?;
                }
                "scheme" => {
                    saw_scheme = true;
                    spec.scheme = take_str(&key, value)?;
                }
                "seed" => spec.seed = take_num(&key, value)?,
                "runtime" => {
                    spec.runtime = match take_str(&key, value)?.as_str() {
                        "sim" => JobRuntime::Sim,
                        "par" => JobRuntime::Par,
                        other => {
                            return Err(JobSpecError::BadValue {
                                key: "runtime",
                                value: other.to_string(),
                                allowed: "`sim`, `par`",
                            })
                        }
                    };
                }
                "txs" => spec.txs = Some(take_num(&key, value)?),
                "tasks" => spec.tasks = Some(take_num(&key, value)?),
                "timeout_ms" => spec.timeout_ms = Some(take_num(&key, value)?),
                "hang_ms" => spec.hang_ms = Some(take_num(&key, value)?),
                _ => return Err(JobSpecError::UnknownKey(key)),
            }
        }
        if !saw_machine {
            return Err(JobSpecError::MissingKey("machine"));
        }
        if !saw_app {
            return Err(JobSpecError::MissingKey("app"));
        }
        if !saw_scheme {
            return Err(JobSpecError::MissingKey("scheme"));
        }
        Ok(spec)
    }

    /// The canonical one-line JSON form: fixed key order, optional keys
    /// omitted when unset. Deterministic, so identical specs serialize
    /// byte-identically regardless of the submission's key order.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        if let Some(id) = &self.id {
            out.push_str(&format!("\"id\": \"{}\", ", escape(id)));
        }
        out.push_str(&format!(
            "\"machine\": \"{}\", \"app\": \"{}\", \"scheme\": \"{}\", \"seed\": {}, \
             \"runtime\": \"{}\"",
            self.machine.as_str(),
            escape(&self.app),
            escape(&self.scheme),
            self.seed,
            self.runtime.as_str()
        ));
        if let Some(v) = self.txs {
            out.push_str(&format!(", \"txs\": {v}"));
        }
        if let Some(v) = self.tasks {
            out.push_str(&format!(", \"tasks\": {v}"));
        }
        if let Some(v) = self.timeout_ms {
            out.push_str(&format!(", \"timeout_ms\": {v}"));
        }
        if let Some(v) = self.hang_ms {
            out.push_str(&format!(", \"hang_ms\": {v}"));
        }
        out.push('}');
        out
    }
}

fn take_str(key: &str, v: FlatValue) -> Result<String, JobSpecError> {
    match v {
        FlatValue::Str(s) => Ok(s),
        _ => Err(JobSpecError::WrongType { key: key.to_string(), expected: "string" }),
    }
}

fn take_num(key: &str, v: FlatValue) -> Result<u64, JobSpecError> {
    match v {
        FlatValue::Num(n) => Ok(n),
        _ => Err(JobSpecError::WrongType { key: key.to_string(), expected: "number" }),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_tm_spec_with_defaults() {
        let s = JobSpec::parse(r#"{"machine": "tm", "app": "mc", "scheme": "bulk"}"#).unwrap();
        assert_eq!(s.machine, Machine::Tm);
        assert_eq!(s.app, "mc");
        assert_eq!(s.scheme, "bulk");
        assert_eq!(s.seed, 42);
        assert_eq!(s.runtime, JobRuntime::Sim);
        assert_eq!(s.id, None);
        assert_eq!(s.timeout_ms, None);
    }

    #[test]
    fn parses_full_tls_par_spec() {
        let s = JobSpec::parse(
            r#"{"id": "j1", "machine": "tls", "app": "gzip", "scheme": "bulk",
                "seed": 7, "runtime": "par", "tasks": 60, "timeout_ms": 5000}"#,
        )
        .unwrap();
        assert_eq!(s.id.as_deref(), Some("j1"));
        assert_eq!(s.machine, Machine::Tls);
        assert_eq!(s.runtime, JobRuntime::Par);
        assert_eq!(s.tasks, Some(60));
        assert_eq!(s.timeout_ms, Some(5000));
    }

    #[test]
    fn missing_required_keys_are_typed() {
        assert_eq!(
            JobSpec::parse(r#"{"machine": "tm", "scheme": "bulk"}"#),
            Err(JobSpecError::MissingKey("app"))
        );
        assert_eq!(
            JobSpec::parse(r#"{"app": "mc", "scheme": "bulk"}"#),
            Err(JobSpecError::MissingKey("machine"))
        );
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        assert_eq!(
            JobSpec::parse(r#"{"machine": "tm", "app": "mc", "scheme": "bulk", "sede": 3}"#),
            Err(JobSpecError::UnknownKey("sede".to_string()))
        );
        assert!(matches!(
            JobSpec::parse(r#"{"machine": "gpu", "app": "mc", "scheme": "bulk"}"#),
            Err(JobSpecError::BadValue { key: "machine", .. })
        ));
        assert!(matches!(
            JobSpec::parse(r#"{"machine": "tm", "app": "mc", "scheme": "bulk", "seed": "x"}"#),
            Err(JobSpecError::WrongType { .. })
        ));
    }

    #[test]
    fn nested_and_malformed_objects_are_rejected() {
        assert!(matches!(
            JobSpec::parse(r#"{"machine": {"x": 1}, "app": "mc", "scheme": "bulk"}"#),
            Err(JobSpecError::Malformed(_))
        ));
        assert!(matches!(JobSpec::parse("not json"), Err(JobSpecError::Malformed(_))));
        assert!(matches!(
            JobSpec::parse(r#"{"a": 1} trailing"#),
            Err(JobSpecError::Malformed(_))
        ));
        assert!(matches!(
            JobSpec::parse(r#"{"a": 1, "a": 2}"#),
            Err(JobSpecError::Malformed(_))
        ));
        assert!(matches!(
            JobSpec::parse(r#"{"seed": 1.5, "machine": "tm"}"#),
            Err(JobSpecError::Malformed(_))
        ));
    }

    #[test]
    fn string_escapes_round_trip() {
        let pairs =
            parse_flat_object(r#"{"k": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(pairs[0].1, FlatValue::Str("a\"b\\c\ndA".to_string()));
    }

    #[test]
    fn canonical_line_is_key_order_independent() {
        let a = JobSpec::parse(
            r#"{"scheme": "bulk", "seed": 9, "machine": "tm", "app": "mc"}"#,
        )
        .unwrap();
        let b = JobSpec::parse(
            r#"{"machine": "tm", "app": "mc", "seed": 9, "scheme": "bulk"}"#,
        )
        .unwrap();
        assert_eq!(a.to_json_line(), b.to_json_line());
        // And the canonical line re-parses to the same spec.
        assert_eq!(JobSpec::parse(&a.to_json_line()).unwrap(), a);
    }

    #[test]
    fn empty_object_parses_as_no_pairs() {
        assert_eq!(parse_flat_object("{}").unwrap(), vec![]);
        assert_eq!(parse_flat_object("  { }  ").unwrap(), vec![]);
    }
}
