//! Trace operation types consumed by the TM and TLS runtimes.

use bulk_mem::Addr;
use std::fmt;

/// A structural defect in a thread or task trace, reported by
/// [`ThreadTrace::validate`] / [`TaskTrace::validate`]. Machine
/// construction surfaces this as a typed error instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An `End` with no open transaction.
    UnmatchedEnd {
        /// Index of the offending op.
        op: usize,
    },
    /// Transactions still open at the end of the trace.
    UnclosedTransactions {
        /// How many `Begin`s were never closed.
        open: usize,
    },
    /// Nesting exceeded the runtime's supported depth.
    NestingTooDeep {
        /// The depth that was reached.
        depth: usize,
        /// Index of the `Begin` that exceeded it.
        op: usize,
        /// The supported maximum.
        max: usize,
    },
    /// A task trace with more than one `Spawn`.
    MultipleSpawns {
        /// Index of the first `Spawn`.
        first: usize,
        /// Index of the offending second `Spawn`.
        second: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnmatchedEnd { op } => write!(f, "unmatched End at op {op}"),
            TraceError::UnclosedTransactions { open } => {
                write!(f, "{open} unclosed transactions at end of trace")
            }
            TraceError::NestingTooDeep { depth, op, max } => {
                write!(f, "nesting depth {depth} at op {op} exceeds supported maximum {max}")
            }
            TraceError::MultipleSpawns { first, second } => {
                write!(f, "second Spawn at op {second} (first at op {first})")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One operation of a TM thread trace. Accesses between [`TmOp::Begin`]
/// and its matching [`TmOp::End`] are transactional; `Begin` nests
/// (closed nesting, paper §6.2.1). Accesses outside any transaction are
/// non-speculative and send individual invalidations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmOp {
    /// Begin a (possibly nested) transaction.
    Begin,
    /// End the innermost open transaction; ending the outermost commits.
    End,
    /// Load from a byte address.
    Read(Addr),
    /// Store to a byte address.
    Write(Addr),
    /// `n` non-memory instructions.
    Compute(u32),
}

/// The full operation sequence of one TM thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Operations in program order.
    pub ops: Vec<TmOp>,
}

impl ThreadTrace {
    /// Validates nesting: every `End` has a matching `Begin`, all
    /// transactions are closed by the end of the trace, and transactional
    /// nesting never exceeds `max_depth`.
    pub fn validate(&self, max_depth: usize) -> Result<(), TraceError> {
        let mut depth = 0usize;
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                TmOp::Begin => {
                    depth += 1;
                    if depth > max_depth {
                        return Err(TraceError::NestingTooDeep { depth, op: i, max: max_depth });
                    }
                }
                TmOp::End => {
                    depth = depth.checked_sub(1).ok_or(TraceError::UnmatchedEnd { op: i })?;
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(TraceError::UnclosedTransactions { open: depth });
        }
        Ok(())
    }

    /// Number of transactional memory accesses (within any transaction).
    pub fn tx_access_count(&self) -> usize {
        let mut depth = 0usize;
        let mut n = 0usize;
        for op in &self.ops {
            match op {
                TmOp::Begin => depth += 1,
                TmOp::End => depth -= 1,
                TmOp::Read(_) | TmOp::Write(_) if depth > 0 => n += 1,
                _ => {}
            }
        }
        n
    }
}

/// A TM workload: one trace per thread/processor.
#[derive(Debug, Clone, Default)]
pub struct TmWorkload {
    /// Workload name (the paper's application name it stands in for).
    pub name: String,
    /// One trace per thread.
    pub threads: Vec<ThreadTrace>,
}

/// One operation of a TLS task trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsOp {
    /// Load from a byte address.
    Read(Addr),
    /// Store to a byte address.
    Write(Addr),
    /// `n` non-memory instructions.
    Compute(u32),
    /// Spawn the successor task. At most one per task; tasks without an
    /// explicit `Spawn` spawn their successor at completion.
    Spawn,
}

/// The operations of one TLS task, in sequential program order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskTrace {
    /// Operations in program order.
    pub ops: Vec<TlsOp>,
}

impl TaskTrace {
    /// Validates the task shape: at most one `Spawn` per task (a task
    /// spawns at most its one successor, paper §2.2).
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut first = None;
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op, TlsOp::Spawn) {
                match first {
                    None => first = Some(i),
                    Some(f) => return Err(TraceError::MultipleSpawns { first: f, second: i }),
                }
            }
        }
        Ok(())
    }

    /// Index of the `Spawn` op, if present.
    pub fn spawn_index(&self) -> Option<usize> {
        self.ops.iter().position(|op| matches!(op, TlsOp::Spawn))
    }

    /// Total instruction count (memory ops count as one instruction each).
    pub fn instr_count(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TlsOp::Compute(n) => u64::from(*n),
                TlsOp::Spawn => 1,
                _ => 1,
            })
            .sum()
    }
}

/// A TLS workload: the ordered task list of a sequential program.
#[derive(Debug, Clone, Default)]
pub struct TlsWorkload {
    /// Workload name (the SPECint application it stands in for).
    pub name: String,
    /// Tasks in sequential order.
    pub tasks: Vec<TaskTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_flat_and_nested() {
        let t = ThreadTrace {
            ops: vec![
                TmOp::Begin,
                TmOp::Read(Addr::new(0)),
                TmOp::Begin,
                TmOp::Write(Addr::new(4)),
                TmOp::End,
                TmOp::End,
            ],
        };
        assert!(t.validate(2).is_ok());
        assert!(t.validate(1).is_err());
    }

    #[test]
    fn validate_rejects_unbalanced() {
        assert!(ThreadTrace { ops: vec![TmOp::End] }.validate(4).is_err());
        assert!(ThreadTrace { ops: vec![TmOp::Begin] }.validate(4).is_err());
    }

    #[test]
    fn tx_access_count_ignores_non_tx() {
        let t = ThreadTrace {
            ops: vec![
                TmOp::Read(Addr::new(0)), // non-tx
                TmOp::Begin,
                TmOp::Write(Addr::new(4)),
                TmOp::End,
            ],
        };
        assert_eq!(t.tx_access_count(), 1);
    }

    #[test]
    fn validate_reports_typed_errors() {
        let t = ThreadTrace { ops: vec![TmOp::End] };
        assert_eq!(t.validate(4), Err(TraceError::UnmatchedEnd { op: 0 }));
        let t = ThreadTrace { ops: vec![TmOp::Begin, TmOp::Begin, TmOp::End] };
        assert_eq!(t.validate(4), Err(TraceError::UnclosedTransactions { open: 1 }));
        assert_eq!(
            t.validate(1),
            Err(TraceError::NestingTooDeep { depth: 2, op: 1, max: 1 })
        );
    }

    #[test]
    fn task_validate_rejects_double_spawn() {
        let t = TaskTrace { ops: vec![TlsOp::Spawn, TlsOp::Compute(1), TlsOp::Spawn] };
        assert_eq!(t.validate(), Err(TraceError::MultipleSpawns { first: 0, second: 2 }));
        assert!(TaskTrace { ops: vec![TlsOp::Spawn] }.validate().is_ok());
        assert!(TaskTrace::default().validate().is_ok());
    }

    #[test]
    fn spawn_index_and_instr_count() {
        let t = TaskTrace {
            ops: vec![
                TlsOp::Write(Addr::new(0)),
                TlsOp::Compute(10),
                TlsOp::Spawn,
                TlsOp::Read(Addr::new(4)),
            ],
        };
        assert_eq!(t.spawn_index(), Some(2));
        assert_eq!(t.instr_count(), 13);
        assert_eq!(TaskTrace::default().spawn_index(), None);
    }
}
