//! The pathological SPECjbb2000 code patterns of the paper's Fig. 12,
//! as two-thread microbenchmark traces.

use bulk_mem::Addr;

use crate::{ThreadTrace, TmOp, TmWorkload};

/// The contended word both patterns fight over (the first hot line).
pub fn contended() -> Addr {
    Addr::new(crate::tm_region_line(0, 0).raw() << 6)
}

/// Fig. 12(a): two threads repeatedly read **and** write the same location
/// inside a transaction. Under naive Eager conflict handling each thread's
/// store squashes the other's read, livelocking; the paper's fix lets the
/// longer-running thread proceed while the other stalls. Lazy and Bulk are
/// immune (conflicts resolve at commit).
pub fn fig12a_livelock(iterations: usize, gap: u32) -> TmWorkload {
    let thread = |phase: u32| {
        let mut ops = Vec::new();
        ops.push(TmOp::Compute(phase)); // slight initial skew
        for _ in 0..iterations {
            ops.push(TmOp::Begin);
            ops.push(TmOp::Read(contended()));
            ops.push(TmOp::Compute(gap));
            ops.push(TmOp::Write(contended()));
            ops.push(TmOp::Compute(gap));
            ops.push(TmOp::End);
            ops.push(TmOp::Compute(5));
        }
        ThreadTrace { ops }
    };
    TmWorkload { name: "fig12a".to_string(), threads: vec![thread(0), thread(3)] }
}

/// Fig. 12(b): thread 1 runs a short transaction that reads `A`; thread 2
/// runs a longer transaction that writes `A` mid-flight. Eager squashes
/// thread 1 at the store; Lazy commits thread 1 before thread 2's commit
/// broadcast arrives, so no squash occurs.
pub fn fig12b_eager_only_squash(iterations: usize) -> TmWorkload {
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for _ in 0..iterations {
        // Thread 1: short reader.
        t1.push(TmOp::Begin);
        t1.push(TmOp::Read(contended()));
        t1.push(TmOp::Compute(40));
        t1.push(TmOp::End);
        t1.push(TmOp::Compute(200));
        // Thread 2: long writer; the store lands while thread 1 is reading.
        t2.push(TmOp::Begin);
        t2.push(TmOp::Compute(20));
        t2.push(TmOp::Write(contended()));
        t2.push(TmOp::Compute(300));
        t2.push(TmOp::End);
    }
    TmWorkload {
        name: "fig12b".to_string(),
        threads: vec![ThreadTrace { ops: t1 }, ThreadTrace { ops: t2 }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn livelock_pattern_shape() {
        let w = fig12a_livelock(10, 50);
        assert_eq!(w.threads.len(), 2);
        for t in &w.threads {
            t.validate(1).unwrap();
            let reads = t.ops.iter().filter(|o| matches!(o, TmOp::Read(_))).count();
            let writes = t.ops.iter().filter(|o| matches!(o, TmOp::Write(_))).count();
            assert_eq!(reads, 10);
            assert_eq!(writes, 10);
        }
    }

    #[test]
    fn fig12b_reader_is_shorter_than_writer() {
        let w = fig12b_eager_only_squash(5);
        let instrs = |t: &ThreadTrace| -> u64 {
            t.ops
                .iter()
                .map(|o| match o {
                    TmOp::Compute(n) => u64::from(*n),
                    _ => 1,
                })
                .sum()
        };
        // Per iteration the reader tx itself is much shorter.
        assert!(instrs(&w.threads[0]) < instrs(&w.threads[1]));
        for t in &w.threads {
            t.validate(1).unwrap();
        }
    }
}
