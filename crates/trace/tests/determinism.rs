//! Workload-generation reproducibility: the contract EXPERIMENTS.md
//! relies on. Identical seeds must yield *byte-identical* workloads (the
//! serialized trace text is the byte-level witness), and different seeds
//! must actually vary the workload.

use bulk_trace::{io, profiles};

/// Two generations of every TM profile with the same seed serialize to
/// byte-identical traces.
#[test]
fn tm_profiles_double_generation_is_byte_identical() {
    for p in profiles::tm_profiles() {
        let a = io::tm_to_string(&p.generate(42));
        let b = io::tm_to_string(&p.generate(42));
        assert!(!a.is_empty());
        assert_eq!(a.as_bytes(), b.as_bytes(), "profile {} not reproducible", p.name);
    }
}

/// Same for every TLS profile.
#[test]
fn tls_profiles_double_generation_is_byte_identical() {
    for p in profiles::tls_profiles() {
        let a = io::tls_to_string(&p.generate(42));
        let b = io::tls_to_string(&p.generate(42));
        assert!(!a.is_empty());
        assert_eq!(a.as_bytes(), b.as_bytes(), "profile {} not reproducible", p.name);
    }
}

/// Different seeds produce different workloads (the seed is actually
/// threaded through generation, not ignored).
#[test]
fn different_seeds_differ() {
    let tm = &profiles::tm_profiles()[0];
    assert_ne!(
        io::tm_to_string(&tm.generate(42)),
        io::tm_to_string(&tm.generate(43)),
        "TM profile {} ignores its seed",
        tm.name
    );
    let tls = &profiles::tls_profiles()[0];
    assert_ne!(
        io::tls_to_string(&tls.generate(42)),
        io::tls_to_string(&tls.generate(43)),
        "TLS profile {} ignores its seed",
        tls.name
    );
}

/// Serialization round-trips, so the byte-level comparison above is a
/// faithful witness of the in-memory workload.
#[test]
fn byte_witness_round_trips() {
    let p = &profiles::tm_profiles()[0];
    let w = p.generate(7);
    let restored = io::tm_from_str(&io::tm_to_string(&w)).expect("round trip");
    assert_eq!(w.threads, restored.threads);
}
