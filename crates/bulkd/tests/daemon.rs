//! End-to-end daemon tests: concurrent mixed-runtime jobs, streaming
//! determinism, a parse-checked Prometheus scrape under load, and the
//! hung-job watchdog.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bulkd::client::{self, Submission};
use bulkd::{spawn, DaemonConfig};

fn start(max_jobs: usize, default_timeout_ms: u64) -> Arc<bulkd::DaemonHandle> {
    Arc::new(
        spawn(DaemonConfig {
            max_jobs,
            default_timeout_ms,
            ..DaemonConfig::default()
        })
        .expect("daemon must bind loopback"),
    )
}

fn submit(handle: &bulkd::DaemonHandle, spec: &str) -> Submission {
    client::submit_spec(&handle.ingest_addr().to_string(), spec).expect("submit I/O")
}

#[test]
fn concurrent_mixed_jobs_stream_jsonl_and_scrape_is_well_formed() {
    let handle = start(8, 30_000);
    // Three concurrent jobs, mixed machines and runtimes, as the
    // acceptance criteria demand: TM sim, TLS sim, TM on real threads.
    let specs = [
        r#"{"id": "tm-sim", "machine": "tm", "app": "cb", "scheme": "bulk", "seed": 7}"#,
        r#"{"id": "tls-sim", "machine": "tls", "app": "bzip2", "scheme": "bulk", "seed": 9}"#,
        r#"{"id": "tm-par", "machine": "tm", "app": "cb", "scheme": "lazy", "seed": 11, "runtime": "par"}"#,
    ];
    let mut joins = Vec::new();
    for spec in specs {
        let h = Arc::clone(&handle);
        let spec = spec.to_string();
        joins.push(thread::spawn(move || submit(&h, &spec)));
    }
    // Scrape while the jobs are in flight; the exposition must already
    // be well-formed mid-run.
    let midrun = client::scrape(&handle.http_addr().to_string()).expect("mid-run scrape");
    bulk_obs::prometheus::validate(&midrun).expect("mid-run exposition parses");
    let results: Vec<Submission> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    for (spec, r) in specs.iter().zip(&results) {
        assert!(r.ok(), "spec {spec} failed: {}", r.last());
        assert!(r.job.is_some(), "accepted line must carry the job id");
        assert!(
            r.lines.iter().any(|l| l.starts_with("{\"trailer\"")),
            "stream must end with a trailer accounting line"
        );
    }
    // Sim jobs stream real protocol events; the par runtime reports
    // stats instead (no simulated clock), so only check the sim two.
    for r in &results[..2] {
        assert!(
            r.lines.iter().any(|l| l.contains("\"event\": \"commit_broadcast\"")),
            "sim job streamed no commit events: {:?}",
            r.lines.iter().take(3).collect::<Vec<_>>()
        );
    }

    // The post-run scrape carries per-job labelled series and parses.
    let body = client::scrape(&handle.http_addr().to_string()).expect("scrape");
    let (families, samples) =
        bulk_obs::prometheus::validate(&body).expect("exposition must parse");
    assert!(families >= 3, "expected several metric families, got {families}");
    assert!(samples > 20, "expected a real exposition, got {samples} samples");
    let parsed = bulk_obs::prometheus::parse_exposition(&body).expect("parse");
    let commits = parsed
        .samples
        .iter()
        .filter(|s| s.name == "bulk_tm_commits")
        .collect::<Vec<_>>();
    assert!(
        commits
            .iter()
            .any(|s| s.labels.iter().any(|(k, v)| k == "job" && v == "tm-sim")),
        "per-job `job` label missing from tm commit samples"
    );
    assert!(
        commits
            .iter()
            .all(|s| s.labels.iter().any(|(k, _)| k == "machine")
                && s.labels.iter().any(|(k, _)| k == "scheme")),
        "machine/scheme labels missing"
    );
    // Satellite 6: stream-accounting gauges are exposed per job.
    assert!(
        parsed.samples.iter().any(|s| s.name == "bulk_events_dropped"),
        "events.dropped gauge missing from exposition"
    );
    assert!(
        parsed.samples.iter().any(|s| s.name == "bulk_events_buffer_hwm"),
        "buffer high-water gauge missing from exposition"
    );
    // Daemon self-metrics are present unlabelled.
    assert!(
        parsed.samples.iter().any(|s| s.name == "bulk_bulkd_jobs_submitted"
            && s.labels.is_empty()
            && s.value >= 3.0),
        "daemon job counter missing"
    );

    handle.shutdown();
    handle.wait();
}

#[test]
fn same_spec_and_seed_streams_byte_identical_jsonl() {
    let handle = start(4, 30_000);
    let spec_a = r#"{"id": "det-a", "machine": "tm", "app": "moldyn", "scheme": "bulk", "seed": 1234}"#;
    let spec_b = r#"{"id": "det-b", "machine": "tm", "app": "moldyn", "scheme": "bulk", "seed": 1234}"#;
    // Submit concurrently with an unrelated noisy job in between to
    // prove multiplexing cannot bleed into a job's stream.
    let noise = r#"{"id": "noise", "machine": "tls", "app": "mcf", "scheme": "eager", "seed": 5}"#;
    let h2 = Arc::clone(&handle);
    let noise_join = {
        let noise = noise.to_string();
        thread::spawn(move || submit(&h2, &noise))
    };
    let a = submit(&handle, spec_a);
    let b = submit(&handle, spec_b);
    assert!(a.ok() && b.ok(), "{} / {}", a.last(), b.last());
    assert!(noise_join.join().unwrap().ok());
    assert!(
        !a.event_jsonl().is_empty(),
        "determinism check needs a non-empty stream"
    );
    assert_eq!(
        a.event_jsonl(),
        b.event_jsonl(),
        "identical spec+seed must stream byte-identical event JSONL"
    );
    handle.shutdown();
    handle.wait();
}

#[test]
fn hung_job_is_reaped_as_typed_timeout_and_daemon_survives() {
    let handle = start(2, 30_000);
    // hang_ms far exceeds the job's own 80 ms budget: the supervisor
    // must fail the job with a typed liveness violation.
    let hung = r#"{"id": "wedge", "machine": "tm", "app": "cb", "scheme": "bulk", "seed": 3, "timeout_ms": 80, "hang_ms": 60000}"#;
    let t0 = Instant::now();
    let r = submit(&handle, hung);
    assert!(!r.ok(), "hung job must not complete: {}", r.last());
    assert!(
        r.last().contains("\"kind\": \"job-timeout\""),
        "expected typed job-timeout, got: {}",
        r.last()
    );
    assert!(
        r.last().contains("wall-clock budget"),
        "detail should explain the budget: {}",
        r.last()
    );
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "reaper must fire on the timeout, not on hang_ms"
    );
    // The daemon is still fully operational afterwards.
    let after = submit(
        &handle,
        r#"{"machine": "tls", "app": "bzip2", "scheme": "lazy", "seed": 2}"#,
    );
    assert!(after.ok(), "daemon wedged after reaping: {}", after.last());
    let body = client::scrape(&handle.http_addr().to_string()).expect("scrape after reap");
    let parsed = bulk_obs::prometheus::parse_exposition(&body).expect("parse");
    assert_eq!(
        parsed.value("bulk_bulkd_jobs_reaped", &[]),
        Some(1.0),
        "reap counter must record the kill"
    );
    handle.shutdown();
    handle.wait();
}

#[test]
fn control_protocol_and_error_lines_keep_the_connection_usable() {
    let handle = start(2, 30_000);
    let addr = handle.ingest_addr().to_string();
    assert_eq!(client::control(&addr, "ping").unwrap(), "{\"ok\": true}");
    // A malformed spec answers with an error and the daemon stays up.
    let bad = client::submit_spec(&addr, r#"{"machine": "tm"}"#).unwrap();
    assert!(bad.last().starts_with("{\"error\""), "got: {}", bad.last());
    let unknown = client::submit_spec(
        &addr,
        r#"{"machine": "tm", "app": "no-such-app", "scheme": "bulk"}"#,
    )
    .unwrap();
    assert!(unknown.last().contains("unknown TM app"), "got: {}", unknown.last());
    // Duplicate ids are rejected.
    let ok = submit(&handle, r#"{"id": "dup", "machine": "tm", "app": "cb", "scheme": "eager"}"#);
    assert!(ok.ok());
    let dup = submit(&handle, r#"{"id": "dup", "machine": "tm", "app": "cb", "scheme": "eager"}"#);
    assert!(dup.last().contains("already exists"), "got: {}", dup.last());
    // Status reports every job the daemon has seen.
    let status = client::control(&addr, "status").unwrap();
    assert!(status.contains("\"job\": \"dup\""), "got: {status}");
    // /jobs and /healthz are served; unknown paths 404.
    let (code, body) = client::http_get(&handle.http_addr().to_string(), "/jobs").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("\"job\": \"dup\""));
    let (code, _) = client::http_get(&handle.http_addr().to_string(), "/healthz").unwrap();
    assert_eq!(code, 200);
    let (code, _) = client::http_get(&handle.http_addr().to_string(), "/nope").unwrap();
    assert_eq!(code, 404);
    handle.shutdown();
    handle.wait();
}

#[test]
fn shutdown_command_fails_queued_jobs_and_stops_the_daemon() {
    let handle = start(1, 30_000);
    let addr = handle.ingest_addr().to_string();
    let resp = client::control(&addr, "shutdown").unwrap();
    assert!(resp.contains("\"shutting_down\": true"), "got: {resp}");
    // The control command alone must stop the daemon: wait() joins every
    // thread, so a stuck accept loop hangs the test harness here.
    handle.wait();
}
