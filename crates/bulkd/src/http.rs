//! A hand-rolled HTTP/1.1 responder for the scrape endpoint.
//!
//! Only what a Prometheus scraper needs: `GET /metrics` in text
//! exposition format v0.0.4, plus `GET /healthz` and `GET /jobs` for
//! humans. Each response closes the connection (`Connection: close`), so
//! no keep-alive state machine is required.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use bulk_obs::prometheus::{encode, Scope};

use crate::daemon::{json_escape, Shared};

/// Handles one HTTP connection: parse the request, route, respond,
/// close.
pub(crate) fn handle(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers up to the blank line; we need none of them.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(&mut writer, 405, "text/plain; charset=utf-8", "method not allowed\n");
        return;
    }
    match path {
        "/metrics" => {
            shared.registry.counter("bulkd.scrapes").add(1);
            let body = render_metrics(shared);
            respond(
                &mut writer,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => respond(&mut writer, 200, "text/plain; charset=utf-8", "ok\n"),
        "/jobs" => {
            let body = render_jobs(shared);
            respond(&mut writer, 200, "application/json; charset=utf-8", &body);
        }
        _ => respond(&mut writer, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// The full exposition: the daemon's own registry unlabelled, then one
/// labelled scope per job so every sample is attributable to its run.
pub(crate) fn render_metrics(shared: &Shared) -> String {
    let snaps = shared.table.snapshot();
    let (queued, running, done, failed) = shared.table.counts();
    shared.registry.gauge("bulkd.jobs_queued").set(queued);
    shared.registry.gauge("bulkd.jobs_running").set(running);
    shared.registry.gauge("bulkd.jobs_done").set(done);
    shared.registry.gauge("bulkd.jobs_failed_total").set(failed);
    for s in &snaps {
        // Refresh each job's stream gauges (events.dropped, buffer hwm)
        // so the scrape reflects the ring's latest accounting.
        s.obs.publish_stream_stats();
    }
    let mut scopes = vec![Scope::unlabelled(&shared.registry)];
    for s in &snaps {
        scopes.push(Scope::labelled(
            &[
                ("job", s.id.as_str()),
                ("machine", s.spec.machine.as_str()),
                ("scheme", s.spec.scheme.as_str()),
                ("runtime", s.spec.runtime.as_str()),
            ],
            s.obs.registry(),
        ));
    }
    encode(&scopes)
}

/// The job table as a JSON array, one object per job.
fn render_jobs(shared: &Shared) -> String {
    let snaps = shared.table.snapshot();
    let jobs: Vec<String> = snaps
        .iter()
        .map(|s| {
            format!(
                "{{\"job\": \"{}\", \"state\": \"{}\", \"machine\": \"{}\", \"scheme\": \"{}\", \"runtime\": \"{}\", \"seed\": {}}}",
                json_escape(&s.id),
                s.state.as_str(),
                s.spec.machine.as_str(),
                json_escape(&s.spec.scheme),
                s.spec.runtime.as_str(),
                s.spec.seed
            )
        })
        .collect();
    format!("[{}]\n", jobs.join(", "))
}

/// Writes a complete HTTP/1.1 response and flushes.
fn respond(writer: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer
        .write_all(head.as_bytes())
        .and_then(|()| writer.write_all(body.as_bytes()))
        .and_then(|()| writer.flush());
}
