//! `bulkd` — the live telemetry daemon for the Bulk reproduction.
//!
//! The simulator and the parallel runtime produce rich observability
//! (counters, histograms, typed event streams), but until now only as
//! post-hoc files. This crate serves them live:
//!
//! - **Streaming ingest** ([`daemon`]): a TCP socket accepting
//!   line-delimited JSON job specs ([`bulk_trace::jobspec`]); each
//!   accepted job streams its event JSONL back on the same connection as
//!   the run executes.
//! - **Multiplexed runs** ([`job`]): a bounded worker pool runs TM and
//!   TLS jobs concurrently — simulator or real-thread runtime per the
//!   spec — each with its own isolated [`bulk_obs::Obs`] bundle, so
//!   per-seed streams stay byte-deterministic under concurrency.
//! - **Prometheus `/metrics`** ([`http`]): a hand-rolled HTTP/1.1
//!   endpoint exposing every job's registry in text exposition format
//!   v0.0.4 with `job`/`machine`/`scheme`/`runtime` labels
//!   ([`bulk_obs::prometheus`]).
//! - **Typed reaping**: a supervisor turns hung runs into
//!   `job-timeout` liveness failures ([`bulk_live::LivenessKind`]) —
//!   one wedged job never takes the daemon down.
//!
//! [`client`] is the matching blocking client used by the CLI and the
//! integration tests.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod http;
pub mod job;

pub use daemon::{spawn, DaemonConfig, DaemonHandle};
pub use job::{JobSnapshot, JobState, JobTable};
