//! The daemon itself: TCP ingest of line-delimited job specs, per-job
//! JSONL event streaming, a supervisor that reaps stalled runs, and
//! graceful shutdown.
//!
//! Wire protocol (ingest socket, one JSON object per line):
//!
//! - a job spec (`{"machine": "tm", "app": "counter-hot", ...}`) is
//!   answered with an `{"accepted": ...}` line, then the run's event
//!   JSONL streamed live, a `{"trailer": ...}` accounting line, and one
//!   `{"done": ...}` line with the outcome;
//! - a control line (`{"cmd": "ping"|"status"|"shutdown"}`) is answered
//!   with a single JSON line;
//! - a malformed line is answered with `{"error": "..."}` and the
//!   connection stays usable.
//!
//! Jobs from different connections run concurrently (bounded by the
//! worker-slot pool); one connection processes its lines in order.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use bulk_obs::Registry;
use bulk_trace::jobspec::{FlatValue, JobSpec};

use crate::job::{JobState, JobTable};

/// How the daemon listens and bounds its work.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Ingest address (`host:port`; port 0 picks a free port).
    pub listen: String,
    /// HTTP `/metrics` address (`host:port`; port 0 picks a free port).
    pub http: String,
    /// Maximum concurrently-running jobs; later jobs queue.
    pub max_jobs: usize,
    /// Wall-clock budget (ms) for jobs whose spec names none; 0 disables
    /// the watchdog.
    pub default_timeout_ms: u64,
    /// Per-job event-ring capacity (events retained for streaming).
    pub event_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            http: "127.0.0.1:0".to_string(),
            max_jobs: 8,
            default_timeout_ms: 30_000,
            event_capacity: bulk_obs::DEFAULT_EVENT_CAPACITY,
        }
    }
}

/// State shared by every daemon thread.
pub(crate) struct Shared {
    pub(crate) table: JobTable,
    /// Daemon-level metrics (connections, scrapes, job counts), exposed
    /// unlabelled on `/metrics` alongside the labelled per-job scopes.
    pub(crate) registry: Registry,
    pub(crate) shutdown: AtomicBool,
    /// Bound listener addresses, kept so `begin_shutdown` can poke the
    /// accept loops awake from any thread (including a connection
    /// handler serving `{"cmd": "shutdown"}`).
    ingest_addr: std::net::SocketAddr,
    http_addr: std::net::SocketAddr,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Sets the shutdown flag, cancels every non-terminal job, and wakes
    /// both accept loops (they block in `accept`; a throwaway connection
    /// lets them observe the flag and exit). Idempotent.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.table.cancel_all();
        let _ = TcpStream::connect(self.ingest_addr);
        let _ = TcpStream::connect(self.http_addr);
    }
}

/// A running daemon: bound addresses plus shutdown/join handles.
pub struct DaemonHandle {
    ingest_addr: std::net::SocketAddr,
    http_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl DaemonHandle {
    /// The bound ingest address (job submission socket).
    pub fn ingest_addr(&self) -> std::net::SocketAddr {
        self.ingest_addr
    }

    /// The bound HTTP address (`GET /metrics`).
    pub fn http_addr(&self) -> std::net::SocketAddr {
        self.http_addr
    }

    /// Initiates graceful shutdown: cancels every non-terminal job and
    /// wakes the accept loops. Idempotent; does not block.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until every daemon thread (accept loops, supervisor,
    /// connection handlers, job workers) has exited. Call
    /// [`DaemonHandle::shutdown`] first, or this waits forever.
    pub fn wait(&self) {
        loop {
            let handle = self.threads.lock().expect("thread list poisoned").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

fn track(handle: &DaemonHandle, h: JoinHandle<()>) {
    handle.threads.lock().expect("thread list poisoned").push(h);
}

/// Binds both listeners, starts the accept loops and the stall
/// supervisor, and returns immediately.
///
/// # Errors
///
/// Returns the bind error if either address is unusable.
pub fn spawn(cfg: DaemonConfig) -> io::Result<DaemonHandle> {
    let ingest = TcpListener::bind(&cfg.listen)?;
    let http = TcpListener::bind(&cfg.http)?;
    let ingest_addr = ingest.local_addr()?;
    let http_addr = http.local_addr()?;
    let shared = Arc::new(Shared {
        table: JobTable::new(cfg.max_jobs, cfg.default_timeout_ms, cfg.event_capacity),
        registry: Registry::new(),
        shutdown: AtomicBool::new(false),
        ingest_addr,
        http_addr,
    });
    let handle = DaemonHandle {
        ingest_addr,
        http_addr,
        shared: Arc::clone(&shared),
        threads: Mutex::new(Vec::new()),
    };

    // Ingest accept loop: one handler thread per connection.
    {
        let shared = Arc::clone(&shared);
        let h = thread::Builder::new().name("bulkd-ingest".into()).spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for stream in ingest.incoming() {
                if shared.shutting_down() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                if let Ok(h) = thread::Builder::new()
                    .name("bulkd-conn".into())
                    .spawn(move || handle_ingest(stream, &shared))
                {
                    conns.push(h);
                }
            }
            for c in conns {
                let _ = c.join();
            }
        })?;
        track(&handle, h);
    }

    // HTTP accept loop: scrapes are short-lived, handled inline per
    // connection thread.
    {
        let shared = Arc::clone(&shared);
        let h = thread::Builder::new().name("bulkd-http".into()).spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for stream in http.incoming() {
                if shared.shutting_down() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                if let Ok(h) = thread::Builder::new()
                    .name("bulkd-scrape".into())
                    .spawn(move || crate::http::handle(stream, &shared))
                {
                    conns.push(h);
                }
            }
            for c in conns {
                let _ = c.join();
            }
        })?;
        track(&handle, h);
    }

    // Supervisor: turns hung runs into typed `job-timeout` failures so
    // one wedged worker can never wedge the daemon.
    {
        let shared = Arc::clone(&shared);
        let h = thread::Builder::new().name("bulkd-reaper".into()).spawn(move || {
            while !shared.shutting_down() {
                let reaped = shared.table.reap_stalled();
                if reaped > 0 {
                    shared.registry.counter("bulkd.jobs_reaped").add(reaped as u64);
                }
                thread::sleep(Duration::from_millis(20));
            }
        })?;
        track(&handle, h);
    }

    Ok(handle)
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One ingest connection: reads JSON lines, answers each in order.
fn handle_ingest(stream: TcpStream, shared: &Arc<Shared>) {
    shared.registry.counter("bulkd.connections").add(1);
    // A short read timeout lets the handler notice shutdown even while
    // the client is idle, so `wait()` never hangs on an open connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_interruptible(&mut reader, &mut line, shared) {
            ReadOutcome::Line => {}
            ReadOutcome::Eof | ReadOutcome::Shutdown => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response_ended = handle_line(trimmed, &mut writer, shared);
        if response_ended {
            break;
        }
    }
}

enum ReadOutcome {
    Line,
    Eof,
    Shutdown,
}

/// `read_line` that returns [`ReadOutcome::Shutdown`] instead of
/// blocking forever once the daemon is stopping.
fn read_line_interruptible(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shared: &Shared,
) -> ReadOutcome {
    loop {
        match reader.read_line(line) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(_) if line.ends_with('\n') => return ReadOutcome::Line,
            Ok(_) => {
                // Partial line (timeout mid-line); keep accumulating.
                if shared.shutting_down() {
                    return ReadOutcome::Shutdown;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return ReadOutcome::Shutdown;
                }
            }
            Err(_) => return ReadOutcome::Eof,
        }
    }
}

/// Dispatches one line; returns `true` when the connection should close
/// (shutdown command or write failure).
fn handle_line(line: &str, writer: &mut TcpStream, shared: &Arc<Shared>) -> bool {
    // Control lines are flat objects with a `cmd` key; everything else
    // is treated as a job spec.
    if let Ok(pairs) = bulk_trace::jobspec::parse_flat_object(line) {
        if let Some((_, FlatValue::Str(cmd))) = pairs.iter().find(|(k, _)| k == "cmd") {
            return handle_control(cmd, writer, shared);
        }
    }
    let spec = match JobSpec::parse(line) {
        Ok(s) => s,
        Err(e) => {
            return write_line(writer, &format!("{{\"error\": \"{}\"}}", json_escape(&e.to_string())));
        }
    };
    if shared.shutting_down() {
        return write_line(writer, "{\"error\": \"daemon is shutting down\"}");
    }
    let id = match shared.table.submit(spec) {
        Ok(id) => id,
        Err(e) => {
            return write_line(writer, &format!("{{\"error\": \"{}\"}}", json_escape(&e)));
        }
    };
    shared.registry.counter("bulkd.jobs_submitted").add(1);
    let echo = shared
        .table
        .snapshot()
        .into_iter()
        .find(|s| s.id == id)
        .map(|s| s.spec.to_json_line())
        .unwrap_or_else(|| "{}".to_string());
    if write_line(
        writer,
        &format!("{{\"accepted\": true, \"job\": \"{}\", \"spec\": {}}}", json_escape(&id), echo),
    ) {
        return true;
    }
    // Run on a worker thread so the handler can stream events while the
    // job executes.
    {
        let shared = Arc::clone(shared);
        let worker_id = id.clone();
        let _ = thread::Builder::new()
            .name(format!("bulkd-job-{worker_id}"))
            .spawn(move || shared.table.run(&worker_id));
    }
    stream_job(&id, writer, shared)
}

/// Streams a job's event JSONL until it reaches a terminal state, then
/// writes the trailer and done lines. Returns `true` on write failure.
fn stream_job(id: &str, writer: &mut TcpStream, shared: &Shared) -> bool {
    let Some(obs) = shared.table.job_obs(id) else { return true };
    let mut next_seq = 0u64;
    let mut streamed = 0u64;
    let flush_events = |writer: &mut TcpStream, next_seq: &mut u64, streamed: &mut u64| -> bool {
        for e in obs.events().events_after(*next_seq) {
            *next_seq = e.seq + 1;
            *streamed += 1;
            if write_line(writer, &e.to_json_line()) {
                return true;
            }
        }
        false
    };
    loop {
        if flush_events(writer, &mut next_seq, &mut streamed) {
            return true;
        }
        match shared.table.state(id) {
            Some(st) if st.is_terminal() => break,
            Some(_) => thread::sleep(Duration::from_millis(2)),
            None => return true,
        }
    }
    // Final drain: the run finished between the last poll and the state
    // check; pick up whatever it recorded at the end.
    if flush_events(writer, &mut next_seq, &mut streamed) {
        return true;
    }
    obs.publish_stream_stats();
    let dropped = obs.events().dropped();
    if write_line(
        writer,
        &format!("{{\"trailer\": true, \"streamed\": {streamed}, \"dropped\": {dropped}}}"),
    ) {
        return true;
    }
    let Some(snap) = shared.table.snapshot().into_iter().find(|s| s.id == id) else {
        return true;
    };
    let runtime = snap.spec.runtime.as_str();
    let done_line = match &snap.state {
        JobState::Done { commits, .. } => {
            // The done line carries only deterministic fields (par-runtime
            // squash counts vary between runs; commit counts do not), so
            // identical spec+seed submissions stream byte-identically.
            shared.registry.counter("bulkd.jobs_completed").add(1);
            format!(
                "{{\"done\": true, \"job\": \"{}\", \"status\": \"ok\", \"runtime\": \"{runtime}\", \"commits\": {commits}}}",
                json_escape(id)
            )
        }
        JobState::Failed { kind, detail } => {
            shared.registry.counter("bulkd.jobs_failed").add(1);
            format!(
                "{{\"done\": true, \"job\": \"{}\", \"status\": \"error\", \"runtime\": \"{runtime}\", \"kind\": \"{}\", \"detail\": \"{}\"}}",
                json_escape(id),
                json_escape(kind),
                json_escape(detail)
            )
        }
        _ => return true,
    };
    write_line(writer, &done_line)
}

/// Answers one control command. Returns `true` when the connection
/// should close.
fn handle_control(cmd: &str, writer: &mut TcpStream, shared: &Arc<Shared>) -> bool {
    match cmd {
        "ping" => write_line(writer, "{\"ok\": true}"),
        "status" => {
            let snaps = shared.table.snapshot();
            let jobs: Vec<String> = snaps
                .iter()
                .map(|s| {
                    format!(
                        "{{\"job\": \"{}\", \"state\": \"{}\", \"machine\": \"{}\", \"scheme\": \"{}\", \"runtime\": \"{}\", \"seed\": {}}}",
                        json_escape(&s.id),
                        s.state.as_str(),
                        s.spec.machine.as_str(),
                        json_escape(&s.spec.scheme),
                        s.spec.runtime.as_str(),
                        s.spec.seed
                    )
                })
                .collect();
            write_line(writer, &format!("{{\"jobs\": [{}]}}", jobs.join(", ")))
        }
        "shutdown" => {
            let _ = write_line(writer, "{\"ok\": true, \"shutting_down\": true}");
            shared.begin_shutdown();
            true
        }
        other => write_line(
            writer,
            &format!("{{\"error\": \"unknown command `{}`\"}}", json_escape(other)),
        ),
    }
}

/// Writes one line and flushes. Returns `true` on failure (caller drops
/// the connection).
fn write_line(writer: &mut TcpStream, line: &str) -> bool {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_err()
}
