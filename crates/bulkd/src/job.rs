//! The daemon's job table: submission, bounded-concurrency execution,
//! per-job observability and wall-clock reaping.
//!
//! Every job owns its own [`Obs`] bundle, so concurrent runs never share
//! counters and a scrape can label each job's metrics independently. A
//! worker thread executes the run; the connection handler streams the
//! job's event JSONL by polling [`JobTable::job_obs`]; the daemon's
//! supervisor calls [`JobTable::reap_stalled`] so a hung run becomes a
//! typed `job-timeout` failure instead of a wedged daemon.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bulk_live::{LivenessKind, LivenessViolation, WallClockWatchdog};
use bulk_obs::{Obs, Registry};
use bulk_par::{ParConfig, ParRuntime, RunDetail, RunReport, Runtime, RuntimeError};
use bulk_sim::SimConfig;
use bulk_trace::jobspec::{JobRuntime, JobSpec, Machine};
use bulk_trace::profiles;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker slot.
    Queued,
    /// Executing on a worker thread.
    Running,
    /// Finished cleanly.
    Done {
        /// Committed transactions/tasks.
        commits: u64,
        /// Squashes / restarts.
        squashes: u64,
    },
    /// Finished with a typed error (run failure, timeout, shutdown).
    Failed {
        /// Stable kebab-case error class (`job-timeout`, `liveness`, …).
        kind: String,
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl JobState {
    /// Stable lowercase state name for status lines and `/jobs`.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done { .. } | JobState::Failed { .. })
    }
}

/// A point-in-time view of one job, for status lines and the scrape.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job's identity (client-chosen or generated).
    pub id: String,
    /// The accepted spec.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// The job's observability bundle.
    pub obs: Arc<Obs>,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    obs: Arc<Obs>,
    /// Armed when the job starts running; the supervisor polls it.
    watchdog: Option<Arc<WallClockWatchdog>>,
    /// Set by the reaper / shutdown; workers observe it and abandon
    /// their run, stream pumps stop waiting.
    cancelled: Arc<AtomicBool>,
    /// Ensures the worker slot is given back exactly once even when a
    /// cancelled worker finishes after the reaper already failed the job.
    slot_released: Arc<AtomicBool>,
}

/// The daemon's shared job registry with a bounded worker pool.
pub struct JobTable {
    jobs: Mutex<BTreeMap<String, JobEntry>>,
    next_id: AtomicU64,
    slots: Mutex<usize>,
    slots_cv: Condvar,
    default_timeout_ms: u64,
    event_capacity: usize,
}

impl JobTable {
    /// A table running at most `max_jobs` jobs concurrently. Jobs whose
    /// spec has no `timeout_ms` get `default_timeout_ms` (0 disables the
    /// watchdog); each job's event ring holds `event_capacity` events.
    pub fn new(max_jobs: usize, default_timeout_ms: u64, event_capacity: usize) -> Self {
        JobTable {
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            slots: Mutex::new(max_jobs.max(1)),
            slots_cv: Condvar::new(),
            default_timeout_ms,
            event_capacity,
        }
    }

    /// Validates and registers a spec, returning the job id. The
    /// app/scheme pair is checked here so a bad submission fails at the
    /// socket, not minutes later on a worker.
    ///
    /// # Errors
    ///
    /// Returns a message on unknown app, unknown scheme or duplicate id.
    pub fn submit(&self, spec: JobSpec) -> Result<String, String> {
        match spec.machine {
            Machine::Tm => {
                profiles::tm_profile(&spec.app)
                    .ok_or_else(|| format!("unknown TM app `{}`", spec.app))?;
                spec.scheme.parse::<bulk_tm::Scheme>()?;
            }
            Machine::Tls => {
                profiles::tls_profile(&spec.app)
                    .ok_or_else(|| format!("unknown TLS app `{}`", spec.app))?;
                spec.scheme.parse::<bulk_tls::TlsScheme>()?;
            }
        }
        let id = match &spec.id {
            Some(id) if !id.is_empty() => id.clone(),
            _ => format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed)),
        };
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        if jobs.contains_key(&id) {
            return Err(format!("job id `{id}` already exists"));
        }
        jobs.insert(
            id.clone(),
            JobEntry {
                spec,
                state: JobState::Queued,
                obs: Arc::new(Obs::with_event_capacity(self.event_capacity)),
                watchdog: None,
                cancelled: Arc::new(AtomicBool::new(false)),
                slot_released: Arc::new(AtomicBool::new(false)),
            },
        );
        Ok(id)
    }

    /// Executes job `id` to completion on the calling thread (the worker
    /// entry point): waits for a pool slot, runs, records the terminal
    /// state. A job cancelled before or during the run keeps the state
    /// the canceller wrote and its result is discarded.
    pub fn run(&self, id: &str) {
        let (spec, obs, cancelled, slot_released) = {
            let jobs = self.jobs.lock().expect("job table poisoned");
            let Some(e) = jobs.get(id) else { return };
            (
                e.spec.clone(),
                Arc::clone(&e.obs),
                Arc::clone(&e.cancelled),
                Arc::clone(&e.slot_released),
            )
        };
        // Bounded concurrency: block until a slot frees up.
        {
            let mut slots = self.slots.lock().expect("slot pool poisoned");
            while *slots == 0 {
                slots = self.slots_cv.wait(slots).expect("slot pool poisoned");
            }
            *slots -= 1;
        }
        let release = |released: &AtomicBool| {
            if !released.swap(true, Ordering::AcqRel) {
                *self.slots.lock().expect("slot pool poisoned") += 1;
                self.slots_cv.notify_one();
            }
        };
        // Arm the watchdog only now: queue wait does not burn the
        // wall-clock budget.
        let timeout_ms = spec.timeout_ms.unwrap_or(self.default_timeout_ms);
        let watchdog = Arc::new(WallClockWatchdog::new(timeout_ms.saturating_mul(1_000_000)));
        {
            let mut jobs = self.jobs.lock().expect("job table poisoned");
            let Some(e) = jobs.get_mut(id) else {
                release(&slot_released);
                return;
            };
            if e.state != JobState::Queued {
                // Cancelled (shutdown) while queued.
                release(&slot_released);
                return;
            }
            e.state = JobState::Running;
            e.watchdog = Some(Arc::clone(&watchdog));
        }
        watchdog.note_progress();
        // Test hook: simulate a hung run. Sleeps in small steps so a
        // reaped job's worker exits promptly instead of oversleeping.
        if let Some(hang) = spec.hang_ms {
            let mut waited = 0u64;
            while waited < hang && !cancelled.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(5));
                waited += 5;
            }
        }
        let outcome = if cancelled.load(Ordering::Acquire) {
            None
        } else {
            Some(execute(&spec, &obs))
        };
        obs.publish_stream_stats();
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        if let Some(e) = jobs.get_mut(id) {
            // The reaper may have failed the job while we ran; its typed
            // state wins and the late result is discarded.
            if e.state == JobState::Running && !cancelled.load(Ordering::Acquire) {
                e.state = match outcome {
                    Some(Ok((commits, squashes))) => JobState::Done { commits, squashes },
                    Some(Err((kind, detail))) => JobState::Failed { kind, detail },
                    None => JobState::Failed {
                        kind: "cancelled".to_string(),
                        detail: "job cancelled before execution".to_string(),
                    },
                };
            }
        }
        drop(jobs);
        release(&slot_released);
    }

    /// Fails every `Running` job whose wall-clock watchdog has tripped,
    /// constructing the typed [`LivenessKind::JobTimeout`] violation.
    /// Returns how many jobs were reaped. The worker thread may still be
    /// wedged — it is abandoned, its slot reclaimed, and the daemon
    /// carries on.
    pub fn reap_stalled(&self) -> usize {
        let mut reaped = 0;
        let mut to_release = Vec::new();
        {
            let mut jobs = self.jobs.lock().expect("job table poisoned");
            for (id, e) in jobs.iter_mut() {
                let stalled =
                    e.state == JobState::Running && e.watchdog.as_ref().is_some_and(|w| w.stalled());
                if !stalled {
                    continue;
                }
                e.cancelled.store(true, Ordering::Release);
                let timeout_ms = e
                    .watchdog
                    .as_ref()
                    .map_or(0, |w| w.timeout_ns() / 1_000_000);
                let violation = LivenessViolation {
                    kind: LivenessKind::JobTimeout,
                    scheme: format!("{}/{}", e.spec.machine.as_str(), e.spec.scheme),
                    thread: None,
                    cycle: 0,
                    seed: Some(e.spec.seed),
                    detail: format!("job `{id}` exceeded its {timeout_ms} ms wall-clock budget"),
                };
                e.state = JobState::Failed {
                    kind: LivenessKind::JobTimeout.as_str().to_string(),
                    detail: violation.to_string(),
                };
                to_release.push(Arc::clone(&e.slot_released));
                reaped += 1;
            }
        }
        // Reclaim the wedged workers' slots so the pool cannot drain.
        for released in to_release {
            if !released.swap(true, Ordering::AcqRel) {
                *self.slots.lock().expect("slot pool poisoned") += 1;
                self.slots_cv.notify_one();
            }
        }
        reaped
    }

    /// Cancels every non-terminal job (graceful shutdown): queued jobs
    /// fail immediately, running workers observe the flag and abandon.
    pub fn cancel_all(&self) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        for e in jobs.values_mut() {
            if e.state.is_terminal() {
                continue;
            }
            e.cancelled.store(true, Ordering::Release);
            e.state = JobState::Failed {
                kind: "shutdown".to_string(),
                detail: "daemon shut down before the job finished".to_string(),
            };
        }
    }

    /// The job's observability bundle, if the job exists.
    pub fn job_obs(&self, id: &str) -> Option<Arc<Obs>> {
        let jobs = self.jobs.lock().expect("job table poisoned");
        jobs.get(id).map(|e| Arc::clone(&e.obs))
    }

    /// The job's current state, if the job exists.
    pub fn state(&self, id: &str) -> Option<JobState> {
        let jobs = self.jobs.lock().expect("job table poisoned");
        jobs.get(id).map(|e| e.state.clone())
    }

    /// Snapshots of every job, in id order.
    pub fn snapshot(&self) -> Vec<JobSnapshot> {
        let jobs = self.jobs.lock().expect("job table poisoned");
        jobs.iter()
            .map(|(id, e)| JobSnapshot {
                id: id.clone(),
                spec: e.spec.clone(),
                state: e.state.clone(),
                obs: Arc::clone(&e.obs),
            })
            .collect()
    }

    /// Counts of (queued, running, done, failed) jobs.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let jobs = self.jobs.lock().expect("job table poisoned");
        let mut c = (0, 0, 0, 0);
        for e in jobs.values() {
            match e.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done { .. } => c.2 += 1,
                JobState::Failed { .. } => c.3 += 1,
            }
        }
        c
    }
}

/// Runs the spec to completion, recording into `obs`. Returns
/// `(commits, squashes)` or a `(kind, detail)` failure.
fn execute(spec: &JobSpec, obs: &Arc<Obs>) -> Result<(u64, u64), (String, String)> {
    match (spec.machine, spec.runtime) {
        (Machine::Tm, JobRuntime::Sim) => {
            let mut p = profiles::tm_profile(&spec.app)
                .ok_or_else(|| ("invalid-workload".to_string(), format!("app `{}`", spec.app)))?;
            if let Some(txs) = spec.txs {
                p.txs_per_thread = txs as usize;
            }
            let scheme = spec.scheme.parse().map_err(bad_scheme)?;
            let wl = p.generate(spec.seed);
            let stats =
                bulk_tm::run_tm_observed(&wl, scheme, &SimConfig::tm_default(), Arc::clone(obs));
            check_sim(&stats.violations, &stats.liveness_violations)?;
            Ok((stats.commits, stats.squashes))
        }
        (Machine::Tls, JobRuntime::Sim) => {
            let mut p = profiles::tls_profile(&spec.app)
                .ok_or_else(|| ("invalid-workload".to_string(), format!("app `{}`", spec.app)))?;
            if let Some(tasks) = spec.tasks {
                p.tasks = tasks as usize;
            }
            let scheme = spec.scheme.parse().map_err(bad_scheme)?;
            let wl = p.generate(spec.seed);
            let stats =
                bulk_tls::run_tls_observed(&wl, scheme, &SimConfig::tls_default(), Arc::clone(obs));
            check_sim(&stats.violations, &stats.liveness_violations)?;
            Ok((stats.commits, stats.squashes))
        }
        (Machine::Tm, JobRuntime::Par) => {
            let mut p = profiles::tm_profile(&spec.app)
                .ok_or_else(|| ("invalid-workload".to_string(), format!("app `{}`", spec.app)))?;
            if let Some(txs) = spec.txs {
                p.txs_per_thread = txs as usize;
            }
            let scheme = spec.scheme.parse().map_err(bad_scheme)?;
            let wl = p.generate(spec.seed);
            let rt = ParRuntime::new(ParConfig { seed: spec.seed, ..ParConfig::default() });
            let r = rt.run_tm(&wl, scheme, &SimConfig::tm_default()).map_err(par_error)?;
            finish_par(obs.registry(), &r)
        }
        (Machine::Tls, JobRuntime::Par) => {
            let mut p = profiles::tls_profile(&spec.app)
                .ok_or_else(|| ("invalid-workload".to_string(), format!("app `{}`", spec.app)))?;
            if let Some(tasks) = spec.tasks {
                p.tasks = tasks as usize;
            }
            let scheme = spec.scheme.parse().map_err(bad_scheme)?;
            let wl = p.generate(spec.seed);
            let rt = ParRuntime::new(ParConfig { seed: spec.seed, ..ParConfig::default() });
            let r = rt.run_tls(&wl, scheme, &SimConfig::tls_default()).map_err(par_error)?;
            finish_par(obs.registry(), &r)
        }
    }
}

fn bad_scheme(e: String) -> (String, String) {
    ("invalid-workload".to_string(), e)
}

fn check_sim(
    violations: &[bulk_chaos::InvariantViolation],
    liveness: &[LivenessViolation],
) -> Result<(), (String, String)> {
    if let Some(v) = violations.first() {
        return Err(("invariant".to_string(), v.to_string()));
    }
    if let Some(v) = liveness.first() {
        return Err(("liveness".to_string(), v.to_string()));
    }
    Ok(())
}

/// Publishes a parallel run's counters into the job registry under
/// `par.*` (the par runtime has no simulated clock, so it reports stats
/// instead of streaming events) and checks its auditor verdict.
fn finish_par(reg: &Registry, r: &RunReport) -> Result<(u64, u64), (String, String)> {
    reg.counter("par.commits").add(r.commits);
    reg.counter("par.squashes").add(r.squashes);
    reg.gauge("par.wall_ns").set(r.wall_ns);
    if let RunDetail::Par(s) = &r.detail {
        reg.counter("par.false_squashes").add(s.false_squashes);
        reg.counter("par.claim_retries").add(s.claim_retries);
        reg.counter("par.records").add(s.records);
        reg.counter("par.dedup_drops").add(s.dedup_drops);
        reg.counter("par.worker_crashes").add(s.worker_crashes);
        reg.counter("par.respawns").add(s.respawns);
        reg.counter("par.fences").add(s.fences);
    }
    if let Some(v) = r.violations.first() {
        return Err(("invariant".to_string(), v.to_string()));
    }
    Ok((r.commits, r.squashes))
}

fn par_error(e: RuntimeError) -> (String, String) {
    let kind = match &e {
        RuntimeError::UnsupportedScheme { .. } => "unsupported-scheme",
        RuntimeError::InvalidWorkload(_) => "invalid-workload",
        RuntimeError::WorkerDied { .. } => "worker-died",
        RuntimeError::Liveness(_) => "liveness",
        RuntimeError::ProtocolBug(_) => "protocol-bug",
    };
    (kind.to_string(), e.to_string())
}
