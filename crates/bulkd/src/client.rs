//! A minimal blocking client for the daemon's two sockets, shared by the
//! CLI's `submit`/`status`/`scrape` commands and the integration tests.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Everything one submission produced, already split into lines.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The daemon-assigned (or echoed) job id, when the spec was
    /// accepted.
    pub job: Option<String>,
    /// Every response line: the accepted/error line, the streamed event
    /// JSONL, the trailer and the done line.
    pub lines: Vec<String>,
}

impl Submission {
    /// The terminal line (`{"done": ...}` or `{"error": ...}`).
    pub fn last(&self) -> &str {
        self.lines.last().map(String::as_str).unwrap_or("")
    }

    /// Whether the job ran to a clean completion.
    pub fn ok(&self) -> bool {
        self.last().contains("\"status\": \"ok\"")
    }

    /// The streamed event JSONL (everything between the accepted line
    /// and the trailer), newline-terminated — the per-job event stream,
    /// byte-comparable across identical submissions.
    pub fn event_jsonl(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            if l.starts_with("{\"accepted\"") || l.starts_with("{\"done\"") {
                continue;
            }
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// Submits one job-spec line and blocks until its done (or error) line.
///
/// # Errors
///
/// Propagates socket errors; a daemon-side rejection is NOT an error —
/// it shows up as an `{"error": ...}` line in the result.
pub fn submit_spec(addr: &str, spec_line: &str) -> io::Result<Submission> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(spec_line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    let mut job = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let l = line.trim_end().to_string();
        if l.starts_with("{\"accepted\"") {
            job = extract_str_field(&l, "job");
        }
        let done = l.starts_with("{\"done\"") || l.starts_with("{\"error\"");
        lines.push(l);
        if done {
            break;
        }
    }
    Ok(Submission { job, lines })
}

/// Sends one control line (`{"cmd": "..."}`) and returns the one-line
/// response.
///
/// # Errors
///
/// Propagates socket errors.
pub fn control(addr: &str, cmd: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("{{\"cmd\": \"{cmd}\"}}\n").as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim_end().to_string())
}

/// Issues `GET <path>` against the daemon's HTTP socket; returns
/// `(status, body)`.
///
/// # Errors
///
/// Propagates socket errors and malformed responses.
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: bulkd\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Scrapes `/metrics`; returns the exposition body.
///
/// # Errors
///
/// Fails on socket errors or a non-200 response.
pub fn scrape(addr: &str) -> io::Result<String> {
    let (status, body) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("scrape returned HTTP {status}"),
        ));
    }
    Ok(body)
}

/// Pulls `"<key>": "<value>"` out of a flat JSON line without a parser.
/// Good enough for the daemon's own fixed-format responses.
pub fn extract_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_string_fields_from_fixed_format_lines() {
        let l = "{\"accepted\": true, \"job\": \"job-7\", \"spec\": {}}";
        assert_eq!(extract_str_field(l, "job").as_deref(), Some("job-7"));
        assert_eq!(extract_str_field(l, "missing"), None);
    }

    #[test]
    fn submission_event_jsonl_drops_protocol_lines() {
        let s = Submission {
            job: Some("j".into()),
            lines: vec![
                "{\"accepted\": true, \"job\": \"j\", \"spec\": {}}".into(),
                "{\"seq\": 0, \"cycle\": 1, \"actor\": 0, \"event\": \"ctx_switch\"}".into(),
                "{\"trailer\": true, \"streamed\": 1, \"dropped\": 0}".into(),
                "{\"done\": true, \"job\": \"j\", \"status\": \"ok\", \"runtime\": \"sim\", \"commits\": 4}".into(),
            ],
        };
        assert!(s.ok());
        let jsonl = s.event_jsonl();
        assert_eq!(jsonl.lines().count(), 2, "event + trailer");
        assert!(jsonl.ends_with("\"dropped\": 0}\n"));
    }
}
