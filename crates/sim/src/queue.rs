//! A deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotone sequence
//! number breaks ties), which keeps whole-machine simulations reproducible
//! run to run and across platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// ```
/// use bulk_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(20, "b");
/// q.push(10, "a");
/// q.push(20, "c");
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((20, "b")));
/// assert_eq!(q.pop(), Some((20, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: u64, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Picks the index of the minimum value, breaking ties by lowest index —
/// the "advance the laggard processor" step of clock-ordered simulation.
pub fn min_index(values: impl IntoIterator<Item = u64>) -> Option<usize> {
    values
        .into_iter()
        .enumerate()
        .min_by_key(|&(i, v)| (v, i))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 'x');
        q.push(1, 'y');
        q.push(5, 'z');
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.pop(), Some((1, 'y')));
        assert_eq!(q.pop(), Some((5, 'x')));
        assert_eq!(q.pop(), Some((5, 'z')));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(0, ());
        q.push(0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn min_index_breaks_ties_low() {
        assert_eq!(min_index([3, 1, 1, 2]), Some(1));
        assert_eq!(min_index([]), None);
        assert_eq!(min_index([7]), Some(0));
    }
}
