//! Discrete-event timing substrate for the Bulk reproduction: the Table 5
//! machine configurations, per-processor cycle/traffic accounting, a
//! serializing commit bus and a deterministic event queue.
//!
//! The TM ([`bulk_tm`](../bulk_tm/index.html)) and TLS
//! ([`bulk_tls`](../bulk_tls/index.html)) runtimes drive their protocol
//! state machines over these pieces; this crate knows nothing about
//! speculation itself.
//!
//! ```
//! use bulk_sim::{CoreTimer, SimConfig};
//! use bulk_mem::{Addr, BandwidthStats, Cache};
//!
//! let cfg = SimConfig::tm_default();
//! let mut timer = CoreTimer::new();
//! let mut cache = Cache::new(cfg.geom);
//! let mut bw = BandwidthStats::new();
//! timer.load(&mut cache, Addr::new(0x40).line(64), false, &cfg, &mut bw);
//! assert_eq!(timer.now(), cfg.mem_rt); // cold miss
//! ```

mod config;
mod queue;
mod timer;

pub use config::SimConfig;
pub use queue::{min_index, EventQueue};
pub use timer::{AccessTiming, Bus, CoreTimer, FillSource};
