//! Machine parameters, mirroring the paper's Table 5.

use bulk_mem::{CacheGeometry, MsgSizes};

/// Timing and shape parameters of the simulated CMP.
///
/// The two constructors reproduce the paper's Table 5 machines:
/// [`SimConfig::tls_default`] (4 processors, 16 KB L1) and
/// [`SimConfig::tm_default`] (8 processors, 32 KB L1). Latencies the paper
/// does not specify (main-memory round trip, squash/spawn overheads) use
/// values typical of 2006-era CMP studies and are plainly configurable.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of processors.
    pub num_procs: usize,
    /// L1 cache shape.
    pub geom: CacheGeometry,
    /// L1 hit round trip, cycles (Table 5: 2).
    pub l1_hit: u64,
    /// Minimum round trip to a neighbour's L1, cycles (Table 5: 8).
    pub neighbor_rt: u64,
    /// Main-memory round trip, cycles.
    pub mem_rt: u64,
    /// Cycles per non-memory instruction (the paper's cores retire ~3/cycle;
    /// the trace generator folds ILP into its `Compute` costs).
    pub compute_cpi: u64,
    /// Fixed cost of a commit arbitration (gaining bus ownership).
    pub commit_arb: u64,
    /// Bus throughput in bytes per cycle, for commit-broadcast occupancy.
    pub bus_bytes_per_cycle: u64,
    /// Cost of restarting a squashed thread (pipeline flush + re-dispatch).
    pub squash_overhead: u64,
    /// Cost of spawning a TLS task on another processor.
    pub spawn_overhead: u64,
    /// Interconnect message sizes.
    pub msg_sizes: MsgSizes,
}

impl SimConfig {
    /// The paper's TLS machine: 4 processors, 16 KB 4-way 64 B L1.
    pub fn tls_default() -> Self {
        SimConfig {
            num_procs: 4,
            geom: CacheGeometry::tls_l1(),
            l1_hit: 2,
            neighbor_rt: 8,
            mem_rt: 80,
            compute_cpi: 1,
            commit_arb: 10,
            bus_bytes_per_cycle: 8,
            squash_overhead: 20,
            spawn_overhead: 12,
            msg_sizes: MsgSizes::for_line_bytes(64),
        }
    }

    /// The paper's TM machine: 8 processors, 32 KB 4-way 64 B L1.
    pub fn tm_default() -> Self {
        SimConfig { num_procs: 8, geom: CacheGeometry::tm_l1(), ..SimConfig::tls_default() }
    }

    /// Cycles a broadcast of `payload_bytes` occupies the bus.
    pub fn broadcast_cycles(&self, payload_bytes: u64) -> u64 {
        (payload_bytes + self.msg_sizes.header).div_ceil(self.bus_bytes_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shapes() {
        let tls = SimConfig::tls_default();
        assert_eq!(tls.num_procs, 4);
        assert_eq!(tls.geom.size_bytes(), 16 * 1024);
        assert_eq!(tls.l1_hit, 2);
        assert_eq!(tls.neighbor_rt, 8);
        let tm = SimConfig::tm_default();
        assert_eq!(tm.num_procs, 8);
        assert_eq!(tm.geom.size_bytes(), 32 * 1024);
    }

    #[test]
    fn broadcast_cycles_round_up() {
        let c = SimConfig::tm_default();
        // 100 B payload + 8 B header at 8 B/cycle = 14 cycles.
        assert_eq!(c.broadcast_cycles(100), 14);
        assert_eq!(c.broadcast_cycles(0), 1);
    }
}
