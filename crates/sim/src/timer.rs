//! Per-processor cycle accounting and memory-access timing.

use bulk_mem::{BandwidthStats, Cache, LineAddr, MsgClass, StoreOutcome};

use crate::SimConfig;

/// Where a missing line was sourced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillSource {
    /// Another processor's L1 held it (dirty or clean-owner).
    NeighborL1,
    /// Main memory.
    Memory,
}

/// The timing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Cycles the access took (round trip).
    pub cycles: u64,
    /// Whether it hit in the local L1.
    pub hit: bool,
    /// Dirty victim that must be written back, if any.
    pub writeback: Option<LineAddr>,
}

/// A processor's cycle clock plus helpers that charge memory-system time
/// and traffic consistently across the TM and TLS runtimes.
#[derive(Debug, Clone)]
pub struct CoreTimer {
    clock: u64,
}

impl CoreTimer {
    /// A timer at cycle zero.
    pub fn new() -> Self {
        CoreTimer { clock: 0 }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    /// Moves the clock to at least `t` (stall until an external event).
    pub fn wait_until(&mut self, t: u64) {
        self.clock = self.clock.max(t);
    }

    /// Charges `n` units of compute at the configured CPI.
    pub fn compute(&mut self, n: u64, cfg: &SimConfig) {
        self.clock += n * cfg.compute_cpi;
    }

    /// Performs a load of `line` against `cache`, charging latency and
    /// fill/coherence traffic. `in_neighbor` tells whether some other L1
    /// currently holds the line (the runtime knows its sibling caches).
    /// Dirty victims are *returned*, not accounted: the caller decides
    /// whether they are ordinary writebacks or speculative overflow spills
    /// (§6.2.2) and records the traffic accordingly.
    pub fn load(
        &mut self,
        cache: &mut Cache,
        line: LineAddr,
        in_neighbor: bool,
        cfg: &SimConfig,
        bw: &mut BandwidthStats,
    ) -> AccessTiming {
        let (hit, evicted) = cache.load(line);
        let mut writeback = None;
        if hit {
            self.clock += cfg.l1_hit;
        } else {
            let src_rt = if in_neighbor { cfg.neighbor_rt } else { cfg.mem_rt };
            self.clock += src_rt;
            bw.record(MsgClass::Fill, cfg.msg_sizes.line_msg);
            if in_neighbor {
                bw.record(MsgClass::Coh, cfg.msg_sizes.addr_msg);
            }
            if let Some(v) = evicted {
                if v.state == bulk_mem::LineState::Dirty {
                    writeback = Some(v.addr);
                }
            }
        }
        AccessTiming { cycles: 0, hit, writeback }
    }

    /// Performs a store to `line` against `cache`, charging latency and
    /// traffic. Upgrades of clean lines cost a coherence message.
    pub fn store(
        &mut self,
        cache: &mut Cache,
        line: LineAddr,
        in_neighbor: bool,
        cfg: &SimConfig,
        bw: &mut BandwidthStats,
    ) -> AccessTiming {
        match cache.store(line) {
            StoreOutcome::HitDirty => {
                self.clock += cfg.l1_hit;
                AccessTiming { cycles: 0, hit: true, writeback: None }
            }
            StoreOutcome::HitUpgrade => {
                self.clock += cfg.l1_hit;
                bw.record(MsgClass::Coh, cfg.msg_sizes.addr_msg);
                AccessTiming { cycles: 0, hit: true, writeback: None }
            }
            StoreOutcome::Miss(evicted) => {
                let src_rt = if in_neighbor { cfg.neighbor_rt } else { cfg.mem_rt };
                self.clock += src_rt;
                bw.record(MsgClass::Fill, cfg.msg_sizes.line_msg);
                if in_neighbor {
                    bw.record(MsgClass::Coh, cfg.msg_sizes.addr_msg);
                }
                let mut writeback = None;
                if let Some(v) = evicted {
                    if v.state == bulk_mem::LineState::Dirty {
                        writeback = Some(v.addr);
                    }
                }
                AccessTiming { cycles: 0, hit: false, writeback }
            }
        }
    }
}

impl Default for CoreTimer {
    fn default() -> Self {
        CoreTimer::new()
    }
}

/// A single shared bus that serializes commit broadcasts.
#[derive(Debug, Clone, Default)]
pub struct Bus {
    free_at: u64,
}

impl Bus {
    /// A bus free at cycle zero.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Acquires the bus at the earliest cycle ≥ `now`, holding it for
    /// `duration` cycles. Returns the acquisition time.
    pub fn acquire(&mut self, now: u64, duration: u64) -> u64 {
        let start = now.max(self.free_at);
        self.free_at = start + duration;
        start
    }

    /// The cycle at which the bus becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_mem::{Addr, CacheGeometry};

    fn setup() -> (CoreTimer, Cache, SimConfig, BandwidthStats) {
        (
            CoreTimer::new(),
            Cache::new(CacheGeometry::tm_l1()),
            SimConfig::tm_default(),
            BandwidthStats::new(),
        )
    }

    #[test]
    fn load_hit_costs_l1_latency() {
        let (mut t, mut c, cfg, mut bw) = setup();
        let line = Addr::new(0x40).line(64);
        t.load(&mut c, line, false, &cfg, &mut bw); // miss
        let before = t.now();
        let a = t.load(&mut c, line, false, &cfg, &mut bw); // hit
        assert!(a.hit);
        assert_eq!(t.now() - before, cfg.l1_hit);
    }

    #[test]
    fn miss_from_memory_vs_neighbor() {
        let (mut t, mut c, cfg, mut bw) = setup();
        let a = t.load(&mut c, Addr::new(0x40).line(64), false, &cfg, &mut bw);
        assert!(!a.hit);
        assert_eq!(t.now(), cfg.mem_rt);
        let mut t2 = CoreTimer::new();
        t2.load(&mut c, Addr::new(0x4040).line(64), true, &cfg, &mut bw);
        assert_eq!(t2.now(), cfg.neighbor_rt);
        assert!(bw.bytes(MsgClass::Fill) > 0);
        assert!(bw.bytes(MsgClass::Coh) > 0);
    }

    #[test]
    fn store_upgrade_charges_coherence() {
        let (mut t, mut c, cfg, mut bw) = setup();
        let line = Addr::new(0x80).line(64);
        c.fill_clean(line);
        t.store(&mut c, line, false, &cfg, &mut bw);
        assert_eq!(bw.bytes(MsgClass::Coh), cfg.msg_sizes.addr_msg);
        assert_eq!(t.now(), cfg.l1_hit);
    }

    #[test]
    fn dirty_eviction_returns_victim_for_caller_accounting() {
        let (mut t, mut c, cfg, mut bw) = setup();
        // Fill a set (4-way) with dirty lines, then one more.
        let mut victims = Vec::new();
        for i in 0..5u32 {
            let a = t.store(&mut c, LineAddr::new(i * 128), false, &cfg, &mut bw);
            victims.extend(a.writeback);
        }
        assert_eq!(victims, vec![LineAddr::new(0)]);
        // The timer itself records no writeback traffic.
        assert_eq!(bw.bytes(MsgClass::Wb), 0);
    }

    #[test]
    fn bus_serializes() {
        let mut bus = Bus::new();
        assert_eq!(bus.acquire(100, 10), 100);
        assert_eq!(bus.acquire(50, 10), 110); // must wait
        assert_eq!(bus.free_at(), 120);
    }

    #[test]
    fn wait_until_never_rewinds() {
        let mut t = CoreTimer::new();
        t.advance(50);
        t.wait_until(30);
        assert_eq!(t.now(), 50);
        t.wait_until(80);
        assert_eq!(t.now(), 80);
    }
}
