//! Run-length compression of signatures (paper §6.1).
//!
//! Signatures broadcast at commit have long runs of zeros, so the paper
//! compresses them with a hardware-friendly run-length encoding before
//! sending, and Table 8 reports average compressed sizes. The codec here
//! encodes the gap before each set bit with Elias-gamma codes — a classic
//! run-length scheme that is cheap in hardware (priority encoder + shifter)
//! and self-delimiting, so the exact compressed bit count is well defined.
//!
//! Layout: `gamma(popcount + 1)` followed by, per set bit, `gamma(gap + 1)`
//! where `gap` is the distance from the previous set bit (or from position
//! −1 for the first).
//!
//! Both [`Signature::compress`] and [`Signature::compressed_size_bits`]
//! consume the same [`gap_codes`] iterator, so the accounted size cannot
//! drift from the materialised code. Decompression validates everything —
//! length header vs. byte buffer, gap overflow, out-of-range positions and
//! trailing garbage — and returns `None` rather than panicking, because
//! compressed codes arrive from the wire.

use std::sync::Arc;

use crate::{Signature, SignatureConfig};

/// An RLE-compressed signature, as broadcast on commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedSignature {
    bits: Vec<u8>, // packed MSB-first
    bit_len: u64,
}

impl CompressedSignature {
    /// Reconstructs a compressed signature from raw wire bytes and the
    /// advertised code length in bits. No validation happens here — the
    /// buffer and length may disagree, the code may be truncated or
    /// corrupt; [`Signature::decompress`] checks all of that and returns
    /// `None` for any malformed code.
    pub fn from_raw(bytes: Vec<u8>, bit_len: u64) -> CompressedSignature {
        CompressedSignature { bits: bytes, bit_len }
    }

    /// The exact compressed size in bits (what travels on the wire).
    pub fn size_bits(&self) -> u64 {
        self.bit_len
    }

    /// The compressed size in whole bytes (for bandwidth accounting).
    pub fn size_bytes(&self) -> u64 {
        self.bit_len.div_ceil(8)
    }

    /// The packed code bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }
}

struct BitWriter {
    bytes: Vec<u8>,
    bit_len: u64,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { bytes: Vec::new(), bit_len: 0 }
    }

    /// Appends the low `width` bits of `value`, MSB-first, packing whole
    /// byte fragments at a time rather than looping per bit.
    fn push_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width >= 1 && width <= 64);
        debug_assert!(width == 64 || value >> width == 0);
        let mut rem = width;
        while rem > 0 {
            let used = (self.bit_len % 8) as u32;
            if used == 0 {
                self.bytes.push(0);
            }
            let free = 8 - used;
            let take = free.min(rem);
            let chunk = value >> (rem - take) & ((1u64 << take) - 1);
            let last = self.bytes.last_mut().expect("byte allocated");
            *last |= (chunk as u8) << (free - take);
            self.bit_len += u64::from(take);
            rem -= take;
        }
    }

    /// Elias-gamma: for n ≥ 1, `floor(log2 n)` zeros then n in binary.
    /// The leading zeros and the value are two `push_bits` calls (the full
    /// `2L−1`-bit code can exceed one u64 for very large n).
    fn push_gamma(&mut self, n: u64) {
        debug_assert!(n >= 1);
        let bits = 64 - n.leading_zeros(); // floor(log2 n) + 1
        if bits > 1 {
            self.push_bits(0, bits - 1);
        }
        self.push_bits(n, bits);
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
    bit_len: u64,
}

impl<'a> BitReader<'a> {
    fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_len {
            return None;
        }
        let b = self.bytes[(self.pos / 8) as usize] >> (7 - self.pos % 8) & 1 == 1;
        self.pos += 1;
        Some(b)
    }

    fn read_gamma(&mut self) -> Option<u64> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
            if zeros > 63 {
                return None;
            }
        }
        let mut n = 1u64;
        for _ in 0..zeros {
            n = n << 1 | u64::from(self.read_bit()?);
        }
        Some(n)
    }
}

/// Number of bits the Elias-gamma code of `n` occupies.
fn gamma_len(n: u64) -> u64 {
    debug_assert!(n >= 1);
    2 * (64 - n.leading_zeros() as u64) - 1
}

/// The gamma-code operands of `sig`'s RLE code, in wire order: the count
/// header (`popcount + 1`) followed by each set bit's gap-plus-one from its
/// predecessor. The single source of truth shared by [`Signature::compress`]
/// and [`Signature::compressed_size_bits`].
fn gap_codes(sig: &Signature) -> impl Iterator<Item = u64> + '_ {
    // cursor = previous position + 1, so gap-plus-one = p + 1 - cursor
    // stays in u64 (the first "previous position" is −1).
    std::iter::once(sig.popcount() + 1).chain(sig.iter_flat_positions().scan(
        0u64,
        |cursor, p| {
            let gap = p + 1 - *cursor;
            *cursor = p + 1;
            Some(gap)
        },
    ))
}

impl Signature {
    /// Compresses the signature with run-length (Elias-gamma gap) coding.
    pub fn compress(&self) -> CompressedSignature {
        let mut w = BitWriter::new();
        for n in gap_codes(self) {
            w.push_gamma(n);
        }
        CompressedSignature { bits: w.bytes, bit_len: w.bit_len }
    }

    /// The compressed size in bits without materialising the code — used by
    /// bandwidth accounting on every commit. Sums the same gap stream
    /// [`Signature::compress`] writes, so the two cannot disagree.
    pub fn compressed_size_bits(&self) -> u64 {
        gap_codes(self).map(gamma_len).sum()
    }

    /// Decompresses a [`CompressedSignature`] produced by [`Signature::compress`]
    /// under the same configuration.
    ///
    /// Returns `None` — never panics — if the code is malformed in any way:
    /// `bit_len` overstating the byte buffer, truncated or overlong gamma
    /// codes, gap accumulation overflowing, bit positions beyond the
    /// configuration's size, or non-zero garbage after the last gap.
    pub fn decompress(
        config: Arc<SignatureConfig>,
        compressed: &CompressedSignature,
    ) -> Option<Signature> {
        // The length header must be covered by the byte buffer, or
        // `read_bit` would index out of bounds.
        if compressed.bit_len > compressed.bits.len() as u64 * 8 {
            return None;
        }
        let mut r = BitReader {
            bytes: &compressed.bits,
            pos: 0,
            bit_len: compressed.bit_len,
        };
        let count = r.read_gamma()?.checked_sub(1)?;
        let size = config.size_bits();
        let mut flat = vec![0u64; size.div_ceil(64) as usize];
        // cursor = previous position + 1 (0 before the first bit), so the
        // decoded position is cursor + gap − 1, all in u64 — no signed
        // arithmetic to overflow on adversarial gaps.
        let mut cursor: u64 = 0;
        for _ in 0..count {
            let gap = r.read_gamma()?;
            let pos = cursor.checked_add(gap)?.checked_sub(1)?;
            if pos >= size {
                return None;
            }
            flat[(pos / 64) as usize] |= 1u64 << (pos % 64);
            cursor = pos + 1;
        }
        // Anything after the last gap must be zero padding; a set bit there
        // means the code and its advertised length disagree.
        while let Some(bit) = r.read_bit() {
            if bit {
                return None;
            }
        }
        Some(Signature::from_flat_bits(config, &flat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureConfig;

    fn sample_signature(n: u32) -> Signature {
        let mut s = Signature::new(SignatureConfig::s14_tm());
        for i in 0..n {
            s.insert_key(i.wrapping_mul(2654435761) % (1 << 26));
        }
        s
    }

    #[test]
    fn round_trip_empty() {
        let s = Signature::new(SignatureConfig::s14_tm());
        let c = s.compress();
        let d = Signature::decompress(s.config().clone(), &c).unwrap();
        assert_eq!(s, d);
    }

    #[test]
    fn round_trip_various_densities() {
        for n in [1u32, 5, 22, 100, 500] {
            let s = sample_signature(n);
            let c = s.compress();
            let d = Signature::decompress(s.config().clone(), &c).unwrap();
            assert_eq!(s, d, "n={n}");
        }
    }

    #[test]
    fn compressed_size_matches_materialised_code() {
        for n in [0u32, 1, 22, 200] {
            let s = sample_signature(n);
            assert_eq!(s.compressed_size_bits(), s.compress().size_bits(), "n={n}");
        }
    }

    #[test]
    fn sparse_signatures_compress_well() {
        // ~22-line write set (the paper's TM average): far below 2048 bits.
        let s = sample_signature(22);
        let c = s.compress();
        assert!(c.size_bits() < 700, "got {} bits", c.size_bits());
        assert!(c.size_bits() < s.config().size_bits() / 3);
    }

    #[test]
    fn dense_signatures_do_not_explode_catastrophically() {
        let s = sample_signature(2000);
        // Gamma gap coding of a dense bitmap costs more than raw, but stays
        // within a small constant factor.
        assert!(s.compress().size_bits() < 3 * s.config().size_bits());
    }

    #[test]
    fn size_bytes_rounds_up() {
        let s = sample_signature(3);
        let c = s.compress();
        assert_eq!(c.size_bytes(), c.size_bits().div_ceil(8));
        assert_eq!(c.as_bytes().len() as u64, c.size_bytes());
    }

    #[test]
    fn malformed_code_rejected() {
        let s = sample_signature(10);
        let c = s.compress();
        let truncated =
            CompressedSignature::from_raw(c.as_bytes().to_vec(), c.size_bits().min(3));
        assert!(Signature::decompress(s.config().clone(), &truncated).is_none());
    }

    #[test]
    fn bit_len_beyond_buffer_rejected() {
        // Advertised length points past the byte buffer: must be refused
        // before any read, not crash indexing.
        let s = sample_signature(5);
        let c = s.compress();
        let lying =
            CompressedSignature::from_raw(c.as_bytes().to_vec(), c.as_bytes().len() as u64 * 8 + 64);
        assert!(Signature::decompress(s.config().clone(), &lying).is_none());
    }

    #[test]
    fn gap_overflow_rejected() {
        // A hand-built code whose single gap is astronomically large: the
        // position check (not wraparound) must reject it.
        let mut w = BitWriter::new();
        w.push_gamma(2); // count = 1
        w.push_gamma(u64::MAX >> 1); // gap-plus-one ≈ 2^63
        let c = CompressedSignature { bits: w.bytes, bit_len: w.bit_len };
        let cfg = Arc::new(SignatureConfig::s14_tm());
        assert!(Signature::decompress(cfg, &c).is_none());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let s = sample_signature(4);
        let c = s.compress();
        // Append a set bit after the genuine code.
        let mut bytes = c.as_bytes().to_vec();
        bytes.push(0x80);
        let garbage = CompressedSignature::from_raw(bytes, c.size_bits() + 8);
        assert!(Signature::decompress(s.config().clone(), &garbage).is_none());
        // But pure zero padding after the code is legal framing.
        let mut padded_bytes = c.as_bytes().to_vec();
        padded_bytes.push(0x00);
        let padded = CompressedSignature::from_raw(padded_bytes, c.size_bits() + 8);
        assert_eq!(
            Signature::decompress(s.config().clone(), &padded).unwrap(),
            s
        );
    }

    #[test]
    fn gamma_len_known_values() {
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(3), 3);
        assert_eq!(gamma_len(4), 5);
        assert_eq!(gamma_len(255), 15);
    }
}
