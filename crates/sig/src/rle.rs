//! Run-length compression of signatures (paper §6.1).
//!
//! Signatures broadcast at commit have long runs of zeros, so the paper
//! compresses them with a hardware-friendly run-length encoding before
//! sending, and Table 8 reports average compressed sizes. The codec here
//! encodes the gap before each set bit with Elias-gamma codes — a classic
//! run-length scheme that is cheap in hardware (priority encoder + shifter)
//! and self-delimiting, so the exact compressed bit count is well defined.
//!
//! Layout: `gamma(popcount + 1)` followed by, per set bit, `gamma(gap + 1)`
//! where `gap` is the distance from the previous set bit (or from position
//! −1 for the first).

use std::sync::Arc;

use crate::{Signature, SignatureConfig};

/// An RLE-compressed signature, as broadcast on commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedSignature {
    bits: Vec<u8>, // packed MSB-first
    bit_len: u64,
}

impl CompressedSignature {
    /// The exact compressed size in bits (what travels on the wire).
    pub fn size_bits(&self) -> u64 {
        self.bit_len
    }

    /// The compressed size in whole bytes (for bandwidth accounting).
    pub fn size_bytes(&self) -> u64 {
        self.bit_len.div_ceil(8)
    }

    /// The packed code bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }
}

struct BitWriter {
    bytes: Vec<u8>,
    bit_len: u64,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { bytes: Vec::new(), bit_len: 0 }
    }

    fn push_bit(&mut self, bit: bool) {
        if self.bit_len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte allocated");
            *last |= 1 << (7 - (self.bit_len % 8));
        }
        self.bit_len += 1;
    }

    /// Elias-gamma: for n ≥ 1, `floor(log2 n)` zeros then n in binary.
    fn push_gamma(&mut self, n: u64) {
        debug_assert!(n >= 1);
        let bits = 64 - n.leading_zeros() as u64; // floor(log2 n) + 1
        for _ in 0..bits - 1 {
            self.push_bit(false);
        }
        for i in (0..bits).rev() {
            self.push_bit(n >> i & 1 == 1);
        }
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
    bit_len: u64,
}

impl<'a> BitReader<'a> {
    fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_len {
            return None;
        }
        let b = self.bytes[(self.pos / 8) as usize] >> (7 - self.pos % 8) & 1 == 1;
        self.pos += 1;
        Some(b)
    }

    fn read_gamma(&mut self) -> Option<u64> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
            if zeros > 63 {
                return None;
            }
        }
        let mut n = 1u64;
        for _ in 0..zeros {
            n = n << 1 | u64::from(self.read_bit()?);
        }
        Some(n)
    }
}

/// Number of bits the Elias-gamma code of `n` occupies.
fn gamma_len(n: u64) -> u64 {
    debug_assert!(n >= 1);
    2 * (64 - n.leading_zeros() as u64) - 1
}

impl Signature {
    /// Compresses the signature with run-length (Elias-gamma gap) coding.
    pub fn compress(&self) -> CompressedSignature {
        let mut w = BitWriter::new();
        let positions = set_positions(self);
        w.push_gamma(positions.len() as u64 + 1);
        let mut prev: i64 = -1;
        for p in &positions {
            let gap = *p as i64 - prev;
            w.push_gamma(gap as u64); // gap >= 1
            prev = *p as i64;
        }
        CompressedSignature { bits: w.bytes, bit_len: w.bit_len }
    }

    /// The compressed size in bits without materialising the code — used by
    /// bandwidth accounting on every commit.
    pub fn compressed_size_bits(&self) -> u64 {
        let positions = set_positions(self);
        let mut total = gamma_len(positions.len() as u64 + 1);
        let mut prev: i64 = -1;
        for p in &positions {
            total += gamma_len((*p as i64 - prev) as u64);
            prev = *p as i64;
        }
        total
    }

    /// Decompresses a [`CompressedSignature`] produced by [`Signature::compress`]
    /// under the same configuration.
    ///
    /// Returns `None` if the code is malformed or encodes bit positions
    /// beyond the configuration's size.
    pub fn decompress(
        config: Arc<SignatureConfig>,
        compressed: &CompressedSignature,
    ) -> Option<Signature> {
        let mut r = BitReader {
            bytes: &compressed.bits,
            pos: 0,
            bit_len: compressed.bit_len,
        };
        let count = r.read_gamma()?.checked_sub(1)?;
        let size = config.size_bits();
        let mut flat = vec![0u64; size.div_ceil(64) as usize];
        let mut prev: i64 = -1;
        for _ in 0..count {
            let gap = r.read_gamma()? as i64;
            let pos = prev + gap;
            if pos < 0 || pos as u64 >= size {
                return None;
            }
            flat[(pos / 64) as usize] |= 1u64 << (pos % 64);
            prev = pos;
        }
        Some(Signature::from_flat_bits(config, &flat))
    }
}

/// Ascending flat-bit positions of the signature's set bits.
fn set_positions(sig: &Signature) -> Vec<u64> {
    let flat = sig.flat_bits();
    let mut out = Vec::new();
    for (wi, &w) in flat.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            out.push(wi as u64 * 64 + w.trailing_zeros() as u64);
            w &= w - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureConfig;

    fn sample_signature(n: u32) -> Signature {
        let mut s = Signature::new(SignatureConfig::s14_tm());
        for i in 0..n {
            s.insert_key(i.wrapping_mul(2654435761) % (1 << 26));
        }
        s
    }

    #[test]
    fn round_trip_empty() {
        let s = Signature::new(SignatureConfig::s14_tm());
        let c = s.compress();
        let d = Signature::decompress(s.config().clone(), &c).unwrap();
        assert_eq!(s, d);
    }

    #[test]
    fn round_trip_various_densities() {
        for n in [1u32, 5, 22, 100, 500] {
            let s = sample_signature(n);
            let c = s.compress();
            let d = Signature::decompress(s.config().clone(), &c).unwrap();
            assert_eq!(s, d, "n={n}");
        }
    }

    #[test]
    fn compressed_size_matches_materialised_code() {
        for n in [0u32, 1, 22, 200] {
            let s = sample_signature(n);
            assert_eq!(s.compressed_size_bits(), s.compress().size_bits(), "n={n}");
        }
    }

    #[test]
    fn sparse_signatures_compress_well() {
        // ~22-line write set (the paper's TM average): far below 2048 bits.
        let s = sample_signature(22);
        let c = s.compress();
        assert!(c.size_bits() < 700, "got {} bits", c.size_bits());
        assert!(c.size_bits() < s.config().size_bits() / 3);
    }

    #[test]
    fn dense_signatures_do_not_explode_catastrophically() {
        let s = sample_signature(2000);
        // Gamma gap coding of a dense bitmap costs more than raw, but stays
        // within a small constant factor.
        assert!(s.compress().size_bits() < 3 * s.config().size_bits());
    }

    #[test]
    fn size_bytes_rounds_up() {
        let s = sample_signature(3);
        let c = s.compress();
        assert_eq!(c.size_bytes(), c.size_bits().div_ceil(8));
        assert_eq!(c.as_bytes().len() as u64, c.size_bytes());
    }

    #[test]
    fn malformed_code_rejected() {
        let s = sample_signature(10);
        let mut c = s.compress();
        c.bit_len = c.bit_len.min(3); // truncate
        assert!(Signature::decompress(s.config().clone(), &c).is_none());
    }

    #[test]
    fn gamma_len_known_values() {
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(3), 3);
        assert_eq!(gamma_len(4), 5);
        assert_eq!(gamma_len(255), 15);
    }
}
