//! Signature configurations: the C-field layout, permutation and encoding
//! granularity — plus the full catalog of the paper's Table 8.

use std::sync::Arc;

use bulk_mem::{Addr, CacheGeometry, LineAddr, WordAddr};

use crate::BitPermutation;

/// Words per SIMD lane group of the flat signature buffer. Every V-field's
/// word span is padded to a multiple of this, so the bulk-operation loops
/// in [`crate::Signature`] are exact u64x4 lane loops with no scalar tail.
pub const LANES: usize = 4;

/// The granularity of the addresses a signature encodes (paper §4.2):
/// line addresses for the TM experiments, word addresses for TLS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Encode line addresses (26 bits with a 32-bit space and 64 B lines).
    Line,
    /// Encode word addresses (30 bits), enabling per-word disambiguation.
    Word,
}

impl Granularity {
    /// Number of significant bits of a key at this granularity, for
    /// `line_bytes`-byte lines in a 32-bit byte address space.
    pub fn key_bits(self, line_bytes: u32) -> u32 {
        match self {
            Granularity::Line => 32 - line_bytes.trailing_zeros(),
            Granularity::Word => 30,
        }
    }
}

/// One row of the paper's Table 8: a named C-field chunk layout.
///
/// `chunks` are the sizes of the consecutive C-fields, starting from the
/// least-significant bit of the (already permuted) address. The resulting
/// signature has one V-field of `2^c` bits per chunk of size `c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureSpec {
    /// The paper's identifier, `"S1"`..`"S23"`.
    pub id: &'static str,
    /// C-field sizes in bits, LSB-first.
    pub chunks: &'static [u32],
}

impl SignatureSpec {
    /// Total (uncompressed) signature size in bits: `Σ 2^cᵢ`.
    ///
    /// ```
    /// use bulk_sig::table8;
    /// let s14 = table8().iter().find(|s| s.id == "S14").unwrap();
    /// assert_eq!(s14.full_size_bits(), 2048);
    /// ```
    pub fn full_size_bits(&self) -> u64 {
        self.chunks.iter().map(|&c| 1u64 << c).sum()
    }
}

/// The 23 signature configurations evaluated in the paper's Table 8.
/// `S14` (bold in the paper) is the default used by every other experiment.
pub fn table8() -> &'static [SignatureSpec] {
    const T: &[SignatureSpec] = &[
        SignatureSpec { id: "S1", chunks: &[7, 7, 7, 7] },
        SignatureSpec { id: "S2", chunks: &[8, 7, 6, 5, 5] },
        SignatureSpec { id: "S3", chunks: &[5, 5, 6, 7, 8] },
        SignatureSpec { id: "S4", chunks: &[8, 8, 8, 8] },
        SignatureSpec { id: "S5", chunks: &[9, 8, 7, 7] },
        SignatureSpec { id: "S6", chunks: &[5, 8, 8, 8] },
        SignatureSpec { id: "S7", chunks: &[8, 5, 8, 8] },
        SignatureSpec { id: "S8", chunks: &[8, 8, 5, 8] },
        SignatureSpec { id: "S9", chunks: &[5, 8, 8, 5] },
        SignatureSpec { id: "S10", chunks: &[9, 9, 8, 6] },
        SignatureSpec { id: "S11", chunks: &[9, 10, 8, 5] },
        SignatureSpec { id: "S12", chunks: &[10, 9, 6] },
        SignatureSpec { id: "S13", chunks: &[10, 9, 7] },
        SignatureSpec { id: "S14", chunks: &[10, 10] },
        SignatureSpec { id: "S15", chunks: &[10, 9, 9] },
        // Table 8 lists S16 at 2336 bits; the only chunk layout consistent
        // with that size is [10, 10, 8, 5] (the description column's
        // "10, 10, 7, 5" would be 2208 bits).
        SignatureSpec { id: "S16", chunks: &[10, 10, 8, 5] },
        SignatureSpec { id: "S17", chunks: &[10, 10, 10] },
        SignatureSpec { id: "S18", chunks: &[11, 10, 10] },
        SignatureSpec { id: "S19", chunks: &[11, 11] },
        SignatureSpec { id: "S20", chunks: &[12] },
        SignatureSpec { id: "S21", chunks: &[11, 11, 4] },
        SignatureSpec { id: "S22", chunks: &[11, 11, 10] },
        SignatureSpec { id: "S23", chunks: &[13, 13, 6] },
    ];
    T
}

/// Looks up a Table 8 spec by id (`"S14"` etc.).
pub fn table8_spec(id: &str) -> Option<SignatureSpec> {
    table8().iter().copied().find(|s| s.id == id)
}

/// Precomputed per-field constants for the signature hot paths, packed as
/// one cache-contiguous record per C/V pair (instead of four parallel
/// vectors that each cost a pointer chase and a bounds check per field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FieldMeta {
    /// Right-shift applied to the permuted key to bring the C-field to the
    /// LSB. Capped at 63: a field whose start lies past bit 31 decodes as
    /// value 0, exactly as the hardware would wire a missing input low.
    pub shift: u32,
    /// `(1 << c) - 1`: the C-field's value mask.
    pub mask: u64,
    /// First lane block of the field's padded span.
    pub block_start: u32,
    /// One past the last lane block of the field's padded span.
    pub block_end: u32,
}

/// A complete signature configuration: chunk layout, bit permutation,
/// encoding granularity and line size.
///
/// Configurations are shared between the many signatures of a run via
/// [`Arc`]; use [`SignatureConfig::into_shared`] or the provided
/// constructors which already return shared configs are not needed —
/// [`crate::Signature::new`] accepts the config by value and shares
/// internally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureConfig {
    chunks: Vec<u32>,
    /// Cumulative V-field offsets in bits, one per chunk, plus the total.
    /// These are the *canonical* flat-bit positions used by the RLE codec
    /// and the sealed wire format; they are packed with no padding.
    field_offsets: Vec<u64>,
    /// Cumulative V-field offsets in u64 words of the in-memory flat
    /// buffer, one per chunk, plus the total. Each field's span is padded
    /// to a multiple of [`LANES`] words so bulk operations run as exact
    /// u64x4 lane loops; padding words are invariantly zero.
    word_starts: Vec<usize>,
    /// Bit position (LSB-relative, in the permuted key) where each chunk
    /// starts.
    chunk_starts: Vec<u32>,
    /// Per-field hot-path constants, derived from the three vectors above.
    fields_meta: Vec<FieldMeta>,
    /// Whether every V-field spans exactly one lane block (true for the
    /// small Table 8 configs, whose chunks are ≤ 8 bits).
    single_block: bool,
    permutation: BitPermutation,
    granularity: Granularity,
    line_bytes: u32,
}

impl SignatureConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty, any chunk exceeds 20 bits (a 1 Mbit
    /// field — far beyond anything in the paper), or `line_bytes` is not a
    /// power of two.
    pub fn new(
        chunks: Vec<u32>,
        permutation: BitPermutation,
        granularity: Granularity,
        line_bytes: u32,
    ) -> Self {
        assert!(!chunks.is_empty(), "at least one C-field is required");
        assert!(
            chunks.iter().all(|&c| (1..=20).contains(&c)),
            "chunk sizes must be in 1..=20 bits"
        );
        assert!(line_bytes.is_power_of_two() && line_bytes >= 4);
        let mut field_offsets = Vec::with_capacity(chunks.len() + 1);
        let mut word_starts = Vec::with_capacity(chunks.len() + 1);
        let mut chunk_starts = Vec::with_capacity(chunks.len());
        let mut bit_off = 0u64;
        let mut word_off = 0usize;
        let mut key_off = 0u32;
        for &c in &chunks {
            field_offsets.push(bit_off);
            word_starts.push(word_off);
            chunk_starts.push(key_off);
            bit_off += 1u64 << c;
            word_off += ((1usize << c).div_ceil(64)).next_multiple_of(LANES);
            key_off += c;
        }
        field_offsets.push(bit_off);
        word_starts.push(word_off);
        let fields_meta = chunks
            .iter()
            .enumerate()
            .map(|(i, &c)| FieldMeta {
                shift: chunk_starts[i].min(63),
                mask: (1u64 << c) - 1,
                block_start: (word_starts[i] / LANES) as u32,
                block_end: (word_starts[i + 1] / LANES) as u32,
            })
            .collect::<Vec<FieldMeta>>();
        let single_block = fields_meta.iter().all(|m| m.block_end - m.block_start == 1);
        SignatureConfig {
            chunks,
            field_offsets,
            word_starts,
            chunk_starts,
            fields_meta,
            single_block,
            permutation,
            granularity,
            line_bytes,
        }
    }

    /// Builds a configuration from a Table 8 spec.
    pub fn from_spec(
        spec: SignatureSpec,
        permutation: BitPermutation,
        granularity: Granularity,
        line_bytes: u32,
    ) -> Self {
        SignatureConfig::new(spec.chunks.to_vec(), permutation, granularity, line_bytes)
    }

    /// The paper's default TM configuration: S14 (2 Kbit), line-address
    /// granularity, the paper's TM bit permutation, 64-byte lines.
    pub fn s14_tm() -> Self {
        SignatureConfig::from_spec(
            table8_spec("S14").expect("S14 in catalog"),
            BitPermutation::paper_tm(),
            Granularity::Line,
            64,
        )
    }

    /// The paper's default TLS configuration: S14 (2 Kbit), word-address
    /// granularity, the paper's TLS bit permutation, 64-byte lines.
    pub fn s14_tls() -> Self {
        SignatureConfig::from_spec(
            table8_spec("S14").expect("S14 in catalog"),
            BitPermutation::paper_tls(),
            Granularity::Word,
            64,
        )
    }

    /// Wraps the config for cheap sharing.
    pub fn into_shared(self) -> Arc<SignatureConfig> {
        Arc::new(self)
    }

    /// The C-field sizes, LSB-first.
    pub fn chunks(&self) -> &[u32] {
        &self.chunks
    }

    /// Number of C/V field pairs.
    pub fn num_fields(&self) -> usize {
        self.chunks.len()
    }

    /// Total signature size in bits.
    pub fn size_bits(&self) -> u64 {
        *self.field_offsets.last().expect("offsets nonempty")
    }

    /// Bit range `[start, end)` of V-field `i` within the flat bit vector.
    pub fn field_range(&self, i: usize) -> std::ops::Range<u64> {
        self.field_offsets[i]..self.field_offsets[i + 1]
    }

    /// Total u64 words of the in-memory flat buffer, padding included.
    /// Always a multiple of [`LANES`].
    pub fn total_words(&self) -> usize {
        *self.word_starts.last().expect("word starts nonempty")
    }

    /// Word index where V-field `i`'s span starts in the flat buffer.
    /// Always a multiple of [`LANES`].
    #[inline]
    pub fn field_word_start(&self, i: usize) -> usize {
        self.word_starts[i]
    }

    /// Padded word range of V-field `i` in the flat buffer (its span up to
    /// the next field's start; trailing padding words are always zero).
    #[inline]
    pub fn field_word_range(&self, i: usize) -> std::ops::Range<usize> {
        self.word_starts[i]..self.word_starts[i + 1]
    }

    /// Number of *logical* (non-padding) words V-field `i` occupies:
    /// `ceil(2^cᵢ / 64)`.
    #[inline]
    pub fn field_words(&self, i: usize) -> usize {
        (1usize << self.chunks[i]).div_ceil(64)
    }

    /// Bit position in the permuted key where C-field `i` starts.
    pub fn chunk_start(&self, i: usize) -> u32 {
        self.chunk_starts[i]
    }

    /// The per-field hot-path constants.
    #[inline]
    pub(crate) fn fields_meta(&self) -> &[FieldMeta] {
        &self.fields_meta
    }

    /// Whether every V-field spans exactly one lane block. The
    /// disambiguation test then degenerates to one AND-test per block with
    /// no inner loop.
    #[inline]
    pub(crate) fn fields_single_block(&self) -> bool {
        self.single_block
    }

    /// The permutation applied before chunk extraction.
    pub fn permutation(&self) -> &BitPermutation {
        &self.permutation
    }

    /// The encoding granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// The line size assumed when converting byte addresses.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Converts a byte address to the raw key this config encodes.
    #[inline]
    pub fn key_of_addr(&self, addr: Addr) -> u32 {
        match self.granularity {
            Granularity::Line => addr.line(self.line_bytes).raw(),
            Granularity::Word => addr.word().raw(),
        }
    }

    /// The raw key of a line address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the granularity is [`Granularity::Word`]
    /// (one line is many words; use [`LineAddr::words`] instead).
    #[inline]
    pub fn key_of_line(&self, line: LineAddr) -> u32 {
        debug_assert_eq!(self.granularity, Granularity::Line);
        line.raw()
    }

    /// The raw key of a word address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the granularity is [`Granularity::Line`].
    #[inline]
    pub fn key_of_word(&self, word: WordAddr) -> u32 {
        debug_assert_eq!(self.granularity, Granularity::Word);
        word.raw()
    }

    /// The C-field values of a raw key, after permutation.
    #[inline]
    pub fn chunk_values(&self, key: u32) -> impl Iterator<Item = (usize, u32)> + '_ {
        let permuted = self.permutation.apply(key);
        self.chunks.iter().enumerate().map(move |(i, &c)| {
            let start = self.chunk_starts[i];
            let v = if start >= 32 { 0 } else { (permuted >> start) & ((1u64 << c) - 1) as u32 };
            (i, v)
        })
    }

    /// Bit positions, within the raw (pre-permutation) key, that form the
    /// cache set index for `geom`.
    pub fn index_bit_range(&self, geom: &CacheGeometry) -> std::ops::Range<u32> {
        match self.granularity {
            Granularity::Line => geom.line_index_bit_range(),
            Granularity::Word => geom.word_index_bit_range(),
        }
    }

    /// Whether δ-decoding signatures of this config yields the **exact**
    /// set of cache-set indices for `geom` (paper §4.3 requires this for
    /// bulk invalidation of dirty lines to be safe).
    ///
    /// This holds when every cache-index bit of the key lands, after
    /// permutation, inside some C-field — then the index is a projection of
    /// the decoded fields.
    pub fn is_exactly_decodable(&self, geom: &CacheGeometry) -> bool {
        let covered: u32 = self.chunks.iter().sum();
        self.index_bit_range(geom)
            .all(|b| u32::from(self.permutation.destination_of(b as u8)) < covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_matches_paper_sizes() {
        let expected: &[(&str, u64)] = &[
            ("S1", 512),
            ("S2", 512),
            ("S3", 512),
            ("S4", 1024),
            ("S5", 1024),
            ("S6", 800),
            ("S7", 800),
            ("S8", 800),
            ("S9", 576),
            ("S10", 1344),
            ("S11", 1824),
            ("S12", 1600),
            ("S13", 1664),
            ("S14", 2048),
            ("S15", 2048),
            ("S16", 2336),
            ("S17", 3072),
            ("S18", 4096),
            ("S19", 4096),
            ("S20", 4096),
            ("S21", 4112),
            ("S22", 5120),
            ("S23", 16448),
        ];
        assert_eq!(table8().len(), 23);
        for (id, size) in expected {
            let spec = table8_spec(id).unwrap_or_else(|| panic!("{id} missing"));
            assert_eq!(spec.full_size_bits(), *size, "{id}");
        }
    }

    #[test]
    fn unknown_spec_is_none() {
        assert!(table8_spec("S99").is_none());
    }

    #[test]
    fn s14_layout() {
        let c = SignatureConfig::s14_tm();
        assert_eq!(c.size_bits(), 2048);
        assert_eq!(c.num_fields(), 2);
        assert_eq!(c.field_range(0), 0..1024);
        assert_eq!(c.field_range(1), 1024..2048);
        assert_eq!(c.chunk_start(0), 0);
        assert_eq!(c.chunk_start(1), 10);
    }

    #[test]
    fn chunk_values_extract_permuted_fields() {
        // Identity permutation, chunks [4, 4] over key 0xAB -> C1=0xB, C2=0xA.
        let c = SignatureConfig::new(
            vec![4, 4],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        );
        let vals: Vec<_> = c.chunk_values(0xAB).collect();
        assert_eq!(vals, vec![(0, 0xB), (1, 0xA)]);
    }

    #[test]
    fn chunk_beyond_key_width_reads_zero() {
        // Chunks summing past 32 bits: the overflow field always reads 0.
        let c = SignatureConfig::new(
            vec![20, 20],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        );
        let vals: Vec<_> = c.chunk_values(u32::MAX).collect();
        assert_eq!(vals[0], (0, 0xF_FFFF));
        assert_eq!(vals[1], (1, 0xFFF)); // only 12 bits remain above bit 20
    }

    #[test]
    fn key_of_addr_respects_granularity() {
        let line_cfg = SignatureConfig::s14_tm();
        let word_cfg = SignatureConfig::s14_tls();
        let a = Addr::new(0x1234_5678);
        assert_eq!(line_cfg.key_of_addr(a), a.line(64).raw());
        assert_eq!(word_cfg.key_of_addr(a), a.word().raw());
    }

    #[test]
    fn paper_defaults_are_exactly_decodable() {
        let tm = SignatureConfig::s14_tm();
        assert!(tm.is_exactly_decodable(&CacheGeometry::tm_l1()));
        let tls = SignatureConfig::s14_tls();
        assert!(tls.is_exactly_decodable(&CacheGeometry::tls_l1()));
    }

    #[test]
    fn scrambled_index_bits_are_not_decodable() {
        // Move index bit 0 beyond the covered chunk range (chunks cover 4
        // bits; put source bit 0 at destination 5).
        let p = BitPermutation::from_map(vec![5, 1, 2, 3, 4, 0]).unwrap();
        let c = SignatureConfig::new(vec![2, 2], p, Granularity::Line, 64);
        assert!(!c.is_exactly_decodable(&CacheGeometry::tm_l1()));
    }

    #[test]
    #[should_panic(expected = "at least one C-field")]
    fn rejects_empty_chunks() {
        SignatureConfig::new(vec![], BitPermutation::identity(), Granularity::Line, 64);
    }

    #[test]
    #[should_panic(expected = "chunk sizes")]
    fn rejects_huge_chunks() {
        SignatureConfig::new(vec![21], BitPermutation::identity(), Granularity::Line, 64);
    }

    #[test]
    fn granularity_key_bits() {
        assert_eq!(Granularity::Line.key_bits(64), 26);
        assert_eq!(Granularity::Word.key_bits(64), 30);
    }
}
