//! The δ decode operation (paper Table 1): turn a signature into the set of
//! cache-set indices its addresses can map to.
//!
//! When every cache-index bit of the (permuted) key falls inside a single
//! C-field — as in the paper's default configurations — the result is
//! **exact**: precisely the set indices of the inserted addresses. When the
//! index bits are spread over multiple fields (or fall outside all fields),
//! the result is a conservative superset, which is safe for performance
//! studies but not for the Set-Restriction argument; the BDM therefore
//! insists on [`SignatureConfig::is_exactly_decodable`] configurations.

use std::fmt;

use bulk_mem::CacheGeometry;

use crate::{Signature, SignatureConfig};

/// A bitmask over the sets of a cache, as produced by δ and stored in the
/// BDM's `δ(W_run)` / `OR(δ(W_pre))` registers (paper Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SetBitmask {
    bits: Vec<u64>,
    num_sets: u32,
}

impl SetBitmask {
    /// Creates an all-zero bitmask over `num_sets` cache sets.
    pub fn new(num_sets: u32) -> Self {
        SetBitmask { bits: vec![0; num_sets.div_ceil(64) as usize], num_sets }
    }

    /// Number of cache sets covered.
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// Sets the bit for cache set `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: u32) {
        assert!(idx < self.num_sets, "set index out of range");
        self.bits[(idx / 64) as usize] |= 1 << (idx % 64);
    }

    /// Whether the bit for cache set `idx` is set.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: u32) -> bool {
        assert!(idx < self.num_sets, "set index out of range");
        self.bits[(idx / 64) as usize] >> (idx % 64) & 1 == 1
    }

    /// OR-accumulates another bitmask (used for `OR(δ(W_pre))`).
    ///
    /// # Panics
    ///
    /// Panics if the masks cover different numbers of sets.
    pub fn or_assign(&mut self, other: &SetBitmask) {
        assert_eq!(self.num_sets, other.num_sets, "bitmask size mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates over the set indices whose bit is set, ascending. This is
    /// the FSM of the paper's Fig. 4 walking the selected sets.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi as u32 * 64;
            std::iter::successors(
                if w == 0 { None } else { Some((w, base + w.trailing_zeros())) },
                move |&(w, _)| {
                    let w = w & (w - 1);
                    if w == 0 {
                        None
                    } else {
                        Some((w, base + w.trailing_zeros()))
                    }
                },
            )
            .map(|(_, idx)| idx)
        })
    }
}

impl fmt::Display for SetBitmask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SetBitmask[{}/{}]", self.count(), self.num_sets)
    }
}

/// How each cache-index bit of the raw key is recovered from the signature.
#[derive(Debug, Clone, Copy)]
enum IndexBitSource {
    /// Bit `pos` of C-field `field`.
    Field { field: usize, pos: u32 },
    /// Not covered by any C-field: both values are possible.
    Unknown,
}

impl Signature {
    /// The δ operation: the cache-set bitmask of this signature for `geom`.
    ///
    /// Exact when [`SignatureConfig::is_exactly_decodable`] holds for this
    /// config and geometry; otherwise a conservative superset.
    ///
    /// # Panics
    ///
    /// Panics if the config's line size differs from the cache's.
    pub fn decode_sets(&self, geom: &CacheGeometry) -> SetBitmask {
        let config = self.config();
        assert_eq!(
            config.line_bytes(),
            geom.line_bytes(),
            "signature and cache disagree on line size"
        );
        let mut mask = SetBitmask::new(geom.num_sets());
        if self.is_empty() {
            return mask;
        }

        let index_range = config.index_bit_range(geom);
        let sources: Vec<IndexBitSource> = index_range
            .clone()
            .map(|b| locate_bit(config, b))
            .collect();

        // Per involved field, the distinct partial index values its set
        // C-values contribute; unknown bits contribute both values.
        let mut partials: Vec<u32> = vec![0];
        let mut fields_done: Vec<usize> = Vec::new();
        for (out_bit, src) in sources.iter().enumerate() {
            match *src {
                IndexBitSource::Unknown => {
                    let mut next = Vec::with_capacity(partials.len() * 2);
                    for &p in &partials {
                        next.push(p);
                        next.push(p | 1 << out_bit);
                    }
                    partials = next;
                }
                IndexBitSource::Field { field, .. } => {
                    if fields_done.contains(&field) {
                        continue; // whole field handled at first encounter
                    }
                    fields_done.push(field);
                    // All index bits this field contributes.
                    let bits: Vec<(usize, u32)> = sources
                        .iter()
                        .enumerate()
                        .filter_map(|(ob, s)| match *s {
                            IndexBitSource::Field { field: f, pos } if f == field => {
                                Some((ob, pos))
                            }
                            _ => None,
                        })
                        .collect();
                    let mut contribs: Vec<u32> = self
                        .field_values(field)
                        .map(|v| {
                            bits.iter()
                                .fold(0u32, |acc, &(ob, pos)| acc | ((v >> pos) & 1) << ob)
                        })
                        .collect();
                    contribs.sort_unstable();
                    contribs.dedup();
                    let mut next = Vec::with_capacity(partials.len() * contribs.len());
                    for &p in &partials {
                        for &c in &contribs {
                            next.push(p | c);
                        }
                    }
                    partials = next;
                    partials.sort_unstable();
                    partials.dedup();
                }
            }
        }
        for p in partials {
            mask.set(p);
        }
        mask
    }
}

/// Finds where raw-key bit `b` lands after permutation, and which C-field
/// covers it.
fn locate_bit(config: &SignatureConfig, b: u32) -> IndexBitSource {
    let dest = u32::from(config.permutation().destination_of(b as u8));
    for (i, &c) in config.chunks().iter().enumerate() {
        let start = config.chunk_start(i);
        if (start..start + c).contains(&dest) {
            return IndexBitSource::Field { field: i, pos: dest - start };
        }
    }
    IndexBitSource::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitPermutation, Granularity};
    use bulk_mem::{Addr, LineAddr};

    #[test]
    fn bitmask_basics() {
        let mut m = SetBitmask::new(128);
        assert!(!m.any());
        m.set(0);
        m.set(127);
        m.set(64);
        assert!(m.get(0) && m.get(64) && m.get(127) && !m.get(1));
        assert_eq!(m.count(), 3);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![0, 64, 127]);
        m.clear();
        assert!(!m.any());
    }

    #[test]
    fn bitmask_or() {
        let mut a = SetBitmask::new(64);
        a.set(1);
        let mut b = SetBitmask::new(64);
        b.set(2);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmask_bounds() {
        SetBitmask::new(8).set(8);
    }

    #[test]
    fn decode_is_exact_for_paper_tm_default() {
        let geom = CacheGeometry::tm_l1();
        let cfg = crate::SignatureConfig::s14_tm();
        assert!(cfg.is_exactly_decodable(&geom));
        let mut s = Signature::new(cfg);
        let lines = [0u32, 5, 128, 129, 7777, 65535].map(LineAddr::new);
        for &l in &lines {
            s.insert_line(l);
        }
        let mask = s.decode_sets(&geom);
        let mut expected: Vec<u32> = lines.iter().map(|&l| geom.set_of_line(l)).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn decode_is_exact_for_paper_tls_default() {
        let geom = CacheGeometry::tls_l1();
        let cfg = crate::SignatureConfig::s14_tls();
        assert!(cfg.is_exactly_decodable(&geom));
        let mut s = Signature::new(cfg);
        let addrs = [0u32, 0x40, 0x44, 0x1000, 0xfff0, 0xdead_bee0].map(Addr::new);
        for &a in &addrs {
            s.insert_addr(a);
        }
        let mask = s.decode_sets(&geom);
        let mut expected: Vec<u32> =
            addrs.iter().map(|&a| geom.set_of_word(a.word())).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn decode_of_empty_signature_is_empty() {
        let s = Signature::new(crate::SignatureConfig::s14_tm());
        assert!(!s.decode_sets(&CacheGeometry::tm_l1()).any());
    }

    #[test]
    fn decode_with_uncovered_index_bits_is_superset() {
        // One 4-bit chunk over 7 index bits: bits 4..6 are unknown.
        let geom = CacheGeometry::tm_l1();
        let cfg = crate::SignatureConfig::new(
            vec![4],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        );
        assert!(!cfg.is_exactly_decodable(&geom));
        let mut s = Signature::new(cfg);
        let line = LineAddr::new(0b101_0011);
        s.insert_line(line);
        let mask = s.decode_sets(&geom);
        // Must cover the true set...
        assert!(mask.get(geom.set_of_line(line)));
        // ...and exactly the 8 combinations of the 3 unknown bits.
        assert_eq!(mask.count(), 8);
    }

    #[test]
    fn decode_split_index_bits_is_conservative_superset() {
        // Index bits split across two 4-bit chunks (line index bits 0..6).
        let geom = CacheGeometry::tm_l1();
        let cfg = crate::SignatureConfig::new(
            vec![4, 4],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        );
        let mut s = Signature::new(cfg);
        let lines = [LineAddr::new(0b0010_0001), LineAddr::new(0b0101_0010)];
        for &l in &lines {
            s.insert_line(l);
        }
        let mask = s.decode_sets(&geom);
        for &l in &lines {
            assert!(mask.get(geom.set_of_line(l)));
        }
        // Cross products of the two fields: up to 4 combinations.
        assert!(mask.count() <= 4);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn decode_rejects_mismatched_line_size() {
        let s = Signature::new(crate::SignatureConfig::new(
            vec![8],
            BitPermutation::identity(),
            Granularity::Line,
            32,
        ));
        let _ = s.decode_sets(&CacheGeometry::tm_l1());
    }
}
