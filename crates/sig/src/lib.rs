//! Address signatures and primitive bulk operations — the core mechanism of
//! *Bulk Disambiguation of Speculative Threads in Multiprocessors*
//! (Ceze, Tuck, Caşcaval & Torrellas, ISCA 2006).
//!
//! A [`Signature`] is a fixed-size register that hash-encodes a set of
//! addresses (a Bloom-filter variant, paper §3.1): the address is permuted
//! ([`BitPermutation`]), sliced into C-fields, and each field is decoded and
//! OR-ed into a V-field. The crate provides:
//!
//! * the primitive operations of the paper's Table 1 — intersection,
//!   union, emptiness, membership ([`Signature`]) and the exact cache-set
//!   decode δ ([`Signature::decode_sets`], [`SetBitmask`]);
//! * the composite operations — signature expansion over a cache
//!   ([`Signature::expand`], §3.3) and the updated-word bitmask with
//!   line merging ([`Signature::updated_word_bitmask`], [`merge_line`],
//!   §4.4);
//! * run-length compression for commit broadcasts
//!   ([`Signature::compress`], §6.1); and
//! * the full configuration catalog of the paper's Table 8
//!   ([`table8`], [`SignatureConfig`]), including the default `S14`
//!   configurations and Table 5 bit permutations.
//!
//! # Example: bulk address disambiguation
//!
//! ```
//! use bulk_sig::{Signature, SignatureConfig};
//! use bulk_mem::Addr;
//!
//! let cfg = SignatureConfig::s14_tm().into_shared();
//! let mut w_committing = Signature::with_shared(cfg.clone());
//! let mut r_receiver = Signature::with_shared(cfg);
//!
//! w_committing.insert_addr(Addr::new(0x1000));
//! r_receiver.insert_addr(Addr::new(0x2000));
//!
//! // Disjoint accesses: the receiver need not be squashed.
//! assert!(!w_committing.intersects(&r_receiver));
//! ```

#![warn(missing_docs)]

mod arena;
mod config;
mod decode;
mod expansion;
mod permute;
mod rle;
mod sealed;
mod signature;
mod word_bitmask;

pub use arena::SignatureArena;
pub use config::{table8, table8_spec, Granularity, SignatureConfig, SignatureSpec, LANES};
pub use decode::SetBitmask;
pub use expansion::ExpandedLine;
pub use permute::{BitPermutation, InvalidPermutationError};
pub use rle::CompressedSignature;
pub use sealed::{crc64, Delivery, SealedSignature};
pub use signature::{ConfigMismatch, Signature};
pub use word_bitmask::{merge_line, WordBitmask};