//! A recycling pool for [`Signature`] buffers.
//!
//! The TM and TLS machines allocate signatures on every commit broadcast
//! (clones of the committer's W/R sets, scratch unions for nested sections,
//! decompressed wire signatures). Each is a short-lived heap allocation of
//! the same size, so the machines keep a [`SignatureArena`] per
//! configuration and recycle buffers instead of round-tripping the global
//! allocator once per broadcast — the software analogue of the fixed
//! signature register file the paper's hardware owns outright.

use std::sync::Arc;

use crate::{Signature, SignatureConfig};

/// Default cap on pooled signatures; beyond this, returned buffers are
/// simply dropped. Sized for the deepest per-commit burst in the machines
/// (probe + W + W_sh + section unions) with headroom for delivery rounds.
const DEFAULT_CAPACITY: usize = 32;

/// A bounded free-list of cleared signatures sharing one configuration.
///
/// [`take`](SignatureArena::take) hands out an empty signature (recycled
/// if possible), [`give`](SignatureArena::give) returns one to the pool.
/// Returned signatures are cleared on the way in — a lane-loop store, far
/// cheaper than an allocate/free pair — so `take` is always `O(1)` and
/// never observes stale bits.
///
/// ```
/// use bulk_sig::{SignatureArena, SignatureConfig};
///
/// let mut arena = SignatureArena::new(SignatureConfig::s14_tm().into_shared());
/// let mut s = arena.take();
/// s.insert_key(7);
/// arena.give(s);
/// let s2 = arena.take(); // recycled buffer, empty again
/// assert!(s2.is_empty());
/// ```
#[derive(Debug)]
pub struct SignatureArena {
    config: Arc<SignatureConfig>,
    free: Vec<Signature>,
    capacity: usize,
    recycled: u64,
    allocated: u64,
}

impl SignatureArena {
    /// Creates an empty arena for `config` with the default capacity.
    pub fn new(config: Arc<SignatureConfig>) -> Self {
        SignatureArena::with_capacity(config, DEFAULT_CAPACITY)
    }

    /// Creates an empty arena holding at most `capacity` pooled buffers.
    pub fn with_capacity(config: Arc<SignatureConfig>, capacity: usize) -> Self {
        SignatureArena { config, free: Vec::new(), capacity, recycled: 0, allocated: 0 }
    }

    /// The configuration every pooled signature shares.
    pub fn config(&self) -> &Arc<SignatureConfig> {
        &self.config
    }

    /// Hands out an empty signature, recycling a pooled buffer when one is
    /// available and allocating otherwise.
    pub fn take(&mut self) -> Signature {
        match self.free.pop() {
            Some(sig) => {
                self.recycled += 1;
                sig
            }
            None => {
                self.allocated += 1;
                Signature::with_shared(self.config.clone())
            }
        }
    }

    /// Hands out a copy of `src` without allocating when a pooled buffer is
    /// available (the per-commit replacement for `sig.clone()`).
    ///
    /// # Panics
    ///
    /// Panics if `src` was built from a different configuration.
    pub fn clone_of(&mut self, src: &Signature) -> Signature {
        let mut sig = self.take();
        sig.copy_from(src);
        sig
    }

    /// Returns a signature to the pool (cleared), or drops it if the pool
    /// is full or the signature belongs to a different configuration —
    /// wire-derived signatures with foreign configs are silently refused
    /// rather than poisoning the pool.
    pub fn give(&mut self, mut sig: Signature) {
        if self.free.len() >= self.capacity || !Arc::ptr_eq(sig.config(), &self.config) {
            return;
        }
        sig.clear();
        self.free.push(sig);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Lifetime counters: `(recycled, freshly_allocated)` takes. The
    /// machines surface these through their stats so the bench harness can
    /// verify the commit path stops hitting the allocator.
    pub fn stats(&self) -> (u64, u64) {
        (self.recycled, self.allocated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> SignatureArena {
        SignatureArena::new(SignatureConfig::s14_tm().into_shared())
    }

    #[test]
    fn take_give_recycles() {
        let mut a = arena();
        let mut s = a.take();
        s.insert_key(42);
        a.give(s);
        assert_eq!(a.pooled(), 1);
        let s2 = a.take();
        assert!(s2.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(a.pooled(), 0);
        assert_eq!(a.stats(), (1, 1));
    }

    #[test]
    fn clone_of_matches_source() {
        let mut a = arena();
        let mut src = a.take();
        src.insert_key(7);
        src.insert_key(1234);
        let copy = a.clone_of(&src);
        assert_eq!(copy, src);
    }

    #[test]
    fn capacity_bounds_pool() {
        let mut a = SignatureArena::with_capacity(
            SignatureConfig::s14_tm().into_shared(),
            2,
        );
        for _ in 0..5 {
            let s = Signature::with_shared(a.config().clone());
            a.give(s);
        }
        assert_eq!(a.pooled(), 2);
    }

    #[test]
    fn foreign_config_refused() {
        let mut a = arena();
        let other = Signature::new(SignatureConfig::s14_tls());
        a.give(other);
        assert_eq!(a.pooled(), 0);
    }
}
