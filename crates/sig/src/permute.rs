//! Bit permutations applied to addresses before signature encoding.
//!
//! The first step of adding an address to a signature (paper Fig. 2) is a
//! fixed permutation of its bits. Good permutations group high-variance bits
//! into large C-fields and are shown in §7.5 / Fig. 15 to matter
//! significantly for accuracy. The paper's Table 5 gives the permutations
//! used for the TM and TLS experiments; both are provided as constructors,
//! along with uniformly random permutations for the Fig. 15 sweep.

use bulk_rng::seq::SliceRandom;
use bulk_rng::Rng;

/// A permutation of the low `width` bits of an address.
///
/// `map[i]` is the *source* bit index whose value lands at *destination*
/// position `i`, matching the paper's "(bit indices, LSB is 0)" notation.
/// Bits at positions `>= width` pass through unchanged ("the high-order
/// bits not shown in the permutation stay in their original position").
///
/// ```
/// use bulk_sig::BitPermutation;
/// // Swap the two low bits of a 2-bit-wide permutation.
/// let p = BitPermutation::from_map(vec![1, 0]).unwrap();
/// assert_eq!(p.apply(0b01), 0b10);
/// assert_eq!(p.apply(0b10), 0b01);
/// assert_eq!(p.apply(0b100), 0b100); // untouched high bit
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitPermutation {
    map: Vec<u8>,
}

/// Error returned when a bit-index list is not a permutation of `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPermutationError {
    /// The offending map.
    pub map: Vec<u8>,
}

impl std::fmt::Display for InvalidPermutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit map {:?} is not a permutation of 0..{}", self.map, self.map.len())
    }
}

impl std::error::Error for InvalidPermutationError {}

impl BitPermutation {
    /// The identity permutation (no reordering).
    pub fn identity() -> Self {
        BitPermutation { map: Vec::new() }
    }

    /// Builds a permutation from a destination-ordered list of source bit
    /// indices.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPermutationError`] if `map` is not a permutation of
    /// `0..map.len()` or is longer than 32.
    pub fn from_map(map: Vec<u8>) -> Result<Self, InvalidPermutationError> {
        if map.len() > 32 {
            return Err(InvalidPermutationError { map });
        }
        let mut seen = [false; 32];
        for &b in &map {
            if (b as usize) >= map.len() || seen[b as usize] {
                return Err(InvalidPermutationError { map });
            }
            seen[b as usize] = true;
        }
        Ok(BitPermutation { map })
    }

    /// The paper's TM permutation (Table 5), over 26-bit line addresses:
    /// `[0-6, 9, 11, 17, 7-8, 10, 12, 13, 15-16, 18-20, 14]`.
    pub fn paper_tm() -> Self {
        BitPermutation::from_map(vec![
            0, 1, 2, 3, 4, 5, 6, 9, 11, 17, 7, 8, 10, 12, 13, 15, 16, 18, 19, 20, 14,
        ])
        .expect("paper TM permutation is valid")
    }

    /// The paper's TLS permutation (Table 5), over 30-bit word addresses:
    /// `[0-9, 11-19, 21, 10, 20, 22]`.
    pub fn paper_tls() -> Self {
        BitPermutation::from_map(vec![
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19, 21, 10, 20, 22,
        ])
        .expect("paper TLS permutation is valid")
    }

    /// A uniformly random permutation of the low `width` bits, optionally
    /// keeping the low `fixed_low` bits in place (so that cache-index bits
    /// remain decodable — see the paper's δ requirement, §4.3).
    ///
    /// # Panics
    ///
    /// Panics if `fixed_low > width` or `width > 32`.
    pub fn random<R: Rng>(width: u8, fixed_low: u8, rng: &mut R) -> Self {
        assert!(fixed_low <= width && width <= 32);
        let mut tail: Vec<u8> = (fixed_low..width).collect();
        tail.shuffle(rng);
        let mut map: Vec<u8> = (0..fixed_low).collect();
        map.extend(tail);
        BitPermutation { map }
    }

    /// Number of bits the permutation covers.
    pub fn width(&self) -> u8 {
        self.map.len() as u8
    }

    /// The destination-ordered source bit indices (empty for identity).
    pub fn map(&self) -> &[u8] {
        &self.map
    }

    /// Applies the permutation to an address key.
    #[inline]
    pub fn apply(&self, key: u32) -> u32 {
        if self.map.is_empty() {
            return key;
        }
        let w = self.map.len();
        let low_mask: u32 = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
        let mut out = key & !low_mask;
        for (dst, &src) in self.map.iter().enumerate() {
            out |= ((key >> src) & 1) << dst;
        }
        out
    }

    /// Where source bit `src` lands after permutation.
    #[inline]
    pub fn destination_of(&self, src: u8) -> u8 {
        self.map
            .iter()
            .position(|&s| s == src)
            .map(|d| d as u8)
            .unwrap_or(src)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u8; self.map.len()];
        for (dst, &src) in self.map.iter().enumerate() {
            inv[src as usize] = dst as u8;
        }
        BitPermutation { map: inv }
    }
}

impl Default for BitPermutation {
    fn default() -> Self {
        BitPermutation::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_rng::{SeedableRng, SmallRng};

    #[test]
    fn identity_is_noop() {
        let p = BitPermutation::identity();
        for k in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(p.apply(k), k);
        }
    }

    #[test]
    fn paper_permutations_are_valid_and_bijective() {
        for p in [BitPermutation::paper_tm(), BitPermutation::paper_tls()] {
            let inv = p.inverse();
            for k in [0u32, 1, 0x2bad_cafe, 0x03ff_ffff] {
                assert_eq!(inv.apply(p.apply(k)), k);
            }
        }
        assert_eq!(BitPermutation::paper_tm().width(), 21);
        assert_eq!(BitPermutation::paper_tls().width(), 23);
    }

    #[test]
    fn paper_tm_moves_bit_9_to_position_7() {
        let p = BitPermutation::paper_tm();
        assert_eq!(p.apply(1 << 9), 1 << 7);
        assert_eq!(p.destination_of(9), 7);
        // Index bits 0..6 stay put.
        for b in 0..7 {
            assert_eq!(p.destination_of(b), b);
        }
    }

    #[test]
    fn high_bits_pass_through() {
        let p = BitPermutation::paper_tm();
        assert_eq!(p.apply(1 << 25), 1 << 25);
        assert_eq!(p.apply(1 << 21), 1 << 21);
    }

    #[test]
    fn rejects_non_permutations() {
        assert!(BitPermutation::from_map(vec![0, 0]).is_err());
        assert!(BitPermutation::from_map(vec![0, 2]).is_err());
        assert!(BitPermutation::from_map(vec![1]).is_err());
    }

    #[test]
    fn random_keeps_fixed_low_bits() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let p = BitPermutation::random(26, 7, &mut rng);
            for b in 0..7 {
                assert_eq!(p.destination_of(b), b);
            }
            let inv = p.inverse();
            assert_eq!(inv.apply(p.apply(0x1234_5678)), 0x1234_5678);
        }
    }

    #[test]
    fn random_is_seeded_deterministic() {
        let a = BitPermutation::random(20, 0, &mut SmallRng::seed_from_u64(1));
        let b = BitPermutation::random(20, 0, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_error_displays() {
        let e = BitPermutation::from_map(vec![0, 0]).unwrap_err();
        assert!(e.to_string().contains("not a permutation"));
    }
}
