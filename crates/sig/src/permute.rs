//! Bit permutations applied to addresses before signature encoding.
//!
//! The first step of adding an address to a signature (paper Fig. 2) is a
//! fixed permutation of its bits. Good permutations group high-variance bits
//! into large C-fields and are shown in §7.5 / Fig. 15 to matter
//! significantly for accuracy. The paper's Table 5 gives the permutations
//! used for the TM and TLS experiments; both are provided as constructors,
//! along with uniformly random permutations for the Fig. 15 sweep.

use bulk_rng::seq::SliceRandom;
use bulk_rng::Rng;

/// A permutation of the low `width` bits of an address.
///
/// `map[i]` is the *source* bit index whose value lands at *destination*
/// position `i`, matching the paper's "(bit indices, LSB is 0)" notation.
/// Bits at positions `>= width` pass through unchanged ("the high-order
/// bits not shown in the permutation stay in their original position").
///
/// ```
/// use bulk_sig::BitPermutation;
/// // Swap the two low bits of a 2-bit-wide permutation.
/// let p = BitPermutation::from_map(vec![1, 0]).unwrap();
/// assert_eq!(p.apply(0b01), 0b10);
/// assert_eq!(p.apply(0b10), 0b01);
/// assert_eq!(p.apply(0b100), 0b100); // untouched high bit
/// ```
#[derive(Clone)]
pub struct BitPermutation {
    map: Vec<u8>,
    /// Byte-indexed scatter tables: `tables[k][b]` is the permuted image of
    /// input byte `b` at bit positions `8k..8k+8` (pass-through included
    /// for bits at or above the permutation width). [`BitPermutation::apply`]
    /// is then four loads and three ORs instead of a per-bit loop — the
    /// permutation sits on the insert/membership hot path. `None` for the
    /// identity permutation.
    tables: Option<Box<[[u32; 256]; 4]>>,
}

impl PartialEq for BitPermutation {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl Eq for BitPermutation {}

impl std::hash::Hash for BitPermutation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.map.hash(state);
    }
}

impl std::fmt::Debug for BitPermutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitPermutation").field("map", &self.map).finish()
    }
}

/// Builds the byte-indexed scatter tables for a non-identity `map`.
fn build_tables(map: &[u8]) -> Box<[[u32; 256]; 4]> {
    // Destination of every source bit (pass-through above the width).
    let mut dest = [0u8; 32];
    for (i, d) in dest.iter_mut().enumerate() {
        *d = i as u8;
    }
    for (dst, &src) in map.iter().enumerate() {
        dest[src as usize] = dst as u8;
    }
    let mut tables = Box::new([[0u32; 256]; 4]);
    for k in 0..4 {
        for b in 0..256usize {
            let mut out = 0u32;
            for bit in 0..8 {
                if b >> bit & 1 == 1 {
                    out |= 1u32 << dest[k * 8 + bit];
                }
            }
            tables[k][b] = out;
        }
    }
    tables
}

/// Error returned when a bit-index list is not a permutation of `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPermutationError {
    /// The offending map.
    pub map: Vec<u8>,
}

impl std::fmt::Display for InvalidPermutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit map {:?} is not a permutation of 0..{}", self.map, self.map.len())
    }
}

impl std::error::Error for InvalidPermutationError {}

impl BitPermutation {
    /// The identity permutation (no reordering).
    pub fn identity() -> Self {
        BitPermutation { map: Vec::new(), tables: None }
    }

    /// Internal constructor for a map already known to be a permutation.
    fn from_valid_map(map: Vec<u8>) -> Self {
        let tables = if map.is_empty() { None } else { Some(build_tables(&map)) };
        BitPermutation { map, tables }
    }

    /// Builds a permutation from a destination-ordered list of source bit
    /// indices.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPermutationError`] if `map` is not a permutation of
    /// `0..map.len()` or is longer than 32.
    pub fn from_map(map: Vec<u8>) -> Result<Self, InvalidPermutationError> {
        if map.len() > 32 {
            return Err(InvalidPermutationError { map });
        }
        let mut seen = [false; 32];
        for &b in &map {
            if (b as usize) >= map.len() || seen[b as usize] {
                return Err(InvalidPermutationError { map });
            }
            seen[b as usize] = true;
        }
        Ok(BitPermutation::from_valid_map(map))
    }

    /// The paper's TM permutation (Table 5), over 26-bit line addresses:
    /// `[0-6, 9, 11, 17, 7-8, 10, 12, 13, 15-16, 18-20, 14]`.
    pub fn paper_tm() -> Self {
        BitPermutation::from_map(vec![
            0, 1, 2, 3, 4, 5, 6, 9, 11, 17, 7, 8, 10, 12, 13, 15, 16, 18, 19, 20, 14,
        ])
        .expect("paper TM permutation is valid")
    }

    /// The paper's TLS permutation (Table 5), over 30-bit word addresses:
    /// `[0-9, 11-19, 21, 10, 20, 22]`.
    pub fn paper_tls() -> Self {
        BitPermutation::from_map(vec![
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19, 21, 10, 20, 22,
        ])
        .expect("paper TLS permutation is valid")
    }

    /// A uniformly random permutation of the low `width` bits, optionally
    /// keeping the low `fixed_low` bits in place (so that cache-index bits
    /// remain decodable — see the paper's δ requirement, §4.3).
    ///
    /// # Panics
    ///
    /// Panics if `fixed_low > width` or `width > 32`.
    pub fn random<R: Rng>(width: u8, fixed_low: u8, rng: &mut R) -> Self {
        assert!(fixed_low <= width && width <= 32);
        let mut tail: Vec<u8> = (fixed_low..width).collect();
        tail.shuffle(rng);
        let mut map: Vec<u8> = (0..fixed_low).collect();
        map.extend(tail);
        BitPermutation::from_valid_map(map)
    }

    /// Number of bits the permutation covers.
    pub fn width(&self) -> u8 {
        self.map.len() as u8
    }

    /// The destination-ordered source bit indices (empty for identity).
    pub fn map(&self) -> &[u8] {
        &self.map
    }

    /// Applies the permutation to an address key. Branch-free for
    /// non-identity permutations: one table load per input byte.
    #[inline]
    pub fn apply(&self, key: u32) -> u32 {
        match &self.tables {
            None => key,
            Some(t) => {
                t[0][(key & 0xff) as usize]
                    | t[1][(key >> 8 & 0xff) as usize]
                    | t[2][(key >> 16 & 0xff) as usize]
                    | t[3][(key >> 24) as usize]
            }
        }
    }

    /// Where source bit `src` lands after permutation.
    #[inline]
    pub fn destination_of(&self, src: u8) -> u8 {
        self.map
            .iter()
            .position(|&s| s == src)
            .map(|d| d as u8)
            .unwrap_or(src)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u8; self.map.len()];
        for (dst, &src) in self.map.iter().enumerate() {
            inv[src as usize] = dst as u8;
        }
        BitPermutation::from_valid_map(inv)
    }
}

impl Default for BitPermutation {
    fn default() -> Self {
        BitPermutation::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_rng::{SeedableRng, SmallRng};

    #[test]
    fn identity_is_noop() {
        let p = BitPermutation::identity();
        for k in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(p.apply(k), k);
        }
    }

    #[test]
    fn paper_permutations_are_valid_and_bijective() {
        for p in [BitPermutation::paper_tm(), BitPermutation::paper_tls()] {
            let inv = p.inverse();
            for k in [0u32, 1, 0x2bad_cafe, 0x03ff_ffff] {
                assert_eq!(inv.apply(p.apply(k)), k);
            }
        }
        assert_eq!(BitPermutation::paper_tm().width(), 21);
        assert_eq!(BitPermutation::paper_tls().width(), 23);
    }

    #[test]
    fn paper_tm_moves_bit_9_to_position_7() {
        let p = BitPermutation::paper_tm();
        assert_eq!(p.apply(1 << 9), 1 << 7);
        assert_eq!(p.destination_of(9), 7);
        // Index bits 0..6 stay put.
        for b in 0..7 {
            assert_eq!(p.destination_of(b), b);
        }
    }

    #[test]
    fn high_bits_pass_through() {
        let p = BitPermutation::paper_tm();
        assert_eq!(p.apply(1 << 25), 1 << 25);
        assert_eq!(p.apply(1 << 21), 1 << 21);
    }

    #[test]
    fn rejects_non_permutations() {
        assert!(BitPermutation::from_map(vec![0, 0]).is_err());
        assert!(BitPermutation::from_map(vec![0, 2]).is_err());
        assert!(BitPermutation::from_map(vec![1]).is_err());
    }

    #[test]
    fn random_keeps_fixed_low_bits() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let p = BitPermutation::random(26, 7, &mut rng);
            for b in 0..7 {
                assert_eq!(p.destination_of(b), b);
            }
            let inv = p.inverse();
            assert_eq!(inv.apply(p.apply(0x1234_5678)), 0x1234_5678);
        }
    }

    #[test]
    fn random_is_seeded_deterministic() {
        let a = BitPermutation::random(20, 0, &mut SmallRng::seed_from_u64(1));
        let b = BitPermutation::random(20, 0, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn table_apply_matches_per_bit_reference() {
        let mut rng = SmallRng::seed_from_u64(42);
        for width in [8u8, 20, 26, 30, 32] {
            let p = BitPermutation::random(width, 0, &mut rng);
            for k in [0u32, 1, 0x2bad_cafe, 0x03ff_ffff, 0x1234_5678, u32::MAX] {
                let w = p.map().len();
                let low_mask: u32 = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
                let mut expect = k & !low_mask;
                for (dst, &src) in p.map().iter().enumerate() {
                    expect |= ((k >> src) & 1) << dst;
                }
                assert_eq!(p.apply(k), expect, "width {width}, key {k:#x}");
            }
        }
    }

    #[test]
    fn invalid_error_displays() {
        let e = BitPermutation::from_map(vec![0, 0]).unwrap_err();
        assert!(e.to_string().contains("not a permutation"));
    }
}
