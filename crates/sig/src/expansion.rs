//! Signature expansion (paper §3.3): find the lines resident in a cache
//! that may belong to a signature, via `δ` plus per-line membership tests —
//! rather than a naive walk of every cache tag.

use bulk_mem::{Cache, LineAddr, LineState};
use bulk_obs::ExpansionObs;

use crate::Signature;

/// A cache line selected by signature expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpandedLine {
    /// The matching line's address.
    pub addr: LineAddr,
    /// Its clean/dirty state at expansion time.
    pub state: LineState,
}

impl Signature {
    /// Expands this signature against `cache`: applies δ to obtain the
    /// cache-set bitmask (Fig. 4's FSM input), then for each selected set
    /// reads the valid line addresses and keeps those passing the
    /// membership test. For word-granularity signatures a line matches if
    /// any of its words may be in the signature.
    ///
    /// The result is a superset of the truly matching lines (aliasing), and
    /// never misses a truly matching resident line.
    ///
    /// # Panics
    ///
    /// Panics if the signature's line size differs from the cache's.
    pub fn expand(&self, cache: &Cache) -> Vec<ExpandedLine> {
        self.expand_observed(cache, None)
    }

    /// [`Signature::expand`] with optional instrumentation: when `obs` is
    /// given, the expansion records how many cache sets δ selected, how
    /// many tags it read, and how many lines it matched.
    pub fn expand_observed(&self, cache: &Cache, obs: Option<&ExpansionObs>) -> Vec<ExpandedLine> {
        let geom = cache.geometry();
        let mask = self.decode_sets(&geom);
        let mut out = Vec::new();
        let mut sets = 0u64;
        let mut tags = 0u64;
        for set in mask.iter_ones() {
            sets += 1;
            for line in cache.lines_in_set(set) {
                tags += 1;
                if self.contains_any_word_of_line(line.addr()) {
                    out.push(ExpandedLine { addr: line.addr(), state: line.state() });
                }
            }
        }
        if let Some(obs) = obs {
            obs.calls.inc();
            obs.candidate_sets.add(sets);
            obs.tag_reads.add(tags);
            obs.matched_lines.add(out.len() as u64);
        }
        out
    }

    /// Number of cache tags signature expansion reads for this cache —
    /// the cost the δ pre-selection saves versus a full tag walk.
    pub fn expansion_tag_reads(&self, cache: &Cache) -> usize {
        let geom = cache.geometry();
        self.decode_sets(&geom)
            .iter_ones()
            .map(|set| cache.lines_in_set(set).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureConfig;
    use bulk_mem::{Addr, CacheGeometry};

    #[test]
    fn expansion_finds_inserted_resident_lines() {
        let geom = CacheGeometry::tm_l1();
        let mut cache = Cache::new(geom);
        let mut sig = Signature::new(SignatureConfig::s14_tm());
        let hot = [LineAddr::new(3), LineAddr::new(1000), LineAddr::new(77)];
        let cold = [LineAddr::new(4), LineAddr::new(2000)];
        for &l in &hot {
            cache.fill_dirty(l);
            sig.insert_line(l);
        }
        for &l in &cold {
            cache.fill_clean(l);
        }
        let found = sig.expand(&cache);
        for &l in &hot {
            assert!(found.iter().any(|e| e.addr == l && e.state == LineState::Dirty));
        }
        // No cold line may appear unless aliased; with S14 and 5 lines,
        // aliasing into both the set mask and the membership test for these
        // specific addresses does not occur.
        for &l in &cold {
            assert!(!found.iter().any(|e| e.addr == l));
        }
    }

    #[test]
    fn expansion_skips_non_resident_lines() {
        let geom = CacheGeometry::tm_l1();
        let cache = Cache::new(geom);
        let mut sig = Signature::new(SignatureConfig::s14_tm());
        sig.insert_line(LineAddr::new(42));
        assert!(sig.expand(&cache).is_empty());
    }

    #[test]
    fn expansion_with_word_granularity() {
        let geom = CacheGeometry::tls_l1();
        let mut cache = Cache::new(geom);
        let mut sig = Signature::new(SignatureConfig::s14_tls());
        let a = Addr::new(0x4000);
        cache.fill_dirty(a.line(64));
        sig.insert_addr(a); // one word of the line
        let found = sig.expand(&cache);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].addr, a.line(64));
    }

    #[test]
    fn tag_reads_bounded_by_selected_sets() {
        let geom = CacheGeometry::tm_l1();
        let mut cache = Cache::new(geom);
        // Fill many sets.
        for i in 0..256u32 {
            cache.fill_clean(LineAddr::new(i));
        }
        let mut sig = Signature::new(SignatureConfig::s14_tm());
        sig.insert_line(LineAddr::new(10));
        // δ selects one set of 128; that set holds 2 lines (10 and 138).
        assert_eq!(sig.expansion_tag_reads(&cache), 2);
        assert!(sig.expansion_tag_reads(&cache) < cache.len());
    }

    #[test]
    fn observed_expansion_counts_sets_tags_and_matches() {
        let geom = CacheGeometry::tm_l1();
        let mut cache = Cache::new(geom);
        for i in 0..256u32 {
            cache.fill_clean(LineAddr::new(i));
        }
        let mut sig = Signature::new(SignatureConfig::s14_tm());
        sig.insert_line(LineAddr::new(10));
        let reg = bulk_obs::Registry::new();
        let obs = ExpansionObs::register(&reg, "sig.");
        let found = sig.expand_observed(&cache, Some(&obs));
        assert_eq!(reg.counter_value("sig.expansion.calls"), 1);
        assert_eq!(
            reg.counter_value("sig.expansion.tag_reads"),
            sig.expansion_tag_reads(&cache) as u64
        );
        assert_eq!(reg.counter_value("sig.expansion.matched_lines"), found.len() as u64);
        assert!(reg.counter_value("sig.expansion.candidate_sets") >= 1);
    }

    #[test]
    fn empty_signature_expands_to_nothing() {
        let geom = CacheGeometry::tm_l1();
        let mut cache = Cache::new(geom);
        cache.fill_dirty(LineAddr::new(1));
        let sig = Signature::new(SignatureConfig::s14_tm());
        assert!(sig.expand(&cache).is_empty());
        assert_eq!(sig.expansion_tag_reads(&cache), 0);
    }
}
