//! The Updated Word Bitmask functional unit and line merge (paper §4.4).
//!
//! With word-granularity signatures, two threads may commit disjoint words
//! of the same line. Bulk merges the committed version of the line with the
//! local updates, using a *conservative* per-word bitmask extracted from the
//! local write signature — conservative because of word-address aliasing,
//! but never including a word the committer wrote (the `W_C ∩ W_R` squash
//! test rules that out). No per-word cache bits are needed.

use bulk_mem::LineAddr;

use crate::{Granularity, Signature};

/// A per-word dirty mask for one cache line; bit *i* covers word *i*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordBitmask(u64);

impl WordBitmask {
    /// Builds a mask directly from raw bits (bit *i* = word *i* updated).
    pub const fn from_bits(bits: u64) -> Self {
        WordBitmask(bits)
    }

    /// The raw bits.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether word `i` is marked.
    pub fn contains(self, i: u32) -> bool {
        self.0 >> i & 1 == 1
    }

    /// Number of marked words.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no word is marked.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Signature {
    /// The Updated Word Bitmask unit (paper Fig. 6): a conservative mask of
    /// the words of `line` that this (write) signature may have updated.
    ///
    /// # Panics
    ///
    /// Panics if the signature is not word-granularity, or the line has
    /// more than 64 words.
    pub fn updated_word_bitmask(&self, line: LineAddr) -> WordBitmask {
        assert_eq!(
            self.config().granularity(),
            Granularity::Word,
            "updated-word bitmask requires a word-granularity signature"
        );
        let words_per_line = self.config().line_bytes() / 4;
        assert!(words_per_line <= 64, "line too wide for a 64-bit word mask");
        let mut bits = 0u64;
        for (i, w) in line.words(self.config().line_bytes()).enumerate() {
            if self.contains_word(w) {
                bits |= 1 << i;
            }
        }
        WordBitmask(bits)
    }
}

/// Merges a just-committed version of a line with local speculative updates
/// (paper Fig. 6): words marked in `local_mask` are taken from `local`,
/// all other words from `committed`.
///
/// # Panics
///
/// Panics if the two slices have different lengths or more than 64 words.
pub fn merge_line(committed: &[u64], local: &[u64], local_mask: WordBitmask) -> Vec<u64> {
    assert_eq!(committed.len(), local.len(), "line width mismatch");
    assert!(committed.len() <= 64);
    committed
        .iter()
        .zip(local)
        .enumerate()
        .map(|(i, (&c, &l))| if local_mask.contains(i as u32) { l } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureConfig;

    #[test]
    fn bitmask_marks_written_words() {
        let mut w = Signature::new(SignatureConfig::s14_tls());
        let line = LineAddr::new(500);
        w.insert_word(line.word(64, 2));
        w.insert_word(line.word(64, 9));
        let m = w.updated_word_bitmask(line);
        assert!(m.contains(2) && m.contains(9));
        // Conservative: may contain extra words, never misses written ones.
        assert!(m.count() >= 2);
    }

    #[test]
    fn bitmask_of_untouched_line_with_fresh_signature() {
        let w = Signature::new(SignatureConfig::s14_tls());
        assert!(w.updated_word_bitmask(LineAddr::new(1)).is_empty());
    }

    #[test]
    fn merge_takes_local_words_only_where_masked() {
        let committed: Vec<u64> = (0..16).map(|i| 100 + i).collect();
        let local: Vec<u64> = (0..16).map(|i| 200 + i).collect();
        let mask = WordBitmask::from_bits(0b101);
        let merged = merge_line(&committed, &local, mask);
        assert_eq!(merged[0], 200);
        assert_eq!(merged[1], 101);
        assert_eq!(merged[2], 202);
        for (i, m) in merged.iter().enumerate().skip(3) {
            assert_eq!(*m, 100 + i as u64);
        }
    }

    #[test]
    fn merge_with_empty_mask_is_committed_version() {
        let committed = vec![1, 2, 3];
        let local = vec![9, 9, 9];
        assert_eq!(merge_line(&committed, &local, WordBitmask::default()), committed);
    }

    #[test]
    fn end_to_end_disjoint_word_merge_never_loses_updates() {
        // Thread R wrote words {1,5}; committer C wrote words {8,12}.
        let line = LineAddr::new(321);
        let mut w_r = Signature::new(SignatureConfig::s14_tls());
        w_r.insert_word(line.word(64, 1));
        w_r.insert_word(line.word(64, 5));

        let base: Vec<u64> = vec![0; 16];
        let mut committed = base.clone();
        committed[8] = 0xC8;
        committed[12] = 0xC12;
        let mut local = base;
        local[1] = 0xA1;
        local[5] = 0xA5;

        let mask = w_r.updated_word_bitmask(line);
        let merged = merge_line(&committed, &local, mask);
        // Local updates preserved.
        assert_eq!(merged[1], 0xA1);
        assert_eq!(merged[5], 0xA5);
        // Committed updates preserved: the mask is conservative but the
        // W_C ∩ W_R test guarantees (in the protocol) no overlap with C's
        // words; here we check the mask did not cover them.
        if !mask.contains(8) {
            assert_eq!(merged[8], 0xC8);
        }
        if !mask.contains(12) {
            assert_eq!(merged[12], 0xC12);
        }
    }

    #[test]
    #[should_panic(expected = "word-granularity")]
    fn line_granularity_signature_rejected() {
        let w = Signature::new(SignatureConfig::s14_tm());
        let _ = w.updated_word_bitmask(LineAddr::new(0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_width_mismatch() {
        merge_line(&[0; 16], &[0; 8], WordBitmask::default());
    }
}
