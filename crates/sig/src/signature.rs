//! The signature register and the primitive bulk operations of the paper's
//! Table 1: intersection (∩), union (∪), emptiness (= ∅) and membership (∈).

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::Arc;

use bulk_mem::{Addr, LineAddr, WordAddr};

use crate::config::LANES;
use crate::{Granularity, SignatureConfig};

/// One 32-byte-aligned group of [`LANES`] u64 words — the unit the bulk
/// operations process per loop iteration. The alignment keeps every lane
/// load inside a single cache line and lets the compiler emit full-width
/// vector loads/stores for the unrolled loops.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(C, align(32))]
struct LaneBlock([u64; LANES]);

/// log2 of the bits per lane block: bit `v` of a field lives in block
/// `v >> BLOCK_SHIFT` of the field's span.
const BLOCK_SHIFT: u32 = 6 + (LANES as u32).trailing_zeros();

/// At most this many parked signatures are kept per thread.
const POOL_CAP: usize = 32;

/// A parked `(config, buffer)` pair awaiting reuse.
type Parked = (Arc<SignatureConfig>, Vec<LaneBlock>);

thread_local! {
    /// One-slot front cache of the pool: the most recently dropped
    /// signature. `Cell` take/replace are plain moves — no borrow flags,
    /// no scan — so the drop-then-recreate cycle of the union/intersect/
    /// commit hot paths touches only this slot.
    static SIG_SLOT: Cell<Option<Parked>> = const { Cell::new(None) };
    /// Overflow free list of parked `(config, buffer)` pairs.
    ///
    /// Every `Signature` drop parks its config handle *and* buffer here,
    /// and every construction for a pointer-identical config reuses a
    /// parked pair. In steady state the hot paths therefore skip both the
    /// (32-byte-aligned, hence slow-path) allocator and the `Arc` refcount
    /// atomics — the two dominant fixed costs of materialising a
    /// signature. A linear `ptr_eq` scan over at most [`POOL_CAP`] pairs
    /// beats any map for the one-or-two-config common case.
    static SIG_POOL: RefCell<Vec<Parked>> = const { RefCell::new(Vec::new()) };
}

/// Takes a parked pair for exactly this shared config (pointer identity,
/// so the buffer length is guaranteed to match). Contents are stale.
fn pool_take(cfg: &Arc<SignatureConfig>) -> Option<Parked> {
    if let Some(pair) = SIG_SLOT.with(Cell::take) {
        if Arc::ptr_eq(&pair.0, cfg) {
            return Some(pair);
        }
        SIG_SLOT.with(|s| s.set(Some(pair)));
    }
    SIG_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let i = pool.iter().position(|(c, _)| Arc::ptr_eq(c, cfg))?;
        Some(pool.swap_remove(i))
    })
}

/// Parks a pair for reuse in the front slot, displacing the previous
/// occupant into the overflow list. When that list is full, an entry whose
/// config is referenced by nobody else (a dead, unshared config — e.g.
/// from [`Signature::new`]) is evicted first; otherwise the displaced pair
/// is dropped.
fn pool_give(cfg: Arc<SignatureConfig>, buf: Vec<LaneBlock>) {
    if buf.is_empty() {
        return;
    }
    let Some(prev) = SIG_SLOT.with(|s| s.replace(Some((cfg, buf)))) else {
        return;
    };
    SIG_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(prev);
        } else if let Some(i) =
            pool.iter().position(|(c, _)| Arc::strong_count(c) == 1)
        {
            pool[i] = prev;
        }
    });
}

/// A hardware address signature (paper §3.1): a fixed-size register that
/// hash-encodes a set of addresses as a superset.
///
/// An address is added by permuting its bits, slicing the result into
/// C-fields, decoding each C-field and OR-ing it into the corresponding
/// V-field (Fig. 2). Every insert therefore sets exactly one bit per
/// V-field, and a signature is empty iff **any** V-field is all-zero.
///
/// All operations are *inexact but correct*: `contains` may report false
/// positives, never false negatives; `intersect` yields a superset of the
/// true intersection.
///
/// # Storage
///
/// All V-fields live in one flat, 32-byte-aligned u64 buffer. Each field's
/// word span is padded to a multiple of [`LANES`] words (padding words are
/// invariantly zero), so intersection, union, clear, popcount, emptiness
/// and the disambiguation test are exact u64x4 lane loops with no scalar
/// tail — the word-parallel model the paper assumes of the hardware.
///
/// ```
/// use bulk_sig::{Signature, SignatureConfig};
/// use bulk_mem::Addr;
///
/// let cfg = SignatureConfig::s14_tm();
/// let mut w = Signature::new(cfg.clone());
/// assert!(w.is_empty());
/// w.insert_addr(Addr::new(0x8000));
/// assert!(w.contains_addr(Addr::new(0x8000)));
/// assert!(w.contains_addr(Addr::new(0x8004))); // same line
/// ```
pub struct Signature {
    /// Always `Some` while the signature is alive; taken only inside
    /// `Drop`, which moves the handle into the thread-local pool together
    /// with the buffer (no refcount round trip).
    config: Option<Arc<SignatureConfig>>,
    /// The flat V-field buffer; see the struct docs for the layout.
    buf: Vec<LaneBlock>,
}

impl Clone for Signature {
    fn clone(&self) -> Self {
        let (config, mut buf) = take_or_alloc_dirty(self.config());
        buf.copy_from_slice(&self.buf);
        Signature { config: Some(config), buf }
    }
}

impl Drop for Signature {
    fn drop(&mut self) {
        if let Some(cfg) = self.config.take() {
            pool_give(cfg, std::mem::take(&mut self.buf));
        }
    }
}

/// An owned config handle plus a matching buffer whose contents the caller
/// overwrites entirely — from the pool when possible (stale contents, no
/// atomics), freshly allocated otherwise.
#[inline]
fn take_or_alloc_dirty(
    cfg: &Arc<SignatureConfig>,
) -> (Arc<SignatureConfig>, Vec<LaneBlock>) {
    pool_take(cfg).unwrap_or_else(|| {
        let blocks = cfg.total_words() / LANES;
        (cfg.clone(), vec![LaneBlock::default(); blocks])
    })
}

/// Error from the `try_*` operations: the two signatures were built from
/// different configurations, so their bit layouts are not comparable.
/// Signatures that arrive over a wire (sealed commit broadcasts, and soon
/// sockets) take this path instead of the panicking operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigMismatch {
    /// Total size in bits of the left-hand signature's configuration.
    pub left_bits: u64,
    /// Total size in bits of the right-hand signature's configuration.
    pub right_bits: u64,
}

impl fmt::Display for ConfigMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "signature operation on incompatible configurations \
             ({}-bit vs {}-bit layout)",
            self.left_bits, self.right_bits
        )
    }
}

impl std::error::Error for ConfigMismatch {}

/// Whether the AND of two aligned blocks is all-zero, phrased as a whole
/// 32-byte array compare so LLVM lowers it to a single wide test
/// (`vpand` + `vptest` on AVX2) instead of a scalar OR-reduction chain.
#[inline(always)]
fn block_and_is_zero(x: &LaneBlock, y: &LaneBlock) -> bool {
    let mut m = [0u64; LANES];
    for l in 0..LANES {
        m[l] = x.0[l] & y.0[l];
    }
    m == [0u64; LANES]
}

/// Out-of-line panic for [`Signature::check_compatible`], keeping the
/// inline fast path free of format machinery.
#[cold]
#[inline(never)]
fn incompatible_panic() -> ! {
    panic!("signature operation on incompatible configurations");
}

impl Signature {
    /// Creates an empty signature with the given configuration.
    pub fn new(config: SignatureConfig) -> Self {
        Signature::with_shared(Arc::new(config))
    }

    /// Creates an empty signature sharing an existing configuration
    /// (preferred when many signatures use one config).
    #[inline]
    pub fn with_shared(config: Arc<SignatureConfig>) -> Self {
        match pool_take(&config) {
            Some((cfg, mut buf)) => {
                buf.fill(LaneBlock::default());
                Signature { config: Some(cfg), buf }
            }
            None => {
                let blocks = config.total_words() / LANES;
                Signature { config: Some(config), buf: vec![LaneBlock::default(); blocks] }
            }
        }
    }

    /// The signature's configuration.
    #[inline]
    pub fn config(&self) -> &Arc<SignatureConfig> {
        self.config.as_ref().expect("config taken only in Drop")
    }

    /// The configuration by reference (the hot-path accessor).
    #[inline(always)]
    fn cfg(&self) -> &SignatureConfig {
        self.config.as_deref().expect("config taken only in Drop")
    }

    #[inline(always)]
    fn word(&self, w: usize) -> u64 {
        self.buf[w / LANES].0[w % LANES]
    }

    #[inline(always)]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        &mut self.buf[w / LANES].0[w % LANES]
    }

    /// Adds a raw key (an already granularity-converted address).
    ///
    /// Field spans start on block boundaries, so a C-field value `v` lands
    /// in block `block_start + v / 256` at lane `(v / 64) % LANES` — one
    /// bounds-checked block index per field, with the lane index provably
    /// in range.
    #[inline]
    pub fn insert_key(&mut self, key: u32) {
        let permuted = u64::from(self.cfg().permutation().apply(key));
        let Signature { config, buf } = self;
        let config = config.as_deref().expect("config taken only in Drop");
        for m in config.fields_meta() {
            let v = (permuted >> m.shift) & m.mask;
            let blk = m.block_start as usize + (v >> BLOCK_SHIFT) as usize;
            buf[blk].0[(v >> 6) as usize % LANES] |= 1u64 << (v & 63);
        }
    }

    /// Adds the line/word containing the byte address `addr`, according to
    /// the config's granularity.
    #[inline]
    pub fn insert_addr(&mut self, addr: Addr) {
        self.insert_key(self.cfg().key_of_addr(addr));
    }

    /// Adds a line address (line-granularity configs only).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the config encodes word addresses.
    #[inline]
    pub fn insert_line(&mut self, line: LineAddr) {
        self.insert_key(self.cfg().key_of_line(line));
    }

    /// Adds a word address (word-granularity configs only).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the config encodes line addresses.
    #[inline]
    pub fn insert_word(&mut self, word: WordAddr) {
        self.insert_key(self.cfg().key_of_word(word));
    }

    /// Membership test for a raw key (∈ of Table 1). May return false
    /// positives, never false negatives. Short-circuits on the first clear
    /// field bit — with realistic occupancies most misses are settled by
    /// field 0, so the early exit wins over the branch-free AND reduction.
    #[inline]
    pub fn contains_key(&self, key: u32) -> bool {
        let cfg = self.cfg();
        let permuted = u64::from(cfg.permutation().apply(key));
        let buf = self.buf.as_slice();
        for m in cfg.fields_meta() {
            let v = (permuted >> m.shift) & m.mask;
            let blk = m.block_start as usize + (v >> BLOCK_SHIFT) as usize;
            if buf[blk].0[(v >> 6) as usize % LANES] >> (v & 63) & 1 == 0 {
                return false;
            }
        }
        true
    }

    /// Membership test for a byte address at the config's granularity.
    #[inline]
    pub fn contains_addr(&self, addr: Addr) -> bool {
        self.contains_key(self.cfg().key_of_addr(addr))
    }

    /// Membership test for a line address (line-granularity configs).
    #[inline]
    pub fn contains_line(&self, line: LineAddr) -> bool {
        self.contains_key(self.cfg().key_of_line(line))
    }

    /// Membership test for a word address (word-granularity configs).
    #[inline]
    pub fn contains_word(&self, word: WordAddr) -> bool {
        self.contains_key(self.cfg().key_of_word(word))
    }

    /// Whether any word of `line` may be in the signature. This is how a
    /// word-granularity signature answers line-level questions (bulk
    /// invalidation walks cache lines). For line-granularity configs this
    /// is the plain line membership test.
    pub fn contains_any_word_of_line(&self, line: LineAddr) -> bool {
        match self.cfg().granularity() {
            Granularity::Line => self.contains_line(line),
            Granularity::Word => line
                .words(self.cfg().line_bytes())
                .any(|w| self.contains_word(w)),
        }
    }

    /// OR-reduction of V-field `i`'s words (nonzero iff the field holds any
    /// bit), as a four-accumulator lane loop.
    #[inline]
    fn field_or_reduce(&self, i: usize) -> u64 {
        let r = self.cfg().field_word_range(i);
        let mut acc = [0u64; LANES];
        for blk in &self.buf[r.start / LANES..r.end / LANES] {
            for l in 0..LANES {
                acc[l] |= blk.0[l];
            }
        }
        acc.iter().fold(0, |a, &x| a | x)
    }

    /// Number of set bits in V-field `i`, as a lane loop.
    #[inline]
    fn field_popcount(&self, i: usize) -> u64 {
        let r = self.cfg().field_word_range(i);
        let mut acc = [0u64; LANES];
        for blk in &self.buf[r.start / LANES..r.end / LANES] {
            for l in 0..LANES {
                acc[l] += blk.0[l].count_ones() as u64;
            }
        }
        acc.iter().sum()
    }

    /// The emptiness test of Table 1: true iff at least one V-field is
    /// all-zero, in which case the signature encodes no address.
    pub fn is_empty(&self) -> bool {
        (0..self.cfg().num_fields()).any(|i| self.field_or_reduce(i) == 0)
    }

    /// Signature intersection (∩ of Table 1): bit-wise AND.
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    #[inline]
    pub fn intersect(&self, other: &Signature) -> Signature {
        self.check_compatible(other);
        let (config, mut buf) = take_or_alloc_dirty(self.config());
        for ((o, a), b) in buf.iter_mut().zip(&self.buf).zip(&other.buf) {
            for l in 0..LANES {
                o.0[l] = a.0[l] & b.0[l];
            }
        }
        Signature { config: Some(config), buf }
    }

    /// Whether `self ∩ other ≠ ∅`, without materialising the intersection.
    /// This is the core of bulk address disambiguation (paper Eq. 1).
    ///
    /// The scan short-circuits at lane-block granularity in both
    /// directions: a field is proven nonempty by its first intersecting
    /// block, and the whole test is settled the moment any field's AND
    /// comes up all-zero. Semantically identical to the full reduction
    /// (the equivalence suite pins it), but the common disambiguation
    /// probe touches only a block or two per field.
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    #[inline]
    pub fn intersects(&self, other: &Signature) -> bool {
        self.check_compatible(other);
        let cfg = self.cfg();
        let a = self.buf.as_slice();
        let b = other.buf.as_slice();
        // Fields that each span exactly one block need no inner loop or
        // slicing: block i *is* field i.
        if cfg.fields_single_block() {
            let mut hit = true;
            for (x, y) in a.iter().zip(b) {
                hit &= !block_and_is_zero(x, y);
            }
            return hit;
        }
        // Clamping every block index to the shorter buffer lets the
        // optimiser drop the per-field slice bounds checks; the clamps
        // never bind for compatible signatures (field spans cover the
        // buffer exactly).
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        'fields: for m in cfg.fields_meta() {
            let e = (m.block_end as usize).min(n);
            let mut blk = (m.block_start as usize).min(e);
            while blk < e {
                if !block_and_is_zero(&a[blk], &b[blk]) {
                    continue 'fields;
                }
                blk += 1;
            }
            return false;
        }
        true
    }

    /// Non-panicking [`Signature::intersects`]: the safe surface for
    /// signatures that arrived over a wire and may not share this
    /// signature's configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigMismatch`] when the configurations differ.
    pub fn try_intersects(&self, other: &Signature) -> Result<bool, ConfigMismatch> {
        self.try_check_compatible(other)?;
        Ok(self.intersects(other))
    }

    /// Signature union (∪ of Table 1): bit-wise OR. Used e.g. to combine
    /// the write signatures of nested transactions at outer commit (§6.2.1).
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    #[inline]
    pub fn union(&self, other: &Signature) -> Signature {
        self.check_compatible(other);
        let (config, mut buf) = take_or_alloc_dirty(self.config());
        for ((o, a), b) in buf.iter_mut().zip(&self.buf).zip(&other.buf) {
            for l in 0..LANES {
                o.0[l] = a.0[l] | b.0[l];
            }
        }
        Signature { config: Some(config), buf }
    }

    /// Non-panicking [`Signature::union`] for wire-derived signatures.
    ///
    /// # Errors
    ///
    /// [`ConfigMismatch`] when the configurations differ.
    pub fn try_union(&self, other: &Signature) -> Result<Signature, ConfigMismatch> {
        self.try_check_compatible(other)?;
        Ok(self.union(other))
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    #[inline]
    pub fn union_assign(&mut self, other: &Signature) {
        self.check_compatible(other);
        for (a, b) in self.buf.iter_mut().zip(&other.buf) {
            for l in 0..LANES {
                a.0[l] |= b.0[l];
            }
        }
    }

    /// Non-panicking [`Signature::union_assign`] for wire-derived
    /// signatures.
    ///
    /// # Errors
    ///
    /// [`ConfigMismatch`] when the configurations differ.
    pub fn try_union_assign(&mut self, other: &Signature) -> Result<(), ConfigMismatch> {
        self.try_check_compatible(other)?;
        self.union_assign(other);
        Ok(())
    }

    /// Overwrites this signature's bits with `other`'s (one lane-width
    /// memcpy; used by the arena to recycle buffers).
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    pub fn copy_from(&mut self, other: &Signature) {
        self.check_compatible(other);
        self.buf.copy_from_slice(&other.buf);
    }

    /// Clears the signature — the paper's one-instruction commit (§5.1).
    pub fn clear(&mut self) {
        self.buf.fill(LaneBlock::default());
    }

    /// Fraction of the signature's bits that are set (its "fill ratio"),
    /// the quantity that drives aliasing.
    ///
    /// ```
    /// use bulk_sig::{Signature, SignatureConfig};
    /// let s = Signature::new(SignatureConfig::s14_tm());
    /// assert_eq!(s.fill_ratio(), 0.0);
    /// ```
    pub fn fill_ratio(&self) -> f64 {
        self.popcount() as f64 / self.cfg().size_bits() as f64
    }

    /// Analytic estimate of the probability that `self ∩ other ≠ ∅` for
    /// *independent* address sets — the Bloom-filter false-positive model:
    /// per V-field, `1 - (1 - fill_self)^(popcount_other)` composed over
    /// fields. Useful for sizing signatures before running a workload;
    /// real address streams are correlated, so measured rates differ.
    pub fn estimated_collision_rate(&self, other: &Signature) -> f64 {
        self.check_compatible(other);
        let mut p = 1.0;
        for i in 0..self.cfg().num_fields() {
            let range = self.cfg().field_range(i);
            let bits = (range.end - range.start) as f64;
            let mine = self.field_popcount(i) as f64;
            let theirs = other.field_popcount(i) as f64;
            p *= 1.0 - (1.0 - mine / bits).powf(theirs);
        }
        p
    }

    /// Total number of set bits across all V-fields.
    pub fn popcount(&self) -> u64 {
        let mut acc = [0u64; LANES];
        for blk in &self.buf {
            for l in 0..LANES {
                acc[l] += blk.0[l].count_ones() as u64;
            }
        }
        acc.iter().sum()
    }

    /// The set bit positions (C-field values) of V-field `i`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field_values(&self, i: usize) -> impl Iterator<Item = u32> + '_ {
        let w0 = self.cfg().field_word_start(i);
        (0..self.cfg().field_words(i)).flat_map(move |j| {
            BitIter { word: self.word(w0 + j), base: j as u64 * 64 }.map(|p| p as u32)
        })
    }

    /// The set bit positions of the whole signature in canonical flat-bit
    /// order (fields concatenated with no padding), ascending. This walks
    /// the words directly — it is what the RLE codec and the bandwidth
    /// accounting iterate on every commit, without materialising a flat
    /// copy of the signature.
    pub fn iter_flat_positions(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.cfg().num_fields()).flat_map(move |i| {
            let base = self.cfg().field_range(i).start;
            let w0 = self.cfg().field_word_start(i);
            (0..self.cfg().field_words(i)).flat_map(move |j| BitIter {
                word: self.word(w0 + j),
                base: base + j as u64 * 64,
            })
        })
    }

    /// The signature's bits as one flat, LSB-first vector (fields
    /// concatenated in order). Canonical form used by the RLE codec and the
    /// sealed wire framing. Word-level: each field's words are funnel-
    /// shifted into place rather than copied bit by bit.
    pub fn flat_bits(&self) -> Vec<u64> {
        let total = self.cfg().size_bits();
        let mut out = vec![0u64; total.div_ceil(64) as usize];
        for i in 0..self.cfg().num_fields() {
            let start = self.cfg().field_range(i).start;
            let sh = (start % 64) as u32;
            let base = (start / 64) as usize;
            let w0 = self.cfg().field_word_start(i);
            for j in 0..self.cfg().field_words(i) {
                let w = self.word(w0 + j);
                if w == 0 {
                    continue;
                }
                out[base + j] |= w << sh;
                if sh > 0 {
                    let hi = w >> (64 - sh);
                    // Any spilled bit is still inside this field's range,
                    // so the next output word exists.
                    if hi != 0 {
                        out[base + j + 1] |= hi;
                    }
                }
            }
        }
        out
    }

    /// Rebuilds a signature from its flat bit vector, word-by-word.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than the config requires.
    pub fn from_flat_bits(config: Arc<SignatureConfig>, bits: &[u64]) -> Signature {
        let mut sig = Signature::with_shared(config);
        let total = sig.cfg().size_bits();
        assert!(bits.len() as u64 * 64 >= total, "flat bit vector too short");
        let config = sig.config().clone();
        for i in 0..config.num_fields() {
            let range = config.field_range(i);
            let field_bits = range.end - range.start;
            let sh = (range.start % 64) as u32;
            let base = (range.start / 64) as usize;
            let w0 = config.field_word_start(i);
            let words = config.field_words(i);
            for j in 0..words {
                let lo = bits[base + j] >> sh;
                let hi = if sh > 0 && base + j + 1 < bits.len() {
                    bits[base + j + 1] << (64 - sh)
                } else {
                    0
                };
                let mut w = lo | hi;
                // Mask the final word down to the field's width so bits
                // belonging to the next field (or vector slack) never leak
                // into this field's buffer.
                let rem = field_bits - j as u64 * 64;
                if rem < 64 {
                    w &= (1u64 << rem) - 1;
                }
                *sig.word_mut(w0 + j) = w;
            }
        }
        sig
    }

    /// Whether `other` shares this signature's configuration, making the
    /// binary operations well-defined. The pointer-identity test stays
    /// inline (machines share one `Arc` per signature kind, so it is the
    /// only test the hot paths ever run); the layout deep-compare for
    /// unshared configs lives out of line as the cold fallback.
    #[inline]
    pub fn compatible(&self, other: &Signature) -> bool {
        Arc::ptr_eq(self.config(), other.config()) || self.compatible_slow(other)
    }

    #[cold]
    #[inline(never)]
    fn compatible_slow(&self, other: &Signature) -> bool {
        *self.cfg() == *other.cfg()
    }

    #[inline]
    fn try_check_compatible(&self, other: &Signature) -> Result<(), ConfigMismatch> {
        if self.compatible(other) {
            Ok(())
        } else {
            Err(ConfigMismatch {
                left_bits: self.cfg().size_bits(),
                right_bits: other.cfg().size_bits(),
            })
        }
    }

    #[inline]
    fn check_compatible(&self, other: &Signature) {
        if !self.compatible(other) {
            incompatible_panic();
        }
    }
}

struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz as u64)
    }
}

impl PartialEq for Signature {
    fn eq(&self, other: &Signature) -> bool {
        *self.cfg() == *other.cfg() && self.buf == other.buf
    }
}

impl Eq for Signature {}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature")
            .field("size_bits", &self.cfg().size_bits())
            .field("granularity", &self.cfg().granularity())
            .field("popcount", &self.popcount())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitPermutation;

    fn small() -> SignatureConfig {
        SignatureConfig::new(vec![4, 4], BitPermutation::identity(), Granularity::Line, 64)
    }

    #[test]
    fn insert_then_contains() {
        let mut s = Signature::new(small());
        s.insert_key(0x13);
        assert!(s.contains_key(0x13));
        assert!(!s.contains_key(0x24));
        assert_eq!(s.popcount(), 2); // one bit per field
    }

    #[test]
    fn no_false_negatives_many_keys() {
        let mut s = Signature::new(SignatureConfig::s14_tm());
        let keys: Vec<u32> =
            (0..500u32).map(|i| i.wrapping_mul(2654435761) % (1 << 26)).collect();
        for &k in &keys {
            s.insert_key(k);
        }
        for &k in &keys {
            assert!(s.contains_key(k));
        }
    }

    #[test]
    fn aliasing_produces_false_positives_in_tiny_config() {
        // Keys 0x00 and 0x11 set bits {V1:0,V2:0} and {V1:1,V2:1};
        // key 0x10 (V1:0, V2:1) then false-positives.
        let mut s = Signature::new(small());
        s.insert_key(0x00);
        s.insert_key(0x11);
        assert!(s.contains_key(0x10));
        assert!(s.contains_key(0x01));
    }

    #[test]
    fn empty_iff_any_field_zero() {
        let cfg = small();
        let mut a = Signature::new(cfg.clone());
        assert!(a.is_empty());
        a.insert_key(3);
        assert!(!a.is_empty());
        // Intersection of two disjoint-field signatures is empty.
        let mut b = Signature::new(cfg);
        b.insert_key(0x44);
        let i = a.intersect(&b);
        assert!(i.is_empty());
        assert!(!a.intersects(&b));
    }

    #[test]
    fn intersection_is_superset_of_true_intersection() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut a = Signature::with_shared(cfg.clone());
        let mut b = Signature::with_shared(cfg);
        for k in 0..100u32 {
            a.insert_key(k);
        }
        for k in 50..150u32 {
            b.insert_key(k);
        }
        let i = a.intersect(&b);
        for k in 50..100u32 {
            assert!(i.contains_key(k), "true member {k} missing from ∩");
        }
        assert!(a.intersects(&b));
    }

    #[test]
    fn union_contains_both_sides() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut a = Signature::with_shared(cfg.clone());
        let mut b = Signature::with_shared(cfg);
        a.insert_key(7);
        b.insert_key(9);
        let u = a.union(&b);
        assert!(u.contains_key(7) && u.contains_key(9));
        // Union never loses bits from either side (keys may share bits in
        // some fields, so the count is between 2 and 4 for S14).
        assert!(u.popcount() >= a.popcount().max(b.popcount()));
        assert!(u.popcount() <= a.popcount() + b.popcount());
    }

    #[test]
    fn clear_commits() {
        let mut s = Signature::new(small());
        s.insert_key(5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.popcount(), 0);
    }

    #[test]
    fn copy_from_overwrites() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut a = Signature::with_shared(cfg.clone());
        let mut b = Signature::with_shared(cfg);
        a.insert_key(11);
        b.insert_key(77);
        a.copy_from(&b);
        assert_eq!(a, b);
        assert!(a.contains_key(77));
    }

    #[test]
    fn field_values_report_set_positions() {
        let mut s = Signature::new(small());
        s.insert_key(0x31); // C1 = 1, C2 = 3
        assert_eq!(s.field_values(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.field_values(1).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn flat_positions_match_flat_bits() {
        let cfg = SignatureConfig::new(
            vec![3, 5, 10],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        )
        .into_shared();
        let mut s = Signature::with_shared(cfg);
        for k in 0..60u32 {
            s.insert_key(k.wrapping_mul(2654435761));
        }
        let from_iter: Vec<u64> = s.iter_flat_positions().collect();
        let mut from_flat = Vec::new();
        for (wi, &w) in s.flat_bits().iter().enumerate() {
            let mut w = w;
            while w != 0 {
                from_flat.push(wi as u64 * 64 + w.trailing_zeros() as u64);
                w &= w - 1;
            }
        }
        assert_eq!(from_iter, from_flat);
        assert_eq!(from_iter.len() as u64, s.popcount());
    }

    #[test]
    fn flat_bits_round_trip() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut s = Signature::with_shared(cfg.clone());
        for k in [0u32, 1, 1023, 4096, 0x3ff_ffff] {
            s.insert_key(k);
        }
        let bits = s.flat_bits();
        let s2 = Signature::from_flat_bits(cfg, &bits);
        assert_eq!(s, s2);
    }

    #[test]
    fn flat_bits_round_trip_unaligned_fields() {
        // Chunks of 3 and 5 bits: 8-bit and 32-bit fields, both sub-word.
        let cfg = SignatureConfig::new(
            vec![3, 5],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        )
        .into_shared();
        let mut s = Signature::with_shared(cfg.clone());
        for k in 0..40u32 {
            s.insert_key(k * 7);
        }
        let s2 = Signature::from_flat_bits(cfg, &s.flat_bits());
        assert_eq!(s, s2);
    }

    #[test]
    fn from_flat_bits_masks_foreign_bits() {
        // A flat vector with bits set beyond the total size must not leak
        // into any field's buffer (the extra words are vector slack).
        let cfg = SignatureConfig::new(
            vec![3, 5],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        )
        .into_shared();
        let bits = vec![u64::MAX; 4]; // config needs only 40 bits
        let s = Signature::from_flat_bits(cfg, &bits);
        assert_eq!(s.popcount(), 40);
        let t = Signature::from_flat_bits(s.config().clone(), &s.flat_bits());
        assert_eq!(s, t);
    }

    #[test]
    fn word_granularity_line_probe() {
        let mut s = Signature::new(SignatureConfig::s14_tls());
        let line = LineAddr::new(100);
        s.insert_word(line.word(64, 3));
        assert!(s.contains_any_word_of_line(line));
        assert!(!s.contains_any_word_of_line(LineAddr::new(5000)));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mixed_config_ops_panic() {
        let a = Signature::new(SignatureConfig::s14_tm());
        let b = Signature::new(small());
        let _ = a.intersects(&b);
    }

    #[test]
    fn try_ops_reject_mixed_configs_without_panicking() {
        let a = Signature::new(SignatureConfig::s14_tm());
        let b = Signature::new(small());
        let err = a.try_intersects(&b).unwrap_err();
        assert_eq!(err.left_bits, 2048);
        assert_eq!(err.right_bits, 32);
        assert!(err.to_string().contains("incompatible"));
        assert!(a.try_union(&b).is_err());
        let mut c = Signature::new(SignatureConfig::s14_tm());
        assert!(c.try_union_assign(&b).is_err());

        // Matching configs behave like the panicking operators.
        let mut d = Signature::new(SignatureConfig::s14_tm());
        d.insert_key(42);
        assert_eq!(a.try_intersects(&d).unwrap(), a.intersects(&d));
        assert_eq!(a.try_union(&d).unwrap(), a.union(&d));
        assert!(c.try_union_assign(&d).is_ok());
        assert_eq!(c, d);
    }

    #[test]
    fn fill_ratio_and_estimate_behave() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut a = Signature::with_shared(cfg.clone());
        let mut b = Signature::with_shared(cfg.clone());
        assert_eq!(a.estimated_collision_rate(&b), 0.0);
        for k in 0..22u32 {
            a.insert_key(k.wrapping_mul(2654435761) % (1 << 26));
        }
        for k in 100..168u32 {
            b.insert_key(k.wrapping_mul(2654435761) % (1 << 26));
        }
        assert!(a.fill_ratio() > 0.0 && a.fill_ratio() < 0.05);
        let p = a.estimated_collision_rate(&b);
        assert!(p > 0.0 && p < 1.0, "p = {p}");
        // Denser signatures collide more.
        let mut dense = Signature::with_shared(cfg);
        for k in 0..500u32 {
            dense.insert_key(k.wrapping_mul(48271) % (1 << 26));
        }
        assert!(dense.estimated_collision_rate(&b) > p);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Signature::new(small());
        assert!(format!("{s:?}").contains("Signature"));
    }
}
