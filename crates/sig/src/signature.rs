//! The signature register and the primitive bulk operations of the paper's
//! Table 1: intersection (∩), union (∪), emptiness (= ∅) and membership (∈).

use std::fmt;
use std::sync::Arc;

use bulk_mem::{Addr, LineAddr, WordAddr};

use crate::{Granularity, SignatureConfig};

/// A hardware address signature (paper §3.1): a fixed-size register that
/// hash-encodes a set of addresses as a superset.
///
/// An address is added by permuting its bits, slicing the result into
/// C-fields, decoding each C-field and OR-ing it into the corresponding
/// V-field (Fig. 2). Every insert therefore sets exactly one bit per
/// V-field, and a signature is empty iff **any** V-field is all-zero.
///
/// All operations are *inexact but correct*: `contains` may report false
/// positives, never false negatives; `intersect` yields a superset of the
/// true intersection.
///
/// ```
/// use bulk_sig::{Signature, SignatureConfig};
/// use bulk_mem::Addr;
///
/// let cfg = SignatureConfig::s14_tm();
/// let mut w = Signature::new(cfg.clone());
/// assert!(w.is_empty());
/// w.insert_addr(Addr::new(0x8000));
/// assert!(w.contains_addr(Addr::new(0x8000)));
/// assert!(w.contains_addr(Addr::new(0x8004))); // same line
/// ```
#[derive(Clone)]
pub struct Signature {
    config: Arc<SignatureConfig>,
    /// One bit vector per V-field.
    fields: Vec<Vec<u64>>,
}

impl Signature {
    /// Creates an empty signature with the given configuration.
    pub fn new(config: SignatureConfig) -> Self {
        Signature::with_shared(Arc::new(config))
    }

    /// Creates an empty signature sharing an existing configuration
    /// (preferred when many signatures use one config).
    pub fn with_shared(config: Arc<SignatureConfig>) -> Self {
        let fields = config
            .chunks()
            .iter()
            .map(|&c| vec![0u64; Self::words_for(c)])
            .collect();
        Signature { config, fields }
    }

    fn words_for(chunk_bits: u32) -> usize {
        (1u64 << chunk_bits).div_ceil(64) as usize
    }

    /// The signature's configuration.
    pub fn config(&self) -> &Arc<SignatureConfig> {
        &self.config
    }

    /// Adds a raw key (an already granularity-converted address).
    pub fn insert_key(&mut self, key: u32) {
        for (i, v) in self.config.chunk_values(key) {
            self.fields[i][(v / 64) as usize] |= 1u64 << (v % 64);
        }
    }

    /// Adds the line/word containing the byte address `addr`, according to
    /// the config's granularity.
    pub fn insert_addr(&mut self, addr: Addr) {
        self.insert_key(self.config.key_of_addr(addr));
    }

    /// Adds a line address (line-granularity configs only).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the config encodes word addresses.
    pub fn insert_line(&mut self, line: LineAddr) {
        self.insert_key(self.config.key_of_line(line));
    }

    /// Adds a word address (word-granularity configs only).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the config encodes line addresses.
    pub fn insert_word(&mut self, word: WordAddr) {
        self.insert_key(self.config.key_of_word(word));
    }

    /// Membership test for a raw key (∈ of Table 1). May return false
    /// positives, never false negatives.
    pub fn contains_key(&self, key: u32) -> bool {
        self.config
            .chunk_values(key)
            .all(|(i, v)| self.fields[i][(v / 64) as usize] >> (v % 64) & 1 == 1)
    }

    /// Membership test for a byte address at the config's granularity.
    pub fn contains_addr(&self, addr: Addr) -> bool {
        self.contains_key(self.config.key_of_addr(addr))
    }

    /// Membership test for a line address (line-granularity configs).
    pub fn contains_line(&self, line: LineAddr) -> bool {
        self.contains_key(self.config.key_of_line(line))
    }

    /// Membership test for a word address (word-granularity configs).
    pub fn contains_word(&self, word: WordAddr) -> bool {
        self.contains_key(self.config.key_of_word(word))
    }

    /// Whether any word of `line` may be in the signature. This is how a
    /// word-granularity signature answers line-level questions (bulk
    /// invalidation walks cache lines). For line-granularity configs this
    /// is the plain line membership test.
    pub fn contains_any_word_of_line(&self, line: LineAddr) -> bool {
        match self.config.granularity() {
            Granularity::Line => self.contains_line(line),
            Granularity::Word => line
                .words(self.config.line_bytes())
                .any(|w| self.contains_word(w)),
        }
    }

    /// The emptiness test of Table 1: true iff at least one V-field is
    /// all-zero, in which case the signature encodes no address.
    pub fn is_empty(&self) -> bool {
        self.fields
            .iter()
            .any(|f| f.iter().all(|&w| w == 0))
    }

    /// Signature intersection (∩ of Table 1): bit-wise AND.
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    pub fn intersect(&self, other: &Signature) -> Signature {
        self.check_compatible(other);
        let fields = self
            .fields
            .iter()
            .zip(&other.fields)
            .map(|(a, b)| a.iter().zip(b).map(|(x, y)| x & y).collect())
            .collect();
        Signature { config: self.config.clone(), fields }
    }

    /// Whether `self ∩ other ≠ ∅`, without materialising the intersection.
    /// This is the core of bulk address disambiguation (paper Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    pub fn intersects(&self, other: &Signature) -> bool {
        self.check_compatible(other);
        self.fields
            .iter()
            .zip(&other.fields)
            .all(|(a, b)| a.iter().zip(b).any(|(x, y)| x & y != 0))
    }

    /// Signature union (∪ of Table 1): bit-wise OR. Used e.g. to combine
    /// the write signatures of nested transactions at outer commit (§6.2.1).
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    pub fn union(&self, other: &Signature) -> Signature {
        let mut out = self.clone();
        out.union_assign(other);
        out
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the two signatures have different configurations.
    pub fn union_assign(&mut self, other: &Signature) {
        self.check_compatible(other);
        for (a, b) in self.fields.iter_mut().zip(&other.fields) {
            for (x, y) in a.iter_mut().zip(b) {
                *x |= y;
            }
        }
    }

    /// Clears the signature — the paper's one-instruction commit (§5.1).
    pub fn clear(&mut self) {
        for f in &mut self.fields {
            f.iter_mut().for_each(|w| *w = 0);
        }
    }

    /// Fraction of the signature's bits that are set (its "fill ratio"),
    /// the quantity that drives aliasing.
    ///
    /// ```
    /// use bulk_sig::{Signature, SignatureConfig};
    /// let s = Signature::new(SignatureConfig::s14_tm());
    /// assert_eq!(s.fill_ratio(), 0.0);
    /// ```
    pub fn fill_ratio(&self) -> f64 {
        self.popcount() as f64 / self.config.size_bits() as f64
    }

    /// Analytic estimate of the probability that `self ∩ other ≠ ∅` for
    /// *independent* address sets — the Bloom-filter false-positive model:
    /// per V-field, `1 - (1 - fill_self)^(popcount_other)` composed over
    /// fields. Useful for sizing signatures before running a workload;
    /// real address streams are correlated, so measured rates differ.
    pub fn estimated_collision_rate(&self, other: &Signature) -> f64 {
        self.check_compatible(other);
        let mut p = 1.0;
        for i in 0..self.config.num_fields() {
            let range = self.config.field_range(i);
            let bits = (range.end - range.start) as f64;
            let mine = self.fields[i].iter().map(|w| w.count_ones() as u64).sum::<u64>() as f64;
            let theirs =
                other.fields[i].iter().map(|w| w.count_ones() as u64).sum::<u64>() as f64;
            p *= 1.0 - (1.0 - mine / bits).powf(theirs);
        }
        p
    }

    /// Total number of set bits across all V-fields.
    pub fn popcount(&self) -> u64 {
        self.fields
            .iter()
            .flat_map(|f| f.iter())
            .map(|w| w.count_ones() as u64)
            .sum()
    }

    /// The set bit positions (C-field values) of V-field `i`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field_values(&self, i: usize) -> impl Iterator<Item = u32> + '_ {
        self.fields[i].iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi as u32 * 64;
            BitIter { word: w, base }
        })
    }

    /// The signature's bits as one flat, LSB-first vector (fields
    /// concatenated in order). Canonical form used by the RLE codec.
    pub fn flat_bits(&self) -> Vec<u64> {
        let total = self.config.size_bits();
        let mut out = vec![0u64; total.div_ceil(64) as usize];
        for (i, f) in self.fields.iter().enumerate() {
            let range = self.config.field_range(i);
            let field_bits = range.end - range.start;
            for bit_in_field in 0..field_bits {
                if f[(bit_in_field / 64) as usize] >> (bit_in_field % 64) & 1 == 1 {
                    let pos = range.start + bit_in_field;
                    out[(pos / 64) as usize] |= 1u64 << (pos % 64);
                }
            }
        }
        out
    }

    /// Rebuilds a signature from its flat bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than the config requires.
    pub fn from_flat_bits(config: Arc<SignatureConfig>, bits: &[u64]) -> Signature {
        let mut sig = Signature::with_shared(config);
        let total = sig.config.size_bits();
        assert!(bits.len() as u64 * 64 >= total, "flat bit vector too short");
        for i in 0..sig.config.num_fields() {
            let range = sig.config.field_range(i);
            for bit_in_field in 0..(range.end - range.start) {
                let pos = range.start + bit_in_field;
                if bits[(pos / 64) as usize] >> (pos % 64) & 1 == 1 {
                    sig.fields[i][(bit_in_field / 64) as usize] |= 1u64 << (bit_in_field % 64);
                }
            }
        }
        sig
    }

    fn check_compatible(&self, other: &Signature) {
        assert!(
            Arc::ptr_eq(&self.config, &other.config) || self.config == other.config,
            "signature operation on incompatible configurations"
        );
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl PartialEq for Signature {
    fn eq(&self, other: &Signature) -> bool {
        *self.config == *other.config && self.fields == other.fields
    }
}

impl Eq for Signature {}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature")
            .field("size_bits", &self.config.size_bits())
            .field("granularity", &self.config.granularity())
            .field("popcount", &self.popcount())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitPermutation;

    fn small() -> SignatureConfig {
        SignatureConfig::new(vec![4, 4], BitPermutation::identity(), Granularity::Line, 64)
    }

    #[test]
    fn insert_then_contains() {
        let mut s = Signature::new(small());
        s.insert_key(0x13);
        assert!(s.contains_key(0x13));
        assert!(!s.contains_key(0x24));
        assert_eq!(s.popcount(), 2); // one bit per field
    }

    #[test]
    fn no_false_negatives_many_keys() {
        let mut s = Signature::new(SignatureConfig::s14_tm());
        let keys: Vec<u32> =
            (0..500u32).map(|i| i.wrapping_mul(2654435761) % (1 << 26)).collect();
        for &k in &keys {
            s.insert_key(k);
        }
        for &k in &keys {
            assert!(s.contains_key(k));
        }
    }

    #[test]
    fn aliasing_produces_false_positives_in_tiny_config() {
        // Keys 0x00 and 0x11 set bits {V1:0,V2:0} and {V1:1,V2:1};
        // key 0x10 (V1:0, V2:1) then false-positives.
        let mut s = Signature::new(small());
        s.insert_key(0x00);
        s.insert_key(0x11);
        assert!(s.contains_key(0x10));
        assert!(s.contains_key(0x01));
    }

    #[test]
    fn empty_iff_any_field_zero() {
        let cfg = small();
        let mut a = Signature::new(cfg.clone());
        assert!(a.is_empty());
        a.insert_key(3);
        assert!(!a.is_empty());
        // Intersection of two disjoint-field signatures is empty.
        let mut b = Signature::new(cfg);
        b.insert_key(0x44);
        let i = a.intersect(&b);
        assert!(i.is_empty());
        assert!(!a.intersects(&b));
    }

    #[test]
    fn intersection_is_superset_of_true_intersection() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut a = Signature::with_shared(cfg.clone());
        let mut b = Signature::with_shared(cfg);
        for k in 0..100u32 {
            a.insert_key(k);
        }
        for k in 50..150u32 {
            b.insert_key(k);
        }
        let i = a.intersect(&b);
        for k in 50..100u32 {
            assert!(i.contains_key(k), "true member {k} missing from ∩");
        }
        assert!(a.intersects(&b));
    }

    #[test]
    fn union_contains_both_sides() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut a = Signature::with_shared(cfg.clone());
        let mut b = Signature::with_shared(cfg);
        a.insert_key(7);
        b.insert_key(9);
        let u = a.union(&b);
        assert!(u.contains_key(7) && u.contains_key(9));
        // Union never loses bits from either side (keys may share bits in
        // some fields, so the count is between 2 and 4 for S14).
        assert!(u.popcount() >= a.popcount().max(b.popcount()));
        assert!(u.popcount() <= a.popcount() + b.popcount());
    }

    #[test]
    fn clear_commits() {
        let mut s = Signature::new(small());
        s.insert_key(5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.popcount(), 0);
    }

    #[test]
    fn field_values_report_set_positions() {
        let mut s = Signature::new(small());
        s.insert_key(0x31); // C1 = 1, C2 = 3
        assert_eq!(s.field_values(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.field_values(1).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn flat_bits_round_trip() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut s = Signature::with_shared(cfg.clone());
        for k in [0u32, 1, 1023, 4096, 0x3ff_ffff] {
            s.insert_key(k);
        }
        let bits = s.flat_bits();
        let s2 = Signature::from_flat_bits(cfg, &bits);
        assert_eq!(s, s2);
    }

    #[test]
    fn flat_bits_round_trip_unaligned_fields() {
        // Chunks of 3 and 5 bits: 8-bit and 32-bit fields, both sub-word.
        let cfg = SignatureConfig::new(
            vec![3, 5],
            BitPermutation::identity(),
            Granularity::Line,
            64,
        )
        .into_shared();
        let mut s = Signature::with_shared(cfg.clone());
        for k in 0..40u32 {
            s.insert_key(k * 7);
        }
        let s2 = Signature::from_flat_bits(cfg, &s.flat_bits());
        assert_eq!(s, s2);
    }

    #[test]
    fn word_granularity_line_probe() {
        let mut s = Signature::new(SignatureConfig::s14_tls());
        let line = LineAddr::new(100);
        s.insert_word(line.word(64, 3));
        assert!(s.contains_any_word_of_line(line));
        assert!(!s.contains_any_word_of_line(LineAddr::new(5000)));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mixed_config_ops_panic() {
        let a = Signature::new(SignatureConfig::s14_tm());
        let b = Signature::new(small());
        let _ = a.intersects(&b);
    }

    #[test]
    fn fill_ratio_and_estimate_behave() {
        let cfg = SignatureConfig::s14_tm().into_shared();
        let mut a = Signature::with_shared(cfg.clone());
        let mut b = Signature::with_shared(cfg.clone());
        assert_eq!(a.estimated_collision_rate(&b), 0.0);
        for k in 0..22u32 {
            a.insert_key(k.wrapping_mul(2654435761) % (1 << 26));
        }
        for k in 100..168u32 {
            b.insert_key(k.wrapping_mul(2654435761) % (1 << 26));
        }
        assert!(a.fill_ratio() > 0.0 && a.fill_ratio() < 0.05);
        let p = a.estimated_collision_rate(&b);
        assert!(p > 0.0 && p < 1.0, "p = {p}");
        // Denser signatures collide more.
        let mut dense = Signature::with_shared(cfg);
        for k in 0..500u32 {
            dense.insert_key(k.wrapping_mul(48271) % (1 << 26));
        }
        assert!(dense.estimated_collision_rate(&b) > p);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Signature::new(small());
        assert!(format!("{s:?}").contains("Signature"));
    }
}
