//! Integrity-sealed signature transport for commit broadcasts.
//!
//! A committing processor never sends a raw [`Signature`] on the bus: the
//! payload is framed with a CRC-64 checksum so that transmission faults
//! (modeled by the chaos harness as single-bit flips) are *detected* at the
//! receiver and repaired by retransmission, never silently accepted. Any
//! CRC whose generator polynomial has more than one term detects every
//! single-bit error, so a flipped bit can cost bus occupancy but never
//! correctness — the same "performance, not correctness" contract the
//! paper makes for signature aliasing (§3).

use crate::Signature;

/// CRC-64/ECMA-182 generator polynomial (normal form).
const CRC64_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// Bitwise CRC-64/ECMA-182 over a byte stream. Table-less: the sealed
/// payloads are a few hundred bytes and sealing is off the hot path.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc: u64 = 0;
    for &b in bytes {
        crc ^= u64::from(b) << 56;
        for _ in 0..8 {
            crc = if crc & (1 << 63) != 0 { (crc << 1) ^ CRC64_POLY } else { crc << 1 };
        }
    }
    crc
}

fn signature_bytes(sig: &Signature) -> Vec<u8> {
    sig.flat_bits().iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// A commit-broadcast signature framed with its CRC-64 checksum.
///
/// [`SealedSignature::open`] models the receive side of the bus: the CRC is
/// recomputed and, on mismatch, the receiver NACKs and the committer
/// retransmits the pristine payload (kept here for exactly that purpose).
#[derive(Debug, Clone)]
pub struct SealedSignature {
    payload: Signature,
    crc: u64,
    /// The original payload, retained once [`corrupt_bit`] has damaged
    /// `payload` — the model of the committer's retransmission buffer.
    ///
    /// [`corrupt_bit`]: SealedSignature::corrupt_bit
    pristine: Option<Box<Signature>>,
}

/// The receiver-side result of opening a [`SealedSignature`].
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The signature the receiver acts on (post-repair if a corruption was
    /// detected and the pristine payload retransmitted).
    pub signature: Signature,
    /// The CRC caught a corrupted payload; a retransmission was charged.
    pub corruption_detected: bool,
    /// The payload was corrupted yet the CRC matched. Impossible for the
    /// single-bit faults the chaos harness injects; audited as an
    /// invariant violation if it ever fires.
    pub silent_corruption: bool,
}

impl SealedSignature {
    /// Frames `sig` with its checksum, as the committer's bus interface does.
    pub fn seal(sig: Signature) -> Self {
        let crc = crc64(&signature_bytes(&sig));
        SealedSignature { payload: sig, crc, pristine: None }
    }

    /// Number of payload bits — the valid range for [`corrupt_bit`].
    ///
    /// [`corrupt_bit`]: SealedSignature::corrupt_bit
    pub fn size_bits(&self) -> u64 {
        self.payload.config().size_bits()
    }

    /// Flips one in-flight payload bit (a bus transmission fault). The CRC
    /// is *not* recomputed — that is the point — and the pristine payload
    /// is retained as the retransmission buffer.
    pub fn corrupt_bit(&mut self, bit: u64) {
        let bit = bit % self.size_bits().max(1);
        if self.pristine.is_none() {
            self.pristine = Some(Box::new(self.payload.clone()));
        }
        let mut bits = self.payload.flat_bits();
        bits[(bit / 64) as usize] ^= 1u64 << (bit % 64);
        self.payload = Signature::from_flat_bits(self.payload.config().clone(), &bits);
    }

    /// Whether [`corrupt_bit`] has damaged the in-flight payload.
    ///
    /// [`corrupt_bit`]: SealedSignature::corrupt_bit
    pub fn was_corrupted(&self) -> bool {
        self.pristine.is_some()
    }

    /// Receiver-side CRC check of the in-flight payload.
    pub fn verify(&self) -> bool {
        crc64(&signature_bytes(&self.payload)) == self.crc
    }

    /// Opens the frame at the receiver: verifies the CRC, repairs via the
    /// pristine retransmission buffer on mismatch, and reports what it saw.
    pub fn open(self) -> Delivery {
        let intact = self.verify();
        match (intact, self.pristine) {
            // Clean delivery.
            (true, None) => Delivery {
                signature: self.payload,
                corruption_detected: false,
                silent_corruption: false,
            },
            // Corrupted but the CRC matched anyway: deliver the damaged
            // payload so the auditor can observe the consequences.
            (true, Some(_)) => Delivery {
                signature: self.payload,
                corruption_detected: false,
                silent_corruption: true,
            },
            // CRC mismatch: NACK + retransmit of the pristine payload.
            (false, Some(pristine)) => Delivery {
                signature: *pristine,
                corruption_detected: true,
                silent_corruption: false,
            },
            (false, None) => unreachable!("CRC mismatch on an uncorrupted payload"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureConfig;
    use bulk_mem::Addr;

    fn sample() -> Signature {
        let mut s = Signature::with_shared(SignatureConfig::s14_tm().into_shared());
        for a in [0x1000u32, 0x2040, 0x80c0, 0x1_0000] {
            s.insert_addr(Addr::new(a));
        }
        s
    }

    #[test]
    fn clean_seal_opens_intact() {
        let sig = sample();
        let d = SealedSignature::seal(sig.clone()).open();
        assert!(!d.corruption_detected && !d.silent_corruption);
        assert_eq!(d.signature, sig);
    }

    #[test]
    fn crc_differs_for_different_signatures() {
        let a = SealedSignature::seal(sample());
        let empty = Signature::with_shared(SignatureConfig::s14_tm().into_shared());
        let b = SealedSignature::seal(empty);
        assert_ne!(a.crc, b.crc);
    }

    #[test]
    fn every_single_bit_flip_is_detected_and_repaired() {
        let sig = sample();
        let bits = sig.config().size_bits();
        // Stride through the whole payload (every bit would be O(bits^2)
        // CRC work); the all-bits guarantee is structural to CRC.
        for bit in (0..bits).step_by(7) {
            let mut sealed = SealedSignature::seal(sig.clone());
            sealed.corrupt_bit(bit);
            assert!(sealed.was_corrupted());
            let d = sealed.open();
            assert!(d.corruption_detected, "flip of bit {bit} went undetected");
            assert!(!d.silent_corruption);
            assert_eq!(d.signature, sig, "repair after flip of bit {bit}");
        }
    }

    #[test]
    fn crc64_known_properties() {
        assert_eq!(crc64(&[]), 0);
        assert_ne!(crc64(b"123456789"), 0);
        // Single-bit sensitivity at the byte level.
        assert_ne!(crc64(&[0x01]), crc64(&[0x00]));
        assert_ne!(crc64(&[0x80, 0x00]), crc64(&[0x00, 0x00]));
    }
}
