//! Property-based tests for the signature invariants of DESIGN.md §6:
//! superset encoding, intersection/union soundness, δ exactness,
//! RLE round-trip, and word-mask conservatism.

use bulk_mem::{Addr, CacheGeometry, LineAddr};
use bulk_sig::{
    merge_line, table8, BitPermutation, Granularity, Signature, SignatureConfig,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SignatureConfig> {
    // Any Table 8 spec, line or word granularity, identity or the
    // matching paper permutation.
    (0..table8().len(), any::<bool>(), any::<bool>()).prop_map(|(i, word, permute)| {
        let spec = table8()[i];
        let (gran, perm) = if word {
            (
                Granularity::Word,
                if permute { BitPermutation::paper_tls() } else { BitPermutation::identity() },
            )
        } else {
            (
                Granularity::Line,
                if permute { BitPermutation::paper_tm() } else { BitPermutation::identity() },
            )
        };
        SignatureConfig::from_spec(spec, perm, gran, 64)
    })
}

fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..0x0400_0000, 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: no false negatives, ever.
    #[test]
    fn superset_encoding(config in arb_config(), addrs in arb_addrs()) {
        let mut s = Signature::new(config);
        for &a in &addrs {
            s.insert_addr(Addr::new(a));
        }
        for &a in &addrs {
            prop_assert!(s.contains_addr(Addr::new(a)));
        }
        prop_assert_eq!(s.is_empty(), addrs.is_empty());
    }

    /// Invariant 2: H(A1) ∩ H(A2) covers every address in A1 ∩ A2, and
    /// `intersects` is consistent with the materialised intersection.
    #[test]
    fn intersection_soundness(
        config in arb_config(),
        a1 in arb_addrs(),
        a2 in arb_addrs(),
    ) {
        let shared = config.into_shared();
        let mut s1 = Signature::with_shared(shared.clone());
        let mut s2 = Signature::with_shared(shared);
        for &a in &a1 {
            s1.insert_addr(Addr::new(a));
        }
        for &a in &a2 {
            s2.insert_addr(Addr::new(a));
        }
        let inter = s1.intersect(&s2);
        prop_assert_eq!(s1.intersects(&s2), !inter.is_empty());
        for a in a1.iter().filter(|a| a2.contains(a)) {
            let key1 = s1.config().key_of_addr(Addr::new(*a));
            prop_assert!(inter.contains_key(key1));
        }
    }

    /// Union covers both operands and is monotone in popcount.
    #[test]
    fn union_covers_operands(
        config in arb_config(),
        a1 in arb_addrs(),
        a2 in arb_addrs(),
    ) {
        let shared = config.into_shared();
        let mut s1 = Signature::with_shared(shared.clone());
        let mut s2 = Signature::with_shared(shared);
        for &a in &a1 {
            s1.insert_addr(Addr::new(a));
        }
        for &a in &a2 {
            s2.insert_addr(Addr::new(a));
        }
        let u = s1.union(&s2);
        for &a in a1.iter().chain(&a2) {
            prop_assert!(u.contains_addr(Addr::new(a)));
        }
        prop_assert!(u.popcount() >= s1.popcount().max(s2.popcount()));
        prop_assert!(u.popcount() <= s1.popcount() + s2.popcount());
    }

    /// Invariant 3: δ is exact for the paper's default configurations —
    /// the decoded bitmask equals precisely the inserted addresses' sets.
    #[test]
    fn decode_is_exact_for_defaults(word_gran in any::<bool>(), addrs in arb_addrs()) {
        let (config, geom) = if word_gran {
            (SignatureConfig::s14_tls(), CacheGeometry::tls_l1())
        } else {
            (SignatureConfig::s14_tm(), CacheGeometry::tm_l1())
        };
        prop_assume!(config.is_exactly_decodable(&geom));
        let mut s = Signature::new(config);
        let mut expected: Vec<u32> = Vec::new();
        for &a in &addrs {
            s.insert_addr(Addr::new(a));
            let addr = Addr::new(a);
            expected.push(if word_gran {
                geom.set_of_word(addr.word())
            } else {
                geom.set_of_line(addr.line(64))
            });
        }
        expected.sort_unstable();
        expected.dedup();
        let mask = s.decode_sets(&geom);
        prop_assert_eq!(mask.iter_ones().collect::<Vec<_>>(), expected);
    }

    /// δ is always a superset of the true sets, for any configuration.
    #[test]
    fn decode_is_conservative_for_any_config(config in arb_config(), addrs in arb_addrs()) {
        let geom = CacheGeometry::tm_l1();
        prop_assume!(config.line_bytes() == geom.line_bytes());
        let word = config.granularity() == Granularity::Word;
        let mut s = Signature::new(config);
        for &a in &addrs {
            s.insert_addr(Addr::new(a));
        }
        let mask = s.decode_sets(&geom);
        for &a in &addrs {
            let set = if word {
                geom.set_of_word(Addr::new(a).word())
            } else {
                geom.set_of_line(Addr::new(a).line(64))
            };
            prop_assert!(mask.get(set), "set {set} of {a:#x} missing from δ");
        }
    }

    /// Invariant 6: RLE round-trips exactly, and the size accessor agrees
    /// with the materialised code.
    #[test]
    fn rle_round_trip(config in arb_config(), addrs in arb_addrs()) {
        let shared = config.into_shared();
        let mut s = Signature::with_shared(shared.clone());
        for &a in &addrs {
            s.insert_addr(Addr::new(a));
        }
        let compressed = s.compress();
        prop_assert_eq!(compressed.size_bits(), s.compressed_size_bits());
        let restored = Signature::decompress(shared, &compressed).expect("valid code");
        prop_assert_eq!(s, restored);
    }

    /// Invariant 4 (mask side): the updated-word bitmask covers every word
    /// actually written and the merge keeps exactly the masked words.
    #[test]
    fn word_mask_is_conservative_and_merge_respects_it(
        line_raw in 0u32..0x100_0000,
        written in prop::collection::btree_set(0u32..16, 0..16),
    ) {
        let line = LineAddr::new(line_raw);
        let mut w = Signature::new(SignatureConfig::s14_tls());
        for &i in &written {
            w.insert_word(line.word(64, i));
        }
        let mask = w.updated_word_bitmask(line);
        for &i in &written {
            prop_assert!(mask.contains(i));
        }
        let committed: Vec<u64> = (0..16).map(|i| 1000 + i).collect();
        let local: Vec<u64> = (0..16).map(|i| 2000 + i).collect();
        let merged = merge_line(&committed, &local, mask);
        for i in 0..16u32 {
            let expect = if mask.contains(i) { &local } else { &committed };
            prop_assert_eq!(merged[i as usize], expect[i as usize]);
        }
    }

    /// Clearing a signature always yields the empty signature (the
    /// paper's one-operation commit).
    #[test]
    fn clear_is_total(config in arb_config(), addrs in arb_addrs()) {
        let mut s = Signature::new(config);
        for &a in &addrs {
            s.insert_addr(Addr::new(a));
        }
        s.clear();
        prop_assert!(s.is_empty());
        prop_assert_eq!(s.popcount(), 0);
    }
}
