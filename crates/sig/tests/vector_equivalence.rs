//! The scalar-vs-vector oracle for the flat lane-loop signature engine.
//!
//! The bulk operations are implemented as unrolled u64x4 lane loops over a
//! padded flat buffer. These tests pin them to an independent scalar
//! reference model — a `BTreeSet` of flat bit positions driven only by
//! [`SignatureConfig::chunk_values`] — so a layout or lane bug shows up as
//! a semantic divergence, not just a perf anomaly. A second suite proves
//! [`Signature::decompress`] returns `None` (never panics) under random
//! byte mutations, truncations and length-field lies applied to valid
//! codes.
//!
//! Cases come from the seeded `bulk_rng::check` harness; failures print a
//! `BULK_PROP_SEED` that replays the exact case.

use std::collections::BTreeSet;

use bulk_rng::check::{run, Gen};
use bulk_rng::prop_assert_eq;
use bulk_sig::{
    table8, BitPermutation, CompressedSignature, Granularity, Signature, SignatureConfig,
};

/// Any Table 8 spec, line or word granularity, identity or the matching
/// paper permutation — same envelope as the main property suite.
fn arb_config(g: &mut Gen) -> SignatureConfig {
    let spec = table8()[g.in_range(0..table8().len())];
    let (gran, perm) = if g.bool() {
        (
            Granularity::Word,
            if g.bool() { BitPermutation::paper_tls() } else { BitPermutation::identity() },
        )
    } else {
        (
            Granularity::Line,
            if g.bool() { BitPermutation::paper_tm() } else { BitPermutation::identity() },
        )
    };
    SignatureConfig::from_spec(spec, perm, gran, 64)
}

fn arb_keys(g: &mut Gen) -> Vec<u32> {
    g.vec_u32(0..120, 0..0x0400_0000)
}

/// Scalar reference: the set of flat bit positions a key sets, derived
/// from the config alone (per field: field start + decoded chunk value).
fn ref_positions_of_key(config: &SignatureConfig, key: u32) -> Vec<u64> {
    config
        .chunk_values(key)
        .map(|(i, v)| config.field_range(i).start + u64::from(v))
        .collect()
}

/// Scalar reference signature: flat positions of a whole key set.
fn ref_signature(config: &SignatureConfig, keys: &[u32]) -> BTreeSet<u64> {
    keys.iter().flat_map(|&k| ref_positions_of_key(config, k)).collect()
}

/// Scalar reference membership: every one of the key's per-field bits set.
fn ref_contains(config: &SignatureConfig, model: &BTreeSet<u64>, key: u32) -> bool {
    ref_positions_of_key(config, key).iter().all(|p| model.contains(p))
}

/// Scalar reference emptiness: at least one V-field holds no bit.
fn ref_is_empty(config: &SignatureConfig, model: &BTreeSet<u64>) -> bool {
    (0..config.num_fields()).any(|i| {
        let r = config.field_range(i);
        !model.range(r.start..r.end).any(|_| true)
    })
}

fn vec_signature(config: &SignatureConfig, keys: &[u32]) -> Signature {
    let mut s = Signature::new(config.clone());
    for &k in keys {
        s.insert_key(k);
    }
    s
}

fn positions_of(sig: &Signature) -> BTreeSet<u64> {
    sig.iter_flat_positions().collect()
}

/// Insert + membership: the lane-loop signature and the scalar model set
/// identical bits and return identical membership verdicts — for inserted
/// keys and for arbitrary probes.
#[test]
fn scalar_vector_agree_on_insert_and_membership() {
    run("scalar_vector_agree_on_insert_and_membership", 96, |g| {
        let config = arb_config(g);
        let keys = arb_keys(g);
        let probes = arb_keys(g);
        let model = ref_signature(&config, &keys);
        let sig = vec_signature(&config, &keys);
        prop_assert_eq!(positions_of(&sig), model.clone());
        prop_assert_eq!(sig.popcount(), model.len() as u64);
        for &k in keys.iter().chain(&probes) {
            prop_assert_eq!(
                sig.contains_key(k),
                ref_contains(&config, &model, k),
                "membership diverged for key {k:#x}"
            );
        }
        Ok(())
    });
}

/// Intersect / union / emptiness: AND and OR on the lane loops equal set
/// intersection and union on the scalar model, and both sides agree on
/// the any-field-empty rule.
#[test]
fn scalar_vector_agree_on_set_ops_and_emptiness() {
    run("scalar_vector_agree_on_set_ops_and_emptiness", 96, |g| {
        let config = arb_config(g);
        let k1 = arb_keys(g);
        let k2 = arb_keys(g);
        let m1 = ref_signature(&config, &k1);
        let m2 = ref_signature(&config, &k2);
        let s1 = vec_signature(&config, &k1);
        let s2 = vec_signature(&config, &k2);

        let inter = s1.intersect(&s2);
        let ref_inter: BTreeSet<u64> = m1.intersection(&m2).copied().collect();
        prop_assert_eq!(positions_of(&inter), ref_inter.clone());

        let uni = s1.union(&s2);
        let ref_uni: BTreeSet<u64> = m1.union(&m2).copied().collect();
        prop_assert_eq!(positions_of(&uni), ref_uni.clone());

        let mut acc = s1.clone();
        acc.union_assign(&s2);
        prop_assert_eq!(acc, uni.clone());

        prop_assert_eq!(s1.is_empty(), ref_is_empty(&config, &m1));
        prop_assert_eq!(inter.is_empty(), ref_is_empty(&config, &ref_inter));
        prop_assert_eq!(uni.is_empty(), ref_is_empty(&config, &ref_uni));
        prop_assert_eq!(s1.intersects(&s2), !inter.is_empty());
        prop_assert_eq!(s1.try_intersects(&s2).unwrap(), !inter.is_empty());
        Ok(())
    });
}

/// Flat-bits round trip: the word-level funnel-shift export/import is the
/// identity, and the exported words carry exactly the model's positions.
#[test]
fn scalar_vector_agree_on_flat_bits() {
    run("scalar_vector_agree_on_flat_bits", 96, |g| {
        let config = arb_config(g);
        let keys = arb_keys(g);
        let model = ref_signature(&config, &keys);
        let sig = vec_signature(&config, &keys);
        let flat = sig.flat_bits();
        let mut from_flat = BTreeSet::new();
        for (wi, &w) in flat.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                from_flat.insert(wi as u64 * 64 + u64::from(w.trailing_zeros()));
                w &= w - 1;
            }
        }
        prop_assert_eq!(from_flat, model);
        let back = Signature::from_flat_bits(sig.config().clone(), &flat);
        prop_assert_eq!(back, sig);
        Ok(())
    });
}

/// Decompress must return `None` — never panic, never index out of bounds,
/// never overflow — for every mutation of a valid code: random bit flips,
/// truncated buffers, appended garbage, and length fields that lie in both
/// directions (including absurdly large values). A panic anywhere in here
/// fails the harness, which is the proof.
#[test]
fn decompress_never_panics_on_mutated_codes() {
    run("decompress_never_panics_on_mutated_codes", 192, |g| {
        let config = arb_config(g).into_shared();
        let keys = arb_keys(g);
        let sig = vec_signature(&config, &keys);
        let valid = sig.compress();

        let mut bytes = valid.as_bytes().to_vec();
        let mut bit_len = valid.size_bits();
        match g.in_range(0u32..5) {
            // Flip up to 8 random bits anywhere in the code.
            0 => {
                if !bytes.is_empty() {
                    for _ in 0..g.in_range(1usize..9) {
                        let i = g.in_range(0..bytes.len());
                        bytes[i] ^= 1 << g.in_range(0u32..8);
                    }
                }
            }
            // Truncate the byte buffer but keep the advertised bit length
            // (exercises the bit_len > bytes guard).
            1 => {
                let keep = g.in_range(0..bytes.len() + 1);
                bytes.truncate(keep);
            }
            // Replace the buffer wholesale with random bytes.
            2 => {
                bytes = g
                    .vec_u32(0..64, 0..256)
                    .into_iter()
                    .map(|b| b as u8)
                    .collect();
                bit_len = bytes.len() as u64 * 8;
            }
            // Lie about the length: anything from 0 to absurd (overflow
            // bait for position arithmetic).
            3 => {
                bit_len = if g.bool() {
                    g.u64() // arbitrary, possibly astronomically large
                } else {
                    g.in_range(0u32..4096).into()
                };
            }
            // Append garbage bytes and extend the length over them.
            _ => {
                for _ in 0..g.in_range(1usize..9) {
                    bytes.push(g.in_range(0u32..256) as u8);
                }
                bit_len = bytes.len() as u64 * 8;
            }
        }
        let mutated = CompressedSignature::from_raw(bytes, bit_len);
        // The only requirement: no panic. `Some` is allowed (a mutation
        // can still be a well-formed code), but it must decode to a
        // signature of this config that re-compresses cleanly.
        if let Some(d) = Signature::decompress(config.clone(), &mutated) {
            prop_assert_eq!(d.config().size_bits(), config.size_bits());
            let rt = Signature::decompress(config.clone(), &d.compress());
            prop_assert_eq!(rt.expect("re-compressed code is valid"), d);
        }
        Ok(())
    });
}
