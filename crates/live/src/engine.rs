//! The composed liveness engine the machines embed.
//!
//! [`LivenessEngine`] bundles the four mechanisms — watchdog, backoff
//! arbitration, arbiter failover with receiver-side dedup, and checkpoint
//! accounting — behind one small hook surface, so a machine wires liveness
//! with a handful of calls at its existing event sites (tick, squash,
//! commit, broadcast). Everything is deterministic: the only randomness is
//! the backoff jitter, seeded from [`LivenessConfig::seed`] (the machines
//! pass the chaos seed through, so `BULK_CHAOS_SEED` replays liveness
//! behaviour too).

use crate::arbiter::{Arbiter, CommitTicket, DedupFilter};
use crate::backoff::{BackoffConfig, BackoffPolicy};
use crate::violation::LivenessViolation;
use crate::watchdog::{Watchdog, WatchdogConfig};

/// Aggregate configuration for a machine's liveness engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Watchdog thresholds.
    pub watchdog: WatchdogConfig,
    /// Backoff ladder tuning.
    pub backoff: BackoffConfig,
    /// Cycles one arbiter re-election costs (lease timeout + election).
    pub reelect_cycles: u64,
    /// Seed for the deterministic backoff jitter. Machines pass the chaos
    /// seed so one `BULK_CHAOS_SEED` replays the whole run.
    pub seed: u64,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            watchdog: WatchdogConfig::default(),
            backoff: BackoffConfig::default(),
            reelect_cycles: 120,
            seed: 0,
        }
    }
}

/// Counters the engine accumulates over a run; folded into the machines'
/// stats structs and mirrored into the observability registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Backoff waits issued.
    pub backoff_waits: u64,
    /// Total cycles of backoff issued.
    pub backoff_cycles: u64,
    /// Times the squash-storm throttle opened.
    pub storm_widenings: u64,
    /// Watchdog trips (0 or 1 per run; the first trip aborts).
    pub watchdog_trips: u64,
    /// Arbiter crashes survived.
    pub arbiter_crashes: u64,
    /// Final arbiter epoch.
    pub arbiter_epoch: u64,
    /// In-flight commit broadcasts replayed after a failover.
    pub replayed_commits: u64,
    /// Duplicate deliveries dropped by the receiver-side dedup filter.
    pub dedup_drops: u64,
    /// Times one commit was applied more than once (must stay 0).
    pub duplicate_applications: u64,
    /// Checkpoints captured at chaos context switches.
    pub checkpoints: u64,
    /// Checkpoint restores that failed verification (must stay 0).
    pub checkpoint_restore_failures: u64,
}

impl LiveStats {
    /// Folds `other` into `self` (sums counters; epoch takes the max).
    pub fn merge(&mut self, other: &LiveStats) {
        self.backoff_waits += other.backoff_waits;
        self.backoff_cycles += other.backoff_cycles;
        self.storm_widenings += other.storm_widenings;
        self.watchdog_trips += other.watchdog_trips;
        self.arbiter_crashes += other.arbiter_crashes;
        self.arbiter_epoch = self.arbiter_epoch.max(other.arbiter_epoch);
        self.replayed_commits += other.replayed_commits;
        self.dedup_drops += other.dedup_drops;
        self.duplicate_applications += other.duplicate_applications;
        self.checkpoints += other.checkpoints;
        self.checkpoint_restore_failures += other.checkpoint_restore_failures;
    }
}

/// One machine run's liveness engine: watchdog + backoff + failable
/// arbiter + dedup, with a unified stats snapshot.
#[derive(Debug)]
pub struct LivenessEngine {
    watchdog: Watchdog,
    backoff: BackoffPolicy,
    arbiter: Arbiter,
    dedup: DedupFilter,
    replayed_commits: u64,
    checkpoints: u64,
    checkpoint_restore_failures: u64,
}

impl LivenessEngine {
    /// Creates an engine for `threads` threads running `scheme`.
    /// `chaos_seed` is the armed chaos seed, if any, used only for replay
    /// hints in emitted violations.
    pub fn new(
        scheme: impl Into<String>,
        threads: usize,
        cfg: LivenessConfig,
        chaos_seed: Option<u64>,
    ) -> Self {
        LivenessEngine {
            watchdog: Watchdog::new(scheme, threads, cfg.watchdog, chaos_seed),
            backoff: BackoffPolicy::new(threads, cfg.backoff, cfg.seed),
            arbiter: Arbiter::new(threads, cfg.reelect_cycles),
            dedup: DedupFilter::new(),
            replayed_commits: 0,
            checkpoints: 0,
            checkpoint_restore_failures: 0,
        }
    }

    /// Advances the global-stall clock. Call once per scheduler iteration.
    pub fn on_tick(&mut self, cycle: u64) {
        self.watchdog.observe_tick(cycle);
    }

    /// Records a squash of `victim` by `by` and returns the backoff wait
    /// (in cycles) the victim must observe before retrying.
    ///
    /// `aliasing` is the oracle's verdict for the squash (signature-only
    /// conflict) and `age_rank` the victim's age among in-flight
    /// transactions (0 = oldest).
    pub fn on_squash(
        &mut self,
        by: Option<usize>,
        victim: usize,
        aliasing: bool,
        age_rank: usize,
        cycle: u64,
    ) -> u64 {
        self.watchdog.observe_squash(by, victim, cycle);
        self.backoff.on_squash(victim, aliasing, age_rank)
    }

    /// Records a commit by `thread`, resetting its backoff ladder and the
    /// watchdog's progress clocks.
    pub fn on_commit(&mut self, thread: usize, cycle: u64) {
        self.watchdog.observe_commit(thread, cycle);
        self.backoff.on_commit(thread);
    }

    /// Records that `thread` retired all its work.
    pub fn on_done(&mut self, thread: usize) {
        self.watchdog.observe_done(thread);
    }

    /// Whether the watchdog has tripped; the machine must abort the run
    /// and surface [`LivenessEngine::take_violations`].
    pub fn tripped(&self) -> bool {
        self.watchdog.tripped()
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[LivenessViolation] {
        self.watchdog.violations()
    }

    /// Drains recorded violations.
    pub fn take_violations(&mut self) -> Vec<LivenessViolation> {
        self.watchdog.take_violations()
    }

    /// Stamps a commit ticket for the current epoch.
    pub fn ticket(&self, committer: usize, serial: u64) -> CommitTicket {
        self.arbiter.ticket(committer, serial)
    }

    /// Crashes the arbiter mid-broadcast: re-elects, marks the in-flight
    /// commit as replayed, and returns the re-election cost in cycles.
    pub fn arbiter_crash(&mut self) -> u64 {
        self.replayed_commits += 1;
        self.arbiter.fail_over()
    }

    /// Current arbiter epoch.
    pub fn epoch(&self) -> u64 {
        self.arbiter.epoch()
    }

    /// Current arbiter leader.
    pub fn leader(&self) -> usize {
        self.arbiter.leader()
    }

    /// Admits a delivery of `ticket` (first delivery only); duplicates are
    /// counted and must not be applied.
    pub fn admit(&mut self, ticket: CommitTicket) -> bool {
        self.dedup.admit(ticket)
    }

    /// Records an actual application of `ticket`'s W_C; duplicate
    /// applications are counted as bugs.
    pub fn record_application(&mut self, ticket: CommitTicket) -> bool {
        self.dedup.record_application(ticket)
    }

    /// Records a checkpoint capture and whether its restore verified.
    pub fn note_checkpoint(&mut self, restore_ok: bool) {
        self.checkpoints += 1;
        if !restore_ok {
            self.checkpoint_restore_failures += 1;
        }
    }

    /// Records a failed crash-consistent checkpoint restore as a typed
    /// [`LivenessKind::CheckpointRestore`](crate::LivenessKind) violation
    /// carrying the scheme label and replay seed, instead of the machine
    /// panicking at the restore site. Counts the checkpoint as captured
    /// and its restore as failed.
    pub fn report_checkpoint_failure(&mut self, thread: usize, cycle: u64, detail: String) {
        self.note_checkpoint(false);
        self.watchdog.report(
            crate::LivenessKind::CheckpointRestore,
            Some(thread),
            cycle,
            detail,
        );
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> LiveStats {
        LiveStats {
            backoff_waits: self.backoff.waits(),
            backoff_cycles: self.backoff.wait_cycles(),
            storm_widenings: self.backoff.storm_widenings(),
            watchdog_trips: self.watchdog.trips(),
            arbiter_crashes: self.arbiter.crashes(),
            arbiter_epoch: self.arbiter.epoch(),
            replayed_commits: self.replayed_commits,
            dedup_drops: self.dedup.drops(),
            duplicate_applications: self.dedup.duplicate_applications(),
            checkpoints: self.checkpoints,
            checkpoint_restore_failures: self.checkpoint_restore_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::LivenessKind;

    #[test]
    fn engine_composes_watchdog_and_backoff() {
        let cfg = LivenessConfig {
            watchdog: WatchdogConfig {
                ping_pong_rounds: 3,
                ..WatchdogConfig::default()
            },
            ..LivenessConfig::default()
        };
        let mut e = LivenessEngine::new("tm/test", 2, cfg, Some(5));
        let mut waits = Vec::new();
        for round in 0..3u64 {
            let (s, v) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            waits.push(e.on_squash(Some(s), v, false, 0, 100 * (round + 1)));
        }
        assert!(e.tripped());
        assert!(waits.iter().all(|&w| w > 0));
        let stats = e.stats();
        assert_eq!(stats.watchdog_trips, 1);
        assert_eq!(stats.backoff_waits, 3);
        let v = e.take_violations();
        assert_eq!(v[0].kind, LivenessKind::Livelock);
        assert_eq!(v[0].seed, Some(5));
    }

    #[test]
    fn crash_replay_dedup_round_trip() {
        let mut e = LivenessEngine::new("tm/test", 4, LivenessConfig::default(), None);
        let t = e.ticket(2, 11);
        assert!(e.admit(t));
        assert!(!e.record_application(t));
        let cost = e.arbiter_crash();
        assert_eq!(cost, LivenessConfig::default().reelect_cycles);
        let replay = e.ticket(2, 11);
        assert_eq!(replay.epoch, 1);
        assert!(!e.admit(replay));
        let s = e.stats();
        assert_eq!(s.arbiter_crashes, 1);
        assert_eq!(s.arbiter_epoch, 1);
        assert_eq!(s.replayed_commits, 1);
        assert_eq!(s.dedup_drops, 1);
        assert_eq!(s.duplicate_applications, 0);
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let mut a = LiveStats {
            backoff_waits: 1,
            arbiter_epoch: 2,
            ..LiveStats::default()
        };
        let b = LiveStats {
            backoff_waits: 3,
            arbiter_epoch: 1,
            dedup_drops: 4,
            ..LiveStats::default()
        };
        a.merge(&b);
        assert_eq!(a.backoff_waits, 4);
        assert_eq!(a.arbiter_epoch, 2);
        assert_eq!(a.dedup_drops, 4);
    }
}
