//! Crash-consistent checkpoints of per-thread speculative state.
//!
//! A forced context switch or an arbiter crash must not lose — or, worse,
//! silently mutate — a thread's speculative footprint: the R/W signature
//! pair, the Partial Overlap shadow signature, the overflow bit, and the
//! set of line addresses parked in the overflow area (§6.2.2). A
//! [`Checkpoint`] captures exactly that state; [`Checkpoint::verify`]
//! proves a restore is byte-faithful before the thread resumes, so
//! resumption can never violate the Set Restriction by running against a
//! torn signature.
//!
//! The signature half rides on [`bulk_core`]'s spill/reload machinery (the
//! paper performs the same save "in memory" on a context switch); the
//! checkpoint adds the overflow-area snapshot and the equality proof.

use bulk_core::{Bdm, SpilledVersion, VersionId};
use bulk_mem::LineAddr;

/// A crash-consistent snapshot of one thread's speculative state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The spilled R/W (and shadow) signatures plus the O bit.
    pub spilled: SpilledVersion,
    /// Sorted snapshot of the overflow area's resident line addresses.
    pub overflow_lines: Vec<LineAddr>,
}

/// Why a checkpoint failed to verify against the restored state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The read signature differs after restore.
    ReadSignature,
    /// The write signature differs after restore.
    WriteSignature,
    /// The Partial Overlap shadow signature differs (or appeared/vanished).
    ShadowSignature,
    /// The overflow (O) bit differs.
    OverflowBit,
    /// The overflow area's resident line set differs.
    OverflowLines,
    /// No free BDM version slot to reload the spilled signatures into.
    SlotExhausted,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            CheckpointError::ReadSignature => "read signature mismatch",
            CheckpointError::WriteSignature => "write signature mismatch",
            CheckpointError::ShadowSignature => "shadow signature mismatch",
            CheckpointError::OverflowBit => "overflow bit mismatch",
            CheckpointError::OverflowLines => "overflow line set mismatch",
            CheckpointError::SlotExhausted => "no free BDM slot for reload",
        };
        write!(f, "checkpoint restore not faithful: {what}")
    }
}

impl Checkpoint {
    /// Builds a checkpoint from an already-spilled version and a snapshot
    /// of the overflow area's lines. The line list is sorted so two
    /// captures of identical state compare equal regardless of the
    /// overflow area's internal iteration order.
    pub fn capture(spilled: SpilledVersion, mut overflow_lines: Vec<LineAddr>) -> Self {
        overflow_lines.sort_unstable();
        Checkpoint {
            spilled,
            overflow_lines,
        }
    }

    /// Verifies that `restored` state (spill + overflow snapshot, as would
    /// be captured *after* a restore) is identical to this checkpoint.
    ///
    /// This is the crash-consistency proof: signatures must match bit for
    /// bit, the O bit must match, and the overflow area must hold exactly
    /// the same lines. Any mismatch means the restore would resume the
    /// thread against torn state.
    pub fn verify(
        &self,
        restored: &SpilledVersion,
        restored_overflow: &[LineAddr],
    ) -> Result<(), CheckpointError> {
        if self.spilled.r != restored.r {
            return Err(CheckpointError::ReadSignature);
        }
        if self.spilled.w != restored.w {
            return Err(CheckpointError::WriteSignature);
        }
        if self.spilled.w_sh != restored.w_sh {
            return Err(CheckpointError::ShadowSignature);
        }
        if self.spilled.overflowed != restored.overflowed {
            return Err(CheckpointError::OverflowBit);
        }
        let mut lines = restored_overflow.to_vec();
        lines.sort_unstable();
        if self.overflow_lines != lines {
            return Err(CheckpointError::OverflowLines);
        }
        Ok(())
    }

    /// Restores this checkpoint into `bdm` and *proves* the restore
    /// byte-faithful before handing the version back: reload the spill,
    /// re-spill what actually landed, [`verify`](Checkpoint::verify) it
    /// against the checkpoint (with `restored_overflow` as the overflow
    /// area's post-restore snapshot), then reload for keeps.
    ///
    /// Every failure is typed: slot exhaustion surfaces as
    /// [`CheckpointError::SlotExhausted`] instead of a panic, and a torn
    /// restore surfaces as the mismatching component. On any error the
    /// BDM is left without the restored version (the probe spill freed
    /// it), so the caller can surface a
    /// [`LivenessViolation`](crate::LivenessViolation) and stop cleanly.
    pub fn restore_into(
        &self,
        bdm: &mut Bdm,
        restored_overflow: &[LineAddr],
    ) -> Result<VersionId, CheckpointError> {
        let probe = bdm
            .reload_version(self.spilled.clone())
            .map_err(|_| CheckpointError::SlotExhausted)?;
        let respilled = bdm.spill_version(probe);
        self.verify(&respilled, restored_overflow)?;
        bdm.reload_version(respilled).map_err(|_| CheckpointError::SlotExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_core::Bdm;
    use bulk_mem::{Addr, CacheGeometry};
    use bulk_sig::SignatureConfig;

    fn loaded_bdm() -> (Bdm, bulk_core::VersionId) {
        let mut bdm = Bdm::new(SignatureConfig::s14_tm(), CacheGeometry::tm_l1(), 1);
        let v = bdm.alloc_version().unwrap();
        bdm.record_load(v, Addr::new(0x1000));
        bdm.record_store(v, Addr::new(0x2040));
        bdm.record_store(v, Addr::new(0x3080));
        (bdm, v)
    }

    #[test]
    fn faithful_spill_reload_round_trip_verifies() {
        let (mut bdm, v) = loaded_bdm();
        let lines = vec![Addr::new(0x9000).line(64), Addr::new(0x8000).line(64)];
        let ckpt = Checkpoint::capture(bdm.spill_version(v), lines.clone());

        // Restore, then re-spill to compare what actually landed.
        let v2 = bdm.reload_version(ckpt.spilled.clone()).unwrap();
        let respilled = bdm.spill_version(v2);
        assert_eq!(ckpt.verify(&respilled, &lines), Ok(()));
    }

    #[test]
    fn capture_sorts_so_order_does_not_matter() {
        let (mut bdm, v) = loaded_bdm();
        let spilled = bdm.spill_version(v);
        let a = Checkpoint::capture(
            spilled.clone(),
            vec![Addr::new(0x9000).line(64), Addr::new(0x1000).line(64)],
        );
        assert_eq!(
            a.verify(
                &spilled,
                &[Addr::new(0x1000).line(64), Addr::new(0x9000).line(64)]
            ),
            Ok(())
        );
    }

    #[test]
    fn torn_write_signature_is_detected() {
        let (mut bdm, v) = loaded_bdm();
        let ckpt = Checkpoint::capture(bdm.spill_version(v), Vec::new());
        let mut torn = ckpt.spilled.clone();
        // Simulate a torn restore: one extra store leaks into W.
        torn.w.insert_line(Addr::new(0xDEAD_C0).line(64));
        assert_eq!(
            ckpt.verify(&torn, &[]),
            Err(CheckpointError::WriteSignature)
        );
    }

    #[test]
    fn restore_into_round_trips_and_returns_a_live_version() {
        let (mut bdm, v) = loaded_bdm();
        let lines = vec![Addr::new(0x9000).line(64)];
        let ckpt = Checkpoint::capture(bdm.spill_version(v), lines.clone());
        let restored = ckpt.restore_into(&mut bdm, &lines).expect("faithful restore");
        // The restored version is usable: its spill matches the checkpoint.
        let respilled = bdm.spill_version(restored);
        assert_eq!(ckpt.verify(&respilled, &lines), Ok(()));
    }

    #[test]
    fn restore_into_reports_slot_exhaustion_as_a_typed_error() {
        // A 1-slot BDM whose only slot is occupied cannot reload the
        // checkpoint: the typed SlotExhausted error replaces what used to
        // be an `unreachable!` panic at the machine's restore site.
        let (mut bdm, v) = loaded_bdm();
        let ckpt = Checkpoint::capture(bdm.spill_version(v), Vec::new());
        let _occupant = bdm.alloc_version().unwrap();
        assert_eq!(
            ckpt.restore_into(&mut bdm, &[]),
            Err(CheckpointError::SlotExhausted)
        );
    }

    #[test]
    fn restore_into_detects_a_divergent_overflow_snapshot() {
        let (mut bdm, v) = loaded_bdm();
        let line = Addr::new(0x7000).line(64);
        let ckpt = Checkpoint::capture(bdm.spill_version(v), vec![line]);
        // The overflow area lost a line between capture and restore.
        assert_eq!(
            ckpt.restore_into(&mut bdm, &[]),
            Err(CheckpointError::OverflowLines)
        );
        // The failed restore did not leak the slot: a fresh alloc works.
        assert!(bdm.alloc_version().is_some());
    }

    #[test]
    fn overflow_bit_and_line_set_are_part_of_the_proof() {
        let (mut bdm, v) = loaded_bdm();
        let line = Addr::new(0x7000).line(64);
        let ckpt = Checkpoint::capture(bdm.spill_version(v), vec![line]);

        let mut flipped = ckpt.spilled.clone();
        flipped.overflowed = !flipped.overflowed;
        assert_eq!(
            ckpt.verify(&flipped, &[line]),
            Err(CheckpointError::OverflowBit)
        );
        assert_eq!(
            ckpt.verify(&ckpt.spilled, &[]),
            Err(CheckpointError::OverflowLines)
        );
    }
}
