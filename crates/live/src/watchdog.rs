//! Forward-progress watchdog.
//!
//! The watchdog observes the three progress-relevant events a speculative
//! machine produces — squashes, commits, and the passage of logical time —
//! and trips a typed [`LivenessViolation`] when any of the three progress
//! properties is violated:
//!
//! * **livelock** — the same unordered pair of threads alternates squasher
//!   and victim for [`WatchdogConfig::ping_pong_rounds`] consecutive rounds
//!   with no commit anywhere in between (the Fig. 12(a) ping-pong);
//! * **starvation** — a thread's commit age (commits elsewhere since its
//!   own last commit) exceeds [`WatchdogConfig::starvation_commits`];
//! * **global stall** — no commit for [`WatchdogConfig::stall_ticks`]
//!   cycles while work remains.
//!
//! Detection is purely observational: the watchdog never perturbs the
//! machine, so arming it does not change a run's schedule. A trip is
//! sticky — the first violation latches and the machine is expected to
//! abort the run and surface the violation.

use std::collections::BTreeMap;

use crate::violation::{LivenessKind, LivenessViolation};

/// Thresholds for the three watchdog detectors.
///
/// The defaults are deliberately generous: they are far beyond anything a
/// healthy run produces (the chaos soaks run with them armed and never
/// trip) while still catching a true livelock within a few hundred cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive alternating squash rounds between one unordered thread
    /// pair before declaring livelock.
    pub ping_pong_rounds: u32,
    /// Commits elsewhere since a thread's last own commit before declaring
    /// it starved.
    pub starvation_commits: u64,
    /// Cycles without any commit before declaring a global stall.
    pub stall_ticks: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            ping_pong_rounds: 12,
            starvation_commits: 512,
            stall_ticks: 1_000_000,
        }
    }
}

/// Alternation state for one unordered thread pair.
#[derive(Debug, Clone)]
struct PairState {
    /// Squasher of the most recent squash on this edge.
    last_squasher: usize,
    /// Consecutive rounds in which the squasher alternated.
    rounds: u32,
}

/// The watchdog itself. One instance observes one machine run.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    scheme: String,
    seed: Option<u64>,
    /// Alternation counters keyed by unordered `(lo, hi)` thread pair.
    /// `BTreeMap` keeps any future iteration deterministic.
    pairs: BTreeMap<(usize, usize), PairState>,
    /// Commits elsewhere since each thread's own last commit.
    starve: Vec<u64>,
    /// Threads that still have uncommitted work.
    active: Vec<bool>,
    last_commit_cycle: u64,
    tripped: bool,
    trips: u64,
    violations: Vec<LivenessViolation>,
}

impl Watchdog {
    /// Creates a watchdog for `threads` threads running `scheme`, with the
    /// given thresholds and optional chaos replay seed.
    pub fn new(
        scheme: impl Into<String>,
        threads: usize,
        cfg: WatchdogConfig,
        seed: Option<u64>,
    ) -> Self {
        Watchdog {
            cfg,
            scheme: scheme.into(),
            seed,
            pairs: BTreeMap::new(),
            starve: vec![0; threads],
            active: vec![true; threads],
            last_commit_cycle: 0,
            tripped: false,
            trips: 0,
            violations: Vec::new(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    fn trip(
        &mut self,
        kind: LivenessKind,
        thread: Option<usize>,
        cycle: u64,
        detail: String,
    ) {
        self.tripped = true;
        self.trips += 1;
        self.violations.push(LivenessViolation {
            kind,
            scheme: self.scheme.clone(),
            thread,
            cycle,
            seed: self.seed,
            detail,
        });
    }

    /// Records an externally-detected liveness violation (e.g. a failed
    /// crash-consistent checkpoint restore) with the watchdog's scheme
    /// label and replay seed attached. Trips the watchdog: the thread in
    /// question cannot make further progress safely.
    pub fn report(
        &mut self,
        kind: LivenessKind,
        thread: Option<usize>,
        cycle: u64,
        detail: String,
    ) {
        self.trip(kind, thread, cycle, detail);
    }

    /// Records that `by` squashed `victim` at `cycle`.
    ///
    /// `by` is `None` when the squash has no identifiable peer (e.g. a
    /// chaos-forced restart); such squashes do not feed the livelock
    /// detector because they cannot form a cycle.
    pub fn observe_squash(&mut self, by: Option<usize>, victim: usize, cycle: u64) {
        if self.tripped {
            return;
        }
        let Some(s) = by else { return };
        if s == victim {
            return;
        }
        let key = (s.min(victim), s.max(victim));
        let state = self.pairs.entry(key).or_insert(PairState {
            last_squasher: s,
            rounds: 0,
        });
        if state.rounds == 0 || state.last_squasher == victim {
            // First squash on this edge, or roles swapped: one more round
            // of the ping-pong.
            state.rounds += 1;
        }
        // Same squasher twice in a row: the victim keeps losing the same
        // duel (it typically restarts and is squashed again before winning
        // the line back). That extends the current round without advancing
        // the cycle count — only a role swap is a new round, and only a
        // commit resets the count. Pure one-sided squashing therefore
        // never trips livelock (rounds stays at 1); it is caught by the
        // starvation detector instead.
        state.last_squasher = s;
        let rounds = state.rounds;
        if rounds >= self.cfg.ping_pong_rounds {
            let (a, b) = key;
            self.trip(
                LivenessKind::Livelock,
                Some(victim),
                cycle,
                format!(
                    "detected squash cycle {a} -> {b} -> {a}: threads {a} and {b} \
                     squashed each other for {rounds} consecutive rounds without a \
                     commit (last round: {s} squashed {victim})"
                ),
            );
        }
    }

    /// Records that `thread` committed at `cycle`.
    ///
    /// A commit anywhere is progress: it resets every livelock alternation
    /// counter and the global-stall clock, and ages every other in-flight
    /// thread for starvation accounting.
    pub fn observe_commit(&mut self, thread: usize, cycle: u64) {
        self.pairs.clear();
        self.last_commit_cycle = cycle;
        if self.tripped {
            return;
        }
        if thread < self.starve.len() {
            self.starve[thread] = 0;
        }
        for t in 0..self.starve.len() {
            if t == thread || !self.active[t] {
                continue;
            }
            self.starve[t] += 1;
            if self.starve[t] > self.cfg.starvation_commits {
                let age = self.starve[t];
                self.trip(
                    LivenessKind::Starvation,
                    Some(t),
                    cycle,
                    format!(
                        "thread {t} has not committed while {age} commits landed \
                         elsewhere (bound {})",
                        self.cfg.starvation_commits
                    ),
                );
                return;
            }
        }
    }

    /// Records that `thread` has retired all its work.
    pub fn observe_done(&mut self, thread: usize) {
        if thread < self.active.len() {
            self.active[thread] = false;
            self.starve[thread] = 0;
        }
    }

    /// Advances the global-stall clock to `cycle`.
    pub fn observe_tick(&mut self, cycle: u64) {
        if self.tripped {
            return;
        }
        let idle = cycle.saturating_sub(self.last_commit_cycle);
        if idle > self.cfg.stall_ticks {
            self.trip(
                LivenessKind::GlobalStall,
                None,
                cycle,
                format!(
                    "no commit for {idle} cycles (bound {}, last commit at cycle {})",
                    self.cfg.stall_ticks, self.last_commit_cycle
                ),
            );
        }
    }

    /// Whether any detector has tripped. Sticky.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Number of trips recorded (0 or 1; the first trip latches).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The recorded violations.
    pub fn violations(&self) -> &[LivenessViolation] {
        &self.violations
    }

    /// Drains the recorded violations.
    pub fn take_violations(&mut self) -> Vec<LivenessViolation> {
        std::mem::take(&mut self.violations)
    }
}

/// Wall-clock stall detector for execution substrates that have no
/// simulated clock (the real-thread parallel runtime).
///
/// The simulated [`Watchdog`] measures progress in cycles; on real OS
/// threads a hung peer manifests as wall time passing with no bus
/// publish. Every publish calls [`note_progress`](Self::note_progress);
/// every spin site calls [`stalled`](Self::stalled), which trips —
/// stickily — once the gap since the last progress exceeds the bound.
///
/// Memory-ordering argument: `note_progress` stores the elapsed-ns
/// reading with `Release` and `stalled` loads it with `Acquire`, so a
/// checker that observes a fresh timestamp also observes everything the
/// publisher wrote before it (the publish itself synchronizes via the
/// bus's `OnceLock`, so this ordering is for monotonicity of the
/// *detector*, not for protocol safety — a stale read can only make the
/// detector conservative by at most one progress event, never unsound:
/// it may trip late, and it never un-trips). The trip latch is a sticky
/// `AtomicBool` (`Release` store, `Acquire` load), so once any checker
/// trips, every later check reports stalled without re-deriving it.
#[derive(Debug)]
pub struct WallClockWatchdog {
    start: std::time::Instant,
    /// Elapsed nanoseconds (since `start`) of the last observed progress.
    last_progress_ns: std::sync::atomic::AtomicU64,
    /// Sticky trip latch.
    tripped: std::sync::atomic::AtomicBool,
    timeout_ns: u64,
}

impl WallClockWatchdog {
    /// A detector that trips after `timeout_ns` wall-clock nanoseconds
    /// without progress. `0` disables it (never trips).
    pub fn new(timeout_ns: u64) -> Self {
        WallClockWatchdog {
            start: std::time::Instant::now(),
            last_progress_ns: std::sync::atomic::AtomicU64::new(0),
            tripped: std::sync::atomic::AtomicBool::new(false),
            timeout_ns,
        }
    }

    /// Records that the system made progress (a bus record was
    /// published). Called by every worker and the supervisor.
    pub fn note_progress(&self) {
        let now = self.start.elapsed().as_nanos() as u64;
        // Monotonic max, not a blind store: a delayed writer must not
        // move the deadline backwards under a fresher reading.
        self.last_progress_ns.fetch_max(now, std::sync::atomic::Ordering::Release);
    }

    /// `true` once the stall bound has been exceeded. Sticky: the first
    /// trip latches, later progress cannot un-trip it — a run that ever
    /// stalled past the bound reports the stall even if the hung peer
    /// eventually woke up.
    pub fn stalled(&self) -> bool {
        if self.timeout_ns == 0 {
            return false;
        }
        if self.tripped.load(std::sync::atomic::Ordering::Acquire) {
            return true;
        }
        let now = self.start.elapsed().as_nanos() as u64;
        let last = self.last_progress_ns.load(std::sync::atomic::Ordering::Acquire);
        if now.saturating_sub(last) > self.timeout_ns {
            self.tripped.store(true, std::sync::atomic::Ordering::Release);
            return true;
        }
        false
    }

    /// Wall-clock nanoseconds since the last observed progress.
    pub fn since_progress_ns(&self) -> u64 {
        let now = self.start.elapsed().as_nanos() as u64;
        now.saturating_sub(self.last_progress_ns.load(std::sync::atomic::Ordering::Acquire))
    }

    /// The configured bound, in nanoseconds.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }

    /// Builds the typed violation for a trip, with replay context. The
    /// caller (the runtime's supervisor or a spinning worker) owns
    /// thread attribution.
    pub fn violation(&self, scheme: &str, thread: Option<usize>, seed: Option<u64>) -> LivenessViolation {
        LivenessViolation {
            kind: LivenessKind::GlobalStall,
            scheme: scheme.to_string(),
            thread,
            cycle: 0,
            seed,
            detail: format!(
                "no bus publish for {} ms (wall-clock bound {} ms)",
                self.since_progress_ns() / 1_000_000,
                self.timeout_ns / 1_000_000
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd(rounds: u32) -> Watchdog {
        Watchdog::new(
            "test",
            2,
            WatchdogConfig {
                ping_pong_rounds: rounds,
                ..WatchdogConfig::default()
            },
            None,
        )
    }

    #[test]
    fn alternating_squashes_trip_livelock() {
        let mut w = wd(4);
        for round in 0..4u64 {
            let (s, v) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            w.observe_squash(Some(s), v, 100 * (round + 1));
        }
        assert!(w.tripped());
        let v = &w.violations()[0];
        assert_eq!(v.kind, LivenessKind::Livelock);
        assert!(v.detail.contains("squash cycle 0 -> 1 -> 0"));
        assert_eq!(v.cycle, 400);
    }

    #[test]
    fn a_commit_resets_the_alternation() {
        let mut w = wd(4);
        for round in 0..3u64 {
            let (s, v) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            w.observe_squash(Some(s), v, 100 * (round + 1));
        }
        w.observe_commit(0, 350);
        w.observe_squash(Some(1), 0, 400);
        assert!(!w.tripped());
    }

    #[test]
    fn one_sided_squashing_is_not_a_livelock_cycle() {
        let mut w = wd(3);
        for round in 0..10u64 {
            w.observe_squash(Some(0), 1, 10 * (round + 1));
        }
        // Same squasher every time: the victim is being starved, not
        // ping-ponged; the livelock detector must not fire.
        assert!(!w.tripped());
    }

    #[test]
    fn self_and_anonymous_squashes_are_ignored() {
        let mut w = wd(1);
        w.observe_squash(None, 1, 10);
        w.observe_squash(Some(1), 1, 20);
        assert!(!w.tripped());
    }

    #[test]
    fn commit_age_past_bound_trips_starvation() {
        let mut w = Watchdog::new(
            "test",
            3,
            WatchdogConfig {
                starvation_commits: 4,
                ..WatchdogConfig::default()
            },
            Some(9),
        );
        for i in 0..5 {
            w.observe_commit(i % 2, 10 * (i as u64 + 1));
        }
        assert!(w.tripped());
        let v = &w.violations()[0];
        assert_eq!(v.kind, LivenessKind::Starvation);
        assert_eq!(v.thread, Some(2));
        assert_eq!(v.seed, Some(9));
    }

    #[test]
    fn done_threads_cannot_starve() {
        let mut w = Watchdog::new(
            "test",
            3,
            WatchdogConfig {
                starvation_commits: 2,
                ..WatchdogConfig::default()
            },
            None,
        );
        w.observe_done(2);
        for i in 0..8 {
            w.observe_commit(i % 2, 10 * (i as u64 + 1));
        }
        assert!(!w.tripped());
    }

    #[test]
    fn quiet_machine_trips_global_stall() {
        let mut w = Watchdog::new(
            "test",
            2,
            WatchdogConfig {
                stall_ticks: 100,
                ..WatchdogConfig::default()
            },
            None,
        );
        w.observe_commit(0, 50);
        w.observe_tick(140);
        assert!(!w.tripped());
        w.observe_tick(151);
        assert!(w.tripped());
        assert_eq!(w.violations()[0].kind, LivenessKind::GlobalStall);
    }

    #[test]
    fn trips_latch_once() {
        let mut w = wd(2);
        for round in 0..10u64 {
            let (s, v) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
            w.observe_squash(Some(s), v, round + 1);
        }
        assert_eq!(w.trips(), 1);
        assert_eq!(w.violations().len(), 1);
    }

    #[test]
    fn wall_clock_watchdog_trips_and_stays_tripped() {
        let w = WallClockWatchdog::new(1); // 1 ns bound: trips immediately
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(w.stalled());
        // Progress after the trip cannot un-trip the latch.
        w.note_progress();
        assert!(w.stalled());
        let v = w.violation("bulk", Some(1), Some(42));
        assert_eq!(v.kind, LivenessKind::GlobalStall);
        assert_eq!(v.seed, Some(42));
        assert!(v.detail.contains("wall-clock bound"));
    }

    #[test]
    fn wall_clock_watchdog_disabled_at_zero() {
        let w = WallClockWatchdog::new(0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(!w.stalled());
    }

    #[test]
    fn wall_clock_watchdog_progress_defers_the_trip() {
        let w = WallClockWatchdog::new(60_000_000_000); // 60 s: never in-test
        std::thread::sleep(std::time::Duration::from_millis(1));
        w.note_progress();
        assert!(w.since_progress_ns() < 60_000_000_000);
        assert!(!w.stalled());
        assert_eq!(w.timeout_ns(), 60_000_000_000);
    }
}
