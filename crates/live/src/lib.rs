//! Liveness engine for the Bulk machines: forward-progress guarantees,
//! commit-arbiter failover, and crash-consistent recovery.
//!
//! The paper's commit protocol (§5) assumes an always-available arbiter
//! and leaves forward progress to policy — its own Fig. 12(a) shows a
//! naive eager scheme livelocking on a two-thread ping-pong. The chaos
//! harness (DESIGN.md §7) can *stress* progress but nothing in the stack
//! *guarantees* it. This crate closes that loop with four cooperating
//! mechanisms:
//!
//! * [`Watchdog`] — detects livelock (repeated squash cycles between the
//!   same signature pairs), starvation (per-thread commit age), and global
//!   stall (no commit in N ticks), emitting typed [`LivenessViolation`]s
//!   analogous to the chaos harness's `InvariantViolation`s;
//! * [`BackoffPolicy`] — age-based commit arbitration with bounded
//!   exponential backoff and seeded deterministic jitter, including
//!   squash-storm throttling driven by the aliasing-squash rate, as a
//!   graduated policy *before* serial-token escalation;
//! * [`Arbiter`] / [`DedupFilter`] — the commit arbiter as a failable
//!   component with epoch-based re-election and idempotent replay of
//!   in-flight commit messages (`(committer, serial)` dedup at receivers,
//!   so a committed-but-unacked W_C is never applied twice);
//! * [`Checkpoint`] — crash-consistent capture/verify of per-thread
//!   speculative state (R/W signatures + overflow area + O bit), so an
//!   arbiter crash or forced context switch resumes without violating the
//!   Set Restriction.
//!
//! [`LivenessEngine`] composes all four behind the hook surface the TM and
//! TLS machines call. Every mechanism is a pure function of its seed and
//! the event order, so runs replay exactly under `BULK_CHAOS_SEED`.
//!
//! ```
//! use bulk_live::{LivenessConfig, LivenessEngine, LivenessKind, WatchdogConfig};
//!
//! let cfg = LivenessConfig {
//!     watchdog: WatchdogConfig { ping_pong_rounds: 2, ..WatchdogConfig::default() },
//!     ..LivenessConfig::default()
//! };
//! let mut engine = LivenessEngine::new("tm/eager-naive", 2, cfg, None);
//! // Thread 0 squashes 1, then 1 squashes 0: an alternating squash cycle.
//! engine.on_squash(Some(0), 1, false, 1, 100);
//! engine.on_squash(Some(1), 0, false, 0, 200);
//! assert!(engine.tripped());
//! assert_eq!(engine.violations()[0].kind, LivenessKind::Livelock);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arbiter;
mod backoff;
mod checkpoint;
mod engine;
mod violation;
mod watchdog;

pub use arbiter::{Arbiter, CommitTicket, DedupFilter};
pub use backoff::{BackoffConfig, BackoffPolicy};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use engine::{LiveStats, LivenessConfig, LivenessEngine};
pub use violation::{LivenessKind, LivenessViolation};
pub use watchdog::{WallClockWatchdog, Watchdog, WatchdogConfig};
