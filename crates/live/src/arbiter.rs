//! Commit-arbiter failover and idempotent commit replay.
//!
//! The paper's commit protocol assumes an always-available arbiter that
//! grants the bus and orders commits. Here the arbiter is a *failable*
//! component: the chaos harness can crash it mid-broadcast, after the
//! committer has been granted the bus but before every receiver has
//! acknowledged the `CommitMsg`. Recovery is classic lease/epoch
//! re-election:
//!
//! * every broadcast carries a [`CommitTicket`] — the arbiter epoch plus
//!   the committer's transaction serial;
//! * on a crash the epoch advances, leadership rotates deterministically
//!   to the next processor, and re-election costs a fixed number of
//!   cycles;
//! * the in-flight message is *replayed* under the new epoch (the
//!   committed-but-unacknowledged W_C must reach everyone), and receivers
//!   deduplicate on `(committer, serial)` via [`DedupFilter`], so a W_C is
//!   never applied twice no matter how many times crash or chaos
//!   duplication re-delivers it.

use std::collections::BTreeSet;

/// Identity of one commit broadcast: arbiter epoch at grant time, the
/// committing processor, and that processor's transaction serial number.
///
/// `(committer, serial)` is unique per transaction attempt that reaches
/// the commit point, which is what makes receiver-side dedup sound; the
/// epoch records which arbiter incarnation granted the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CommitTicket {
    /// Arbiter epoch when the bus was granted.
    pub epoch: u64,
    /// Committing processor.
    pub committer: usize,
    /// The committer's transaction serial (monotonic per processor).
    pub serial: u64,
}

/// The failable commit arbiter: current epoch, current leader, and the
/// fixed re-election cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arbiter {
    procs: usize,
    leader: usize,
    epoch: u64,
    reelect_cycles: u64,
    crashes: u64,
}

impl Arbiter {
    /// Creates an arbiter for `procs` processors; processor 0 leads epoch 0.
    pub fn new(procs: usize, reelect_cycles: u64) -> Self {
        Arbiter {
            procs: procs.max(1),
            leader: 0,
            epoch: 0,
            reelect_cycles,
            crashes: 0,
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current leader processor.
    pub fn leader(&self) -> usize {
        self.leader
    }

    /// Number of crashes survived so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Stamps a ticket for a broadcast granted in the current epoch.
    pub fn ticket(&self, committer: usize, serial: u64) -> CommitTicket {
        CommitTicket {
            epoch: self.epoch,
            committer,
            serial,
        }
    }

    /// Crashes the arbiter mid-broadcast and re-elects.
    ///
    /// Leadership rotates deterministically to the next processor, the
    /// epoch advances, and the returned cycle count (the lease timeout
    /// plus election round) must be charged to the machine before the
    /// in-flight message is replayed.
    pub fn fail_over(&mut self) -> u64 {
        self.crashes += 1;
        self.epoch += 1;
        self.leader = (self.leader + 1) % self.procs;
        self.reelect_cycles
    }
}

/// Receiver-side commit dedup: admits each `(committer, serial)` exactly
/// once, counting replayed or duplicated deliveries as drops.
///
/// The filter also tracks *applications* separately from admissions, so a
/// soak can assert the end-to-end property directly: however many times
/// chaos duplicates a broadcast or a failover replays it, the number of
/// duplicate applications stays zero.
#[derive(Debug, Default)]
pub struct DedupFilter {
    admitted: BTreeSet<(usize, u64)>,
    applied: BTreeSet<(usize, u64)>,
    drops: u64,
    duplicate_applications: u64,
}

impl DedupFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Admits a delivery of `ticket` if its `(committer, serial)` has not
    /// been seen before. A rejected (duplicate) delivery is counted and
    /// must not be applied by the caller.
    pub fn admit(&mut self, ticket: CommitTicket) -> bool {
        if self.admitted.insert((ticket.committer, ticket.serial)) {
            true
        } else {
            self.drops += 1;
            false
        }
    }

    /// Records that the caller actually applied `ticket`'s W_C. Returns
    /// `true` if this was a *duplicate* application — a correctness bug
    /// the soaks assert never happens.
    pub fn record_application(&mut self, ticket: CommitTicket) -> bool {
        if self.applied.insert((ticket.committer, ticket.serial)) {
            false
        } else {
            self.duplicate_applications += 1;
            true
        }
    }

    /// Deliveries rejected as duplicates.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Distinct commits applied.
    pub fn applications(&self) -> u64 {
        self.applied.len() as u64
    }

    /// Times the same commit was applied more than once (must stay 0).
    pub fn duplicate_applications(&self) -> u64 {
        self.duplicate_applications
    }

    /// Distinct tickets the filter currently tracks (admitted or applied)
    /// — its memory footprint. Bounded by the number of *distinct*
    /// `(committer, serial)` pairs ever seen, not by delivery count:
    /// duplicated and replayed deliveries are dropped without growing the
    /// filter. The property suite asserts this bound directly.
    pub fn tracked(&self) -> usize {
        self.admitted.union(&self.applied).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_rotates_leadership_and_advances_the_epoch() {
        let mut a = Arbiter::new(3, 120);
        assert_eq!((a.epoch(), a.leader()), (0, 0));
        assert_eq!(a.fail_over(), 120);
        assert_eq!((a.epoch(), a.leader()), (1, 1));
        a.fail_over();
        a.fail_over();
        assert_eq!((a.epoch(), a.leader()), (3, 0));
        assert_eq!(a.crashes(), 3);
    }

    #[test]
    fn tickets_carry_the_granting_epoch() {
        let mut a = Arbiter::new(2, 50);
        let t0 = a.ticket(1, 7);
        a.fail_over();
        let t1 = a.ticket(1, 7);
        assert_eq!(t0.epoch, 0);
        assert_eq!(t1.epoch, 1);
        assert_eq!((t1.committer, t1.serial), (1, 7));
    }

    #[test]
    fn replayed_ticket_is_dropped_even_under_a_new_epoch() {
        let mut a = Arbiter::new(2, 50);
        let mut f = DedupFilter::new();
        let original = a.ticket(0, 3);
        assert!(f.admit(original));
        assert!(!f.record_application(original));
        // Arbiter crashes; the same commit is replayed under epoch 1.
        a.fail_over();
        let replay = a.ticket(0, 3);
        assert!(!f.admit(replay), "replay must be deduplicated");
        assert_eq!(f.drops(), 1);
        assert_eq!(f.duplicate_applications(), 0);
    }

    #[test]
    fn distinct_serials_from_one_committer_are_independent() {
        let a = Arbiter::new(2, 50);
        let mut f = DedupFilter::new();
        assert!(f.admit(a.ticket(0, 1)));
        assert!(f.admit(a.ticket(0, 2)));
        assert!(f.admit(a.ticket(1, 1)));
        assert_eq!(f.drops(), 0);
        assert_eq!(f.applications(), 0);
    }

    #[test]
    fn double_crash_during_one_broadcast_still_dedups_the_replays() {
        // Crash-during-replay: the arbiter dies mid-broadcast, its
        // successor dies again while replaying the same in-flight commit.
        // Each replay is re-stamped with the newest epoch; dedup still
        // drops both because the identity is (committer, serial).
        let mut a = Arbiter::new(3, 120);
        let mut f = DedupFilter::new();
        let original = a.ticket(2, 5);
        assert!(f.admit(original));
        assert!(!f.record_application(original));
        a.fail_over(); // crash mid-broadcast
        let replay1 = a.ticket(2, 5);
        a.fail_over(); // crash during the replay of the same commit
        let replay2 = a.ticket(2, 5);
        assert_eq!((replay1.epoch, replay2.epoch), (1, 2));
        assert_eq!((a.epoch(), a.leader(), a.crashes()), (2, 2, 2));
        assert!(!f.admit(replay1));
        assert!(!f.admit(replay2));
        assert_eq!(f.drops(), 2);
        assert_eq!(f.duplicate_applications(), 0);
        // Two replays did not grow the filter past the one real commit.
        assert_eq!(f.tracked(), 1);
    }

    #[test]
    fn crash_between_two_committers_keeps_their_tickets_distinct() {
        // Crash while the bus is contended: committer 0's broadcast is
        // interrupted, committer 1 is granted afterwards under the new
        // epoch. Both commits survive with distinct identities; the
        // replayed copy of 0's commit is the only drop.
        let mut a = Arbiter::new(2, 50);
        let mut f = DedupFilter::new();
        let first = a.ticket(0, 0);
        assert!(f.admit(first));
        assert!(!f.record_application(first));
        a.fail_over();
        let replay = a.ticket(0, 0);
        assert!(!f.admit(replay));
        let second = a.ticket(1, 0);
        assert_eq!(second.epoch, 1);
        assert!(f.admit(second));
        assert!(!f.record_application(second));
        assert_eq!(f.applications(), 2);
        assert_eq!(f.drops(), 1);
        assert_eq!(f.tracked(), 2);
    }

    #[test]
    fn double_application_is_counted_as_a_bug() {
        let a = Arbiter::new(1, 0);
        let mut f = DedupFilter::new();
        let t = a.ticket(0, 9);
        assert!(!f.record_application(t));
        assert!(f.record_application(t));
        assert_eq!(f.duplicate_applications(), 1);
    }
}
