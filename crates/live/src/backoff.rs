//! Age-based commit arbitration with bounded exponential backoff.
//!
//! When a thread is squashed it must retry, and *when* it retries decides
//! whether the machine converges or thrashes. This module implements the
//! graduated policy that sits between "retry immediately" (the Fig. 12(a)
//! livelock) and the blunt serial-token escalation of the chaos harness:
//!
//! * **bounded exponential backoff** — each consecutive squash of a thread
//!   doubles its wait, from [`BackoffConfig::base`] up to
//!   [`BackoffConfig::cap`]; a commit resets the ladder;
//! * **age-based arbitration** — the oldest in-flight transaction (age
//!   rank 0) waits least, so the thread closest to commit wins contended
//!   retries and starvation is structurally discouraged;
//! * **seeded deterministic jitter** — the top half of each wait is drawn
//!   from a [`SmallRng`], de-synchronising symmetric contenders without
//!   sacrificing replayability: the same seed and squash order produce the
//!   same waits, bit for bit;
//! * **squash-storm throttling** — the policy watches the aliasing share
//!   of recent squashes (the observability layer's `squash.aliasing`
//!   split); when false-positive squashes dominate a window, base and cap
//!   are widened by [`BackoffConfig::storm_factor`] until a calmer window
//!   closes the throttle.

use bulk_rng::{Rng, SeedableRng, SmallRng};

/// Tuning for [`BackoffPolicy`]. All quantities are in simulator cycles
/// unless noted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First-squash wait.
    pub base: u64,
    /// Upper bound on any single wait (before storm widening).
    pub cap: u64,
    /// Number of squashes per storm-evaluation window.
    pub storm_window: u64,
    /// Aliasing share (percent of the window's squashes) above which the
    /// storm throttle opens.
    pub storm_threshold_pct: u32,
    /// Multiplier applied to `base` and `cap` while the throttle is open.
    pub storm_factor: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: 16,
            cap: 4096,
            storm_window: 32,
            storm_threshold_pct: 60,
            storm_factor: 4,
        }
    }
}

/// Deterministic, seeded backoff arbiter. One instance serves one run.
#[derive(Debug)]
pub struct BackoffPolicy {
    cfg: BackoffConfig,
    rng: SmallRng,
    /// Consecutive squashes per thread since its last commit.
    consecutive: Vec<u32>,
    window_total: u64,
    window_aliasing: u64,
    storm_active: bool,
    waits: u64,
    wait_cycles: u64,
    storm_widenings: u64,
}

impl BackoffPolicy {
    /// Creates a policy for `threads` threads, seeded so that jitter is a
    /// pure function of `seed` and the squash order.
    pub fn new(threads: usize, cfg: BackoffConfig, seed: u64) -> Self {
        BackoffPolicy {
            cfg,
            // Domain-separate from the chaos plan and the workload
            // generators so arming backoff never correlates with either.
            rng: SmallRng::seed_from_u64(seed ^ 0xBAC0_0FF5_11FE_55AA),
            consecutive: vec![0; threads],
            window_total: 0,
            window_aliasing: 0,
            storm_active: false,
            waits: 0,
            wait_cycles: 0,
            storm_widenings: 0,
        }
    }

    /// The configured ladder.
    pub fn config(&self) -> &BackoffConfig {
        &self.cfg
    }

    /// Computes the wait for `thread` after a squash.
    ///
    /// `aliasing` is the observability layer's verdict for this squash
    /// (signature-only conflict) and feeds the storm throttle; `age_rank`
    /// is the thread's position among in-flight transactions by age
    /// (0 = oldest). Returns the number of cycles the thread should stall
    /// before retrying.
    pub fn on_squash(&mut self, thread: usize, aliasing: bool, age_rank: usize) -> u64 {
        if thread >= self.consecutive.len() {
            return 0;
        }
        self.consecutive[thread] = self.consecutive[thread].saturating_add(1);

        // Storm accounting: evaluate the aliasing share once per window.
        self.window_total += 1;
        if aliasing {
            self.window_aliasing += 1;
        }
        if self.window_total >= self.cfg.storm_window {
            let stormy =
                self.window_aliasing * 100 > u64::from(self.cfg.storm_threshold_pct) * self.window_total;
            if stormy && !self.storm_active {
                self.storm_widenings += 1;
            }
            self.storm_active = stormy;
            self.window_total = 0;
            self.window_aliasing = 0;
        }

        let widen = if self.storm_active { self.cfg.storm_factor.max(1) } else { 1 };
        let base = self.cfg.base.max(1).saturating_mul(widen);
        let cap = self.cfg.cap.max(1).saturating_mul(widen);

        // Exponential ladder, aged: older transactions (lower rank) wait
        // less, so the thread nearest commit wins the retry race.
        let exp = u32::min(self.consecutive[thread].saturating_sub(1), 12);
        let raw = base.saturating_shl(exp);
        let aged = raw.saturating_mul(age_rank as u64 + 1);
        let capped = aged.min(cap);

        // Deterministic jitter: fixed lower half plus a seeded draw over
        // the upper half, so symmetric contenders desynchronise.
        let half = capped / 2;
        let wait = half + self.rng.random_range(0..half + 1);

        self.waits += 1;
        self.wait_cycles += wait;
        wait
    }

    /// Resets `thread`'s ladder after a successful commit.
    pub fn on_commit(&mut self, thread: usize) {
        if thread < self.consecutive.len() {
            self.consecutive[thread] = 0;
        }
    }

    /// Whether the storm throttle is currently open.
    pub fn storm_active(&self) -> bool {
        self.storm_active
    }

    /// Total waits issued.
    pub fn waits(&self) -> u64 {
        self.waits
    }

    /// Total cycles of backoff issued.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Number of times the storm throttle opened.
    pub fn storm_widenings(&self) -> u64 {
        self.storm_widenings
    }
}

/// Saturating left shift (`u64::checked_shl` clamped to `u64::MAX`).
trait SaturatingShl {
    fn saturating_shl(self, exp: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, exp: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if exp >= self.leading_zeros() {
            u64::MAX
        } else {
            self << exp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_grow_exponentially_and_reset_on_commit() {
        let mut p = BackoffPolicy::new(2, BackoffConfig::default(), 1);
        let w1 = p.on_squash(0, false, 0);
        let w2 = p.on_squash(0, false, 0);
        let w3 = p.on_squash(0, false, 0);
        // Jitter keeps exact values seed-dependent, but the floor (half of
        // the capped ladder value) must double each consecutive squash.
        assert!(w1 >= 8, "first wait below base floor: {w1}");
        assert!(w2 >= 16 && w3 >= 32, "ladder not growing: {w2}, {w3}");
        p.on_commit(0);
        let w4 = p.on_squash(0, false, 0);
        assert!(w4 <= 16 + 8, "ladder did not reset after commit: {w4}");
    }

    #[test]
    fn waits_are_bounded_by_the_cap() {
        let cfg = BackoffConfig { cap: 256, ..BackoffConfig::default() };
        let mut p = BackoffPolicy::new(1, cfg, 3);
        for _ in 0..40 {
            assert!(p.on_squash(0, false, 7) <= 256);
        }
    }

    #[test]
    fn older_transactions_wait_less() {
        // Same ladder position, different age ranks, many samples: the
        // oldest thread's mean wait must be strictly smaller.
        let mut old_total = 0u64;
        let mut young_total = 0u64;
        for seed in 0..20u64 {
            let mut p = BackoffPolicy::new(2, BackoffConfig::default(), seed);
            old_total += p.on_squash(0, false, 0);
            young_total += p.on_squash(1, false, 3);
        }
        assert!(
            old_total < young_total,
            "age-based arbitration inverted: oldest {old_total} vs younger {young_total}"
        );
    }

    #[test]
    fn same_seed_same_waits() {
        let mut a = BackoffPolicy::new(2, BackoffConfig::default(), 42);
        let mut b = BackoffPolicy::new(2, BackoffConfig::default(), 42);
        for i in 0..50usize {
            let t = i % 2;
            assert_eq!(a.on_squash(t, i % 3 == 0, t), b.on_squash(t, i % 3 == 0, t));
        }
        assert_eq!(a.wait_cycles(), b.wait_cycles());
    }

    #[test]
    fn aliasing_storm_opens_the_throttle_and_calm_closes_it() {
        let cfg = BackoffConfig {
            storm_window: 8,
            storm_threshold_pct: 50,
            ..BackoffConfig::default()
        };
        let mut p = BackoffPolicy::new(1, cfg, 5);
        for _ in 0..8 {
            p.on_squash(0, true, 0);
        }
        assert!(p.storm_active(), "all-aliasing window must open the throttle");
        assert_eq!(p.storm_widenings(), 1);
        for _ in 0..8 {
            p.on_squash(0, false, 0);
        }
        assert!(!p.storm_active(), "all-true-conflict window must close it");
        assert_eq!(p.storm_widenings(), 1);
    }

    #[test]
    fn storm_widens_the_floor() {
        let cfg = BackoffConfig {
            storm_window: 4,
            storm_threshold_pct: 50,
            storm_factor: 8,
            ..BackoffConfig::default()
        };
        let mut p = BackoffPolicy::new(1, cfg.clone(), 11);
        // First squash of a fresh ladder, throttle closed.
        let calm = p.on_squash(0, false, 0);
        p.on_commit(0);
        // Open the throttle with an aliasing-heavy window.
        for _ in 0..3 {
            p.on_squash(0, true, 0);
        }
        p.on_commit(0);
        let stormy = p.on_squash(0, true, 0);
        assert!(
            stormy >= calm * 2,
            "storm throttle did not widen backoff: calm {calm}, stormy {stormy}"
        );
    }
}
