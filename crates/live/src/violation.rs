//! Typed liveness violations, the forward-progress analogue of
//! `bulk_chaos::InvariantViolation`.
//!
//! An invariant violation means the machine computed something *wrong*; a
//! liveness violation means the machine stopped computing anything *useful*.
//! Both carry enough context to replay the run (`BULK_CHAOS_SEED`) and are
//! surfaced by the CLI as a nonzero-exit diagnostic.

use std::fmt;

/// The classes of forward-progress failure the watchdog distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LivenessKind {
    /// Two (or more) threads keep squashing each other in a cycle: the same
    /// unordered signature pair alternates squasher and victim for a
    /// configured number of consecutive rounds without an intervening
    /// commit. This is the Fig. 12(a) EagerNaive ping-pong, detected
    /// instead of merely demonstrated.
    Livelock,
    /// One thread makes no commit while the rest of the machine commits
    /// past it: its commit age (commits elsewhere since its own last
    /// commit) exceeds the configured bound.
    Starvation,
    /// The machine as a whole stops committing: no thread commits for a
    /// configured number of cycles even though work remains.
    GlobalStall,
    /// A crash-consistent checkpoint could not be restored faithfully:
    /// the spill/reload round trip failed (no free BDM slot) or the
    /// restored state failed the byte-faithfulness proof. The thread
    /// cannot safely resume, so the run surfaces a typed violation with
    /// replay context instead of panicking.
    CheckpointRestore,
    /// A daemon-managed job exceeded its wall-clock budget: the `bulkd`
    /// watchdog reaped the run and marked the *job* failed, leaving the
    /// daemon and its other jobs untouched.
    JobTimeout,
}

impl LivenessKind {
    /// Stable kebab-case name, usable as an event-stream tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            LivenessKind::Livelock => "livelock",
            LivenessKind::Starvation => "starvation",
            LivenessKind::GlobalStall => "global-stall",
            LivenessKind::CheckpointRestore => "checkpoint-restore",
            LivenessKind::JobTimeout => "job-timeout",
        }
    }
}

impl fmt::Display for LivenessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A detected forward-progress failure, with replay context.
///
/// Mirrors the shape of `bulk_chaos::InvariantViolation` so the CLI and
/// the soak tests can treat both failure families uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessViolation {
    /// Which progress property failed.
    pub kind: LivenessKind,
    /// Scheme label of the run (e.g. `"tm/eager-naive"`).
    pub scheme: String,
    /// The starving / livelocked thread, when one is identifiable.
    pub thread: Option<usize>,
    /// Cycle at which the watchdog tripped.
    pub cycle: u64,
    /// Chaos seed of the run, if fault injection was armed.
    pub seed: Option<u64>,
    /// Human-readable diagnosis, including the detected squash cycle for
    /// [`LivenessKind::Livelock`].
    pub detail: String,
}

impl fmt::Display for LivenessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "liveness violation [{}] scheme={} cycle={}",
            self.kind, self.scheme, self.cycle
        )?;
        if let Some(t) = self.thread {
            write!(f, " thread={t}")?;
        }
        write!(f, ": {}", self.detail)?;
        if let Some(seed) = self.seed {
            write!(f, " (replay: BULK_CHAOS_SEED={seed})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_thread_and_replay_seed() {
        let v = LivenessViolation {
            kind: LivenessKind::Livelock,
            scheme: "tm/eager-naive".into(),
            thread: Some(1),
            cycle: 420,
            seed: Some(7),
            detail: "threads 0 and 1 squashed each other 12 times".into(),
        };
        let s = v.to_string();
        assert!(s.contains("[livelock]"));
        assert!(s.contains("thread=1"));
        assert!(s.contains("cycle=420"));
        assert!(s.contains("BULK_CHAOS_SEED=7"));
    }

    #[test]
    fn kinds_have_kebab_names() {
        assert_eq!(LivenessKind::Livelock.to_string(), "livelock");
        assert_eq!(LivenessKind::Starvation.to_string(), "starvation");
        assert_eq!(LivenessKind::GlobalStall.to_string(), "global-stall");
        assert_eq!(LivenessKind::CheckpointRestore.to_string(), "checkpoint-restore");
        assert_eq!(LivenessKind::JobTimeout.to_string(), "job-timeout");
    }
}
