//! Property tests for the receiver-side [`DedupFilter`] under seeded
//! duplicated and reordered `CommitTicket` streams (bulk-rng `check`
//! harness; replay any failing case with `BULK_PROP_SEED=<seed>`).
//!
//! The two properties the model checker's exactly-once proof leans on:
//!
//! * **Insertion-order insensitivity** — however a delivery stream is
//!   interleaved, shuffled, or re-stamped by failover epochs, the set of
//!   admitted tickets, the applications, and the final filter footprint
//!   depend only on the *multiset* of deliveries, and each distinct
//!   `(committer, serial)` is admitted exactly once.
//! * **Memory boundedness** — the filter's footprint is bounded by the
//!   number of distinct tickets, never by the delivery count: an
//!   adversary replaying the same commit a thousand times cannot grow it.

use bulk_live::{Arbiter, CommitTicket, DedupFilter};
use bulk_rng::check::{run, Gen};
use bulk_rng::{prop_assert, prop_assert_eq};

/// A seeded delivery stream: distinct tickets, duplicated (possibly under
/// re-stamped epochs, as failover replays are) and then reordered.
fn delivery_stream(g: &mut Gen) -> (Vec<CommitTicket>, usize) {
    let committers = g.in_range(1usize..5);
    let serials = g.in_range(1u64..6);
    let mut arbiter = Arbiter::new(committers, 120);
    let mut stream = Vec::new();
    let mut distinct = 0usize;
    for c in 0..committers {
        for s in 0..serials {
            distinct += 1;
            stream.push(arbiter.ticket(c, s));
            // Each ticket is re-delivered 0..4 extra times; a coin flip
            // decides whether a re-delivery is a failover replay (epoch
            // re-stamped after a crash) or a plain interconnect duplicate.
            for _ in 0..g.in_range(0usize..4) {
                if g.bool() {
                    arbiter.fail_over();
                }
                stream.push(arbiter.ticket(c, s));
            }
        }
    }
    // Fisher–Yates reorder: deliveries arrive in adversarial order.
    for i in (1..stream.len()).rev() {
        let j = g.in_range(0usize..i + 1);
        stream.swap(i, j);
    }
    (stream, distinct)
}

fn feed(stream: &[CommitTicket]) -> (DedupFilter, u64) {
    let mut filter = DedupFilter::new();
    let mut admitted = 0u64;
    for &t in stream {
        if filter.admit(t) {
            filter.record_application(t);
            admitted += 1;
        }
    }
    (filter, admitted)
}

#[test]
fn admission_is_insensitive_to_delivery_order() {
    run("dedup_order_insensitive", 128, |g| {
        let (stream, distinct) = delivery_stream(g);
        let (filter, admitted) = feed(&stream);
        // Every distinct ticket admitted exactly once, regardless of the
        // interleaving; everything else dropped.
        prop_assert_eq!(admitted, distinct as u64);
        prop_assert_eq!(filter.applications(), distinct as u64);
        prop_assert_eq!(filter.drops(), (stream.len() - distinct) as u64);
        prop_assert_eq!(filter.duplicate_applications(), 0);

        // A second, differently-ordered pass over the same multiset lands
        // in exactly the same final state.
        let mut reordered = stream.clone();
        reordered.reverse();
        let (refilter, readmitted) = feed(&reordered);
        prop_assert_eq!(readmitted, admitted);
        prop_assert_eq!(refilter.applications(), filter.applications());
        prop_assert_eq!(refilter.drops(), filter.drops());
        prop_assert_eq!(refilter.tracked(), filter.tracked());
        Ok(())
    });
}

#[test]
fn filter_memory_is_bounded_by_distinct_tickets_not_deliveries() {
    run("dedup_memory_bounded", 128, |g| {
        let (stream, distinct) = delivery_stream(g);
        let (filter, _) = feed(&stream);
        prop_assert_eq!(filter.tracked(), distinct);
        prop_assert!(
            filter.tracked() <= stream.len(),
            "footprint {} exceeds deliveries {}",
            filter.tracked(),
            stream.len()
        );
        Ok(())
    });
}

#[test]
fn replay_storm_on_one_ticket_never_grows_the_filter() {
    run("dedup_replay_storm", 64, |g| {
        let mut arbiter = Arbiter::new(4, 120);
        let mut filter = DedupFilter::new();
        let first = arbiter.ticket(0, 0);
        prop_assert!(filter.admit(first));
        prop_assert!(!filter.record_application(first));
        let storms = g.in_range(1usize..1000);
        for _ in 0..storms {
            arbiter.fail_over();
            prop_assert!(!filter.admit(arbiter.ticket(0, 0)));
        }
        prop_assert_eq!(filter.tracked(), 1);
        prop_assert_eq!(filter.drops(), storms as u64);
        prop_assert_eq!(filter.duplicate_applications(), 0);
        Ok(())
    });
}
