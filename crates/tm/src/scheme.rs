//! Conflict-detection schemes compared in the paper's TM evaluation.

use std::fmt;

/// Which conflict-detection scheme the TM machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Conventional eager scheme *without* the paper's forward-progress
    /// fix: every conflicting access squashes the other thread. Exhibits
    /// the Fig. 12(a) livelock on read-modify-write contention; provided
    /// as the baseline that motivates the fix.
    EagerNaive,
    /// Conventional eager scheme with exact per-address disambiguation at
    /// access time, plus the paper's footnote-2 fix: on a conflict the
    /// longer-running transaction proceeds and the other stalls.
    Eager,
    /// Conventional lazy scheme: exact address sets, disambiguated when a
    /// thread commits and broadcasts its full write-address enumeration.
    Lazy,
    /// The paper's scheme: signatures as the sole record, bulk
    /// disambiguation and bulk invalidation at commit (flat nesting).
    Bulk,
    /// Bulk plus partial rollback of closed nested transactions (§6.2.1).
    BulkPartial,
}

impl Scheme {
    /// All schemes, in the order the paper's Fig. 11 plots them
    /// (plus the naive-eager baseline first).
    pub const ALL: [Scheme; 5] =
        [Scheme::EagerNaive, Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial];

    /// Whether conflicts are detected at access time.
    pub fn is_eager(self) -> bool {
        matches!(self, Scheme::EagerNaive | Scheme::Eager)
    }

    /// Whether the scheme uses signatures (inexact disambiguation).
    pub fn uses_signatures(self) -> bool {
        matches!(self, Scheme::Bulk | Scheme::BulkPartial)
    }
}

impl Scheme {
    /// Stable kebab-case name — the CLI/job-spec wire form, the inverse
    /// of [`Scheme::from_str`].
    ///
    /// [`Scheme::from_str`]: std::str::FromStr::from_str
    pub fn kebab_name(self) -> &'static str {
        match self {
            Scheme::EagerNaive => "eager-naive",
            Scheme::Eager => "eager",
            Scheme::Lazy => "lazy",
            Scheme::Bulk => "bulk",
            Scheme::BulkPartial => "bulk-partial",
        }
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parses the kebab-case CLI name (`bulk`, `eager-naive`, …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::ALL
            .into_iter()
            .find(|scheme| scheme.kebab_name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown TM scheme `{s}` (expected eager-naive|eager|lazy|bulk|bulk-partial)"
                )
            })
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::EagerNaive => "EagerNaive",
            Scheme::Eager => "Eager",
            Scheme::Lazy => "Lazy",
            Scheme::Bulk => "Bulk",
            Scheme::BulkPartial => "Bulk-Partial",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Scheme::Eager.is_eager());
        assert!(Scheme::EagerNaive.is_eager());
        assert!(!Scheme::Lazy.is_eager());
        assert!(Scheme::Bulk.uses_signatures());
        assert!(Scheme::BulkPartial.uses_signatures());
        assert!(!Scheme::Lazy.uses_signatures());
    }

    #[test]
    fn display_names() {
        assert_eq!(Scheme::Bulk.to_string(), "Bulk");
        assert_eq!(Scheme::BulkPartial.to_string(), "Bulk-Partial");
    }

    #[test]
    fn kebab_names_round_trip_from_str() {
        for s in Scheme::ALL {
            assert_eq!(s.kebab_name().parse::<Scheme>(), Ok(s));
        }
        assert!("Bulk".parse::<Scheme>().is_err(), "display names are not wire names");
    }
}
