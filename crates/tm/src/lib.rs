//! Transactional-memory runtime for the Bulk reproduction: a clock-ordered
//! multiprocessor that executes [`bulk_trace::TmWorkload`] traces under the
//! conflict-detection schemes the paper compares — conventional Eager
//! (naive and with the forward-progress fix of Fig. 12), conventional Lazy
//! with exact address sets, and the paper's Bulk scheme (optionally with
//! partial rollback of nested transactions).
//!
//! Exact per-address sets are always tracked alongside as an *oracle* to
//! classify signature false positives (the Table 7 columns) and to assert
//! correctness; they never influence Bulk's decisions.
//!
//! ```
//! use bulk_sim::SimConfig;
//! use bulk_tm::{run_tm, Scheme};
//! use bulk_trace::profiles;
//!
//! let workload = profiles::tm_profile("mc").unwrap().generate(1);
//! let stats = run_tm(&workload, Scheme::Bulk, &SimConfig::tm_default());
//! assert!(stats.commits > 0);
//! ```

#![warn(missing_docs)]

mod machine;
mod scheme;
mod stats;

pub use machine::{run_tm, run_tm_observed, TmMachine};
pub use scheme::Scheme;
pub use stats::TmStats;
