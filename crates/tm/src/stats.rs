//! Statistics collected by a TM run — everything Tables 7 and Figures
//! 11/13/14 report.

use bulk_chaos::{FaultStats, InvariantViolation};
use bulk_core::CommitEvent;
use bulk_live::{LiveStats, LivenessViolation};
use bulk_mem::BandwidthStats;

/// Aggregate statistics of one TM simulation.
#[derive(Debug, Clone, Default)]
pub struct TmStats {
    /// Committed (outer) transactions.
    pub commits: u64,
    /// Full-transaction squashes.
    pub squashes: u64,
    /// Squashes caused purely by signature aliasing (the exact oracle saw
    /// no conflict). Table 7 "Sq (%)" = `false_squashes / squashes`.
    pub false_squashes: u64,
    /// Partial rollbacks performed instead of full squashes (Bulk-Partial).
    pub partial_rollbacks: u64,
    /// Sections discarded across all partial rollbacks.
    pub sections_rolled_back: u64,
    /// Sum of committed transactions' read-set sizes, in lines.
    pub rd_set_lines: u64,
    /// Sum of committed transactions' write-set sizes, in lines.
    pub wr_set_lines: u64,
    /// Sum of dependence-set sizes over truly conflicting squashes
    /// (|exact `W_C` ∩ (`R_R` ∪ `W_R`)|, Table 7 "Dep Set Size").
    pub dep_set_lines: u64,
    /// Number of squashes contributing to `dep_set_lines`.
    pub dep_samples: u64,
    /// Cache lines invalidated at commits due to aliasing only
    /// (Table 7 "False Inv/Com" numerator).
    pub false_invalidations: u64,
    /// Non-speculative dirty lines written back for the Set Restriction
    /// (Table 7 "Safe WB/Tr" numerator).
    pub safe_writebacks: u64,
    /// Speculative dirty lines spilled to the overflow area.
    pub overflow_spills: u64,
    /// Total overflow-area accesses (Table 7 "Overflow Accesses").
    pub overflow_accesses: u64,
    /// Eager forward-progress stalls taken instead of squashes.
    pub stalls: u64,
    /// Whether the run hit the livelock safety cap (naive Eager only).
    pub livelocked: bool,
    /// Individual (non-transactional) invalidations sent.
    pub individual_invalidations: u64,
    /// Finish time: the maximum processor clock, in cycles.
    pub cycles: u64,
    /// Machine-wide interconnect traffic.
    pub bw: BandwidthStats,
    /// Commit-arbitration denials retried with backoff (chaos runs).
    pub commit_retries: u64,
    /// Transactions escalated to the serialized (non-speculative) fallback.
    pub escalations: u64,
    /// Commits completed by the serialized fallback.
    pub serialized_commits: u64,
    /// Individual invariant checks performed by the auditor.
    pub audit_checks: u64,
    /// Injected-fault accounting for chaos runs.
    pub chaos: FaultStats,
    /// Invariant violations the auditor observed (empty on a healthy run).
    pub violations: Vec<InvariantViolation>,
    /// Liveness-engine counters (all zero unless the engine was armed).
    pub liveness: LiveStats,
    /// Forward-progress violations the liveness watchdog emitted.
    pub liveness_violations: Vec<LivenessViolation>,
    /// Committed history in commit order: one [`CommitEvent`] per outer
    /// transaction, used by the cross-runtime conformance check.
    pub history: Vec<CommitEvent>,
}

impl TmStats {
    /// Accumulates another run's statistics (used to average experiments
    /// over several workload seeds).
    pub fn merge(&mut self, other: &TmStats) {
        self.commits += other.commits;
        self.squashes += other.squashes;
        self.false_squashes += other.false_squashes;
        self.partial_rollbacks += other.partial_rollbacks;
        self.sections_rolled_back += other.sections_rolled_back;
        self.rd_set_lines += other.rd_set_lines;
        self.wr_set_lines += other.wr_set_lines;
        self.dep_set_lines += other.dep_set_lines;
        self.dep_samples += other.dep_samples;
        self.false_invalidations += other.false_invalidations;
        self.safe_writebacks += other.safe_writebacks;
        self.overflow_spills += other.overflow_spills;
        self.overflow_accesses += other.overflow_accesses;
        self.stalls += other.stalls;
        self.livelocked |= other.livelocked;
        self.individual_invalidations += other.individual_invalidations;
        self.cycles += other.cycles;
        self.bw += other.bw;
        self.commit_retries += other.commit_retries;
        self.escalations += other.escalations;
        self.serialized_commits += other.serialized_commits;
        self.audit_checks += other.audit_checks;
        self.chaos.merge(&other.chaos);
        self.violations.extend(other.violations.iter().cloned());
        self.liveness.merge(&other.liveness);
        self.liveness_violations.extend(other.liveness_violations.iter().cloned());
        self.history.extend(other.history.iter().copied());
    }

    /// Mean committed read-set size in lines.
    pub fn avg_rd_set(&self) -> f64 {
        ratio(self.rd_set_lines, self.commits)
    }

    /// Mean committed write-set size in lines.
    pub fn avg_wr_set(&self) -> f64 {
        ratio(self.wr_set_lines, self.commits)
    }

    /// Mean dependence-set size over truly conflicting squashes.
    pub fn avg_dep_set(&self) -> f64 {
        ratio(self.dep_set_lines, self.dep_samples)
    }

    /// Fraction of squashes caused by aliasing (Table 7 "Sq (%)", as 0..1).
    pub fn false_squash_frac(&self) -> f64 {
        ratio(self.false_squashes, self.squashes)
    }

    /// False invalidations per commit (Table 7 "False Inv/Com").
    pub fn false_inv_per_commit(&self) -> f64 {
        ratio(self.false_invalidations, self.commits)
    }

    /// Safe writebacks per committed transaction (Table 7 "Safe WB/Tr").
    pub fn safe_wb_per_commit(&self) -> f64 {
        ratio(self.safe_writebacks, self.commits)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = TmStats::default();
        assert_eq!(s.avg_rd_set(), 0.0);
        assert_eq!(s.false_squash_frac(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = TmStats {
            commits: 10,
            rd_set_lines: 680,
            wr_set_lines: 220,
            squashes: 4,
            false_squashes: 1,
            dep_set_lines: 6,
            dep_samples: 3,
            false_invalidations: 3,
            safe_writebacks: 9,
            ..TmStats::default()
        };
        assert_eq!(s.avg_rd_set(), 68.0);
        assert_eq!(s.avg_wr_set(), 22.0);
        assert_eq!(s.avg_dep_set(), 2.0);
        assert_eq!(s.false_squash_frac(), 0.25);
        assert_eq!(s.false_inv_per_commit(), 0.3);
        assert_eq!(s.safe_wb_per_commit(), 0.9);
    }
}
