//! The TM machine: a clock-ordered multiprocessor simulation that executes
//! [`TmWorkload`] traces under one of the conflict-detection [`Scheme`]s.
//!
//! Each processor runs one thread through its trace, one operation at a
//! time, always advancing the processor with the lowest clock — a
//! deterministic interleaving that respects per-processor timing. The Bulk
//! schemes maintain *only* signatures for disambiguation; exact per-address
//! sets are additionally tracked as an **oracle** to classify signature
//! false positives and validate correctness, never to make Bulk decisions.

use std::collections::HashSet;
use std::sync::Arc;

use bulk_chaos::{Auditor, FaultPlan, InvariantKind, MachineError};
use bulk_core::{
    check_speculative_store, flows, Bdm, CommitEvent, CommitMsg, DeliveredSignatures,
    SectionStack, StoreCheck, VersionId,
};
use bulk_live::{Checkpoint, LivenessConfig, LivenessEngine};
use bulk_mem::{Addr, Cache, LineAddr, MsgClass, OverflowArea};
use bulk_obs::{Obs, RuntimeObs, SpanId, SpanKind, SpanOutcome};
use bulk_sig::{Signature, SignatureArena, SignatureConfig};
use bulk_sim::{Bus, CoreTimer, SimConfig};
use bulk_trace::{TmOp, TmWorkload};

use crate::{Scheme, TmStats};

/// Safety cap on total squashes, used to detect the Fig. 12(a) livelock in
/// the naive Eager scheme.
const DEFAULT_SQUASH_CAP: u64 = 100_000;

/// Squashes of one transaction before it escalates to the serialized
/// non-speculative fallback (graceful degradation instead of livelock).
const DEFAULT_ESCALATION_THRESHOLD: u64 = 16;

struct Thread {
    ops: Vec<TmOp>,
    pc: usize,
    timer: CoreTimer,
    cache: Cache,
    // --- transaction state ---
    depth: usize,
    tx_start_pc: usize,
    tx_start_cycle: u64,
    tx_serial: u64,
    // Commits retired so far; the ordinal of the next CommitEvent.
    commit_ordinal: u64,
    // Exact oracle sets for the current outer transaction (line grain).
    read_set: HashSet<LineAddr>,
    write_set: HashSet<LineAddr>,
    // --- Bulk state ---
    bdm: Bdm,
    version: Option<VersionId>,
    // --- Bulk-Partial state ---
    sections: SectionStack,
    section_starts: Vec<usize>,
    exact_sections: Vec<(HashSet<LineAddr>, HashSet<LineAddr>)>,
    // --- overflow ---
    overflow: OverflowArea,
    // --- eager stall (forward-progress fix) ---
    stalled_on: Option<(usize, u64)>,
    // --- escalation (graceful degradation) ---
    /// Squashes of the currently-attempted transaction (reset on commit).
    tx_squashes: u64,
    /// The thread crossed the escalation threshold; its next `Begin`
    /// enters serialized non-speculative execution.
    escalated: bool,
    /// Currently executing its transaction serialized and non-speculative
    /// (holds the machine's serial token).
    serialized: bool,
    /// Trace span of the current transaction attempt (when observed).
    section_span: SpanId,
    done: bool,
}

impl Thread {
    fn in_tx(&self) -> bool {
        self.depth > 0
    }

    /// In a transaction *speculatively* — i.e. squashable. A serialized
    /// (escalated) transaction is non-speculative and never squashed.
    fn speculative(&self) -> bool {
        self.in_tx() && !self.serialized
    }

    fn tx_progress(&self) -> u64 {
        self.timer.now().saturating_sub(self.tx_start_cycle)
    }

    fn exact_union_contains(&self, line: LineAddr) -> bool {
        self.read_set.contains(&line) || self.write_set.contains(&line)
    }
}

/// The simulated TM multiprocessor. Construct with [`TmMachine::new`], run
/// with [`TmMachine::run`] (or use the [`run_tm`] convenience function).
pub struct TmMachine {
    cfg: SimConfig,
    scheme: Scheme,
    sig_config: Arc<SignatureConfig>,
    /// Recycling pool for per-broadcast signature buffers (commit copies,
    /// section unions, membership probes) so the commit path stays off the
    /// allocator.
    sig_arena: SignatureArena,
    threads: Vec<Thread>,
    bus: Bus,
    stats: TmStats,
    squash_cap: u64,
    /// Per-transaction squash count at which a thread escalates to the
    /// serialized fallback; `None` disables escalation (the naive-eager
    /// baseline keeps its Fig. 12(a) livelock demonstration).
    escalation: Option<u64>,
    /// The thread currently executing its transaction serialized, if any.
    /// While held, only the holder is scheduled: the serial region is a
    /// global exclusion, which is what makes the fallback trivially safe.
    serial_token: Option<usize>,
    chaos: Option<FaultPlan>,
    audit: bool,
    auditor: Auditor,
    obs: Option<RuntimeObs>,
    /// Trace span of the commit broadcast currently being delivered, so
    /// receiver-side squash/invalidate spans can be causally linked to
    /// it. [`SpanId::DROPPED`] outside the delivery loop.
    commit_cause: SpanId,
    /// Liveness engine (watchdog + backoff + failable arbiter), armed by
    /// [`TmMachine::enable_liveness`]. `None` leaves every existing run
    /// bit-identical: no fault-stream draws, no timing changes.
    live: Option<LivenessEngine>,
}

/// Runs `workload` under `scheme` on the given machine configuration and
/// returns the collected statistics.
///
/// ```
/// use bulk_sim::SimConfig;
/// use bulk_tm::{run_tm, Scheme};
/// use bulk_trace::patterns::fig12b_eager_only_squash;
///
/// let w = fig12b_eager_only_squash(3);
/// let stats = run_tm(&w, Scheme::Lazy, &SimConfig::tm_default());
/// assert!(stats.commits >= 6);
/// ```
pub fn run_tm(workload: &TmWorkload, scheme: Scheme, cfg: &SimConfig) -> TmStats {
    TmMachine::new(workload, scheme, cfg).run()
}

/// [`run_tm`] with an observability bundle attached: metrics land in
/// `obs`'s registry under the `tm.` prefix and protocol events in its
/// event log (see [`TmMachine::attach_obs`]).
pub fn run_tm_observed(
    workload: &TmWorkload,
    scheme: Scheme,
    cfg: &SimConfig,
    obs: Arc<Obs>,
) -> TmStats {
    let mut m = TmMachine::new(workload, scheme, cfg);
    m.attach_obs(obs);
    m.run()
}

impl TmMachine {
    /// Builds a machine with one processor per workload thread, using the
    /// paper's default S14 TM signature configuration.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty or a trace has unbalanced nesting;
    /// use [`TmMachine::try_new`] for a typed error instead.
    pub fn new(workload: &TmWorkload, scheme: Scheme, cfg: &SimConfig) -> Self {
        TmMachine::try_new(workload, scheme, cfg)
            .unwrap_or_else(|e| panic!("invalid TM workload: {e}"))
    }

    /// Fallible construction: returns a typed [`MachineError`] when the
    /// workload is empty or a thread trace fails validation.
    pub fn try_new(
        workload: &TmWorkload,
        scheme: Scheme,
        cfg: &SimConfig,
    ) -> Result<Self, MachineError> {
        TmMachine::try_with_signature(workload, scheme, cfg, SignatureConfig::s14_tm())
    }

    /// Builds a machine with an explicit signature configuration (used by
    /// the Table 8 / Fig. 15 sweeps).
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty or a trace has unbalanced nesting;
    /// use [`TmMachine::try_with_signature`] for a typed error instead.
    pub fn with_signature(
        workload: &TmWorkload,
        scheme: Scheme,
        cfg: &SimConfig,
        sig: SignatureConfig,
    ) -> Self {
        TmMachine::try_with_signature(workload, scheme, cfg, sig)
            .unwrap_or_else(|e| panic!("invalid TM workload: {e}"))
    }

    /// Fallible construction with an explicit signature configuration.
    pub fn try_with_signature(
        workload: &TmWorkload,
        scheme: Scheme,
        cfg: &SimConfig,
        sig: SignatureConfig,
    ) -> Result<Self, MachineError> {
        if workload.threads.is_empty() {
            return Err(MachineError::EmptyWorkload { machine: "tm" });
        }
        assert_eq!(
            sig.granularity(),
            bulk_sig::Granularity::Line,
            "the TM machine disambiguates at line granularity (Table 5); \
             word-level merging is exercised by the TLS machine"
        );
        let sig_config = sig.into_shared();
        let mut threads = Vec::with_capacity(workload.threads.len());
        for (i, t) in workload.threads.iter().enumerate() {
            t.validate(8).map_err(|source| MachineError::Trace { thread: i, source })?;
            threads.push(Thread {
                ops: t.ops.clone(),
                pc: 0,
                timer: CoreTimer::new(),
                cache: Cache::new(cfg.geom),
                depth: 0,
                tx_start_pc: 0,
                tx_start_cycle: 0,
                tx_serial: 0,
                commit_ordinal: 0,
                read_set: HashSet::new(),
                write_set: HashSet::new(),
                bdm: Bdm::new_shared(sig_config.clone(), cfg.geom, 2),
                version: None,
                sections: SectionStack::new(sig_config.clone()),
                section_starts: Vec::new(),
                exact_sections: Vec::new(),
                overflow: OverflowArea::new(),
                stalled_on: None,
                tx_squashes: 0,
                escalated: false,
                serialized: false,
                section_span: SpanId::DROPPED,
                done: t.ops.is_empty(),
            });
        }
        Ok(TmMachine {
            cfg: cfg.clone(),
            scheme,
            sig_arena: SignatureArena::new(sig_config.clone()),
            sig_config,
            threads,
            bus: Bus::new(),
            stats: TmStats::default(),
            squash_cap: DEFAULT_SQUASH_CAP,
            // The naive-eager baseline exists to demonstrate the Fig. 12(a)
            // livelock; escalation would paper over exactly that.
            escalation: if scheme == Scheme::EagerNaive {
                None
            } else {
                Some(DEFAULT_ESCALATION_THRESHOLD)
            },
            serial_token: None,
            chaos: None,
            audit: false,
            auditor: Auditor::off(),
            obs: None,
            commit_cause: SpanId::DROPPED,
            live: None,
        })
    }

    /// The shared signature configuration of this machine.
    pub fn signature_config(&self) -> &Arc<SignatureConfig> {
        &self.sig_config
    }

    /// Overrides the livelock safety cap (total squashes before the run is
    /// declared livelocked and stopped). Useful to demonstrate Fig. 12(a).
    pub fn set_squash_cap(&mut self, cap: u64) {
        self.squash_cap = cap;
    }

    /// Overrides the per-transaction escalation threshold (`None` disables
    /// the serialized fallback entirely).
    pub fn set_escalation_threshold(&mut self, threshold: Option<u64>) {
        self.escalation = threshold;
    }

    /// Attaches an observability bundle: all protocol steps are mirrored
    /// into metrics under the `tm.` prefix and into the shared event log,
    /// and every squash is attributed against the exact oracle.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        let robs = RuntimeObs::attach(obs, "tm.");
        for t in &mut self.threads {
            t.overflow.attach_obs(robs.overflow.clone());
        }
        self.obs = Some(robs);
    }

    /// Arms the chaos fault injector for this run. The run then becomes a
    /// pure function of (workload, scheme, config, `plan.seed()`).
    pub fn set_chaos(&mut self, plan: FaultPlan) {
        self.chaos = Some(plan);
        if self.audit {
            self.rebuild_auditor();
        }
    }

    /// Arms the liveness engine: squash-triggered backoff arbitration, the
    /// forward-progress watchdog, the failable commit arbiter (consulted by
    /// an armed chaos plan's `arbiter_crash` fault), and checkpoint
    /// verification at chaos context switches. Call *after*
    /// [`TmMachine::set_chaos`] so the backoff jitter inherits the chaos
    /// seed; with `cfg.seed == 0` and chaos armed, the chaos seed is used.
    pub fn enable_liveness(&mut self, mut cfg: LivenessConfig) {
        let chaos_seed = self.chaos.as_ref().map(|p| p.seed());
        if cfg.seed == 0 {
            cfg.seed = chaos_seed.unwrap_or(0);
        }
        self.live = Some(LivenessEngine::new(
            self.scheme.to_string(),
            self.threads.len(),
            cfg,
            chaos_seed,
        ));
    }

    /// Enables the runtime invariant auditor; violations are collected in
    /// [`TmStats::violations`] instead of panicking.
    pub fn enable_audit(&mut self) {
        self.audit = true;
        self.rebuild_auditor();
    }

    fn rebuild_auditor(&mut self) {
        let seed = self.chaos.as_ref().map(|p| p.seed());
        self.auditor = Auditor::new(self.scheme.to_string(), self.threads.len(), seed);
    }

    /// Runs the machine to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics on a typed machine error (see [`TmMachine::try_run`]).
    pub fn run(self) -> TmStats {
        self.try_run().unwrap_or_else(|e| panic!("TM run failed: {e}"))
    }

    /// Runs the machine to completion, surfacing machine-level failures
    /// (conflict deadlock, missing versions, malformed commit payloads) as
    /// typed errors rather than panics.
    pub fn try_run(mut self) -> Result<TmStats, MachineError> {
        loop {
            if self.stats.squashes >= self.squash_cap {
                self.stats.livelocked = true;
                break;
            }
            if self.live.as_ref().is_some_and(|l| l.tripped()) {
                // The watchdog tripped: the run cannot make progress, so it
                // aborts with a diagnosis instead of burning the squash cap.
                self.stats.livelocked = true;
                break;
            }
            let Some(tid) = self.pick_runnable()? else {
                break;
            };
            self.step(tid)?;
            if let Some(live) = &mut self.live {
                live.on_tick(self.threads[tid].timer.now());
                if self.threads[tid].done {
                    live.on_done(tid);
                }
            }
        }
        self.stats.cycles = self.threads.iter().map(|t| t.timer.now()).max().unwrap_or(0);
        self.stats.overflow_accesses =
            self.threads.iter().map(|t| t.overflow.accesses()).sum();
        if let Some(plan) = &mut self.chaos {
            self.stats.chaos = plan.take_stats();
        }
        // Fold the trace into the Fig. 13 cycle breakdown; conservation
        // failures become audited invariant violations (they must land
        // before the auditor is drained below).
        if let Some(obs) = &self.obs {
            let totals: Vec<u64> = self.threads.iter().map(|t| t.timer.now()).collect();
            let breakdown = obs.finish_cycle_accounting(&totals);
            if self.auditor.enabled() {
                for v in &breakdown.violations {
                    self.auditor.record(
                        InvariantKind::CycleConservation,
                        if v.actor == u32::MAX { 0 } else { v.actor as usize },
                        v.cycle,
                        v.detail.clone(),
                    );
                }
            }
        }
        self.stats.audit_checks = self.auditor.checks();
        self.stats.violations = self.auditor.take_violations();
        if let Some(live) = &mut self.live {
            self.stats.liveness = live.stats();
            self.stats.liveness_violations = live.take_violations();
            if let Some(obs) = &self.obs {
                for v in &self.stats.liveness_violations {
                    obs.on_watchdog_trip(
                        v.thread.unwrap_or(0) as u32,
                        v.cycle,
                        v.kind.as_str(),
                    );
                }
            }
        }
        Ok(self.stats)
    }

    /// Token-protocol invariant check: under audit a breach becomes a
    /// structured [`InvariantKind::TokenProtocol`] report (so release-mode
    /// chaos soaks catch it); otherwise it stays the `debug_assert!` it
    /// used to be.
    fn check_token_protocol(&mut self, ok: bool, thread: usize, cycle: u64, detail: &str) {
        if ok {
            return;
        }
        if self.auditor.enabled() {
            self.auditor.record(InvariantKind::TokenProtocol, thread, cycle, detail.to_string());
        } else {
            debug_assert!(false, "{detail}");
        }
    }

    fn pick_runnable(&mut self) -> Result<Option<usize>, MachineError> {
        // A serialized (escalated) transaction runs under global exclusion:
        // while the token is held, only the holder is scheduled.
        if let Some(k) = self.serial_token {
            if self.threads[k].done {
                let cycle = self.threads[k].timer.now();
                self.check_token_protocol(
                    false,
                    k,
                    cycle,
                    "serial token held by a finished thread",
                );
                // Recover: release the orphaned token so the run can finish.
                self.serial_token = None;
            } else {
                return Ok(Some(k));
            }
        }
        let mut best: Option<(u64, usize)> = None;
        let mut any_not_done = false;
        for (i, t) in self.threads.iter().enumerate() {
            if t.done {
                continue;
            }
            any_not_done = true;
            if let Some((blocker, serial)) = t.stalled_on {
                let b = &self.threads[blocker];
                if b.tx_serial == serial && b.in_tx() && !b.done {
                    continue; // still blocked
                }
            }
            let key = (t.timer.now(), i);
            if best.is_none_or(|(bt, bi)| key < (bt, bi)) {
                best = Some((t.timer.now(), i));
            }
        }
        let picked = best.map(|(_, i)| i);
        if picked.is_none() && any_not_done {
            let cycle = self.threads.iter().map(|t| t.timer.now()).max().unwrap_or(0);
            return Err(MachineError::ConflictDeadlock { cycle });
        }
        Ok(picked)
    }

    fn step(&mut self, tid: usize) -> Result<(), MachineError> {
        // A resuming thread re-checks its op with stall cleared.
        if let Some((blocker, _)) = self.threads[tid].stalled_on {
            let release = self.threads[blocker].timer.now();
            let t = &mut self.threads[tid];
            t.stalled_on = None;
            let pre = t.timer.now();
            t.timer.wait_until(release);
            if release > pre {
                if let Some(obs) = &self.obs {
                    obs.span_complete(tid as u32, SpanKind::Stall, pre, release, blocker as u64);
                }
            }
        }
        if self.chaos.is_some() {
            self.chaos_perturb(tid);
        }
        let op = self.threads[tid].ops[self.threads[tid].pc];
        match op {
            TmOp::Compute(n) => {
                self.threads[tid].timer.compute(u64::from(n), &self.cfg);
                self.threads[tid].pc += 1;
            }
            TmOp::Begin => self.op_begin(tid),
            TmOp::End => self.op_end(tid)?,
            TmOp::Read(a) => self.op_read(tid, a)?,
            TmOp::Write(a) => self.op_write(tid, a)?,
        }
        self.auditor.observe_clock(tid, self.threads[tid].timer.now());
        if self.threads[tid].pc >= self.threads[tid].ops.len() {
            self.threads[tid].done = true;
            debug_assert!(!self.threads[tid].in_tx(), "trace ended inside a transaction");
        }
        Ok(())
    }

    /// Chaos hook, consulted once per scheduled operation: forced context
    /// switches (spill + reload of the running version's signatures,
    /// §6.2.2) and forced cache evictions (overflow pressure).
    fn chaos_perturb(&mut self, tid: usize) {
        let Some(plan) = &mut self.chaos else { return };
        if plan.force_context_switch() {
            let cycles = plan.config().ctx_switch_cycles;
            let t = &mut self.threads[tid];
            let pre = t.timer.now();
            t.timer.advance(cycles);
            if let Some(obs) = &self.obs {
                obs.on_ctx_switch(tid as u32, t.timer.now());
                obs.span_complete(tid as u32, SpanKind::CtxSwitch, pre, t.timer.now(), 0);
            }
            if let Some(v) = t.version.take() {
                // The OS preempts mid-transaction: signatures spill to
                // memory and reload when the thread is rescheduled.
                let spilled = t.bdm.spill_version(v);
                if self.live.is_some() {
                    // Crash-consistent restore: checkpoint the spilled state
                    // (+ overflow area), reload, re-spill, and prove the
                    // round trip bit-faithful before the thread resumes — a
                    // torn restore would run against signatures that no
                    // longer cover the thread's footprint (Set Restriction
                    // hazard).
                    let ckpt = Checkpoint::capture(spilled, t.overflow.snapshot_lines());
                    match ckpt.restore_into(&mut t.bdm, &t.overflow.snapshot_lines()) {
                        Ok(v3) => {
                            t.bdm.set_running(Some(v3));
                            t.version = Some(v3);
                            if let Some(live) = &mut self.live {
                                live.note_checkpoint(true);
                            }
                        }
                        Err(e) => {
                            // The thread cannot resume against torn or
                            // unreloadable state: surface a typed
                            // checkpoint-restore violation (with replay
                            // seed) and leave the thread without a running
                            // version — the next operation that needs one
                            // yields a typed MissingVersion error instead
                            // of this site panicking.
                            let now = t.timer.now();
                            if let Some(live) = &mut self.live {
                                live.report_checkpoint_failure(tid, now, e.to_string());
                            }
                        }
                    }
                    if let Some(obs) = &self.obs {
                        obs.on_checkpoint();
                        let now = t.timer.now();
                        obs.span_complete(tid as u32, SpanKind::Checkpoint, now, now, 0);
                    }
                } else {
                    match t.bdm.reload_version(spilled) {
                        Ok(v2) => {
                            t.bdm.set_running(Some(v2));
                            t.version = Some(v2);
                        }
                        // No free slot to reload into (cannot happen — the
                        // spill just freed one — but a typed dead thread
                        // beats a panic): the next operation that needs the
                        // version reports MissingVersion.
                        Err(_) => t.version = None,
                    }
                }
            }
        }
        let Some(plan) = &mut self.chaos else { return };
        if plan.force_eviction() {
            let t = &self.threads[tid];
            let mut resident: Vec<(LineAddr, bool)> =
                t.cache.iter().map(|l| (l.addr(), l.is_dirty())).collect();
            // Sort so the pick is a function of the cache *contents*, not of
            // the sets' internal order (which depends on the hash-ordered
            // invalidation history and differs run to run).
            resident.sort_unstable();
            if !resident.is_empty() {
                let plan = self.chaos.as_mut().expect("plan present");
                let (victim, dirty) = resident[plan.pick(resident.len())];
                self.threads[tid].cache.invalidate(victim);
                if dirty {
                    self.handle_dirty_victim(tid, victim);
                }
            }
        }
    }

    /// The running version of `tid`, or a typed error naming the protocol
    /// step that required it.
    fn version_of(&self, tid: usize, context: &'static str) -> Result<VersionId, MachineError> {
        self.threads[tid].version.ok_or(MachineError::MissingVersion {
            thread: tid,
            pc: self.threads[tid].pc,
            context,
        })
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    fn op_begin(&mut self, tid: usize) {
        let partial = self.scheme == Scheme::BulkPartial;
        if self.threads[tid].escalated && self.threads[tid].depth == 0 {
            // Graceful degradation: after repeated squashes this transaction
            // re-executes non-speculatively under global exclusion — it can
            // no longer be squashed, so it is guaranteed to finish.
            let ok = self.serial_token.is_none();
            let now = self.threads[tid].timer.now();
            self.check_token_protocol(ok, tid, now, "serial token double-granted at Begin");
            self.serial_token = Some(tid);
            let t = &mut self.threads[tid];
            t.serialized = true;
            t.tx_serial += 1;
            t.tx_start_pc = t.pc;
            t.tx_start_cycle = t.timer.now();
            if let Some(obs) = &self.obs {
                t.section_span =
                    obs.span_begin(tid as u32, SpanKind::Section, t.tx_start_cycle, t.tx_serial);
            }
            t.read_set.clear();
            t.write_set.clear();
            t.sections.clear();
            t.section_starts.clear();
            t.exact_sections.clear();
            if let Some(v) = t.version.take() {
                t.bdm.set_running(None);
                t.bdm.free_version(v);
            }
            t.depth += 1;
            t.pc += 1;
            return;
        }
        let t = &mut self.threads[tid];
        if t.serialized {
            // Nested Begin inside a serialized transaction: flat, nothing
            // speculative to track.
            t.depth += 1;
            t.pc += 1;
            return;
        }
        if t.depth == 0 {
            t.tx_serial += 1;
            t.tx_start_pc = t.pc;
            t.tx_start_cycle = t.timer.now();
            if let Some(obs) = &self.obs {
                t.section_span =
                    obs.span_begin(tid as u32, SpanKind::Section, t.tx_start_cycle, t.tx_serial);
            }
            t.read_set.clear();
            t.write_set.clear();
            if self.scheme.uses_signatures() {
                if let Some(v) = t.version.take() {
                    t.bdm.free_version(v);
                }
                let v = t.bdm.alloc_version().expect("fresh BDM slot");
                t.bdm.set_running(Some(v));
                t.version = Some(v);
            }
            if partial {
                t.sections.clear();
                t.sections.begin_section();
                t.section_starts = vec![t.pc + 1];
                t.exact_sections = vec![Default::default()];
            }
        } else if partial {
            t.sections.begin_section();
            t.section_starts.push(t.pc + 1);
            t.exact_sections.push(Default::default());
        }
        t.depth += 1;
        t.pc += 1;
    }

    fn op_end(&mut self, tid: usize) -> Result<(), MachineError> {
        let partial = self.scheme == Scheme::BulkPartial && !self.threads[tid].serialized;
        let t = &mut self.threads[tid];
        debug_assert!(t.depth > 0, "End without Begin");
        t.depth -= 1;
        if t.depth > 0 {
            // Closed-nesting inner commit: nothing becomes visible; a new
            // section starts (paper Fig. 8 section 3).
            if partial {
                t.sections.begin_section();
                t.section_starts.push(t.pc + 1);
                t.exact_sections.push(Default::default());
            }
            t.pc += 1;
        } else if t.serialized {
            self.serialized_commit(tid);
            self.threads[tid].pc += 1;
        } else {
            self.commit(tid)?;
            self.threads[tid].pc += 1;
        }
        Ok(())
    }

    /// Appends one entry to the committed history (the cross-runtime
    /// conformance record): the committing thread, its per-thread commit
    /// ordinal, and the finish cycle.
    fn push_commit_event(&mut self, tid: usize, finish: u64) {
        let ordinal = self.threads[tid].commit_ordinal;
        self.threads[tid].commit_ordinal += 1;
        self.stats.history.push(CommitEvent { thread: tid as u32, ordinal, at: finish });
    }

    /// Commit of a serialized (escalated) transaction: its stores already
    /// propagated as ordinary coherence traffic, so commit only arbitrates
    /// for the bus (keeping the global commit order total) and releases
    /// the serial token.
    fn serialized_commit(&mut self, tid: usize) {
        let now = self.threads[tid].timer.now();
        let start = self.bus.acquire(now, self.cfg.commit_arb);
        let finish = start + self.cfg.commit_arb;
        self.threads[tid].timer.wait_until(finish);
        if let Some(obs) = &self.obs {
            let sec = self.threads[tid].section_span;
            obs.span_end(sec, now);
            obs.span_outcome(sec, SpanOutcome::Useful);
            let c = obs.span_child(tid as u32, SpanKind::Commit, now, 0, sec);
            obs.span_end(c, finish);
            self.threads[tid].section_span = SpanId::DROPPED;
        }
        self.stats.commits += 1;
        self.stats.serialized_commits += 1;
        self.push_commit_event(tid, finish);
        self.auditor.observe_commit(tid, finish);
        let t = &mut self.threads[tid];
        t.serialized = false;
        t.escalated = false;
        t.tx_squashes = 0;
        t.tx_serial += 1; // releases threads stalled on this transaction
        t.overflow.discard();
        let ok = self.serial_token == Some(tid);
        self.check_token_protocol(ok, tid, finish, "serialized commit without the serial token");
        self.serial_token = None;
        if let Some(live) = &mut self.live {
            live.on_commit(tid, finish);
        }
        self.audit_state(finish);
    }

    fn op_read(&mut self, tid: usize, a: Addr) -> Result<(), MachineError> {
        let line = a.line(self.cfg.geom.line_bytes());
        if self.threads[tid].serialized {
            // A serialized transaction reads non-speculatively: no read set,
            // no signature, no conflict checks — the serial token already
            // guarantees atomicity. Speculative dirty copies elsewhere are
            // nacked by `neighbor_has`, so it reads committed state.
            let in_neighbor = self.neighbor_has(tid, line);
            let mut bw = std::mem::take(&mut self.stats.bw);
            let t = &mut self.threads[tid];
            let acc = t.timer.load(&mut t.cache, line, in_neighbor, &self.cfg, &mut bw);
            self.stats.bw = bw;
            if let Some(victim) = acc.writeback {
                self.handle_dirty_victim(tid, victim);
            }
            self.threads[tid].pc += 1;
            return Ok(());
        }
        // Eager RAW conflict: reading a line speculatively written elsewhere.
        if self.scheme.is_eager() {
            let conflicting: Vec<usize> = self
                .other_tx_threads(tid)
                .into_iter()
                .filter(|&j| self.threads[j].write_set.contains(&line))
                .collect();
            if !self.resolve_eager_conflicts(tid, &conflicting, line) {
                return Ok(()); // stalled; retry this op later
            }
        }
        let in_tx = self.threads[tid].in_tx();
        let in_neighbor = self.neighbor_has(tid, line);
        let mut bw = std::mem::take(&mut self.stats.bw);
        let t = &mut self.threads[tid];
        let acc = t.timer.load(&mut t.cache, line, in_neighbor, &self.cfg, &mut bw);
        self.stats.bw = bw;
        if let Some(victim) = acc.writeback {
            self.handle_dirty_victim(tid, victim);
        }
        if in_tx {
            let v = if self.scheme.uses_signatures() {
                Some(self.version_of(tid, "transactional load")?)
            } else {
                None
            };
            let t = &mut self.threads[tid];
            t.read_set.insert(line);
            if let Some(v) = v {
                t.bdm.record_load(v, a);
                if self.scheme == Scheme::BulkPartial {
                    t.sections.record_load(a);
                    t.exact_sections.last_mut().expect("open section").0.insert(line);
                }
            }
            if !acc.hit {
                self.consult_overflow(tid, a, line);
            }
        }
        self.threads[tid].pc += 1;
        Ok(())
    }

    fn op_write(&mut self, tid: usize, a: Addr) -> Result<(), MachineError> {
        let line = a.line(self.cfg.geom.line_bytes());
        if !self.threads[tid].in_tx() || self.threads[tid].serialized {
            // A serialized transaction's store is an ordinary coherent
            // store: it propagates an individual invalidation, which may
            // squash speculative readers — exactly the paper's
            // non-transactional-write rule (§4.2).
            self.non_tx_write(tid, a, line);
            return Ok(());
        }
        // Eager conflict: writing a line another in-flight tx read/wrote.
        if self.scheme.is_eager() {
            let conflicting: Vec<usize> = self
                .other_tx_threads(tid)
                .into_iter()
                .filter(|&j| self.threads[j].exact_union_contains(line))
                .collect();
            if !self.resolve_eager_conflicts(tid, &conflicting, line) {
                return Ok(()); // stalled
            }
            // The eager store itself propagates an invalidation.
            if !self.threads[tid].write_set.contains(&line) {
                self.stats.bw.record(MsgClass::Inv, self.cfg.msg_sizes.addr_msg);
                self.invalidate_in_others(tid, line);
            }
        }
        // Set Restriction enforcement (Bulk schemes).
        if self.scheme.uses_signatures() {
            let v = self.version_of(tid, "speculative store check")?;
            let t = &self.threads[tid];
            match check_speculative_store(&t.bdm, v, a, &t.cache) {
                StoreCheck::Proceed { safe_writebacks } => {
                    let n = safe_writebacks.len() as u64;
                    let t = &mut self.threads[tid];
                    for wb in safe_writebacks {
                        t.cache.mark_clean(wb);
                    }
                    self.stats.safe_writebacks += n;
                    self.stats.bw.record(MsgClass::Wb, n * self.cfg.msg_sizes.line_msg);
                }
                StoreCheck::ConflictWithPreempted => {
                    // Cannot occur with one transaction per processor; kept
                    // for the multi-version TLS runtime.
                    unreachable!("TM machine runs one version per processor");
                }
            }
        }
        let in_neighbor = self.neighbor_has(tid, line);
        let mut bw = std::mem::take(&mut self.stats.bw);
        let t = &mut self.threads[tid];
        let acc = t.timer.store(&mut t.cache, line, in_neighbor, &self.cfg, &mut bw);
        self.stats.bw = bw;
        if let Some(victim) = acc.writeback {
            self.handle_dirty_victim(tid, victim);
        }
        let v = if self.scheme.uses_signatures() {
            Some(self.version_of(tid, "speculative store")?)
        } else {
            None
        };
        let t = &mut self.threads[tid];
        t.write_set.insert(line);
        if let Some(v) = v {
            t.bdm.record_store(v, a);
            if self.scheme == Scheme::BulkPartial {
                t.sections.record_store(a);
                t.exact_sections.last_mut().expect("open section").1.insert(line);
            }
        }
        t.pc += 1;
        Ok(())
    }

    /// A non-transactional store: updates this cache and sends an
    /// individual invalidation that may squash speculative threads
    /// (paper §4.2 last paragraph).
    fn non_tx_write(&mut self, tid: usize, a: Addr, line: LineAddr) {
        self.stats.individual_invalidations += 1;
        self.stats.bw.record(MsgClass::Inv, self.cfg.msg_sizes.addr_msg);
        // Single-address probe signature, recycled through the arena (this
        // runs once per non-transactional store, not per receiver).
        let probe = if self.scheme == Scheme::BulkPartial {
            let mut p = self.sig_arena.take();
            p.insert_addr(a);
            Some(p)
        } else {
            None
        };
        let victims: Vec<usize> = self
            .other_tx_threads(tid)
            .into_iter()
            .filter(|&j| {
                let o = &self.threads[j];
                if self.scheme.uses_signatures() {
                    match &probe {
                        Some(p) => o.sections.disambiguate(p).is_some(),
                        None => match o.version {
                            Some(v) => o.bdm.disambiguate_addr(v, a),
                            None => false,
                        },
                    }
                } else {
                    o.exact_union_contains(line)
                }
            })
            .collect();
        if let Some(p) = probe {
            self.sig_arena.give(p);
        }
        let now = self.threads[tid].timer.now();
        if let Some(obs) = &self.obs {
            if !victims.is_empty() {
                // A non-speculative store squashes via an individual
                // invalidation rather than a commit broadcast; its span
                // is the cause the victims' squash spans link back to.
                let inv = obs.span_complete(tid as u32, SpanKind::Invalidate, now, now, 1);
                self.commit_cause = inv;
            }
        }
        for j in victims {
            let truly = self.threads[j].exact_union_contains(line);
            self.squash_thread(j, now, truly, if truly { 1 } else { 0 }, Some(tid));
        }
        self.commit_cause = SpanId::DROPPED;
        self.invalidate_in_others(tid, line);
        let in_neighbor = self.neighbor_has(tid, line);
        let mut bw = std::mem::take(&mut self.stats.bw);
        let t = &mut self.threads[tid];
        let acc = t.timer.store(&mut t.cache, line, in_neighbor, &self.cfg, &mut bw);
        self.stats.bw = bw;
        if let Some(victim) = acc.writeback {
            self.handle_dirty_victim(tid, victim);
        }
        self.threads[tid].pc += 1;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self, tid: usize) -> Result<(), MachineError> {
        let exact_w: HashSet<LineAddr> = self.threads[tid].write_set.clone();
        let scheme = self.scheme;
        // The speculative section ends here; everything from this point
        // to bus-finish (denied-retry backoff included) is commit time.
        let sec_end = self.threads[tid].timer.now();

        // Chaos: the arbiter may deny the commit request a bounded number
        // of times; the committer retries with exponential backoff.
        let mut attempt = 0u32;
        loop {
            let Some(plan) = self.chaos.as_mut() else { break };
            let Some(backoff) = plan.deny_commit(attempt) else { break };
            self.stats.commit_retries += 1;
            self.threads[tid].timer.advance(backoff);
            attempt += 1;
        }

        // Broadcast payload and bus occupancy.
        let (payload_bytes, mut msg) = match scheme {
            Scheme::EagerNaive | Scheme::Eager => (0u64, CommitMsg::AddressList),
            Scheme::Lazy => {
                (exact_w.len() as u64 * self.cfg.msg_sizes.addr_msg, CommitMsg::AddressList)
            }
            Scheme::Bulk => {
                let v = self.version_of(tid, "bulk commit")?;
                let w = self.sig_arena.clone_of(self.threads[tid].bdm.write_signature(v));
                (w.compressed_size_bits().div_ceil(8), CommitMsg::signatures(w))
            }
            Scheme::BulkPartial => {
                let w = self.threads[tid].sections.commit_union_with(&mut self.sig_arena);
                (w.compressed_size_bits().div_ceil(8), CommitMsg::signatures(w))
            }
        };

        // Chaos: in-flight bit flips, broadcast delay, duplication.
        let (delay, duplicate) = match self.chaos.as_mut() {
            Some(plan) => {
                plan.maybe_corrupt(&mut msg);
                (plan.broadcast_delay(), plan.duplicate_broadcast())
            }
            None => (0, false),
        };

        let now = self.threads[tid].timer.now();
        let duration = self.cfg.commit_arb
            + if scheme.is_eager() { 0 } else { self.cfg.broadcast_cycles(payload_bytes) }
            + delay;
        let start = self.bus.acquire(now, duration);
        let mut finish = start + duration;
        if !scheme.is_eager() {
            self.stats.bw.record_commit(payload_bytes, &self.cfg.msg_sizes);
        }

        // Delivery: receivers CRC-check signature payloads. A detected
        // corruption is nacked and retransmitted from the committer's
        // pristine copy — costing bus time, never correctness.
        let delivered = msg.deliver();
        if let Some(d) = &delivered {
            if d.corruption_detected {
                let retransmit = self
                    .chaos
                    .as_ref()
                    .map_or(0, |p| p.config().retransmit_cycles);
                let restart = self.bus.acquire(finish, retransmit);
                finish = restart + retransmit;
                self.stats.bw.record_commit(payload_bytes, &self.cfg.msg_sizes);
            }
            if let Some(plan) = self.chaos.as_mut() {
                plan.note_delivery(d.corruption_detected, d.silent_corruption);
            }
            if d.silent_corruption {
                self.auditor.record(
                    InvariantKind::UndetectedCorruption,
                    tid,
                    finish,
                    "corrupted commit signature passed its CRC".to_string(),
                );
            }
        }

        // Liveness: the commit arbiter itself can crash mid-broadcast
        // (chaos `arbiter_crash` fault, consulted only when a liveness
        // engine is armed). The new epoch's arbiter replays the in-flight
        // broadcast; receivers dedup it by (committer, serial) ticket so a
        // committed-but-unacked W_C is never applied twice.
        let ticket = self
            .live
            .as_ref()
            .map(|l| l.ticket(tid, self.threads[tid].tx_serial));
        let mut replay_rounds = 0u32;
        if self.live.is_some() {
            // The replay itself can be hit by another crash
            // (crash-during-replay): keep consulting the fault plan, one
            // re-election and one extra replay round per crash, up to the
            // plan's per-broadcast bound so recovery always terminates.
            let crash_cap = self
                .chaos
                .as_ref()
                .map_or(0, |plan| plan.config().max_crashes_per_broadcast);
            while replay_rounds < crash_cap
                && self.chaos.as_mut().is_some_and(|plan| plan.arbiter_crash())
            {
                let live = self.live.as_mut().expect("liveness armed");
                let reelect = live.arbiter_crash();
                // Re-election occupies the bus (no broadcast can proceed while
                // the arbiter lease times out), keeping commit order total.
                let restart = self.bus.acquire(finish, reelect);
                finish = restart + reelect;
                replay_rounds += 1;
                if let Some(obs) = &self.obs {
                    obs.on_arbiter_failover(tid as u32, finish, live.epoch());
                }
            }
        }
        self.threads[tid].timer.wait_until(finish);

        self.stats.commits += 1;
        self.push_commit_event(tid, finish);
        if let Some(obs) = &self.obs {
            // Latency: end of the speculative section to broadcast
            // completion — arbitration, failover replays and bus occupancy
            // all included.
            obs.on_commit(
                tid as u32,
                finish,
                payload_bytes,
                exact_w.len() as u64,
                finish.saturating_sub(sec_end),
            );
            let sec = self.threads[tid].section_span;
            obs.span_end(sec, sec_end);
            obs.span_outcome(sec, SpanOutcome::Useful);
            let c = obs.span_child(tid as u32, SpanKind::Commit, sec_end, exact_w.len() as u64, sec);
            obs.span_end(c, finish);
            self.threads[tid].section_span = SpanId::DROPPED;
            // Receiver-side squashes and bulk invalidations triggered by
            // this broadcast link back to its commit span.
            self.commit_cause = c;
        }
        self.stats.rd_set_lines += self.threads[tid].read_set.len() as u64;
        self.stats.wr_set_lines += self.threads[tid].write_set.len() as u64;

        // Lazy-style commit makes the write set globally visible, pushing
        // the committed data out of the L1 (TCC-style); the cache stays
        // largely clean, as the paper's low Safe-WB rates imply.
        if !scheme.is_eager() {
            let dirty: Vec<LineAddr> = exact_w
                .iter()
                .filter(|l| {
                    self.threads[tid].cache.state_of(**l)
                        == Some(bulk_mem::LineState::Dirty)
                })
                .copied()
                .collect();
            let n = dirty.len() as u64;
            for l in dirty {
                self.threads[tid].cache.mark_clean(l);
            }
            self.stats.bw.record(MsgClass::Wb, n * self.cfg.msg_sizes.line_msg);
        }

        // Receivers. A chaos-duplicated broadcast is delivered twice, and a
        // post-failover arbiter replays the in-flight broadcast once more.
        // Without a liveness engine the second delivery relies on being
        // idempotent (squashed receivers are no longer in a transaction,
        // invalidations are idempotent); with one, receivers dedup by
        // ticket and drop every delivery after the first.
        let rounds = if duplicate { 2 } else { 1 } + replay_rounds;
        for _ in 0..rounds {
            if let (Some(live), Some(tk)) = (self.live.as_mut(), ticket) {
                if !live.admit(tk) {
                    if let Some(obs) = &self.obs {
                        obs.on_dedup_drop();
                    }
                    continue;
                }
            }
            for j in self.other_indices(tid) {
                self.receive_commit(j, tid, &exact_w, delivered.as_ref(), finish)?;
            }
            if let (Some(live), Some(tk)) = (self.live.as_mut(), ticket) {
                live.record_application(tk);
            }
        }
        self.commit_cause = SpanId::DROPPED;

        // The delivered (wire) signatures are dead now — recycle their
        // buffers for the next broadcast.
        if let Some(d) = delivered {
            self.sig_arena.give(d.w);
            if let Some(sh) = d.w_sh {
                self.sig_arena.give(sh);
            }
        }

        // Committer cleanup: the paper's clear-a-signature commit. The
        // broadcast copy was already taken above, so just clear the slot.
        let t = &mut self.threads[tid];
        if let Some(v) = t.version.take() {
            t.bdm.clear_version(v);
            t.bdm.free_version(v);
        }
        t.sections.clear();
        t.section_starts.clear();
        t.exact_sections.clear();
        t.read_set.clear();
        t.write_set.clear();
        t.depth = 0;
        t.tx_serial += 1; // releases stalled threads
        t.tx_squashes = 0; // the transaction finished; escalation pressure resets
        t.escalated = false;
        // Overflow area at commit: the spilled lines are already in
        // memory, so Bulk simply forgets the area; a conventional lazy
        // scheme walks it to fold the data into architectural state.
        match scheme {
            Scheme::Lazy => t.overflow.deallocate(true),
            _ => t.overflow.discard(),
        }

        self.auditor.observe_commit(tid, finish);
        if let Some(live) = &mut self.live {
            live.on_commit(tid, finish);
        }
        if self.auditor.enabled() {
            // Serializability: every surviving speculative transaction must
            // be conflict-free with the committed write set — anything else
            // should have been squashed or rolled back above.
            for j in self.other_indices(tid) {
                let o = &self.threads[j];
                if !o.speculative() {
                    continue;
                }
                if let Some(l) = exact_w
                    .iter()
                    .find(|l| o.read_set.contains(l) || o.write_set.contains(l))
                {
                    let detail = format!(
                        "thread {j} survived a commit by thread {tid} that overlaps \
                         its exact sets at line {l}"
                    );
                    self.auditor.record(InvariantKind::Serializability, j, finish, detail);
                }
            }
            self.audit_state(finish);
        }
        Ok(())
    }

    fn receive_commit(
        &mut self,
        j: usize,
        committer: usize,
        exact_w: &HashSet<LineAddr>,
        delivered: Option<&DeliveredSignatures>,
        finish: u64,
    ) -> Result<(), MachineError> {
        let in_tx = self.threads[j].in_tx();
        let exact_conflict = in_tx && {
            let o = &self.threads[j];
            exact_w.iter().any(|l| o.read_set.contains(l) || o.write_set.contains(l))
        };

        match self.scheme {
            Scheme::EagerNaive | Scheme::Eager => {
                // Conflicts were handled at access time; any residue (from
                // interleaving approximation) is squashed here for safety.
                if exact_conflict {
                    let dep = self.exact_dep_size(j, exact_w);
                    self.squash_thread(j, finish, true, dep, Some(committer));
                } else {
                    self.invalidate_lines_exact(j, exact_w);
                }
            }
            Scheme::Lazy => {
                if exact_conflict {
                    let dep = self.exact_dep_size(j, exact_w);
                    self.squash_thread(j, finish, true, dep, Some(committer));
                } else {
                    self.invalidate_lines_exact(j, exact_w);
                    // A conventional lazy scheme must also disambiguate the
                    // commit against its overflowed addresses in memory.
                    if in_tx && !self.threads[j].overflow.is_empty() {
                        let lines: Vec<LineAddr> = exact_w.iter().copied().collect();
                        let walked = self.threads[j].overflow.len() as u64;
                        let _ = self.threads[j].overflow.disambiguate_walk(lines.iter());
                        self.stats
                            .bw
                            .record(MsgClass::Ub, walked * self.cfg.msg_sizes.addr_msg);
                    }
                }
            }
            Scheme::Bulk => {
                let Some(d) = delivered else {
                    return Err(MachineError::MalformedCommit {
                        scheme: "Bulk",
                        payload: "address-list",
                    });
                };
                let w = &d.w;
                // The signature came off the wire: a config mismatch is a
                // malformed commit, not a machine panic.
                let sig_conflict = if in_tx {
                    let o = &self.threads[j];
                    match o.version {
                        Some(v) => o
                            .bdm
                            .try_disambiguate(v, w)
                            .map_err(|_| MachineError::MalformedCommit {
                                scheme: "Bulk",
                                payload: "mismatched-signature-config",
                            })?
                            .squash(),
                        None => false,
                    }
                } else {
                    false
                };
                self.check_no_false_negative(j, exact_conflict, sig_conflict, finish);
                if in_tx {
                    if let Some(obs) = &self.obs {
                        obs.verdicts.record(sig_conflict, exact_conflict);
                    }
                }
                if sig_conflict {
                    let dep = self.exact_dep_size(j, exact_w);
                    self.squash_thread(j, finish, exact_conflict, dep, Some(committer));
                } else {
                    self.bulk_apply_commit(j, committer, w, exact_w, finish);
                }
            }
            Scheme::BulkPartial => {
                let Some(d) = delivered else {
                    return Err(MachineError::MalformedCommit {
                        scheme: "Bulk-Partial",
                        payload: "address-list",
                    });
                };
                let w = &d.w;
                let violated = if in_tx {
                    self.threads[j].sections.try_disambiguate(w).map_err(|_| {
                        MachineError::MalformedCommit {
                            scheme: "Bulk-Partial",
                            payload: "mismatched-signature-config",
                        }
                    })?
                } else {
                    None
                };
                self.check_no_false_negative(j, exact_conflict, violated.is_some(), finish);
                if in_tx {
                    if let Some(obs) = &self.obs {
                        obs.verdicts.record(violated.is_some(), exact_conflict);
                    }
                }
                match violated {
                    Some(0) => {
                        // Violation in the first section: full restart.
                        let dep = self.exact_dep_size(j, exact_w);
                        self.squash_thread(j, finish, exact_conflict, dep, Some(committer));
                    }
                    Some(sec) => {
                        self.partial_rollback(j, sec, finish, exact_conflict);
                    }
                    None => {
                        self.bulk_apply_commit(j, committer, w, exact_w, finish);
                    }
                }
            }
        }
        Ok(())
    }

    /// A signature disambiguation that misses a real (exact-set) conflict
    /// is a false negative — the one failure signatures must never have
    /// (§3). Under audit it becomes a structured report; otherwise it is
    /// a debug assertion, as before.
    fn check_no_false_negative(&mut self, j: usize, exact: bool, sig: bool, cycle: u64) {
        if exact && !sig {
            if self.auditor.enabled() {
                self.auditor.record(
                    InvariantKind::SignatureContainment,
                    j,
                    cycle,
                    "signature disambiguation missed an exact-set conflict \
                     (false negative)"
                        .to_string(),
                );
            } else {
                debug_assert!(false, "signature false negative");
            }
        }
    }

    fn bulk_apply_commit(
        &mut self,
        j: usize,
        _committer: usize,
        w: &Signature,
        exact_w: &HashSet<LineAddr>,
        finish: u64,
    ) {
        let exp = self.obs.as_ref().map(|o| o.expansion.clone());
        let t = &mut self.threads[j];
        let app = flows::apply_remote_commit_observed(&t.bdm, w, &mut t.cache, exp.as_ref());
        let false_inv = app
            .invalidated
            .iter()
            .filter(|l| !exact_w.contains(l))
            .count() as u64;
        self.stats.false_invalidations += false_inv;
        if let Some(obs) = &self.obs {
            let lines = app.invalidated.len() as u64;
            obs.on_bulk_invalidate(j as u32, finish, lines, lines - false_inv);
            if lines > 0 {
                let inv = obs.span_complete(j as u32, SpanKind::BulkInvalidate, finish, finish, lines);
                obs.span_link(self.commit_cause, inv);
            }
        }
        debug_assert!(app.merged.is_empty(), "line-grain TM signatures never merge");
    }

    fn partial_rollback(&mut self, j: usize, sec: usize, at: u64, truly: bool) {
        self.stats.partial_rollbacks += 1;
        if !truly {
            self.stats.false_squashes += 1;
        }
        let pre = self.threads[j].timer.now();
        let t = &mut self.threads[j];
        self.stats.sections_rolled_back += (t.sections.depth() - sec) as u64;
        // Discard the rolled-back sections' dirty lines. The union buffer
        // comes from (and returns to) the arena — rollbacks ride the same
        // hot broadcast path as commits.
        let w_rolled = t.sections.write_union_from_with(sec, &mut self.sig_arena);
        for e in w_rolled.expand(&t.cache) {
            if e.state == bulk_mem::LineState::Dirty {
                t.cache.invalidate(e.addr);
            }
        }
        self.sig_arena.give(w_rolled);
        let t = &mut self.threads[j];
        t.sections.rollback_to(sec);
        t.section_starts.truncate(sec + 1);
        // Rebuild the exact oracle sets from the surviving sections.
        t.exact_sections.truncate(sec);
        t.exact_sections.push(Default::default());
        t.read_set = t.exact_sections.iter().flat_map(|(r, _)| r.iter().copied()).collect();
        t.write_set = t.exact_sections.iter().flat_map(|(_, w)| w.iter().copied()).collect();
        t.pc = t.section_starts[sec];
        // Re-entering mid-transaction keeps depth consistent with the
        // section structure: sections after `sec` came from deeper or later
        // nesting; recompute depth by replaying is unnecessary because the
        // restart point records it implicitly — the ops from `pc` onward
        // re-execute their own Begin/End pairs. Depth at a section start
        // equals 1 + number of unmatched Begins before it; we conservatively
        // recompute it here.
        t.depth = depth_at(&t.ops, t.pc, t.tx_start_pc);
        t.timer.wait_until(at);
        t.timer.advance(self.cfg.squash_overhead);
        if let Some(obs) = &self.obs {
            // The section span stays open: the transaction is still live,
            // only its tail sections re-execute.
            let post = self.threads[j].timer.now();
            let sq = obs.span_complete(j as u32, SpanKind::Squash, pre, post, sec as u64);
            obs.span_link(self.commit_cause, sq);
        }
        self.audit_state(at);
    }

    /// Squashes thread `j` at cycle `at`. `by` is the squasher (the
    /// committing or storing thread), fed to the liveness watchdog to
    /// detect ping-pong cycles; `truly` is the exact-oracle verdict.
    fn squash_thread(&mut self, j: usize, at: u64, truly: bool, dep: u64, by: Option<usize>) {
        self.stats.squashes += 1;
        if truly {
            self.stats.dep_set_lines += dep;
            self.stats.dep_samples += 1;
        } else {
            self.stats.false_squashes += 1;
        }
        if let Some(obs) = &self.obs {
            obs.on_squash(j as u32, at, truly, dep);
        }
        let pre = self.threads[j].timer.now();
        let scheme = self.scheme;
        let exp = self.obs.as_ref().map(|o| o.expansion.clone());
        let t = &mut self.threads[j];
        if scheme.uses_signatures() {
            if let Some(v) = t.version {
                flows::squash_observed(&mut t.bdm, v, &mut t.cache, false, exp.as_ref());
            }
        } else {
            // Conventional squash: walk the cache and drop speculative
            // dirty lines (exact sets say which).
            let dirty: Vec<LineAddr> = t
                .write_set
                .iter()
                .filter(|l| t.cache.state_of(**l) == Some(bulk_mem::LineState::Dirty))
                .copied()
                .collect();
            for l in dirty {
                t.cache.invalidate(l);
            }
        }
        // Squash deallocates the overflow area: Bulk discards it in one
        // step; conventional schemes walk the spilled entries.
        let spilled = t.overflow.len() as u64;
        t.overflow.deallocate(!scheme.uses_signatures());
        self.stats.bw.record(MsgClass::Ub, spilled * self.cfg.msg_sizes.addr_msg);
        let t = &mut self.threads[j];
        t.read_set.clear();
        t.write_set.clear();
        t.sections.clear();
        t.section_starts.clear();
        t.exact_sections.clear();
        t.depth = 0;
        t.pc = t.tx_start_pc;
        t.tx_serial += 1;
        t.stalled_on = None;
        t.timer.wait_until(at);
        t.timer.advance(self.cfg.squash_overhead);
        // Escalation: too many squashes of the same transaction trigger the
        // serialized fallback on its next restart.
        t.tx_squashes += 1;
        if let Some(obs) = &self.obs {
            let sec = self.threads[j].section_span;
            obs.span_end(sec, pre);
            obs.span_outcome(sec, SpanOutcome::Squashed);
            self.threads[j].section_span = SpanId::DROPPED;
            let post = self.threads[j].timer.now();
            let sq = obs.span_complete(j as u32, SpanKind::Squash, pre, post, dep);
            obs.span_link(self.commit_cause, sq);
        }
        // Liveness: record the squash with the watchdog and apply the
        // age-weighted randomized backoff before the victim retries.
        if self.live.is_some() {
            let age_rank = self.age_rank(j);
            let live = self.live.as_mut().expect("liveness armed");
            let wait = live.on_squash(by, j, !truly, age_rank, at);
            let b0 = self.threads[j].timer.now();
            self.threads[j].timer.advance(wait);
            if let Some(obs) = &self.obs {
                obs.on_backoff(j as u32, at, wait);
                if wait > 0 {
                    obs.span_complete(j as u32, SpanKind::Backoff, b0, b0 + wait, 0);
                }
            }
        }
        if let Some(threshold) = self.escalation {
            let t = &mut self.threads[j];
            if !t.escalated && t.tx_squashes >= threshold {
                t.escalated = true;
                self.stats.escalations += 1;
                if let Some(obs) = &self.obs {
                    obs.on_escalation(j as u32, at);
                }
            }
        }
        self.audit_state(at);
    }

    // ------------------------------------------------------------------
    // Eager conflict resolution
    // ------------------------------------------------------------------

    /// Resolves eager conflicts between `tid` and `conflicting` threads.
    /// Returns `false` if `tid` must stall and retry the op.
    fn resolve_eager_conflicts(&mut self, tid: usize, conflicting: &[usize], line: LineAddr) -> bool {
        if conflicting.is_empty() {
            return true;
        }
        if self.scheme == Scheme::Eager {
            // Forward-progress fix: the longer-running transaction wins.
            let my_progress = self.threads[tid].tx_progress();
            if let Some(&winner) = conflicting
                .iter()
                .filter(|&&j| self.threads[j].tx_progress() > my_progress)
                .max_by_key(|&&j| self.threads[j].tx_progress())
            {
                self.stats.stalls += 1;
                let serial = self.threads[winner].tx_serial;
                self.threads[tid].stalled_on = Some((winner, serial));
                return false;
            }
        }
        let now = self.threads[tid].timer.now();
        for &j in conflicting {
            let dep = 1; // the conflicting line
            let _ = line;
            self.squash_thread(j, now, true, dep, Some(tid));
        }
        true
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn other_indices(&self, tid: usize) -> Vec<usize> {
        (0..self.threads.len()).filter(|&j| j != tid).collect()
    }

    /// Age rank of thread `j` among in-flight speculative transactions,
    /// ordered by transaction start cycle (0 = oldest). Older transactions
    /// get longer backoff multipliers so the *young* retry first and the
    /// old — closest to committing — win the next arbitration.
    fn age_rank(&self, j: usize) -> usize {
        let key = (self.threads[j].tx_start_cycle, j);
        self.threads
            .iter()
            .enumerate()
            .filter(|(i, t)| *i != j && t.speculative())
            .filter(|(i, t)| (t.tx_start_cycle, *i) < key)
            .count()
    }

    fn other_tx_threads(&self, tid: usize) -> Vec<usize> {
        self.other_indices(tid)
            .into_iter()
            .filter(|&j| self.threads[j].in_tx())
            .collect()
    }

    /// Whether some other processor can *supply* `line`. A holder whose
    /// copy is speculatively dirty nacks the request (the paper's §4.5:
    /// the BDM checks its `δ(W)` bitmasks and refuses to leak speculative
    /// data), so the requester falls back to memory for the committed
    /// version. Clean and non-speculative dirty copies are supplied
    /// normally.
    fn neighbor_has(&self, tid: usize, line: LineAddr) -> bool {
        let set = self.cfg.geom.set_of_line(line);
        self.other_indices(tid).into_iter().any(|j| {
            let t = &self.threads[j];
            match t.cache.state_of(line) {
                None => false,
                Some(bulk_mem::LineState::Clean) => true,
                Some(bulk_mem::LineState::Dirty) => {
                    let nacks = if self.scheme.uses_signatures() {
                        t.bdm.holds_speculative_dirty_set(set)
                    } else {
                        t.in_tx() && t.write_set.contains(&line)
                    };
                    !nacks
                }
            }
        })
    }

    fn invalidate_in_others(&mut self, tid: usize, line: LineAddr) {
        for j in self.other_indices(tid) {
            self.threads[j].cache.invalidate(line);
        }
    }

    fn invalidate_lines_exact(&mut self, j: usize, lines: &HashSet<LineAddr>) {
        let t = &mut self.threads[j];
        for &l in lines {
            t.cache.invalidate(l);
        }
    }

    fn exact_dep_size(&self, j: usize, exact_w: &HashSet<LineAddr>) -> u64 {
        let o = &self.threads[j];
        exact_w
            .iter()
            .filter(|l| o.read_set.contains(l) || o.write_set.contains(l))
            .count() as u64
    }

    fn handle_dirty_victim(&mut self, tid: usize, victim: LineAddr) {
        let speculative =
            self.threads[tid].speculative() && self.threads[tid].write_set.contains(&victim);
        if speculative {
            // §6.2.2: speculative dirty evictions go to the overflow area.
            self.threads[tid].overflow.spill(victim);
            self.stats.overflow_spills += 1;
            if let Some(obs) = &self.obs {
                let t = &self.threads[tid];
                let now = t.timer.now();
                obs.on_overflow_spill(tid as u32, now, t.overflow.len() as u64);
                obs.span_complete(tid as u32, SpanKind::Spill, now, now, t.overflow.len() as u64);
            }
            self.stats.bw.record(MsgClass::Ub, self.cfg.msg_sizes.line_msg);
            if self.scheme.uses_signatures() {
                let t = &mut self.threads[tid];
                if let Some(v) = t.version {
                    t.bdm.note_overflow(v);
                }
            }
        } else {
            self.stats.bw.record(MsgClass::Wb, self.cfg.msg_sizes.line_msg);
        }
    }

    /// Feeds the auditor the whole machine state: the Set Restriction for
    /// every cache/BDM pair, and signature-vs-oracle containment for every
    /// speculative thread (a signature may alias, but an address in the
    /// exact read/write set missing from the signature is a false-negative
    /// hazard).
    fn audit_state(&mut self, cycle: u64) {
        if !self.auditor.enabled() {
            return;
        }
        for j in 0..self.threads.len() {
            let t = &self.threads[j];
            self.auditor.audit_set_restriction(j, cycle, &t.bdm, &t.cache);
            if !t.speculative() {
                continue;
            }
            let Some(v) = t.version else { continue };
            let r = t.bdm.read_signature(v);
            let w = t.bdm.write_signature(v);
            let missing = t
                .read_set
                .iter()
                .find(|l| !r.contains_line(**l))
                .map(|l| format!("read-set line {l} is not in the R signature"))
                .or_else(|| {
                    t.write_set
                        .iter()
                        .find(|l| !w.contains_line(**l))
                        .map(|l| format!("write-set line {l} is not in the W signature"))
                });
            self.auditor.audit_containment(j, cycle, missing);
        }
    }

    fn consult_overflow(&mut self, tid: usize, a: Addr, line: LineAddr) {
        match self.scheme {
            Scheme::Bulk | Scheme::BulkPartial => {
                let must = {
                    let t = &self.threads[tid];
                    match t.version {
                        Some(v) => t.bdm.must_check_overflow(v, a),
                        None => false,
                    }
                };
                if must {
                    let _ = self.threads[tid].overflow.lookup(line);
                    self.stats.bw.record(MsgClass::Ub, self.cfg.msg_sizes.addr_msg);
                }
            }
            Scheme::Lazy
                if !self.threads[tid].overflow.is_empty() => {
                    let _ = self.threads[tid].overflow.lookup(line);
                    self.stats.bw.record(MsgClass::Ub, self.cfg.msg_sizes.addr_msg);
                }
            _ => {}
        }
    }
}

/// Transaction nesting depth immediately before executing `ops[pc]`,
/// counting from the outer `Begin` at `tx_start_pc`.
fn depth_at(ops: &[TmOp], pc: usize, tx_start_pc: usize) -> usize {
    let mut depth = 0usize;
    for op in &ops[tx_start_pc..pc] {
        match op {
            TmOp::Begin => depth += 1,
            TmOp::End => depth -= 1,
            _ => {}
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_trace::patterns::{fig12a_livelock, fig12b_eager_only_squash};
    use bulk_trace::{profiles, ThreadTrace};

    fn cfg() -> SimConfig {
        SimConfig::tm_default()
    }

    fn simple_workload(ops: Vec<Vec<TmOp>>) -> TmWorkload {
        TmWorkload {
            name: "test".into(),
            threads: ops.into_iter().map(|ops| ThreadTrace { ops }).collect(),
        }
    }

    #[test]
    fn independent_transactions_commit_without_squash() {
        let w = simple_workload(vec![
            vec![TmOp::Begin, TmOp::Write(Addr::new(0x1000)), TmOp::End],
            vec![TmOp::Begin, TmOp::Write(Addr::new(0x8000)), TmOp::End],
        ]);
        for s in Scheme::ALL {
            let stats = run_tm(&w, s, &cfg());
            assert_eq!(stats.commits, 2, "{s}");
            assert_eq!(stats.squashes, 0, "{s}");
        }
    }

    #[test]
    fn conflicting_transactions_squash_in_lazy_and_bulk() {
        // Both threads write the same line; one must restart.
        let mk = || {
            vec![
                TmOp::Begin,
                TmOp::Write(Addr::new(0x1000)),
                TmOp::Compute(100),
                TmOp::End,
            ]
        };
        for s in [Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial] {
            let stats = run_tm(&simple_workload(vec![mk(), mk()]), s, &cfg());
            assert_eq!(stats.commits, 2, "{s}");
            assert!(stats.squashes + stats.partial_rollbacks >= 1, "{s}");
        }
    }

    #[test]
    fn naive_eager_livelocks_on_fig12a() {
        let w = fig12a_livelock(50, 400);
        let mut m = TmMachine::new(&w, Scheme::EagerNaive, &cfg());
        m.set_squash_cap(2_000);
        let stats = m.run();
        assert!(stats.livelocked, "naive eager should livelock: {stats:?}");
    }

    #[test]
    fn fixed_eager_makes_progress_on_fig12a() {
        let w = fig12a_livelock(50, 400);
        let stats = run_tm(&w, Scheme::Eager, &cfg());
        assert!(!stats.livelocked);
        assert_eq!(stats.commits, 100);
        assert!(stats.stalls > 0, "the fix stalls the shorter transaction");
    }

    #[test]
    fn lazy_and_bulk_make_progress_on_fig12a() {
        let w = fig12a_livelock(30, 400);
        for s in [Scheme::Lazy, Scheme::Bulk] {
            let stats = run_tm(&w, s, &cfg());
            assert!(!stats.livelocked, "{s}");
            assert_eq!(stats.commits, 60, "{s}");
        }
    }

    #[test]
    fn fig12b_squashes_in_eager_but_not_lazy() {
        let w = fig12b_eager_only_squash(10);
        let eager = run_tm(&w, Scheme::Eager, &cfg());
        let lazy = run_tm(&w, Scheme::Lazy, &cfg());
        // Eager pays (squash or stall) on nearly every iteration; Lazy only
        // on the few iterations where phase drift makes the overlap real.
        assert!(
            eager.squashes + eager.stalls >= 5,
            "eager must pay for the conflict: {eager:?}"
        );
        assert!(
            lazy.squashes < eager.squashes + eager.stalls,
            "lazy {lazy:?} vs eager {eager:?}"
        );
    }

    #[test]
    fn non_tx_write_squashes_speculative_reader() {
        let w = simple_workload(vec![
            vec![
                TmOp::Begin,
                TmOp::Read(Addr::new(0x1000)),
                TmOp::Compute(5000),
                TmOp::End,
            ],
            vec![TmOp::Compute(100), TmOp::Write(Addr::new(0x1000))],
        ]);
        for s in [Scheme::Lazy, Scheme::Bulk] {
            let stats = run_tm(&w, s, &cfg());
            assert_eq!(stats.commits, 1, "{s}");
            assert_eq!(stats.squashes, 1, "{s}");
            assert!(stats.individual_invalidations >= 1, "{s}");
        }
    }

    #[test]
    fn commit_bandwidth_bulk_below_lazy_on_real_profile() {
        let p = profiles::tm_profile("mc").unwrap();
        let w = p.generate(11);
        let lazy = run_tm(&w, Scheme::Lazy, &cfg());
        let bulk = run_tm(&w, Scheme::Bulk, &cfg());
        assert!(lazy.bw.commit_bytes() > 0);
        assert!(bulk.bw.commit_bytes() > 0);
        assert!(
            (bulk.bw.commit_bytes() as f64) < 0.7 * lazy.bw.commit_bytes() as f64,
            "bulk {} vs lazy {}",
            bulk.bw.commit_bytes(),
            lazy.bw.commit_bytes()
        );
    }

    #[test]
    fn profile_run_produces_sane_characterization() {
        let p = profiles::tm_profile("sjbb2k").unwrap();
        let w = p.generate(5);
        let stats = run_tm(&w, Scheme::Bulk, &cfg());
        assert_eq!(stats.commits as usize, p.threads * p.txs_per_thread);
        // Footprints near the Table 7 targets.
        assert!((stats.avg_rd_set() - p.rd_lines).abs() < p.rd_lines * 0.5);
        assert!((stats.avg_wr_set() - p.wr_lines).abs() < p.wr_lines * 0.5);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn bulk_overflow_accesses_below_lazy() {
        let p = profiles::tm_profile("cb").unwrap();
        let w = p.generate(3);
        let lazy = run_tm(&w, Scheme::Lazy, &cfg());
        let bulk = run_tm(&w, Scheme::Bulk, &cfg());
        if lazy.overflow_accesses > 0 {
            assert!(
                bulk.overflow_accesses < lazy.overflow_accesses,
                "bulk {} vs lazy {}",
                bulk.overflow_accesses,
                lazy.overflow_accesses
            );
        }
    }

    #[test]
    fn nested_partial_rollback_happens_under_contention() {
        // Thread 0 commits a write to X while thread 1 is in its inner
        // section that reads X: Bulk-Partial rolls back the inner section
        // only.
        let w = simple_workload(vec![
            vec![
                TmOp::Compute(50),
                TmOp::Begin,
                TmOp::Write(Addr::new(0x1000)),
                TmOp::End,
            ],
            vec![
                TmOp::Begin,
                TmOp::Read(Addr::new(0x9000)), // section 0
                TmOp::Begin,
                TmOp::Read(Addr::new(0x1000)), // section 1 reads X
                TmOp::Compute(100_000),
                TmOp::End,
                TmOp::Read(Addr::new(0xa000)),
                TmOp::End,
            ],
        ]);
        let stats = run_tm(&w, Scheme::BulkPartial, &cfg());
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.partial_rollbacks, 1, "{stats:?}");
        assert_eq!(stats.squashes, 0);
    }

    #[test]
    fn overflow_bit_gates_area_lookups() {
        // A transaction whose writes exceed one set's associativity spills
        // speculative dirty lines; subsequent misses on signature-member
        // addresses consult the area, others do not.
        let geom = cfg().geom;
        let sets = geom.num_sets();
        let mut ops = vec![TmOp::Begin];
        // Six writes to lines of the same cache set (assoc = 4): two spill.
        for i in 0..6u32 {
            ops.push(TmOp::Write(Addr::new(i * sets * 64)));
        }
        // A read far away (missing) that is NOT in W: must not touch the
        // area thanks to the membership filter.
        ops.push(TmOp::Read(Addr::new(0x123440)));
        ops.push(TmOp::End);
        let w = simple_workload(vec![ops]);
        let stats = run_tm(&w, Scheme::Bulk, &cfg());
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.overflow_spills, 2, "{stats:?}");
        assert_eq!(
            stats.overflow_accesses, 0,
            "reads outside W never consult the overflow area"
        );
    }

    #[test]
    fn lazy_consults_overflow_on_every_miss_once_spilled() {
        let geom = cfg().geom;
        let sets = geom.num_sets();
        let mut ops = vec![TmOp::Begin];
        for i in 0..6u32 {
            ops.push(TmOp::Write(Addr::new(i * sets * 64)));
        }
        ops.push(TmOp::Read(Addr::new(0x123440))); // miss -> area lookup
        ops.push(TmOp::Read(Addr::new(0x133440))); // miss -> area lookup
        ops.push(TmOp::End);
        let w = simple_workload(vec![ops]);
        let stats = run_tm(&w, Scheme::Lazy, &cfg());
        assert!(stats.overflow_accesses >= 2, "{stats:?}");
    }

    #[test]
    fn eager_stall_releases_on_blocker_commit() {
        // Thread 1 writes A early and holds it; thread 0 (younger in tx
        // progress) tries to write A, stalls, then completes after 1
        // commits.
        let w = simple_workload(vec![
            vec![
                TmOp::Compute(200),
                TmOp::Begin,
                TmOp::Write(Addr::new(0x7000)),
                TmOp::End,
            ],
            vec![
                TmOp::Begin,
                TmOp::Write(Addr::new(0x7000)),
                TmOp::Compute(2000),
                TmOp::End,
            ],
        ]);
        let stats = run_tm(&w, Scheme::Eager, &cfg());
        assert_eq!(stats.commits, 2);
        assert!(stats.stalls >= 1, "{stats:?}");
        assert!(!stats.livelocked);
    }

    #[test]
    fn commit_broadcasts_serialize_on_the_bus() {
        // Two same-length transactions finish simultaneously; the second
        // commit must wait for the first broadcast to drain.
        let mk = || {
            vec![
                TmOp::Begin,
                TmOp::Write(Addr::new(0x9000)),
                TmOp::End,
            ]
        };
        let mk2 = || {
            vec![
                TmOp::Begin,
                TmOp::Write(Addr::new(0xA000)),
                TmOp::End,
            ]
        };
        let c = cfg();
        let stats = run_tm(&simple_workload(vec![mk(), mk2()]), Scheme::Lazy, &c);
        // Both misses cost mem_rt; both commits need arb + broadcast, and
        // they cannot overlap: finish >= mem_rt + 2 * commit_arb.
        assert!(stats.cycles >= c.mem_rt + 2 * c.commit_arb, "{stats:?}");
    }

    #[test]
    fn speculative_dirty_lines_are_invisible_to_other_processors() {
        // Thread 0 writes X speculatively and lingers; thread 1 reads X
        // outside any transaction. The fill must come from memory (mem_rt),
        // not the speculative neighbor copy (neighbor_rt).
        let c = cfg();
        let w = simple_workload(vec![
            vec![
                TmOp::Begin,
                TmOp::Write(Addr::new(0xB000)),
                TmOp::Compute(10_000),
                TmOp::End,
            ],
            vec![TmOp::Compute(500), TmOp::Read(Addr::new(0xB000))],
        ]);
        let stats = run_tm(&w, Scheme::Bulk, &c);
        assert_eq!(stats.commits, 1);
        // Thread 1's clock: 500 compute + mem_rt (nacked by the owner).
        // If the speculative copy had been supplied it would be 500 + 8.
        // We can't read per-thread clocks here, so assert via traffic:
        // the fill happened without a Coh message (no cache-to-cache).
        assert_eq!(stats.bw.bytes(bulk_mem::MsgClass::Coh), 0, "{stats:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let p = profiles::tm_profile("lu").unwrap();
        let w = p.generate(2);
        let a = run_tm(&w, Scheme::Bulk, &cfg());
        let b = run_tm(&w, Scheme::Bulk, &cfg());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.squashes, b.squashes);
        assert_eq!(a.bw.total(), b.bw.total());
    }

    #[test]
    fn escalation_serializes_past_the_naive_eager_livelock() {
        // With the serialized fallback armed, even the naive-eager dueling
        // increments of Fig. 12(a) finish: after a few squashes one thread
        // escalates, runs non-speculatively under the serial token, and the
        // system drains.
        let w = fig12a_livelock(50, 400);
        let mut m = TmMachine::new(&w, Scheme::EagerNaive, &cfg());
        m.set_escalation_threshold(Some(4));
        let stats = m.run();
        assert!(!stats.livelocked, "escalation must break the livelock: {stats:?}");
        assert_eq!(stats.commits, 100);
        assert!(stats.escalations > 0, "{stats:?}");
        assert!(stats.serialized_commits > 0, "{stats:?}");
    }

    #[test]
    fn try_with_signature_reports_typed_trace_error() {
        let w = TmWorkload {
            name: "bad".into(),
            threads: vec![ThreadTrace { ops: vec![TmOp::End] }],
        };
        let err = TmMachine::try_new(&w, Scheme::Bulk, &cfg()).err().expect("must fail");
        assert!(matches!(
            err,
            bulk_chaos::MachineError::Trace { thread: 0, .. }
        ));
        assert!(err.to_string().contains("thread 0"), "{err}");
    }

    #[test]
    fn try_new_rejects_empty_workloads() {
        let w = TmWorkload { name: "empty".into(), threads: vec![] };
        let err = TmMachine::try_new(&w, Scheme::Lazy, &cfg()).err().expect("must fail");
        assert_eq!(err, bulk_chaos::MachineError::EmptyWorkload { machine: "tm" });
    }

    #[test]
    fn chaos_run_is_deterministic_and_clean_under_audit() {
        let p = profiles::tm_profile("lu").unwrap();
        let w = p.generate(2);
        let run = |seed: u64| {
            let mut m = TmMachine::new(&w, Scheme::Bulk, &cfg());
            m.set_chaos(bulk_chaos::FaultPlan::seeded(seed));
            m.enable_audit();
            m.try_run().expect("chaos run completes")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.chaos, b.chaos);
        assert!(
            a.violations.is_empty(),
            "chaos must cost time, never correctness: {:?}",
            a.violations
        );
        assert!(a.audit_checks > 0);
        assert_eq!(
            a.chaos.corruptions_injected, a.chaos.corruptions_detected,
            "every injected signature flip must be caught by the CRC: {:?}",
            a.chaos
        );
        assert_eq!(a.chaos.silent_corruptions, 0);
        assert!(a.chaos.total_injected() > 0, "the plan must actually inject: {:?}", a.chaos);
        assert!(!a.livelocked);
        assert_eq!(a.commits, (p.threads * p.txs_per_thread) as u64);
    }

    #[test]
    fn serializability_invariant_no_residual_conflicts() {
        // After any run, committed reads must never have overlapped a
        // write committed during the transaction's lifetime — enforced by
        // construction; here we spot-check that all schemes agree on commit
        // counts for the same workload (no lost transactions).
        let p = profiles::tm_profile("mc").unwrap();
        let w = p.generate(4);
        let expected = (p.threads * p.txs_per_thread) as u64;
        for s in [Scheme::Eager, Scheme::Lazy, Scheme::Bulk, Scheme::BulkPartial] {
            let stats = run_tm(&w, s, &cfg());
            assert_eq!(stats.commits, expected, "{s}");
        }
    }

    /// A liveness config whose backoff ladder is a no-op: detection only,
    /// zero timing perturbation — what the CLI's `--watchdog-ticks` arms.
    fn watchdog_only() -> bulk_live::LivenessConfig {
        bulk_live::LivenessConfig {
            backoff: bulk_live::BackoffConfig {
                base: 0,
                cap: 0,
                ..bulk_live::BackoffConfig::default()
            },
            ..bulk_live::LivenessConfig::default()
        }
    }

    #[test]
    fn watchdog_diagnoses_the_naive_eager_livelock_deterministically() {
        // The Fig. 12(a) ping-pong, previously only *demonstrated* by
        // burning the squash cap, is now *diagnosed*: the watchdog names
        // the squash cycle after a dozen alternations, long before the cap.
        let w = fig12a_livelock(50, 400);
        let run = || {
            let mut m = TmMachine::new(&w, Scheme::EagerNaive, &cfg());
            m.set_squash_cap(1_000_000);
            m.enable_liveness(watchdog_only());
            m.try_run().expect("watchdog abort is a clean stop")
        };
        let a = run();
        let b = run();
        assert!(a.livelocked, "the trip aborts the run: {a:?}");
        assert_eq!(a.liveness.watchdog_trips, 1);
        let v = &a.liveness_violations[0];
        assert_eq!(v.kind, bulk_live::LivenessKind::Livelock);
        assert!(v.detail.contains("squash cycle"), "{}", v.detail);
        assert_eq!(
            a.liveness_violations, b.liveness_violations,
            "the diagnosis must be reproducible"
        );
        assert!(
            a.squashes < 1_000,
            "the watchdog must trip long before the squash cap: {}",
            a.squashes
        );
    }

    #[test]
    fn randomized_backoff_alone_breaks_the_symmetric_livelock() {
        // With only the age-weighted randomized backoff armed (watchdog
        // thresholds pushed out of reach, no escalation), the dueling
        // transactions desynchronize and drain — the classic
        // backoff-beats-livelock result.
        let w = fig12a_livelock(50, 400);
        let mut m = TmMachine::new(&w, Scheme::EagerNaive, &cfg());
        m.set_squash_cap(1_000_000);
        let mut lc = bulk_live::LivenessConfig::default();
        lc.seed = 42;
        lc.watchdog.ping_pong_rounds = 1_000_000;
        lc.watchdog.starvation_commits = u64::MAX;
        m.enable_liveness(lc);
        let stats = m.try_run().expect("run completes");
        assert!(!stats.livelocked, "{stats:?}");
        assert_eq!(stats.commits, 100);
        assert_eq!(stats.escalations, 0, "no serialized fallback was armed");
        assert!(stats.liveness.backoff_waits > 0);
        assert!(stats.liveness.backoff_cycles > 0);
    }

    #[test]
    fn orphaned_serial_token_is_reported_and_released() {
        // The promoted token-protocol invariant: a finished thread must
        // never hold the serial token. Under audit the breach becomes a
        // structured violation and the token is released so the run drains.
        let w = simple_workload(vec![
            vec![TmOp::Begin, TmOp::Write(Addr::new(0)), TmOp::End],
            vec![TmOp::Begin, TmOp::Write(Addr::new(4096)), TmOp::End],
        ]);
        let mut m = TmMachine::new(&w, Scheme::Eager, &cfg());
        m.enable_audit();
        m.serial_token = Some(0);
        m.threads[0].done = true;
        let picked = m.pick_runnable().expect("not a deadlock");
        assert_eq!(m.serial_token, None, "orphaned token must be released");
        assert_eq!(picked, Some(1));
        let v = &m.auditor.violations()[0];
        assert_eq!(v.kind, InvariantKind::TokenProtocol);
        assert!(v.detail.contains("finished thread"), "{}", v.detail);
    }

    #[test]
    fn double_granted_serial_token_is_reported() {
        let w = simple_workload(vec![
            vec![TmOp::Begin, TmOp::Write(Addr::new(0)), TmOp::End],
            vec![TmOp::Begin, TmOp::Write(Addr::new(4096)), TmOp::End],
        ]);
        let mut m = TmMachine::new(&w, Scheme::Eager, &cfg());
        m.enable_audit();
        m.serial_token = Some(1);
        m.threads[0].escalated = true;
        m.op_begin(0);
        let v = &m.auditor.violations()[0];
        assert_eq!(v.kind, InvariantKind::TokenProtocol);
        assert!(v.detail.contains("double-granted"), "{}", v.detail);
    }

    #[test]
    fn escalated_thread_releases_token_under_chaos() {
        // End-to-end serial-token handoff: with chaos perturbations, the
        // liveness engine, and an aggressive escalation threshold, every
        // escalated transaction must finish, hand the token back (zero
        // token-protocol violations), and the machine must drain fully.
        let w = fig12a_livelock(25, 200);
        let run = |seed: u64| {
            let mut m = TmMachine::new(&w, Scheme::EagerNaive, &cfg());
            m.set_escalation_threshold(Some(2));
            m.set_chaos(FaultPlan::seeded(seed));
            m.enable_audit();
            m.enable_liveness(bulk_live::LivenessConfig::default());
            m.try_run().expect("run completes")
        };
        for seed in [13, 14] {
            let stats = run(seed);
            assert!(!stats.livelocked, "seed {seed}: {stats:?}");
            assert_eq!(stats.commits, 50, "seed {seed}");
            assert!(stats.escalations > 0, "seed {seed}");
            assert!(stats.serialized_commits > 0, "seed {seed}");
            assert!(stats.violations.is_empty(), "seed {seed}: {:?}", stats.violations);
            assert!(
                stats.liveness_violations.is_empty(),
                "seed {seed}: {:?}",
                stats.liveness_violations
            );
        }
    }

    #[test]
    fn arbiter_crash_is_survived_with_exactly_once_application() {
        // The commit arbiter crashes mid-broadcast (chaos fault); the new
        // epoch replays the in-flight message and receivers dedup it by
        // ticket: epochs advance, drops are counted, and no commit is ever
        // applied twice.
        let p = profiles::tm_profile("lu").unwrap();
        let w = p.generate(2);
        let run = |seed: u64| {
            let mut m = TmMachine::new(&w, Scheme::Bulk, &cfg());
            m.set_chaos(FaultPlan::new(bulk_chaos::ChaosConfig::arbiter_crash(seed)));
            m.enable_audit();
            m.enable_liveness(bulk_live::LivenessConfig::default());
            m.try_run().expect("run completes")
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.cycles, b.cycles, "failover must stay deterministic");
        assert!(a.liveness.arbiter_crashes > 0, "the profile must crash: {:?}", a.liveness);
        assert_eq!(a.liveness.arbiter_epoch, a.liveness.arbiter_crashes);
        assert_eq!(a.liveness.replayed_commits, a.liveness.arbiter_crashes);
        assert!(a.liveness.dedup_drops >= a.liveness.replayed_commits);
        assert_eq!(a.liveness.duplicate_applications, 0);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.commits, (p.threads * p.txs_per_thread) as u64);
    }

    #[test]
    fn scripted_double_crash_hits_the_replay_and_is_survived() {
        // Crash-during-replay, deterministically: the schedule crashes the
        // arbiter twice during the first commit broadcast — the second
        // crash lands while the new epoch is replaying the in-flight
        // message. Both re-elections happen, both replays are deduped, and
        // nothing is applied twice or lost.
        use bulk_chaos::{BroadcastSchedule, ScheduleScript};
        let p = profiles::tm_profile("lu").unwrap();
        let w = p.generate(2);
        let script = ScheduleScript::from_pattern(vec![BroadcastSchedule {
            crashes: 2,
            ..BroadcastSchedule::QUIET
        }]);
        let run = || {
            let mut m = TmMachine::new(&w, Scheme::Bulk, &cfg());
            m.set_chaos(script.clone().into_plan());
            m.enable_audit();
            m.enable_liveness(bulk_live::LivenessConfig::default());
            m.try_run().expect("double crash is survived")
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles, "scripted runs are deterministic");
        assert_eq!(a.liveness.arbiter_crashes, 2, "{:?}", a.liveness);
        assert_eq!(a.liveness.arbiter_epoch, 2);
        assert_eq!(a.liveness.replayed_commits, 2);
        assert_eq!(a.liveness.dedup_drops, script.expected_dedup_drops());
        assert_eq!(a.liveness.duplicate_applications, 0);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.liveness_violations.is_empty(), "{:?}", a.liveness_violations);
        assert_eq!(a.commits, (p.threads * p.txs_per_thread) as u64);
    }

    #[test]
    fn scripted_crash_while_bus_is_contended_serializes_the_reelection() {
        // Crash-while-bus-occupied: the arbiter dies during thread A's
        // broadcast while other threads are racing to commit. Re-election
        // occupies the bus (bus.acquire serializes it against every other
        // broadcast), so the crash visibly perturbs the machine's timing —
        // but commit order stays total (auditor-checked), every
        // transaction still commits, and nothing is applied twice.
        use bulk_chaos::{BroadcastSchedule, ScheduleScript};
        let p = profiles::tm_profile("lu").unwrap();
        let w = p.generate(2);
        let run = |script: ScheduleScript| {
            let mut m = TmMachine::new(&w, Scheme::Bulk, &cfg());
            m.set_chaos(script.into_plan());
            m.enable_audit();
            m.enable_liveness(bulk_live::LivenessConfig::default());
            m.try_run().expect("run completes")
        };
        let quiet = run(ScheduleScript::quiet("quiet"));
        let crashed = run(ScheduleScript::from_pattern(vec![BroadcastSchedule {
            crashes: 1,
            ..BroadcastSchedule::QUIET
        }]));
        assert_eq!(quiet.liveness.arbiter_crashes, 0);
        assert_eq!(crashed.liveness.arbiter_crashes, 1);
        assert_eq!(crashed.liveness.replayed_commits, 1);
        assert_ne!(
            crashed.cycles, quiet.cycles,
            "holding the bus through re-election must perturb global timing"
        );
        for out in [&quiet, &crashed] {
            assert_eq!(out.commits, (p.threads * p.txs_per_thread) as u64);
            assert_eq!(out.liveness.duplicate_applications, 0);
            assert!(out.violations.is_empty(), "{:?}", out.violations);
        }
    }

    #[test]
    fn checkpoints_verify_at_chaos_context_switches() {
        let p = profiles::tm_profile("mc").unwrap();
        let w = p.generate(3);
        let mut m = TmMachine::new(&w, Scheme::Bulk, &cfg());
        m.set_chaos(FaultPlan::seeded(21));
        m.enable_audit();
        m.enable_liveness(bulk_live::LivenessConfig::default());
        let stats = m.try_run().expect("run completes");
        assert!(
            stats.chaos.forced_context_switches > 0,
            "the plan must preempt: {:?}",
            stats.chaos
        );
        assert!(stats.liveness.checkpoints > 0, "{:?}", stats.liveness);
        assert_eq!(
            stats.liveness.checkpoint_restore_failures, 0,
            "every spill/reload round trip must verify bit-faithful"
        );
        assert!(stats.violations.is_empty(), "{:?}", stats.violations);
    }
}
