//! A small seeded property-test harness (the in-repo stand-in for
//! `proptest`).
//!
//! A property is a function from a case generator [`Gen`] to
//! `Result<(), String>`. [`run`] executes it over a fixed budget of
//! deterministically derived seeds; every failure — returned `Err` *or*
//! panic inside the property — reports the case seed, and setting
//! `BULK_PROP_SEED=<seed>` replays exactly that case:
//!
//! ```text
//! BULK_PROP_SEED=0x3fa1b2c4d5e6f708 cargo test -p bulk-sig superset
//! ```
//!
//! ```
//! use bulk_rng::check::{run, Gen};
//! run("addition_commutes", 64, |g| {
//!     let (a, b) = (g.u64(), g.u64());
//!     bulk_rng::prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     Ok(())
//! });
//! ```

use crate::{splitmix64, Rng, SeedableRng, SmallRng, Standard, UniformInt};
use std::ops::Range;

/// Per-case input generator handed to each property execution.
pub struct Gen {
    rng: SmallRng,
    seed: u64,
}

impl Gen {
    /// A generator for one explicit case seed (how replays are built).
    pub fn from_seed(seed: u64) -> Self {
        Gen { rng: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed of this case — what `BULK_PROP_SEED` replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Access to the raw generator for ad-hoc draws.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// A uniform sample of `T` (see [`Rng::random`]).
    pub fn random<T: Standard>(&mut self) -> T {
        self.rng.random()
    }

    /// A uniform draw from a half-open integer range.
    pub fn in_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        self.rng.random_range(range)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.random()
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.random()
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `item`.
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut item: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = if len.start + 1 == len.end { len.start } else { self.in_range(len) };
        (0..n).map(|_| item(self)).collect()
    }

    /// A `Vec<u32>` of uniform draws from `val`.
    pub fn vec_u32(&mut self, len: Range<usize>, val: Range<u32>) -> Vec<u32> {
        self.vec_of(len, |g| g.in_range(val.clone()))
    }

    /// A set of *distinct* `u32` draws from `val`; at most `len.end - 1`
    /// elements, at least `min(len.start, |val|)`.
    pub fn set_u32(
        &mut self,
        len: Range<usize>,
        val: Range<u32>,
    ) -> std::collections::HashSet<u32> {
        let want = self.in_range(len);
        let mut out = std::collections::HashSet::with_capacity(want);
        // The domain may be smaller than the request; bound the attempts.
        for _ in 0..want.saturating_mul(20).max(16) {
            if out.len() >= want {
                break;
            }
            out.insert(self.in_range(val.clone()));
        }
        out
    }
}

/// Outcome summary of a [`run`] (returned for harness self-tests; normal
/// property tests just rely on the panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Number of cases executed.
    pub cases: u32,
}

/// Prints the replay line even when the property *panics* rather than
/// returning `Err`.
struct ReplayOnPanic<'a> {
    name: &'a str,
    seed: u64,
    armed: bool,
}

impl Drop for ReplayOnPanic<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "property `{}` panicked at case seed {:#018x}; \
                 replay with BULK_PROP_SEED={:#x}",
                self.name, self.seed, self.seed
            );
        }
    }
}

/// Runs `prop` over `cases` deterministically derived seeds.
///
/// Seeds are derived from the property name, so adding a property to a
/// file never changes the cases of its neighbours. If the environment
/// variable `BULK_PROP_SEED` is set (decimal or `0x`-hex), exactly that
/// one case is run instead — the replay path for a reported failure.
///
/// # Panics
///
/// Panics with the case seed and the property's message on the first
/// failing case.
pub fn run(
    name: &str,
    cases: u32,
    mut prop: impl FnMut(&mut Gen) -> Result<(), String>,
) -> RunReport {
    if let Some(seed) = replay_seed_from_env() {
        eprintln!("property `{name}`: replaying single case BULK_PROP_SEED={seed:#x}");
        run_case(name, seed, &mut prop);
        return RunReport { cases: 1 };
    }
    let mut stream = fnv1a(name.as_bytes()) ^ 0xb01d_FACE_u64;
    for _ in 0..cases {
        let seed = splitmix64(&mut stream);
        run_case(name, seed, &mut prop);
    }
    RunReport { cases }
}

fn run_case(name: &str, seed: u64, prop: &mut impl FnMut(&mut Gen) -> Result<(), String>) {
    let mut guard = ReplayOnPanic { name, seed, armed: true };
    let mut gen = Gen::from_seed(seed);
    let result = prop(&mut gen);
    guard.armed = false;
    if let Err(msg) = result {
        panic!(
            "property `{name}` failed (case seed {seed:#018x}): {msg}\n\
             replay with: BULK_PROP_SEED={seed:#x}"
        );
    }
}

fn replay_seed_from_env() -> Option<u64> {
    let raw = std::env::var("BULK_PROP_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("BULK_PROP_SEED is not a u64: {raw:?}")))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Asserts a condition inside a property, returning `Err` (with optional
/// formatted context) instead of panicking, so the harness can attach the
/// case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property; shows both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}\n {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u32;
        let report = run("always_passes", 37, |g| {
            n += 1;
            let _ = g.u64();
            Ok(())
        });
        assert_eq!(report.cases, 37);
        assert_eq!(n, 37);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut seeds = Vec::new();
            run("stable_seeds", 8, |g| {
                seeds.push(g.seed());
                Ok(())
            });
            seeds
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() == 8);
    }

    #[test]
    fn failure_reports_replayable_seed() {
        let err = std::panic::catch_unwind(|| {
            run("fails_on_big", 64, |g| {
                let v = g.in_range(0u32..1000);
                crate::prop_assert!(v < 990, "v = {v}");
                Ok(())
            });
        })
        .expect_err("property must fail within 64 cases");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("BULK_PROP_SEED="), "no replay line: {msg}");
        // Extract the seed and replay it: the same case must fail again.
        let seed_hex = msg
            .split("BULK_PROP_SEED=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap();
        let seed =
            u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).expect("hex seed");
        let mut g = Gen::from_seed(seed);
        let v = g.in_range(0u32..1000);
        assert!(v >= 990, "replayed case no longer fails: v = {v}");
    }

    #[test]
    fn vec_and_set_generators_respect_bounds() {
        run("gen_bounds", 32, |g| {
            let v = g.vec_u32(0..120, 0..0x0400_0000);
            crate::prop_assert!(v.len() < 120);
            crate::prop_assert!(v.iter().all(|&x| x < 0x0400_0000));
            let s = g.set_u32(1..60, 0..100_000);
            crate::prop_assert!(!s.is_empty() && s.len() < 60);
            crate::prop_assert!(s.iter().all(|&x| x < 100_000));
            Ok(())
        });
    }

    #[test]
    fn different_property_names_draw_different_cases() {
        let seeds_of = |name: &str| {
            let mut seeds = Vec::new();
            run(name, 4, |g| {
                seeds.push(g.seed());
                Ok(())
            });
            seeds
        };
        assert_ne!(seeds_of("alpha"), seeds_of("beta"));
    }
}
