//! Deterministic pseudo-randomness for the whole workspace.
//!
//! The paper's evaluation (Tables 6–8, Figs. 10–15) depends on synthetic
//! workloads being *bit-reproducible across runs and machines*: every
//! experiment binary aggregates over fixed seeds, and EXPERIMENTS.md
//! compares numbers produced on different hosts. An external RNG crate
//! would make the build non-hermetic and tie reproducibility to someone
//! else's version bumps, so the generator lives here instead: splitmix64
//! for seeding and stream derivation, xoshiro256\*\* as the core
//! generator — both published, tiny, and with known-answer test vectors
//! (see the golden tests at the bottom of this file).
//!
//! The API mirrors the small surface the workspace actually uses:
//!
//! * [`SmallRng`] — the concrete generator,
//! * [`SeedableRng::seed_from_u64`] — seeding,
//! * [`Rng::random`] / [`Rng::random_range`] — uniform sampling,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffles,
//! * [`check`] — a seeded property-test harness with replayable failures.

pub mod check;

use std::ops::Range;

/// One step of the splitmix64 generator: advances `state` and returns the
/// next output. Used for seed expansion and derived streams; its outputs
/// match the published reference implementation (Vigna, 2015).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a generator's output stream.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` over its natural domain (`f64` in
    /// `[0, 1)`, integers over their full range, `bool` fair).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    #[inline]
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types [`Rng::random`] can produce.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::random_range`] can produce.
pub trait UniformInt: Sized {
    /// Draws a uniform sample from the half-open `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased uniform in `[0, n)` by Lemire's multiply-shift method with
/// rejection of the biased low slice.
#[inline]
fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    if (m as u64) < n {
        // Threshold = 2^64 mod n; reject outputs below it.
        let t = n.wrapping_neg() % n;
        while (m as u64) < t {
            m = u128::from(rng.next_u64()) * u128::from(n);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end - range.start) as u64;
                range.start + below(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

/// The workspace's deterministic generator: xoshiro256\*\* (Blackman &
/// Vigna, 2018), seeded through splitmix64 as its authors recommend.
/// Not cryptographic — statistical quality only, which is all simulation
/// needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds a generator directly from full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all-zero (the one forbidden xoshiro state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256** state must be non-zero");
        SmallRng { s }
    }

    /// A derived, statistically independent generator: the `i`-th child
    /// stream of this seed. Used to give each thread/task its own stream
    /// without the streams overlapping prefixes.
    pub fn child(&self, i: u64) -> Self {
        let mut st = self.s[0] ^ self.s[2] ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut st);
        }
        SmallRng::from_state(s)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut st);
        }
        // splitmix64 outputs are never all zero for any seed, but keep the
        // guard in one place.
        SmallRng::from_state(s)
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sequence-level helpers.
pub mod seq {
    use super::Rng;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// Known-answer test: the published splitmix64 reference vector for
    /// seed 0 (Vigna's `splitmix64.c` test output).
    #[test]
    fn splitmix64_matches_reference_vector() {
        let mut st = 0u64;
        assert_eq!(splitmix64(&mut st), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut st), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut st), 0x06c4_5d18_8009_454f);
        assert_eq!(splitmix64(&mut st), 0xf88b_b8a8_724c_81ec);
    }

    /// Known-answer test: xoshiro256** from state [1, 2, 3, 4] (the
    /// reference implementation's first outputs).
    #[test]
    fn xoshiro_matches_reference_vector() {
        let mut rng = SmallRng::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1509978240);
        assert_eq!(rng.next_u64(), 1215971899390074240);
    }

    /// Golden sequence for the workspace's canonical seeding path. Any
    /// change to these values silently invalidates every recorded
    /// experiment, so they are pinned here.
    #[test]
    fn seed_from_u64_golden_sequence() {
        let mut rng = SmallRng::seed_from_u64(42);
        let got: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        // Captured at introduction and pinned; validated indirectly by the
        // two reference-vector tests above.
        let golden: [u64; 8] = [
            0x1578_0b2e_0c2e_c716,
            0x6104_d986_6d11_3a7e,
            0xae17_5332_39e4_99a1,
            0xecb8_ad47_03b3_60a1,
            0xfde6_dc7f_e2ec_5e64,
            0xc50d_a531_0179_5238,
            0xb821_5485_5a65_ddb2,
            0xd99a_2743_ebe6_0087,
        ];
        assert_eq!(got, golden);
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_centered() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let avg = sum / n as f64;
        assert!((avg - 0.5).abs() < 0.01, "avg {avg}");
    }

    #[test]
    fn random_range_is_in_bounds_and_hits_everything() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(5u32..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_range_rejects_empty() {
        let mut rng = SmallRng::seed_from_u64(1);
        rng.random_range(5u32..5);
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn child_streams_are_deterministic_and_distinct() {
        let base = SmallRng::seed_from_u64(9);
        let mut c0 = base.child(0);
        let mut c0b = base.child(0);
        let mut c1 = base.child(1);
        let v0: Vec<u64> = (0..16).map(|_| c0.next_u64()).collect();
        let v0b: Vec<u64> = (0..16).map(|_| c0b.next_u64()).collect();
        let v1: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        assert_eq!(v0, v0b);
        assert_ne!(v0, v1);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(11));
        b.shuffle(&mut SmallRng::seed_from_u64(11));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(a, (0..50).collect::<Vec<u32>>(), "50 elements left unshuffled");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
