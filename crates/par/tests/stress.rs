//! Exactly-once delivery under injected churn (`--cfg bulk_stress`).
//!
//! The stress plan re-delivers already-applied bus records and bumps the
//! bus epoch mid-run — the failure modes the `crates/live` arbiter
//! machinery exists for. The assertions are the exactly-once contract:
//! every injected duplicate is dropped by receiver-side dedup
//! (`dedup_drops > 0`), no record is ever applied twice
//! (`duplicate_applications == 0`), and the committed-order class still
//! matches the deterministic sim's.
//!
//! Compiled (and run by `scripts/verify.sh` and the CI parallel-runtime
//! job) only with `RUSTFLAGS="--cfg bulk_stress"`; an ordinary
//! `cargo test` sees an empty file.
#![cfg(bulk_stress)]

use bulk_par::{
    conflict_light_tm, CrashPoint, KillSpec, ParConfig, ParRuntime, RunDetail, Runtime,
    SimRuntime, StressConfig, same_commit_class,
};
use bulk_sim::SimConfig;
use bulk_tls::TlsScheme;
use bulk_tm::Scheme;
use bulk_trace::profiles;

fn stressed(seed: u64) -> ParRuntime {
    ParRuntime::new(ParConfig {
        seed,
        stress: Some(StressConfig::default()),
        ..ParConfig::default()
    })
}

#[test]
fn tm_redeliveries_are_deduped_exactly_once() {
    let cfg = SimConfig::tm_default();
    let wl = conflict_light_tm(4, 32, 4, 0);
    let sim = SimRuntime.run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
    let mut total_redeliveries = 0;
    let mut total_drops = 0;
    let mut total_bumps = 0;
    for seed in 1..=5u64 {
        let par = stressed(seed).run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
        same_commit_class(&sim, &par)
            .unwrap_or_else(|e| panic!("stress broke conformance (seed={seed}): {e}"));
        let RunDetail::Par(s) = &par.detail else { panic!("not a par report") };
        assert_eq!(s.duplicate_applications, 0, "seed={seed}: a record was applied twice");
        assert!(
            s.dedup_drops >= s.stress_redeliveries,
            "seed={seed}: {} redeliveries but only {} dedup drops",
            s.stress_redeliveries,
            s.dedup_drops
        );
        total_redeliveries += s.stress_redeliveries;
        total_drops += s.dedup_drops;
        total_bumps += s.stress_epoch_bumps;
    }
    assert!(total_redeliveries > 0, "stress plan injected nothing");
    assert!(total_drops > 0, "dedup never engaged");
    assert!(total_bumps > 0, "no epoch churn was injected");
}

/// A worker killed mid-commit (ticket stamped, record unpublished) while
/// the stress plan is re-delivering records and churning epochs: the
/// respawned incarnation replays the whole log through a fresh
/// [`DedupFilter`](bulk_live::DedupFilter), so even with the injected
/// duplicates on top of the replay, no record may ever be applied twice
/// and the committed-order class must still match the sim oracle's.
#[test]
fn par_crash_recovery_never_double_applies_under_stress() {
    let cfg = SimConfig::tm_default();
    let wl = conflict_light_tm(4, 32, 4, 0);
    let sim = SimRuntime.run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
    let mut total_crashes = 0;
    for seed in 1..=5u64 {
        let rt = ParRuntime::new(ParConfig {
            seed,
            stress: Some(StressConfig::default()),
            kills: vec![KillSpec {
                proc: seed as usize % 4,
                point: CrashPoint::Publish,
                at: 1,
            }],
            ..ParConfig::default()
        });
        let par = rt.run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
        same_commit_class(&sim, &par)
            .unwrap_or_else(|e| panic!("crash recovery broke conformance (seed={seed}): {e}"));
        let RunDetail::Par(s) = &par.detail else { panic!("not a par report") };
        assert!(s.worker_crashes >= 1, "seed={seed}: the kill never fired");
        assert!(s.fences >= 1, "seed={seed}: the orphaned slot was never fenced");
        assert_eq!(
            s.duplicate_applications, 0,
            "seed={seed}: a respawned worker re-applied a record"
        );
        assert!(s.violations.is_empty(), "seed={seed}: {:?}", s.violations);
        total_crashes += s.worker_crashes;
    }
    assert!(total_crashes >= 5, "every seed must crash its worker once");
}

#[test]
fn tls_redeliveries_are_deduped_exactly_once() {
    let cfg = SimConfig::tls_default();
    let mut p = profiles::tls_profile("gzip").unwrap();
    p.tasks = 60;
    let wl = p.generate(7);
    let sim = SimRuntime.run_tls(&wl, TlsScheme::Bulk, &cfg).unwrap();
    let mut total_drops = 0;
    for seed in 1..=5u64 {
        let par = stressed(seed).run_tls(&wl, TlsScheme::Bulk, &cfg).unwrap();
        same_commit_class(&sim, &par)
            .unwrap_or_else(|e| panic!("stress broke conformance (seed={seed}): {e}"));
        let RunDetail::Par(s) = &par.detail else { panic!("not a par report") };
        assert_eq!(s.duplicate_applications, 0, "seed={seed}");
        total_drops += s.dedup_drops;
    }
    assert!(total_drops > 0, "dedup never engaged");
}
