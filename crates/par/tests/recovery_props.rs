//! Property tests for crash recovery on the parallel runtime, under
//! arbitrary seeded crash schedules (bulk-rng `check` harness; replay a
//! failing case with `BULK_PROP_SEED=<seed>`).
//!
//! The two structural properties recovery must preserve, whatever the
//! schedule of worker deaths:
//!
//! * **Density** — every bus slot below the tail ends the run published
//!   or fenced: the auditor flags any claimed-but-never-published slot,
//!   and the record count decomposes exactly into commits + non-tx
//!   stores + fence tombstones. A crash never leaves a hole that would
//!   hang a replaying reader.
//! * **Exactly-once completeness** — every transaction/task commits
//!   exactly once across all worker incarnations: commit counts match
//!   the workload, duplicate applications stay zero, and the auditor
//!   (ticket uniqueness, per-thread program order, signature
//!   containment) stays clean.

use bulk_par::{
    conflict_light_tm, CrashPoint, KillSpec, ParConfig, ParRuntime, RunDetail, Runtime,
};
use bulk_rng::check::{run, Gen};
use bulk_rng::{prop_assert, prop_assert_eq};
use bulk_sim::SimConfig;
use bulk_tls::TlsScheme;
use bulk_tm::Scheme;
use bulk_trace::profiles;

/// A random crash schedule: up to three kills at arbitrary protocol
/// points, arbitrary event indices (some may never fire — the
/// properties must hold regardless).
fn crash_schedule(g: &mut Gen, procs: usize) -> Vec<KillSpec> {
    let points = [CrashPoint::Claim, CrashPoint::Publish, CrashPoint::Apply];
    g.vec_of(0..4, |g| KillSpec {
        proc: g.in_range(0..procs),
        point: points[g.in_range(0usize..3)],
        at: g.in_range(0u64..4),
    })
}

#[test]
fn tm_log_is_dense_and_exactly_once_under_any_crash_schedule() {
    run("par_tm_crash_density", 48, |g| {
        let threads = g.in_range(2usize..5);
        let txs_per_thread = g.in_range(1usize..5);
        let accesses = g.in_range(1usize..4);
        let wl = conflict_light_tm(threads, threads * txs_per_thread, accesses, 0);
        let cfg = ParConfig {
            seed: g.u64(),
            kills: crash_schedule(g, threads),
            ..ParConfig::default()
        };
        let scheme = if g.bool() { Scheme::Bulk } else { Scheme::Lazy };
        let r = ParRuntime::new(cfg)
            .run_tm(&wl, scheme, &SimConfig::tm_default())
            .map_err(|e| e.to_string())?;
        let RunDetail::Par(s) = &r.detail else { return Err("no par detail".into()) };
        prop_assert!(s.violations.is_empty(), "violations: {:?}", s.violations);
        prop_assert_eq!(s.commits, (threads * txs_per_thread) as u64);
        // Density: the published log decomposes exactly — no holes, no
        // extras — however many fences recovery had to drop in.
        prop_assert_eq!(s.records, s.commits + s.non_tx_stores + s.fences);
        prop_assert_eq!(s.duplicate_applications, 0);
        prop_assert_eq!(s.respawns, s.worker_crashes);
        Ok(())
    });
}

#[test]
fn tls_commits_every_task_once_under_any_crash_schedule() {
    run("par_tls_crash_completeness", 48, |g| {
        let mut p = profiles::tls_profile("gzip").expect("gzip profile");
        p.tasks = g.in_range(4usize..25);
        let wl = p.generate(g.u64());
        let cfg = ParConfig {
            seed: g.u64(),
            kills: crash_schedule(g, 4),
            ..ParConfig::default()
        };
        let scheme = if g.bool() { TlsScheme::Bulk } else { TlsScheme::Lazy };
        let r = ParRuntime::new(cfg)
            .run_tls(&wl, scheme, &SimConfig::tls_default())
            .map_err(|e| e.to_string())?;
        let RunDetail::Par(s) = &r.detail else { return Err("no par detail".into()) };
        prop_assert!(s.violations.is_empty(), "violations: {:?}", s.violations);
        prop_assert_eq!(s.commits, p.tasks as u64);
        // TLS density is stricter: slot i holds task i, no fences ever.
        prop_assert_eq!(s.records, s.commits);
        prop_assert_eq!(s.fences, 0);
        prop_assert_eq!(s.duplicate_applications, 0);
        prop_assert!(
            s.adopted_slots <= s.worker_crashes,
            "{} adoptions from {} crashes",
            s.adopted_slots,
            s.worker_crashes
        );
        Ok(())
    });
}
