//! Execution substrates for the Bulk machines: the [`Runtime`] trait,
//! the deterministic-sim adapter, and a parallel runtime that runs the
//! paper's commit/squash protocol on real OS threads.
//!
//! The paper's own claim (§3) is that signatures decouple
//! disambiguation from caches and timing: nothing in the protocol needs
//! simulated cycles. This crate takes that literally. [`ParRuntime`]
//! maps each simulated processor to an OS thread, replaces the snoopy
//! bus with a lock-free broadcast log ([`bus::BusLog`]) whose records
//! carry epoch-stamped [`CommitTicket`](bulk_live::CommitTicket)s
//! deduplicated per receiver (the `crates/live` exactly-once machinery),
//! and lets the SIMD signatures of `crates/sig` disambiguate genuinely
//! concurrent read/write sets.
//!
//! The deterministic sim stays what it always was — and becomes the
//! *oracle*: [`SimRuntime`] runs the same trace under the same trait,
//! and [`same_commit_class`] checks that both substrates commit exactly
//! the same transactions, each thread's in program order, with both
//! histories auditor-clean. `tests/par_conformance.rs` enforces this
//! across a matrix of workloads, schemes and seeds.
//!
//! ```
//! use bulk_par::{conflict_light_tm, ParRuntime, Runtime, SimRuntime, same_commit_class};
//! use bulk_sim::SimConfig;
//! use bulk_tm::Scheme;
//!
//! let wl = conflict_light_tm(4, 16, 2, 0);
//! let cfg = SimConfig::tm_default();
//! let sim = SimRuntime.run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
//! let par = ParRuntime::default().run_tm(&wl, Scheme::Bulk, &cfg).unwrap();
//! same_commit_class(&sim, &par).unwrap();
//! ```

#![warn(missing_docs)]

pub mod bus;
mod config;
mod recover;
mod runtime;
mod stats;
mod tls;
mod tm;
mod workloads;

pub use bulk_chaos::{CrashPoint, KillSpec};
pub use bus::SlotOccupied;
pub use config::{ParConfig, StressConfig};
pub use runtime::{
    runtime_by_name, same_commit_class, ParRuntime, RunDetail, RunReport, Runtime, RuntimeError,
    SimRuntime,
};
pub use stats::ParStats;
pub use tls::run_par_tls;
pub use tm::run_par_tm;
pub use workloads::conflict_light_tm;
