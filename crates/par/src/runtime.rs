//! The [`Runtime`] trait — the execution-substrate abstraction — and its
//! two implementations.
//!
//! A `Runtime` takes a workload trace, a conflict-detection scheme and
//! the Table 5 machine configuration, and returns a [`RunReport`]: the
//! committed history plus scheme-level counters. Two substrates
//! implement it:
//!
//! * [`SimRuntime`] — the deterministic discrete-event simulator the
//!   repo has always had, unchanged, behind the trait. Same trace + same
//!   seed ⇒ byte-identical results; it is the *oracle*.
//! * [`ParRuntime`] — real OS threads over the lock-free broadcast log
//!   of [`crate::bus`]. Nondeterministic interleavings, genuinely
//!   concurrent signature disambiguation.
//!
//! Equivalence between them is a checkable statement, not an
//! aspiration: [`same_commit_class`] compares two reports' committed
//! histories as multisets of `(thread, ordinal)` identities — both
//! runtimes must commit exactly the same transactions, each thread's in
//! program order — and each report carries its own auditor verdict.

use crate::config::ParConfig;
use crate::stats::ParStats;
use crate::tls::run_par_tls;
use crate::tm::run_par_tm;
use bulk_chaos::InvariantViolation;
use bulk_core::CommitEvent;
use bulk_sim::SimConfig;
use bulk_tls::{run_tls, TlsScheme, TlsStats};
use bulk_tm::{run_tm, Scheme, TmStats};
use bulk_trace::{TlsWorkload, TmWorkload};
use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

/// Why a runtime refused to execute a workload, or why an execution
/// could not run to completion.
#[derive(Debug)]
pub enum RuntimeError {
    /// The scheme has no sound mapping onto this substrate.
    UnsupportedScheme {
        /// The refusing runtime's name.
        runtime: &'static str,
        /// The requested scheme.
        scheme: String,
        /// Why the combination is unsupported.
        why: &'static str,
    },
    /// The workload trace failed validation.
    InvalidWorkload(String),
    /// A worker thread died (panic or injected kill) and the supervisor
    /// could not recover it — the respawn budget was exhausted, or its
    /// checkpoint failed verification.
    WorkerDied {
        /// The dead processor (TM workload thread / TLS pool worker).
        proc: usize,
        /// The bus slot it held claimed-but-unpublished, if any (the
        /// slot the supervisor fenced).
        slot: Option<usize>,
        /// Human-readable cause (panic message, kill point, budget).
        detail: String,
    },
    /// The run tripped a liveness bound — typically the wall-clock
    /// watchdog detecting a hung peer. Carries the replay seed.
    Liveness(bulk_live::LivenessViolation),
    /// An internal protocol invariant broke (double publish, token
    /// ordering, resume-state underflow). Always a bug, never a
    /// workload problem.
    ProtocolBug(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnsupportedScheme { runtime, scheme, why } => {
                write!(f, "runtime '{runtime}' does not support scheme {scheme}: {why}")
            }
            RuntimeError::InvalidWorkload(e) => write!(f, "invalid workload: {e}"),
            RuntimeError::WorkerDied { proc, slot, detail } => match slot {
                Some(s) => write!(
                    f,
                    "worker {proc} died holding bus slot {s} and could not be recovered: {detail}"
                ),
                None => write!(f, "worker {proc} died and could not be recovered: {detail}"),
            },
            RuntimeError::Liveness(v) => write!(f, "liveness violation: {v}"),
            RuntimeError::ProtocolBug(e) => write!(f, "parallel-runtime protocol bug: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Substrate-specific detail attached to a [`RunReport`].
#[derive(Debug, Clone)]
pub enum RunDetail {
    /// Full sim TM statistics.
    Tm(TmStats),
    /// Full sim TLS statistics.
    Tls(TlsStats),
    /// Parallel-runtime statistics (either machine).
    Par(ParStats),
}

/// What every runtime returns: the cross-substrate commit summary plus
/// the substrate's own statistics.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which runtime produced this report (`"sim"` or `"par"`).
    pub runtime: &'static str,
    /// Committed outer transactions (TM) or tasks (TLS).
    pub commits: u64,
    /// Squashes / task restarts.
    pub squashes: u64,
    /// Committed history in the substrate's commit order.
    pub history: Vec<CommitEvent>,
    /// Invariant violations observed (empty on a healthy run).
    pub violations: Vec<InvariantViolation>,
    /// Wall-clock nanoseconds the run took on the host.
    pub wall_ns: u64,
    /// The substrate's full statistics.
    pub detail: RunDetail,
}

impl RunReport {
    /// The committed-order class identity: the set of `(thread, ordinal)`
    /// pairs. Within one thread ordinals are contiguous, so equality of
    /// these sets means "same transactions committed, each thread's in
    /// program order" — the strongest order statement preserved across
    /// substrates with different timestamps.
    pub fn commit_class(&self) -> BTreeSet<(u32, u64)> {
        self.history.iter().map(CommitEvent::identity).collect()
    }
}

/// Checks that two reports land in the same committed-order class and
/// that both are auditor-clean. `Err` carries a human-readable diff.
pub fn same_commit_class(a: &RunReport, b: &RunReport) -> Result<(), String> {
    if !a.violations.is_empty() {
        return Err(format!("{} run has violations: {:?}", a.runtime, a.violations));
    }
    if !b.violations.is_empty() {
        return Err(format!("{} run has violations: {:?}", b.runtime, b.violations));
    }
    let (ca, cb) = (a.commit_class(), b.commit_class());
    if ca != cb {
        let only_a: Vec<_> = ca.difference(&cb).take(5).collect();
        let only_b: Vec<_> = cb.difference(&ca).take(5).collect();
        return Err(format!(
            "committed-order classes differ: {} commits on {} vs {} on {}; \
             only-{}: {only_a:?}, only-{}: {only_b:?}",
            ca.len(),
            a.runtime,
            cb.len(),
            b.runtime,
            a.runtime,
            b.runtime,
        ));
    }
    Ok(())
}

/// An execution substrate for the TM and TLS machines.
pub trait Runtime {
    /// The substrate's name, embedded in reports and metrics artifacts.
    fn name(&self) -> &'static str;

    /// Runs a TM workload under `scheme`.
    fn run_tm(
        &self,
        workload: &TmWorkload,
        scheme: Scheme,
        cfg: &SimConfig,
    ) -> Result<RunReport, RuntimeError>;

    /// Runs a TLS workload under `scheme`.
    fn run_tls(
        &self,
        workload: &TlsWorkload,
        scheme: TlsScheme,
        cfg: &SimConfig,
    ) -> Result<RunReport, RuntimeError>;
}

/// The deterministic discrete-event simulator, behind the trait. Its
/// semantics are exactly `bulk_tm::run_tm` / `bulk_tls::run_tls` — this
/// adapter only repackages the stats into a [`RunReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimRuntime;

impl Runtime for SimRuntime {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_tm(
        &self,
        workload: &TmWorkload,
        scheme: Scheme,
        cfg: &SimConfig,
    ) -> Result<RunReport, RuntimeError> {
        let start = Instant::now();
        let stats = run_tm(workload, scheme, cfg);
        Ok(RunReport {
            runtime: self.name(),
            commits: stats.commits,
            squashes: stats.squashes,
            history: stats.history.clone(),
            violations: stats.violations.clone(),
            wall_ns: start.elapsed().as_nanos() as u64,
            detail: RunDetail::Tm(stats),
        })
    }

    fn run_tls(
        &self,
        workload: &TlsWorkload,
        scheme: TlsScheme,
        cfg: &SimConfig,
    ) -> Result<RunReport, RuntimeError> {
        let start = Instant::now();
        let stats = run_tls(workload, scheme, cfg);
        Ok(RunReport {
            runtime: self.name(),
            commits: stats.commits,
            squashes: stats.squashes,
            history: stats.history.clone(),
            violations: stats.violations.clone(),
            wall_ns: start.elapsed().as_nanos() as u64,
            detail: RunDetail::Tls(stats),
        })
    }
}

/// The OS-thread parallel runtime. The [`SimConfig`] parameter is
/// accepted for trait parity but ignored: real threads have no
/// simulated clock; timing knobs live in [`ParConfig`].
#[derive(Debug, Clone, Default)]
pub struct ParRuntime {
    /// The runtime's tuning knobs.
    pub cfg: ParConfig,
}

impl ParRuntime {
    /// A runtime with the given configuration.
    pub fn new(cfg: ParConfig) -> Self {
        ParRuntime { cfg }
    }
}

impl Runtime for ParRuntime {
    fn name(&self) -> &'static str {
        "par"
    }

    fn run_tm(
        &self,
        workload: &TmWorkload,
        scheme: Scheme,
        _cfg: &SimConfig,
    ) -> Result<RunReport, RuntimeError> {
        let stats = run_par_tm(workload, scheme, &self.cfg)?;
        Ok(RunReport {
            runtime: self.name(),
            commits: stats.commits,
            squashes: stats.squashes,
            history: stats.history.clone(),
            violations: stats.violations.clone(),
            wall_ns: stats.wall_ns,
            detail: RunDetail::Par(stats),
        })
    }

    fn run_tls(
        &self,
        workload: &TlsWorkload,
        scheme: TlsScheme,
        _cfg: &SimConfig,
    ) -> Result<RunReport, RuntimeError> {
        let stats = run_par_tls(workload, scheme, &self.cfg)?;
        Ok(RunReport {
            runtime: self.name(),
            commits: stats.commits,
            squashes: stats.squashes,
            history: stats.history.clone(),
            violations: stats.violations.clone(),
            wall_ns: stats.wall_ns,
            detail: RunDetail::Par(stats),
        })
    }
}

/// Resolves a runtime by its CLI name.
pub fn runtime_by_name(name: &str, par_cfg: ParConfig) -> Option<Box<dyn Runtime>> {
    match name {
        "sim" => Some(Box::new(SimRuntime)),
        "par" => Some(Box::new(ParRuntime::new(par_cfg))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_trace::profiles;

    #[test]
    fn sim_runtime_reports_history_matching_commits() {
        let wl = profiles::tm_profile("mc").unwrap().generate(1);
        let r = SimRuntime.run_tm(&wl, Scheme::Bulk, &SimConfig::tm_default()).unwrap();
        assert_eq!(r.runtime, "sim");
        assert_eq!(r.commits as usize, r.history.len());
        assert_eq!(r.commit_class().len(), r.history.len());
    }

    #[test]
    fn commit_class_ignores_timestamps() {
        let wl = profiles::tm_profile("mc").unwrap().generate(1);
        let a = SimRuntime.run_tm(&wl, Scheme::Bulk, &SimConfig::tm_default()).unwrap();
        let mut b = a.clone();
        for ev in &mut b.history {
            ev.at += 1000; // same class, shifted clock
        }
        same_commit_class(&a, &b).unwrap();
    }

    #[test]
    fn differing_classes_are_reported() {
        let wl = profiles::tm_profile("mc").unwrap().generate(1);
        let a = SimRuntime.run_tm(&wl, Scheme::Bulk, &SimConfig::tm_default()).unwrap();
        let mut b = a.clone();
        b.history.pop();
        let err = same_commit_class(&a, &b).unwrap_err();
        assert!(err.contains("committed-order classes differ"), "{err}");
    }

    #[test]
    fn runtime_lookup() {
        assert!(runtime_by_name("sim", ParConfig::default()).is_some());
        assert!(runtime_by_name("par", ParConfig::default()).is_some());
        assert!(runtime_by_name("hw", ParConfig::default()).is_none());
    }
}
