//! Shared recovery machinery of the parallel engines: typed worker
//! halts, the run-wide control block, and panic-payload extraction.
//!
//! A worker never aborts the process. Every way it can stop — finishing
//! its trace, an injected kill, a detected stall, a broken invariant, a
//! supervisor-requested abort, or a genuine panic (caught at the thread
//! boundary) — funnels into one [`Halt`] value the supervisor folds
//! into its recovery decision: fence-and-respawn for crashes, a typed
//! [`RuntimeError`](crate::RuntimeError) for everything unrecoverable.

use bulk_chaos::CrashPoint;
use bulk_live::{LivenessViolation, WallClockWatchdog};
use std::sync::atomic::{AtomicBool, Ordering};

/// Why a worker's run loop stopped before finishing its trace.
#[derive(Debug)]
pub(crate) enum Halt {
    /// An injected kill fired (chaos schedule or probabilistic).
    Killed {
        /// The protocol point the kill hit.
        point: CrashPoint,
    },
    /// The worker's closure panicked; caught at the thread boundary.
    Panicked(String),
    /// The wall-clock watchdog tripped while this worker was spinning.
    Stalled(LivenessViolation),
    /// A protocol invariant broke (double publish, token misorder).
    Bug(String),
    /// The supervisor requested an abort; the worker unwound cleanly.
    Aborted,
}

impl Halt {
    /// `true` for the halts the supervisor treats as a worker *crash*
    /// (fence the orphaned slot, respawn from the last checkpoint).
    pub(crate) fn is_crash(&self) -> bool {
        matches!(self, Halt::Killed { .. } | Halt::Panicked(_))
    }

    /// Human-readable cause, embedded in `WorkerDied` details.
    pub(crate) fn describe(&self) -> String {
        match self {
            Halt::Killed { point } => format!("injected kill at {point} point"),
            Halt::Panicked(msg) => format!("panicked: {msg}"),
            Halt::Stalled(v) => format!("stalled: {v}"),
            Halt::Bug(m) => format!("protocol bug: {m}"),
            Halt::Aborted => "aborted".into(),
        }
    }
}

/// Run-wide control block shared by the supervisor and every worker
/// incarnation: the abort flag and the wall-clock stall detector.
pub(crate) struct RunControl {
    abort: AtomicBool,
    watchdog: WallClockWatchdog,
    scheme: String,
    seed: u64,
}

impl RunControl {
    pub(crate) fn new(scheme: String, seed: u64, stall_timeout_ms: u64) -> Self {
        RunControl {
            abort: AtomicBool::new(false),
            watchdog: WallClockWatchdog::new(stall_timeout_ms.saturating_mul(1_000_000)),
            scheme,
            seed,
        }
    }

    /// Tells every worker to unwind at its next spin-site check.
    pub(crate) fn abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Notes a bus publish (progress) for the stall detector.
    pub(crate) fn progress(&self) {
        self.watchdog.note_progress();
    }

    /// Checks the wall-clock bound; `Some` carries the typed violation
    /// (with the replay seed) once the bound is exceeded.
    pub(crate) fn check_stall(&self, thread: Option<usize>) -> Option<LivenessViolation> {
        self.watchdog
            .stalled()
            .then(|| self.watchdog.violation(&self.scheme, thread, Some(self.seed)))
    }
}

/// Extracts a readable message from a caught panic payload.
pub(crate) fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_flag_round_trips() {
        let ctl = RunControl::new("par/tm/Bulk".into(), 7, 0);
        assert!(!ctl.aborted());
        ctl.abort();
        assert!(ctl.aborted());
        // Watchdog disabled at 0: never stalls.
        assert!(ctl.check_stall(Some(0)).is_none());
    }

    #[test]
    fn stall_check_carries_scheme_and_seed() {
        let ctl = RunControl::new("par/tls/Bulk".into(), 99, 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let v = ctl.check_stall(Some(3)).expect("1ms bound must trip");
        assert_eq!(v.scheme, "par/tls/Bulk");
        assert_eq!(v.thread, Some(3));
        assert_eq!(v.seed, Some(99));
    }

    #[test]
    fn crash_classification() {
        assert!(Halt::Killed { point: CrashPoint::Claim }.is_crash());
        assert!(Halt::Panicked("x".into()).is_crash());
        assert!(!Halt::Aborted.is_crash());
        assert!(!Halt::Bug("x".into()).is_crash());
        assert!(panic_msg(Box::new("boom")).contains("boom"));
        assert!(panic_msg(Box::new(String::from("bang"))).contains("bang"));
    }
}
