//! Tuning knobs of the parallel runtime.

use bulk_chaos::{ChaosConfig, KillSpec};

/// Fault-injection plan for the stress smoke (`--cfg bulk_stress` runs
/// arm it; ordinary runs leave it off). Both knobs are percentages in
/// `0..=100`, drawn from a deterministic per-thread RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressConfig {
    /// Chance that an applied record is delivered to the same receiver a
    /// second time. The dedup filter must drop every such re-delivery;
    /// `duplicate_applications` staying 0 is the asserted property.
    pub redeliver_percent: u8,
    /// Chance that a committer bumps the bus epoch before stamping its
    /// ticket, simulating an arbiter re-election mid-run.
    pub epoch_bump_percent: u8,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig { redeliver_percent: 25, epoch_bump_percent: 10 }
    }
}

/// Configuration of the [`ParRuntime`](crate::ParRuntime).
#[derive(Debug, Clone, PartialEq)]
pub struct ParConfig {
    /// Worker threads for TLS runs (TM runs spawn one OS thread per
    /// workload thread). Tasks are dealt round-robin to workers.
    pub tls_workers: usize,
    /// Wall-clock nanoseconds one `Compute(1000)` op dwells for. The
    /// discrete-event sim charges compute to a simulated clock; real
    /// threads have to *spend* the time for thread-count scaling to be
    /// observable, especially on hosts with fewer cores than workload
    /// threads (compute dwell is sleep-based, so it overlaps across
    /// threads regardless of core count). `0` disables dwell — right
    /// for conformance tests, wrong for throughput benches.
    pub compute_ns_per_kcycle: u64,
    /// Seed for squash-backoff jitter and the stress plan.
    pub seed: u64,
    /// Duplicate-delivery / epoch-churn injection, when armed.
    pub stress: Option<StressConfig>,
    /// Probabilistic real-thread fault injection (seeded worker kills,
    /// stalls, delayed publishes). `None` leaves the injector unarmed.
    pub chaos: Option<ChaosConfig>,
    /// Explicit deterministic worker-kill schedule, applied on top of
    /// (or without) `chaos`.
    pub kills: Vec<KillSpec>,
    /// Worker respawns the supervisor will perform before giving up with
    /// a typed [`RuntimeError::WorkerDied`](crate::RuntimeError). `0`
    /// means any worker death is fatal.
    pub respawn_budget: u32,
    /// Wall-clock milliseconds without a bus publish before the run is
    /// declared stalled (a typed `LivenessViolation`). `0` disables the
    /// watchdog.
    pub stall_timeout_ms: u64,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            tls_workers: 4,
            compute_ns_per_kcycle: 0,
            seed: 0,
            stress: None,
            chaos: None,
            kills: Vec::new(),
            respawn_budget: 8,
            stall_timeout_ms: 5_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quiet() {
        let c = ParConfig::default();
        assert_eq!(c.tls_workers, 4);
        assert_eq!(c.compute_ns_per_kcycle, 0);
        assert!(c.stress.is_none());
        assert!(c.chaos.is_none());
        assert!(c.kills.is_empty());
        assert_eq!(c.respawn_budget, 8);
        assert_eq!(c.stall_timeout_ms, 5_000);
    }
}
