//! Workload builders for the parallel runtime's benches and tests.

use bulk_mem::Addr;
use bulk_trace::{ThreadTrace, TmOp, TmWorkload};

/// A conflict-light strong-scaling workload: `total_txs` transactions
/// split evenly across `threads` threads, each thread touching a
/// private 16 MiB address region so commits never conflict (squashes
/// would be pure signature aliasing, and the regions are sized so there
/// is none in practice).
///
/// Each transaction reads and writes `accesses` private lines and
/// computes `compute` cycles. With the
/// [`ParConfig::compute_ns_per_kcycle`](crate::ParConfig::compute_ns_per_kcycle)
/// dwell armed, the workload
/// is latency-bound, so commit throughput scales with thread count even
/// on hosts with fewer cores than threads — the dwell overlaps across
/// threads the way memory latency overlaps across real processors.
pub fn conflict_light_tm(
    threads: usize,
    total_txs: usize,
    accesses: usize,
    compute: u32,
) -> TmWorkload {
    let per_thread = total_txs.div_ceil(threads.max(1));
    let mut traces = Vec::with_capacity(threads);
    let mut remaining = total_txs;
    for t in 0..threads {
        let txs = per_thread.min(remaining);
        remaining -= txs;
        let base = (t as u32) << 24; // 16 MiB private region per thread
        let mut ops = Vec::with_capacity(txs * (accesses * 2 + 3));
        for tx in 0..txs {
            ops.push(TmOp::Begin);
            ops.push(TmOp::Compute(compute));
            for a in 0..accesses {
                let addr = base + ((tx * accesses + a) as u32) * 64;
                ops.push(TmOp::Read(Addr::new(addr)));
                ops.push(TmOp::Write(Addr::new(addr + 4)));
            }
            ops.push(TmOp::End);
        }
        traces.push(ThreadTrace { ops });
    }
    TmWorkload { name: format!("conflict_light_t{threads}_n{total_txs}"), threads: traces }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_transactions_evenly() {
        let wl = conflict_light_tm(4, 48, 2, 100);
        assert_eq!(wl.threads.len(), 4);
        let outer_ends: usize = wl
            .threads
            .iter()
            .map(|t| t.ops.iter().filter(|o| matches!(o, TmOp::End)).count())
            .sum();
        assert_eq!(outer_ends, 48);
        for t in &wl.threads {
            t.validate(8).unwrap();
        }
    }

    #[test]
    fn uneven_split_still_totals() {
        let wl = conflict_light_tm(8, 10, 1, 0);
        let outer_ends: usize = wl
            .threads
            .iter()
            .map(|t| t.ops.iter().filter(|o| matches!(o, TmOp::End)).count())
            .sum();
        assert_eq!(outer_ends, 10);
    }
}
