//! Counters and post-run auditing of the parallel runtime.

use crate::bus::{BusLog, RecordKind};
use bulk_chaos::{Auditor, InvariantKind, InvariantViolation};
use bulk_core::CommitEvent;

/// Aggregate statistics of one parallel-runtime run, folded from the
/// per-thread workers after join.
#[derive(Debug, Clone, Default)]
pub struct ParStats {
    /// Committed outer transactions (TM) or tasks (TLS).
    pub commits: u64,
    /// Squashes (full restarts of the running transaction/task).
    pub squashes: u64,
    /// Squashes where the exact oracle saw no conflict (signature
    /// aliasing only).
    pub false_squashes: u64,
    /// Commit-claim CAS attempts that lost the tail race and revalidated.
    pub claim_retries: u64,
    /// Non-transactional stores broadcast as individual records.
    pub non_tx_stores: u64,
    /// Records published on the bus log.
    pub records: u64,
    /// Duplicate deliveries dropped by receiver-side dedup (nonzero only
    /// under stress injection).
    pub dedup_drops: u64,
    /// Times one record was applied twice by one receiver (must stay 0).
    pub duplicate_applications: u64,
    /// Stress-mode re-deliveries injected.
    pub stress_redeliveries: u64,
    /// Stress-mode epoch bumps injected (arbiter re-elections).
    pub stress_epoch_bumps: u64,
    /// Worker deaths observed by the supervisor (injected kills plus
    /// genuine panics).
    pub worker_crashes: u64,
    /// Workers respawned from their last verified checkpoint.
    pub respawns: u64,
    /// Fence tombstones published into dead workers' orphaned slots
    /// (TM; the TLS engine adopts the claimed slot instead).
    pub fences: u64,
    /// Claimed slots a respawned TLS worker adopted and republished.
    pub adopted_slots: u64,
    /// Wall-clock nanoseconds spent in supervisor recovery (fencing,
    /// checkpoint verification, respawn).
    pub recovery_ns: u64,
    /// Chaos-injected worker stalls actually slept through.
    pub injected_stalls: u64,
    /// Chaos-injected claim-to-publish delays actually slept through.
    pub delayed_publishes: u64,
    /// Final bus epoch.
    pub epoch: u64,
    /// Individual invariant checks performed (apply-time oracle checks
    /// plus the post-run log audit).
    pub audit_checks: u64,
    /// Wall-clock duration of the run, in nanoseconds.
    pub wall_ns: u64,
    /// Commits per workload thread (TM) or per worker (TLS).
    pub per_thread_commits: Vec<u64>,
    /// Committed history in bus-log order.
    pub history: Vec<CommitEvent>,
    /// Invariant violations found at apply time or by the post-run
    /// audit (empty on a healthy run).
    pub violations: Vec<InvariantViolation>,
}

/// Post-run audit of the bus log, shared by the TM and TLS engines.
///
/// Everything here is *sound*: each check flags only genuine protocol
/// bugs, never racy-but-correct schedules. The timing-sensitive half of
/// serializability (a record conflicting with a set the receiver built
/// *before* applying it) is checked at apply time by the workers
/// themselves, exact-oracle alongside signatures; this pass re-checks
/// the structure the protocol promises of the finished log:
///
/// * density — every claimed slot was published;
/// * `validated_to == slot` — each committer's claim succeeded only
///   against its fully validated prefix (the CAS postcondition);
/// * per-publisher ordinals increase in log order — the global commit
///   order embeds every thread's program order;
/// * ticket uniqueness — `(committer, serial)` never repeats, which is
///   what makes receiver-side dedup exactly-once rather than lossy;
/// * signature containment — every exact written line is contained in
///   the broadcast write signature (no false negatives, the paper's
///   one-sided error guarantee).
///
/// [`RecordKind::Fence`] tombstones participate in density, claim and
/// ticket-uniqueness checks like any record — a fenced log is still
/// dense and exactly-once — but carry no ordinal or write set, so the
/// program-order and containment checks skip them.
pub(crate) fn audit_log(log: &BusLog, auditor: &mut Auditor, checks: &mut u64) {
    let tail = log.tail();
    let mut last_ordinal: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut seen_tickets = std::collections::HashSet::new();
    for i in 0..tail {
        let Some(rec) = log.get(i) else {
            auditor.record(
                InvariantKind::TokenProtocol,
                0,
                i as u64,
                format!("bus slot {i} claimed but never published"),
            );
            continue;
        };
        *checks += 1;
        if rec.validated_to != i {
            auditor.record(
                InvariantKind::Serializability,
                rec.thread as usize,
                i as u64,
                format!(
                    "record {i} published after validating only {} records",
                    rec.validated_to
                ),
            );
        }
        *checks += 1;
        if !seen_tickets.insert((rec.ticket.committer, rec.ticket.serial)) {
            auditor.record(
                InvariantKind::TokenProtocol,
                rec.thread as usize,
                i as u64,
                format!(
                    "ticket ({}, {}) reused; dedup would drop a real commit",
                    rec.ticket.committer, rec.ticket.serial
                ),
            );
        }
        if rec.kind == RecordKind::Commit {
            *checks += 1;
            if let Some(&prev) = last_ordinal.get(&rec.thread) {
                if rec.ordinal <= prev {
                    auditor.record(
                        InvariantKind::Serializability,
                        rec.thread as usize,
                        i as u64,
                        format!(
                            "thread {} committed ordinal {} after {}",
                            rec.thread, rec.ordinal, prev
                        ),
                    );
                }
            }
            last_ordinal.insert(rec.thread, rec.ordinal);
        }
        if let Some(sig) = &rec.w_sig {
            for &line in &rec.exact_w {
                *checks += 1;
                if !sig.contains_line(line) {
                    auditor.record(
                        InvariantKind::SignatureContainment,
                        rec.thread as usize,
                        i as u64,
                        format!("committed line {line:?} missing from broadcast W_C"),
                    );
                }
            }
        }
    }
}

/// Extracts the committed history (commit records only, in log order).
pub(crate) fn history_of(log: &BusLog) -> Vec<CommitEvent> {
    let mut history = Vec::new();
    for i in 0..log.tail() {
        if let Some(rec) = log.get(i) {
            if rec.kind == RecordKind::Commit {
                history.push(CommitEvent { thread: rec.thread, ordinal: rec.ordinal, at: i as u64 });
            }
        }
    }
    history
}

#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerStats {
    pub commits: u64,
    pub squashes: u64,
    pub false_squashes: u64,
    pub claim_retries: u64,
    pub non_tx_stores: u64,
    pub dedup_drops: u64,
    pub duplicate_applications: u64,
    pub stress_redeliveries: u64,
    pub stress_epoch_bumps: u64,
    pub injected_stalls: u64,
    pub delayed_publishes: u64,
    pub audit_checks: u64,
    pub violations: Vec<InvariantViolation>,
}

impl ParStats {
    pub(crate) fn fold(&mut self, w: WorkerStats) {
        self.commits += w.commits;
        self.squashes += w.squashes;
        self.false_squashes += w.false_squashes;
        self.claim_retries += w.claim_retries;
        self.non_tx_stores += w.non_tx_stores;
        self.dedup_drops += w.dedup_drops;
        self.duplicate_applications += w.duplicate_applications;
        self.stress_redeliveries += w.stress_redeliveries;
        self.stress_epoch_bumps += w.stress_epoch_bumps;
        self.injected_stalls += w.injected_stalls;
        self.delayed_publishes += w.delayed_publishes;
        self.audit_checks += w.audit_checks;
        self.violations.extend(w.violations);
    }
}
