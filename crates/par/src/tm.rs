//! The parallel TM engine: one OS thread per workload thread, conflicts
//! disambiguated by Bulk signatures over the shared [`BusLog`].
//!
//! Protocol (the paper's lazy commit, made concurrent):
//!
//! * each thread executes its trace speculatively, inserting read/write
//!   lines into local R/W signatures (Bulk) and exact oracle sets
//!   (always);
//! * between operations it *polls* the log and applies every new record
//!   to its speculative state: a record whose `W_C` intersects the local
//!   `R ∪ W` squashes the transaction (restart from `Begin`, cleared
//!   sets, jittered-backoff yield);
//! * commit is validate-then-claim: the thread polls until its view is
//!   the full log, then CASes the tail from that length — success means
//!   no record it hasn't validated against can ever be ordered before
//!   its own, so publishing is race-free. A failed CAS means someone
//!   else committed; the loser re-validates against the winner (and may
//!   squash instead);
//! * non-transactional stores publish one-line records (the paper's
//!   individual invalidation path), so speculative readers of those
//!   lines squash exactly as in the sim.
//!
//! Termination is unconditional: the log holds exactly one record per
//! outer transaction and non-transactional store (plus one fence per
//! crash), each record squashes each thread at most once (receivers
//! apply exactly once — that's the dedup invariant), and every failed
//! commit CAS implies another thread's commit was published. Squashes
//! are therefore bounded by `records × threads` and no livelock or
//! escalation path is needed.
//!
//! # Fault model
//!
//! Workers die — injected kills from the chaos schedule, or genuine
//! panics caught at the thread boundary. Death never aborts the run:
//! each worker reports a typed [`Halt`] to a supervisor, which
//!
//! 1. *fences* the dead worker's claimed-but-unpublished bus slot with
//!    a [`RecordKind::Fence`] tombstone (epoch-bumped, fresh ticket),
//!    so the log stays dense and survivors stop spinning;
//! 2. *verifies* the worker's last boundary checkpoint (the
//!    `crates/live` crash-consistency proof) against the published log;
//! 3. *respawns* the processor from that boundary, with a fresh
//!    [`DedupFilter`] that replays the whole log — exactly-once `W_C`
//!    application holds across the crash because replayed records are
//!    admitted once per filter and the worker's own old records never
//!    squash it.
//!
//! A hung (rather than dead) peer is caught by the wall-clock watchdog:
//! every spin site checks the bound and turns a stall into a typed
//! `LivenessViolation` carrying the replay seed.

use crate::bus::{BusLog, BusRecord, RecordKind};
use crate::config::ParConfig;
use crate::recover::{panic_msg, Halt, RunControl};
use crate::runtime::RuntimeError;
use crate::stats::{audit_log, history_of, ParStats, WorkerStats};
use bulk_chaos::{Auditor, CrashPoint, InvariantKind, ThreadChaos, WorkerChaos};
use bulk_core::SpilledVersion;
use bulk_live::{Checkpoint, CommitTicket, DedupFilter};
use bulk_mem::LineAddr;
use bulk_rng::{Rng, SeedableRng, SmallRng};
use bulk_sig::{Signature, SignatureConfig};
use bulk_tm::Scheme;
use bulk_trace::{TmOp, TmWorkload};
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Nesting bound shared with the sim machine's trace validation.
const MAX_DEPTH: usize = 8;
/// Accumulated compute dwell is slept in chunks no smaller than this, so
/// fine-grained `Compute` ops don't turn into sub-microsecond sleeps.
const DWELL_FLUSH_NS: u64 = 50_000;
/// Supervisor wake-up period while waiting for worker events, so the
/// wall-clock watchdog is checked even when every worker is spinning.
const SUPERVISE_TICK_MS: u64 = 50;

/// What a finished (or dead) worker incarnation reports to the
/// supervisor.
struct TmEvent {
    proc: usize,
    outcome: Result<(), Halt>,
    /// The bus slot held claimed-but-unpublished at death, if any.
    claimed: Option<usize>,
    /// Next unconsumed ticket serial (a `Publish`-point death consumed
    /// `serial - 1` without publishing it).
    serial: u64,
    boundary: Boundary,
    stats: WorkerStats,
}

/// A worker's last recovery point: the pc just past its most recent
/// publish, the ordinals counted up to it, and the crash-consistency
/// checkpoint proving its speculative state was clean there.
#[derive(Debug, Clone)]
struct Boundary {
    pc: usize,
    commit_ordinal: u64,
    non_tx_ordinal: u64,
    checkpoint: Checkpoint,
}

/// Runs `workload` under the parallel runtime and returns the folded
/// statistics. Only the lazy-commit schemes are supported: `Bulk`
/// (signatures) and `Lazy` (exact sets); eager schemes disambiguate at
/// access time against remote *uncommitted* state, which has no sound
/// mapping onto a broadcast-log substrate.
pub fn run_par_tm(
    workload: &TmWorkload,
    scheme: Scheme,
    cfg: &ParConfig,
) -> Result<ParStats, RuntimeError> {
    match scheme {
        Scheme::Bulk | Scheme::Lazy => {}
        other => {
            return Err(RuntimeError::UnsupportedScheme {
                runtime: "par",
                scheme: other.to_string(),
                why: "eager/partial schemes need access-time remote state; \
                      the broadcast-log substrate only orders commits",
            })
        }
    }
    for (i, t) in workload.threads.iter().enumerate() {
        t.validate(MAX_DEPTH)
            .map_err(|e| RuntimeError::InvalidWorkload(format!("thread {i}: {e}")))?;
    }

    let n = workload.threads.len();
    let sig_config = SignatureConfig::s14_tm().into_shared();
    let line_bytes = sig_config.line_bytes();
    let capacity: usize = workload.threads.iter().map(|t| broadcasts_of(&t.ops)).sum();
    let chaos = ThreadChaos::new(n, cfg.chaos.clone(), cfg.kills.clone());
    // Every crash can orphan at most one claimed slot, which the
    // supervisor fences; the log needs slack for those extra records.
    let log = BusLog::new((capacity + chaos.crash_bound()).max(1));
    let ctl = RunControl::new(format!("par/tm/{scheme}"), cfg.seed, cfg.stall_timeout_ms);

    let mut stats = ParStats { per_thread_commits: vec![0; n], ..ParStats::default() };
    let mut fatal: Option<RuntimeError> = None;
    let start = Instant::now();
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<TmEvent>();
        let spawn_worker = |proc: usize, incarnation: u32, resume: Option<(Boundary, u64)>| {
            let tx = tx.clone();
            let sig_config = sig_config.clone();
            let wchaos = chaos.worker(proc, incarnation);
            let ops = &workload.threads[proc].ops;
            let (log, ctl) = (&log, &ctl);
            s.spawn(move || {
                let mut w = TmWorker::new(proc, scheme, sig_config, line_bytes, cfg, wchaos);
                if let Some((b, serial)) = resume {
                    w.restore(b, serial);
                }
                let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    w.run(ops, log, ctl)
                })) {
                    Ok(r) => r,
                    Err(p) => Err(Halt::Panicked(panic_msg(p))),
                };
                w.stats.dedup_drops = w.dedup.drops();
                w.stats.duplicate_applications = w.dedup.duplicate_applications();
                let _ = tx.send(TmEvent {
                    proc,
                    outcome,
                    claimed: w.claimed_unpublished,
                    serial: w.serial,
                    boundary: w.boundary.clone(),
                    stats: std::mem::take(&mut w.stats),
                });
            });
        };
        for tid in 0..n {
            spawn_worker(tid, 0, None);
        }

        let mut live = n;
        let mut budget = cfg.respawn_budget;
        let mut incarnations = vec![0u32; n];
        while live > 0 {
            let ev = match rx.recv_timeout(std::time::Duration::from_millis(SUPERVISE_TICK_MS)) {
                Ok(ev) => ev,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if fatal.is_none() {
                        if let Some(v) = ctl.check_stall(None) {
                            fatal = Some(RuntimeError::Liveness(v));
                            ctl.abort();
                        }
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            live -= 1;
            stats.fold(ev.stats);
            match ev.outcome {
                Ok(()) | Err(Halt::Aborted) => {}
                Err(Halt::Stalled(v)) => {
                    if fatal.is_none() {
                        fatal = Some(RuntimeError::Liveness(v));
                        ctl.abort();
                    }
                }
                Err(Halt::Bug(m)) => {
                    if fatal.is_none() {
                        fatal = Some(RuntimeError::ProtocolBug(m));
                        ctl.abort();
                    }
                }
                Err(halt) => {
                    // Killed or Panicked: fence, verify, respawn.
                    debug_assert!(halt.is_crash());
                    stats.worker_crashes += 1;
                    let t0 = Instant::now();
                    if let Some(slot) = ev.claimed {
                        // The orphaned slot would hang every survivor's
                        // wait_for; fence it *before* any budget check so
                        // the log stays dense even when recovery stops.
                        log.bump_epoch();
                        let fence = BusRecord {
                            ticket: CommitTicket {
                                epoch: log.epoch(),
                                committer: ev.proc,
                                serial: ev.serial,
                            },
                            thread: ev.proc as u32,
                            ordinal: 0,
                            kind: RecordKind::Fence,
                            w_sig: None,
                            exact_w: Vec::new(),
                            exact_r: Vec::new(),
                            validated_to: slot,
                        };
                        if log.publish(slot, fence).is_err() {
                            if fatal.is_none() {
                                fatal = Some(RuntimeError::ProtocolBug(format!(
                                    "fence for dead worker {} hit occupied slot {slot}",
                                    ev.proc
                                )));
                                ctl.abort();
                            }
                        } else {
                            stats.fences += 1;
                            ctl.progress();
                        }
                    }
                    if fatal.is_some() {
                        continue;
                    }
                    if budget == 0 {
                        fatal = Some(RuntimeError::WorkerDied {
                            proc: ev.proc,
                            slot: ev.claimed,
                            detail: format!("{}; respawn budget exhausted", halt.describe()),
                        });
                        ctl.abort();
                        continue;
                    }
                    budget -= 1;
                    match verify_tm_resume(&log, ev.proc, &ev.boundary, &sig_config) {
                        Ok(()) => {
                            // The fence consumed `ev.serial`; the respawn
                            // starts past it.
                            let serial =
                                if ev.claimed.is_some() { ev.serial + 1 } else { ev.serial };
                            incarnations[ev.proc] += 1;
                            spawn_worker(ev.proc, incarnations[ev.proc], Some((ev.boundary, serial)));
                            live += 1;
                            stats.respawns += 1;
                        }
                        Err(e) => {
                            fatal = Some(e);
                            ctl.abort();
                        }
                    }
                    stats.recovery_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    if let Some(err) = fatal {
        return Err(err);
    }

    stats.wall_ns = wall_ns;
    stats.epoch = log.epoch();
    stats.records = log.tail() as u64;
    stats.history = history_of(&log);
    for ev in &stats.history {
        stats.per_thread_commits[ev.thread as usize] += 1;
    }

    let mut auditor = Auditor::new(format!("par/tm/{scheme}"), n, Some(cfg.seed));
    let mut checks = 0;
    audit_log(&log, &mut auditor, &mut checks);
    checks += 1;
    let expected = capacity as u64 + stats.fences;
    if log.tail() as u64 != expected {
        auditor.record(
            InvariantKind::TokenProtocol,
            0,
            log.tail() as u64,
            format!("bus log has {} records, workload implies {expected}", log.tail()),
        );
    }
    stats.audit_checks += checks;
    stats.violations.extend(auditor.take_violations());
    Ok(stats)
}

/// Pre-respawn verification: the dead worker's boundary checkpoint must
/// prove a clean speculative state (the `crates/live` crash-consistency
/// proof), and its ordinals must match what the worker actually
/// published — the log is the ground truth a lying checkpoint can't
/// survive.
fn verify_tm_resume(
    log: &BusLog,
    proc: usize,
    boundary: &Boundary,
    sig_config: &Arc<SignatureConfig>,
) -> Result<(), RuntimeError> {
    let clean = SpilledVersion {
        r: Signature::with_shared(sig_config.clone()),
        w: Signature::with_shared(sig_config.clone()),
        w_sh: None,
        overflowed: false,
    };
    boundary.checkpoint.verify(&clean, &[]).map_err(|e| RuntimeError::WorkerDied {
        proc,
        slot: None,
        detail: format!("checkpoint failed verification: {e}"),
    })?;
    let (mut commits, mut stores) = (0u64, 0u64);
    for i in 0..log.tail() {
        let Some(rec) = log.get(i) else { continue };
        if rec.thread as usize != proc {
            continue;
        }
        match rec.kind {
            RecordKind::Commit => commits += 1,
            RecordKind::NonTxStore => stores += 1,
            RecordKind::Fence => {}
        }
    }
    if commits != boundary.commit_ordinal || stores != boundary.non_tx_ordinal {
        return Err(RuntimeError::ProtocolBug(format!(
            "worker {proc} checkpoint is at {}/{} commits/stores but the log holds \
             {commits}/{stores}",
            boundary.commit_ordinal, boundary.non_tx_ordinal
        )));
    }
    Ok(())
}

/// Number of bus broadcasts `ops` will publish: one per outer `End`,
/// one per non-transactional `Write`. Exact, so the log only needs
/// crash-fence slack beyond it.
fn broadcasts_of(ops: &[TmOp]) -> usize {
    let mut depth = 0usize;
    let mut n = 0usize;
    for op in ops {
        match op {
            TmOp::Begin => depth += 1,
            TmOp::End => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    n += 1;
                }
            }
            TmOp::Write(_) if depth == 0 => n += 1,
            _ => {}
        }
    }
    n
}

struct TmWorker {
    tid: usize,
    scheme: Scheme,
    sig_config: Arc<SignatureConfig>,
    line_bytes: u32,
    compute_ns_per_kcycle: u64,
    stress: Option<crate::config::StressConfig>,
    rng: SmallRng,
    chaos: WorkerChaos,

    pc: usize,
    depth: usize,
    tx_start_pc: usize,
    r_sig: Signature,
    w_sig: Signature,
    exact_r: HashSet<LineAddr>,
    exact_w: HashSet<LineAddr>,

    cursor: usize,
    dedup: DedupFilter,
    serial: u64,
    commit_ordinal: u64,
    non_tx_ordinal: u64,
    squash_streak: u32,
    pending_dwell_ns: u64,

    /// Slot claimed via `try_claim` whose record is not yet published.
    /// If the worker dies inside that window the supervisor fences it.
    claimed_unpublished: Option<usize>,
    boundary: Boundary,

    stats: WorkerStats,
}

impl TmWorker {
    fn new(
        tid: usize,
        scheme: Scheme,
        sig_config: Arc<SignatureConfig>,
        line_bytes: u32,
        cfg: &ParConfig,
        chaos: WorkerChaos,
    ) -> Self {
        let r_sig = Signature::with_shared(sig_config.clone());
        let w_sig = Signature::with_shared(sig_config.clone());
        let boundary = Boundary {
            pc: 0,
            commit_ordinal: 0,
            non_tx_ordinal: 0,
            checkpoint: Checkpoint::capture(
                SpilledVersion {
                    r: r_sig.clone(),
                    w: w_sig.clone(),
                    w_sh: None,
                    overflowed: false,
                },
                Vec::new(),
            ),
        };
        TmWorker {
            tid,
            scheme,
            r_sig,
            w_sig,
            sig_config,
            line_bytes,
            compute_ns_per_kcycle: cfg.compute_ns_per_kcycle,
            stress: cfg.stress,
            rng: SmallRng::seed_from_u64(cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64 ^ tid as u64)),
            chaos,
            pc: 0,
            depth: 0,
            tx_start_pc: 0,
            exact_r: HashSet::new(),
            exact_w: HashSet::new(),
            cursor: 0,
            dedup: DedupFilter::new(),
            serial: 0,
            commit_ordinal: 0,
            non_tx_ordinal: 0,
            squash_streak: 0,
            pending_dwell_ns: 0,
            claimed_unpublished: None,
            boundary,
            stats: WorkerStats::default(),
        }
    }

    /// Resumes a respawned incarnation from the dead worker's boundary.
    /// The cursor stays 0 and the dedup filter is fresh: the new
    /// incarnation replays the entire log, admitting each record exactly
    /// once, before re-executing from the boundary pc.
    fn restore(&mut self, b: Boundary, serial: u64) {
        self.pc = b.pc;
        self.tx_start_pc = b.pc;
        self.commit_ordinal = b.commit_ordinal;
        self.non_tx_ordinal = b.non_tx_ordinal;
        self.serial = serial;
        self.boundary = b;
    }

    fn run(&mut self, ops: &[TmOp], log: &BusLog, ctl: &RunControl) -> Result<(), Halt> {
        while self.pc < ops.len() {
            if ctl.aborted() {
                return Err(Halt::Aborted);
            }
            if self.poll(log, ctl)? {
                self.backoff();
                continue; // pc was reset to the transaction start
            }
            match ops[self.pc] {
                TmOp::Begin => {
                    if self.depth == 0 {
                        self.tx_start_pc = self.pc;
                    }
                    self.depth += 1;
                    self.pc += 1;
                }
                TmOp::End => {
                    if self.depth > 1 {
                        // Closed nesting is flat here, as in sim Bulk:
                        // inner commits make nothing visible.
                        self.depth -= 1;
                        self.pc += 1;
                    } else {
                        self.flush_dwell();
                        if self.commit(log, ctl)? {
                            self.pc += 1;
                            self.note_boundary();
                        } else {
                            self.backoff(); // squashed at the commit point
                        }
                    }
                }
                TmOp::Read(a) => {
                    let line = a.line(self.line_bytes);
                    if self.depth > 0 {
                        self.exact_r.insert(line);
                        if self.scheme.uses_signatures() {
                            self.r_sig.insert_line(line);
                        }
                    }
                    self.pc += 1;
                }
                TmOp::Write(a) => {
                    let line = a.line(self.line_bytes);
                    if self.depth > 0 {
                        self.exact_w.insert(line);
                        if self.scheme.uses_signatures() {
                            self.w_sig.insert_line(line);
                        }
                        self.pc += 1;
                    } else {
                        self.publish_non_tx_store(log, ctl, line)?;
                        self.pc += 1;
                        self.note_boundary();
                    }
                }
                TmOp::Compute(n) => {
                    self.dwell(n);
                    self.pc += 1;
                }
            }
        }
        self.flush_dwell();
        Ok(())
    }

    /// Snapshots the recovery point just past a publish: speculative
    /// state is clean here, and the checkpoint proves it.
    fn note_boundary(&mut self) {
        self.boundary = Boundary {
            pc: self.pc,
            commit_ordinal: self.commit_ordinal,
            non_tx_ordinal: self.non_tx_ordinal,
            checkpoint: Checkpoint::capture(
                SpilledVersion {
                    r: self.r_sig.clone(),
                    w: self.w_sig.clone(),
                    w_sh: None,
                    overflowed: false,
                },
                Vec::new(),
            ),
        };
    }

    /// Applies every record published since the last poll. Returns
    /// `Ok(true)` if one of them squashed the running transaction (the
    /// worker's pc is then already reset to the transaction start).
    ///
    /// Waiting on a claimed-but-unpublished slot checks the abort flag
    /// and the wall-clock watchdog, so a dead or hung peer halts the
    /// worker with a typed cause instead of hanging it.
    fn poll(&mut self, log: &BusLog, ctl: &RunControl) -> Result<bool, Halt> {
        if let Some(d) = self.chaos.maybe_stall() {
            self.stats.injected_stalls += 1;
            std::thread::sleep(d);
        }
        let mut squashed = false;
        let tail = log.tail();
        while self.cursor < tail {
            let rec = loop {
                if let Some(r) = log.get(self.cursor) {
                    break r;
                }
                if ctl.aborted() {
                    return Err(Halt::Aborted);
                }
                if let Some(v) = ctl.check_stall(Some(self.tid)) {
                    return Err(Halt::Stalled(v));
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            };
            self.apply(rec, &mut squashed);
            self.cursor += 1;
            if self.chaos.on_apply() {
                return Err(Halt::Killed { point: CrashPoint::Apply });
            }
        }
        Ok(squashed)
    }

    fn apply(&mut self, rec: &BusRecord, squashed: &mut bool) {
        if !self.dedup.admit(rec.ticket) {
            return; // duplicate delivery: dropped, never applied
        }
        self.dedup.record_application(rec.ticket);
        if rec.thread as usize != self.tid && self.depth > 0 && !*squashed {
            let exact_hit =
                rec.exact_w.iter().any(|l| self.exact_r.contains(l) || self.exact_w.contains(l));
            let hit = match &rec.w_sig {
                Some(w) => {
                    let sig_hit = w.intersects(&self.r_sig) || w.intersects(&self.w_sig);
                    self.stats.audit_checks += 1;
                    if exact_hit && !sig_hit {
                        // A real conflict the signatures missed: the
                        // one-sided-error guarantee is broken. Record it
                        // and squash anyway so execution stays safe.
                        self.stats.violations.push(bulk_chaos::InvariantViolation {
                            kind: InvariantKind::SignatureContainment,
                            scheme: format!("par/tm/{}", self.scheme),
                            thread: self.tid,
                            cycle: rec.ticket.serial,
                            seed: None,
                            detail: "broadcast W_C missed an exact conflict".into(),
                        });
                        true
                    } else {
                        sig_hit
                    }
                }
                None => exact_hit,
            };
            if hit {
                self.squash(exact_hit);
                *squashed = true;
            }
        }
        self.maybe_redeliver(rec.ticket);
    }

    /// Stress mode: deliver the record to this receiver again. The dedup
    /// filter must drop it; an admitted re-delivery is recorded as an
    /// application so `duplicate_applications` exposes the bug.
    fn maybe_redeliver(&mut self, ticket: CommitTicket) {
        let Some(stress) = self.stress else { return };
        if self.rng.random_range(0..100u32) < stress.redeliver_percent as u32 {
            self.stats.stress_redeliveries += 1;
            if self.dedup.admit(ticket) {
                self.dedup.record_application(ticket);
            }
        }
    }

    fn squash(&mut self, truly: bool) {
        self.stats.squashes += 1;
        if !truly {
            self.stats.false_squashes += 1;
        }
        self.clear_speculative_state();
        self.pc = self.tx_start_pc;
        self.squash_streak += 1;
    }

    fn clear_speculative_state(&mut self) {
        self.depth = 0;
        self.exact_r.clear();
        self.exact_w.clear();
        if self.scheme.uses_signatures() {
            self.r_sig.clear();
            self.w_sig.clear();
        }
        self.pending_dwell_ns = 0;
    }

    /// Jittered exponential yield after a squash; on an oversubscribed
    /// host this is also what hands the winner its timeslice.
    fn backoff(&mut self) {
        let yields = (1u32 << self.squash_streak.min(6)) + self.rng.random_range(0..4u32);
        for _ in 0..yields {
            std::thread::yield_now();
        }
    }

    /// Validate-then-claim commit. Returns `Ok(false)` if a record
    /// published by a winner squashed this transaction instead.
    fn commit(&mut self, log: &BusLog, ctl: &RunControl) -> Result<bool, Halt> {
        loop {
            if self.poll(log, ctl)? {
                return Ok(false);
            }
            let seen = self.cursor;
            if !log.try_claim(seen) {
                self.stats.claim_retries += 1;
                continue;
            }
            self.claimed_unpublished = Some(seen);
            match self.chaos.on_claim() {
                Some(CrashPoint::Publish) => {
                    // The nastiest window: a serial is consumed but its
                    // record never reaches the log.
                    let _ = self.stamp_ticket(log);
                    return Err(Halt::Killed { point: CrashPoint::Publish });
                }
                Some(point) => return Err(Halt::Killed { point }),
                None => {}
            }
            if let Some(d) = self.chaos.publish_delay() {
                self.stats.delayed_publishes += 1;
                std::thread::sleep(d);
            }
            let ticket = self.stamp_ticket(log);
            let mut exact_w: Vec<LineAddr> = self.exact_w.iter().copied().collect();
            exact_w.sort_unstable();
            let mut exact_r: Vec<LineAddr> = self.exact_r.iter().copied().collect();
            exact_r.sort_unstable();
            let w_sig = self.scheme.uses_signatures().then(|| {
                let mut s = Signature::with_shared(self.sig_config.clone());
                std::mem::swap(&mut s, &mut self.w_sig);
                s
            });
            log.publish(
                seen,
                BusRecord {
                    ticket,
                    thread: self.tid as u32,
                    ordinal: self.commit_ordinal,
                    kind: RecordKind::Commit,
                    w_sig,
                    exact_w,
                    exact_r,
                    validated_to: seen,
                },
            )
            .map_err(|e| Halt::Bug(e.to_string()))?;
            self.claimed_unpublished = None;
            ctl.progress();
            // Account the own broadcast in the dedup filter so every
            // receiver (including self) tracks every record uniformly.
            self.dedup.admit(ticket);
            self.dedup.record_application(ticket);
            self.cursor = seen + 1;
            self.commit_ordinal += 1;
            self.stats.commits += 1;
            self.squash_streak = 0;
            self.clear_speculative_state();
            return Ok(true);
        }
    }

    /// A non-transactional store: ordered on the log like a commit (so
    /// speculative readers squash on it), but never squashable itself.
    fn publish_non_tx_store(
        &mut self,
        log: &BusLog,
        ctl: &RunControl,
        line: LineAddr,
    ) -> Result<(), Halt> {
        loop {
            // Not in a transaction, so poll can't squash us.
            self.poll(log, ctl)?;
            let seen = self.cursor;
            if !log.try_claim(seen) {
                self.stats.claim_retries += 1;
                continue;
            }
            self.claimed_unpublished = Some(seen);
            match self.chaos.on_claim() {
                Some(CrashPoint::Publish) => {
                    let _ = self.stamp_ticket(log);
                    return Err(Halt::Killed { point: CrashPoint::Publish });
                }
                Some(point) => return Err(Halt::Killed { point }),
                None => {}
            }
            if let Some(d) = self.chaos.publish_delay() {
                self.stats.delayed_publishes += 1;
                std::thread::sleep(d);
            }
            let ticket = self.stamp_ticket(log);
            let w_sig = self.scheme.uses_signatures().then(|| {
                let mut s = Signature::with_shared(self.sig_config.clone());
                s.insert_line(line);
                s
            });
            log.publish(
                seen,
                BusRecord {
                    ticket,
                    thread: self.tid as u32,
                    ordinal: self.non_tx_ordinal,
                    kind: RecordKind::NonTxStore,
                    w_sig,
                    exact_w: vec![line],
                    exact_r: Vec::new(),
                    validated_to: seen,
                },
            )
            .map_err(|e| Halt::Bug(e.to_string()))?;
            self.claimed_unpublished = None;
            ctl.progress();
            self.dedup.admit(ticket);
            self.dedup.record_application(ticket);
            self.cursor = seen + 1;
            self.non_tx_ordinal += 1;
            self.stats.non_tx_stores += 1;
            return Ok(());
        }
    }

    fn stamp_ticket(&mut self, log: &BusLog) -> CommitTicket {
        if let Some(stress) = self.stress {
            if self.rng.random_range(0..100u32) < stress.epoch_bump_percent as u32 {
                log.bump_epoch();
                self.stats.stress_epoch_bumps += 1;
            }
        }
        let t = CommitTicket { epoch: log.epoch(), committer: self.tid, serial: self.serial };
        self.serial += 1;
        t
    }

    fn dwell(&mut self, cycles: u32) {
        if self.compute_ns_per_kcycle == 0 {
            return;
        }
        self.pending_dwell_ns += cycles as u64 * self.compute_ns_per_kcycle / 1000;
        if self.pending_dwell_ns >= DWELL_FLUSH_NS {
            self.flush_dwell();
        }
    }

    fn flush_dwell(&mut self) {
        if self.pending_dwell_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(self.pending_dwell_ns));
            self.pending_dwell_ns = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_chaos::KillSpec;
    use bulk_mem::Addr;
    use bulk_trace::ThreadTrace;

    fn tx(lines: &[(bool, u32)]) -> Vec<TmOp> {
        let mut ops = vec![TmOp::Begin];
        for &(write, a) in lines {
            ops.push(if write { TmOp::Write(Addr::new(a)) } else { TmOp::Read(Addr::new(a)) });
        }
        ops.push(TmOp::End);
        ops
    }

    fn workload(threads: Vec<Vec<TmOp>>) -> TmWorkload {
        TmWorkload {
            name: "unit".into(),
            threads: threads.into_iter().map(|ops| ThreadTrace { ops }).collect(),
        }
    }

    #[test]
    fn broadcast_count_is_exact() {
        let ops = vec![
            TmOp::Write(Addr::new(0x40)), // non-tx
            TmOp::Begin,
            TmOp::Begin,
            TmOp::Write(Addr::new(0x80)),
            TmOp::End, // inner: no broadcast
            TmOp::End, // outer commit
            TmOp::Write(Addr::new(0xc0)), // non-tx
        ];
        assert_eq!(broadcasts_of(&ops), 3);
    }

    #[test]
    fn disjoint_threads_commit_without_squashes() {
        let wl = workload(vec![
            tx(&[(true, 0x1000), (false, 0x1040)]),
            tx(&[(true, 0x8000), (false, 0x8040)]),
        ]);
        let s = run_par_tm(&wl, Scheme::Bulk, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 2);
        assert_eq!(s.records, 2);
        assert!(s.violations.is_empty(), "{:?}", s.violations);
        assert_eq!(s.duplicate_applications, 0);
        assert_eq!(s.per_thread_commits, vec![1, 1]);
        assert_eq!(s.worker_crashes, 0);
    }

    #[test]
    fn conflicting_threads_still_all_commit() {
        // Every thread hammers the same line; squashes may happen in any
        // interleaving but all transactions must eventually commit.
        let shared = 0x4000u32;
        let wl = workload(vec![
            tx(&[(false, shared), (true, shared)]),
            tx(&[(false, shared), (true, shared)]),
            tx(&[(false, shared), (true, shared)]),
            tx(&[(false, shared), (true, shared)]),
        ]);
        for seed in 0..3u64 {
            let cfg = ParConfig { seed, ..ParConfig::default() };
            let s = run_par_tm(&wl, Scheme::Bulk, &cfg).unwrap();
            assert_eq!(s.commits, 4);
            assert!(s.violations.is_empty(), "{:?}", s.violations);
            assert_eq!(s.duplicate_applications, 0);
        }
    }

    #[test]
    fn lazy_scheme_uses_exact_sets_and_never_false_squashes() {
        let shared = 0x4000u32;
        let wl = workload(vec![
            tx(&[(true, shared)]),
            tx(&[(false, shared), (true, 0x9000)]),
        ]);
        let s = run_par_tm(&wl, Scheme::Lazy, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 2);
        assert_eq!(s.false_squashes, 0);
        assert!(s.violations.is_empty(), "{:?}", s.violations);
    }

    #[test]
    fn eager_schemes_are_rejected() {
        let wl = workload(vec![tx(&[(true, 0x1000)])]);
        let err = run_par_tm(&wl, Scheme::Eager, &ParConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::UnsupportedScheme { .. }));
    }

    #[test]
    fn non_tx_stores_squash_speculative_readers() {
        // Thread 1 busy-reads a line thread 0 stores to outside any
        // transaction; whatever the interleaving, both finish and the
        // log carries 1 commit + 1 store record.
        let wl = workload(vec![
            vec![TmOp::Write(Addr::new(0x2000))],
            tx(&[(false, 0x2000), (true, 0x7000)]),
        ]);
        let s = run_par_tm(&wl, Scheme::Bulk, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 1);
        assert_eq!(s.non_tx_stores, 1);
        assert_eq!(s.records, 2);
        assert!(s.violations.is_empty(), "{:?}", s.violations);
    }

    #[test]
    fn history_ordinals_are_per_thread_contiguous() {
        let wl = workload(vec![
            [tx(&[(true, 0x1000)]), tx(&[(true, 0x1040)])].concat(),
            [tx(&[(true, 0x8000)]), tx(&[(true, 0x8040)])].concat(),
        ]);
        let s = run_par_tm(&wl, Scheme::Bulk, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 4);
        let mut per_thread: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for ev in &s.history {
            per_thread[ev.thread as usize].push(ev.ordinal);
        }
        assert_eq!(per_thread[0], vec![0, 1]);
        assert_eq!(per_thread[1], vec![0, 1]);
    }

    #[test]
    fn a_publish_point_kill_is_fenced_and_recovered() {
        let wl = workload(vec![
            [tx(&[(true, 0x1000)]), tx(&[(true, 0x1040)])].concat(),
            [tx(&[(true, 0x8000)]), tx(&[(true, 0x8040)])].concat(),
        ]);
        let cfg = ParConfig {
            kills: vec![KillSpec { proc: 0, point: CrashPoint::Publish, at: 0 }],
            ..ParConfig::default()
        };
        let s = run_par_tm(&wl, Scheme::Bulk, &cfg).unwrap();
        assert_eq!(s.commits, 4, "every transaction still commits");
        assert_eq!(s.worker_crashes, 1);
        assert_eq!(s.respawns, 1);
        assert_eq!(s.fences, 1, "the orphaned slot was fenced");
        assert_eq!(s.records as u64, 4 + s.fences, "log stays dense");
        assert_eq!(s.duplicate_applications, 0, "exactly-once survives the crash");
        assert!(s.violations.is_empty(), "{:?}", s.violations);
        assert_eq!(s.per_thread_commits, vec![2, 2]);
    }

    #[test]
    fn a_zero_respawn_budget_makes_death_fatal_and_typed() {
        let wl = workload(vec![tx(&[(true, 0x1000)]), tx(&[(true, 0x8000)])]);
        let cfg = ParConfig {
            kills: vec![KillSpec { proc: 1, point: CrashPoint::Claim, at: 0 }],
            respawn_budget: 0,
            ..ParConfig::default()
        };
        let err = run_par_tm(&wl, Scheme::Bulk, &cfg).unwrap_err();
        match err {
            RuntimeError::WorkerDied { proc, slot, detail } => {
                assert_eq!(proc, 1);
                assert!(slot.is_some(), "claim-point death orphans a slot");
                assert!(detail.contains("respawn budget exhausted"), "{detail}");
            }
            other => panic!("expected WorkerDied, got: {other}"),
        }
    }
}
