//! The parallel TLS engine: ordered speculative tasks dealt round-robin
//! to a pool of OS-thread workers, with in-order commit.
//!
//! TLS semantics differ from TM in one essential way: tasks have a
//! *total* predefined order, and task `i` may only commit after task
//! `i-1`. The engine encodes that directly: bus slot `i` belongs to task
//! `i`, an atomic `next_commit` counter is the commit token, and a
//! worker publishes its task only when the token reaches it. Conflict
//! detection is the paper's RAW rule — a predecessor's committed `W`
//! intersecting the speculative task's `R` restarts the task — checked
//! with signatures (Bulk) or exact sets (Lazy), with the exact oracle
//! always run alongside to classify aliasing restarts.
//!
//! `Spawn` ops are no-ops here: the task list is fully materialized by
//! the trace, and the round-robin deal hands every worker its next task
//! eagerly — the paper's spawn tree is already flattened into task
//! order by `bulk-trace`.
//!
//! # Fault model
//!
//! The slot-per-task invariant rules out TM-style fence tombstones (a
//! fenced slot would leave its task uncommitted and break the in-order
//! audit), so a dead worker's claimed-but-unpublished slot is instead
//! *adopted*: the respawned incarnation resumes at its first
//! unpublished stride task, skips the already-won claim, and publishes
//! into the orphaned slot itself. The supervisor repairs the commit
//! token from the published prefix (a worker can in principle die
//! between publish and token hand-off) and every spin site checks the
//! abort flag and the wall-clock watchdog, so worker death or a hung
//! peer becomes a typed error rather than a process abort or an
//! infinite spin.

use crate::bus::{BusLog, BusRecord, RecordKind};
use crate::config::ParConfig;
use crate::recover::{panic_msg, Halt, RunControl};
use crate::runtime::RuntimeError;
use crate::stats::{audit_log, history_of, ParStats, WorkerStats};
use bulk_chaos::{Auditor, CrashPoint, InvariantKind, ThreadChaos, WorkerChaos};
use bulk_live::{CommitTicket, DedupFilter};
use bulk_mem::LineAddr;
use bulk_rng::{Rng, SeedableRng, SmallRng};
use bulk_sig::{Signature, SignatureConfig};
use bulk_tls::TlsScheme;
use bulk_trace::{TlsOp, TlsWorkload};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

const DWELL_FLUSH_NS: u64 = 50_000;
/// Supervisor wake-up period while waiting for worker events.
const SUPERVISE_TICK_MS: u64 = 50;

/// What a finished (or dead) pool worker reports to the supervisor.
struct TlsEvent {
    worker: usize,
    outcome: Result<(), Halt>,
    /// The task slot held claimed-but-unpublished at death, if any; the
    /// respawned incarnation adopts it.
    claimed: Option<usize>,
    stats: WorkerStats,
}

/// Runs `workload` under the parallel runtime. `Bulk`, `BulkNoOverlap`
/// (identical here: Partial Overlap is a cache-warmup optimization with
/// no analogue on real threads) and `Lazy` are supported; `Eager`
/// disambiguates against uncommitted remote state and is not.
pub fn run_par_tls(
    workload: &TlsWorkload,
    scheme: TlsScheme,
    cfg: &ParConfig,
) -> Result<ParStats, RuntimeError> {
    let use_sigs = match scheme {
        TlsScheme::Bulk | TlsScheme::BulkNoOverlap => true,
        TlsScheme::Lazy => false,
        TlsScheme::Eager => {
            return Err(RuntimeError::UnsupportedScheme {
                runtime: "par",
                scheme: "Eager".into(),
                why: "eager TLS squashes at remote store time; the broadcast-log \
                      substrate only orders commits",
            })
        }
    };
    for (i, t) in workload.tasks.iter().enumerate() {
        t.validate().map_err(|e| RuntimeError::InvalidWorkload(format!("task {i}: {e}")))?;
    }

    let sig_config = SignatureConfig::s14_tm().into_shared();
    let line_bytes = sig_config.line_bytes();
    let tasks_n = workload.tasks.len();
    let workers = cfg.tls_workers.max(1).min(tasks_n.max(1));
    let chaos = ThreadChaos::new(workers, cfg.chaos.clone(), cfg.kills.clone());
    let log = BusLog::new(tasks_n.max(1));
    let next_commit = AtomicUsize::new(0);
    let ctl = RunControl::new(format!("par/tls/{scheme:?}"), cfg.seed, cfg.stall_timeout_ms);

    let mut stats = ParStats { per_thread_commits: vec![0; workers], ..ParStats::default() };
    let mut fatal: Option<RuntimeError> = None;
    let start = Instant::now();
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<TlsEvent>();
        let spawn_worker = |w: usize, incarnation: u32, resume: usize, adopt: Option<usize>| {
            let tx = tx.clone();
            let sig_config = sig_config.clone();
            let wchaos = chaos.worker(w, incarnation);
            let tasks = &workload.tasks;
            let (log, next_commit, ctl) = (&log, &next_commit, &ctl);
            s.spawn(move || {
                let mut worker = TlsWorker::new(
                    w, workers, use_sigs, scheme, sig_config, line_bytes, cfg, wchaos, adopt,
                );
                let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker.run(tasks, resume, log, next_commit, ctl)
                })) {
                    Ok(r) => r,
                    Err(p) => Err(Halt::Panicked(panic_msg(p))),
                };
                worker.stats.dedup_drops = worker.dedup.drops();
                worker.stats.duplicate_applications = worker.dedup.duplicate_applications();
                let _ = tx.send(TlsEvent {
                    worker: w,
                    outcome,
                    claimed: worker.claimed_unpublished,
                    stats: std::mem::take(&mut worker.stats),
                });
            });
        };
        for w in 0..workers {
            spawn_worker(w, 0, w, None);
        }

        let mut live = workers;
        let mut budget = cfg.respawn_budget;
        let mut incarnations = vec![0u32; workers];
        while live > 0 {
            let ev = match rx.recv_timeout(std::time::Duration::from_millis(SUPERVISE_TICK_MS)) {
                Ok(ev) => ev,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if fatal.is_none() {
                        if let Some(v) = ctl.check_stall(None) {
                            fatal = Some(RuntimeError::Liveness(v));
                            ctl.abort();
                        }
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            live -= 1;
            stats.per_thread_commits[ev.worker] += ev.stats.commits;
            stats.fold(ev.stats);
            match ev.outcome {
                Ok(()) | Err(Halt::Aborted) => {}
                Err(Halt::Stalled(v)) => {
                    if fatal.is_none() {
                        fatal = Some(RuntimeError::Liveness(v));
                        ctl.abort();
                    }
                }
                Err(Halt::Bug(m)) => {
                    if fatal.is_none() {
                        fatal = Some(RuntimeError::ProtocolBug(m));
                        ctl.abort();
                    }
                }
                Err(halt) => {
                    // Killed or Panicked: repair the token, respawn with
                    // adoption of any orphaned claim.
                    debug_assert!(halt.is_crash());
                    stats.worker_crashes += 1;
                    let t0 = Instant::now();
                    log.bump_epoch();
                    // A worker can die between publishing task T and
                    // storing the token; re-derive the token from the
                    // published prefix so T+1's owner is not stranded.
                    let mut nc = next_commit.load(Ordering::Acquire);
                    while nc < tasks_n && log.get(nc).is_some() {
                        nc += 1;
                    }
                    next_commit.fetch_max(nc, Ordering::AcqRel);
                    if fatal.is_some() {
                        continue;
                    }
                    if budget == 0 {
                        fatal = Some(RuntimeError::WorkerDied {
                            proc: ev.worker,
                            slot: ev.claimed,
                            detail: format!("{}; respawn budget exhausted", halt.describe()),
                        });
                        ctl.abort();
                        continue;
                    }
                    budget -= 1;
                    // First unpublished task in the dead worker's stride
                    // is where the respawn resumes.
                    let mut resume = ev.worker;
                    while resume < tasks_n && log.get(resume).is_some() {
                        resume += workers;
                    }
                    let adopt = match ev.claimed {
                        Some(slot) if slot == resume => {
                            stats.adopted_slots += 1;
                            Some(slot)
                        }
                        Some(slot) => {
                            fatal = Some(RuntimeError::ProtocolBug(format!(
                                "dead worker {} claimed slot {slot} but its first \
                                 unpublished task is {resume}",
                                ev.worker
                            )));
                            ctl.abort();
                            continue;
                        }
                        None => None,
                    };
                    incarnations[ev.worker] += 1;
                    spawn_worker(ev.worker, incarnations[ev.worker], resume, adopt);
                    live += 1;
                    stats.respawns += 1;
                    stats.recovery_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    if let Some(err) = fatal {
        return Err(err);
    }

    stats.wall_ns = wall_ns;
    stats.epoch = log.epoch();
    stats.records = log.tail() as u64;
    stats.history = history_of(&log);

    let mut auditor = Auditor::new(format!("par/tls/{scheme:?}"), workers, Some(cfg.seed));
    let mut checks = 0;
    audit_log(&log, &mut auditor, &mut checks);
    for i in 0..log.tail() {
        checks += 1;
        if let Some(rec) = log.get(i) {
            if rec.thread as usize != i {
                auditor.record(
                    InvariantKind::Serializability,
                    rec.thread as usize,
                    i as u64,
                    format!("task {} committed at log position {i}: in-order commit broken",
                        rec.thread),
                );
            }
        }
    }
    checks += 1;
    if log.tail() != tasks_n {
        auditor.record(
            InvariantKind::TokenProtocol,
            0,
            log.tail() as u64,
            format!("{} of {tasks_n} tasks committed", log.tail()),
        );
    }
    stats.audit_checks += checks;
    stats.violations.extend(auditor.take_violations());
    Ok(stats)
}

struct TlsWorker {
    worker: usize,
    /// Pool size: the stride between this worker's tasks.
    stride: usize,
    use_sigs: bool,
    scheme: TlsScheme,
    sig_config: Arc<SignatureConfig>,
    line_bytes: u32,
    compute_ns_per_kcycle: u64,
    stress: Option<crate::config::StressConfig>,
    rng: SmallRng,
    chaos: WorkerChaos,

    r_sig: Signature,
    w_sig: Signature,
    exact_r: HashSet<LineAddr>,
    exact_w: HashSet<LineAddr>,
    cursor: usize,
    dedup: DedupFilter,
    restart_streak: u32,
    pending_dwell_ns: u64,

    /// Task slot claimed (or adopted) whose record is unpublished.
    claimed_unpublished: Option<usize>,
    /// A slot the dead predecessor incarnation already claimed; this
    /// incarnation publishes into it without re-claiming.
    adopt: Option<usize>,

    stats: WorkerStats,
}

impl TlsWorker {
    #[allow(clippy::too_many_arguments)]
    fn new(
        worker: usize,
        stride: usize,
        use_sigs: bool,
        scheme: TlsScheme,
        sig_config: Arc<SignatureConfig>,
        line_bytes: u32,
        cfg: &ParConfig,
        chaos: WorkerChaos,
        adopt: Option<usize>,
    ) -> Self {
        TlsWorker {
            worker,
            stride,
            use_sigs,
            scheme,
            r_sig: Signature::with_shared(sig_config.clone()),
            w_sig: Signature::with_shared(sig_config.clone()),
            sig_config,
            line_bytes,
            compute_ns_per_kcycle: cfg.compute_ns_per_kcycle,
            stress: cfg.stress,
            rng: SmallRng::seed_from_u64(cfg.seed ^ (0xd1b5_4a32_d192_ed03u64 ^ worker as u64)),
            chaos,
            exact_r: HashSet::new(),
            exact_w: HashSet::new(),
            cursor: 0,
            dedup: DedupFilter::new(),
            restart_streak: 0,
            pending_dwell_ns: 0,
            claimed_unpublished: None,
            adopt,
            stats: WorkerStats::default(),
        }
    }

    /// Runs this worker's stride of tasks, starting at `start` (the
    /// first task for a fresh spawn; the first unpublished task for a
    /// respawned incarnation).
    fn run(
        &mut self,
        tasks: &[bulk_trace::TaskTrace],
        start: usize,
        log: &BusLog,
        next_commit: &AtomicUsize,
        ctl: &RunControl,
    ) -> Result<(), Halt> {
        let mut i = start;
        while i < tasks.len() {
            self.run_task(i, &tasks[i].ops, log, next_commit, ctl)?;
            i += self.stride;
        }
        Ok(())
    }

    fn run_task(
        &mut self,
        task: usize,
        ops: &[TlsOp],
        log: &BusLog,
        next_commit: &AtomicUsize,
        ctl: &RunControl,
    ) -> Result<(), Halt> {
        'attempt: loop {
            self.clear_speculative_state();
            for op in ops {
                if self.poll(log, ctl)? {
                    self.restart(task);
                    continue 'attempt;
                }
                match *op {
                    TlsOp::Read(a) => {
                        let line = a.line(self.line_bytes);
                        self.exact_r.insert(line);
                        if self.use_sigs {
                            self.r_sig.insert_line(line);
                        }
                    }
                    TlsOp::Write(a) => {
                        let line = a.line(self.line_bytes);
                        self.exact_w.insert(line);
                        if self.use_sigs {
                            self.w_sig.insert_line(line);
                        }
                    }
                    TlsOp::Compute(n) => self.dwell(n),
                    TlsOp::Spawn => {}
                }
            }
            self.flush_dwell();
            // Wait for the in-order commit token, still vulnerable to
            // predecessor commits while waiting.
            loop {
                if self.poll(log, ctl)? {
                    self.restart(task);
                    continue 'attempt;
                }
                if next_commit.load(Ordering::Acquire) == task {
                    break;
                }
                if ctl.aborted() {
                    return Err(Halt::Aborted);
                }
                if let Some(v) = ctl.check_stall(Some(self.worker)) {
                    return Err(Halt::Stalled(v));
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            // Drain anything committed between the token check and now:
            // the token is ours, so after this poll the log is exactly
            // our `task` predecessors and can no longer grow under us.
            if self.poll(log, ctl)? {
                self.restart(task);
                continue 'attempt;
            }
            if self.cursor != task {
                return Err(Halt::Bug(format!(
                    "commit token granted out of order: validated {} records for task {task}",
                    self.cursor
                )));
            }
            if self.adopt == Some(task) {
                // The dead incarnation already won this claim; publish
                // into the orphaned slot instead of re-claiming.
                self.adopt = None;
            } else if !log.try_claim(task) {
                return Err(Halt::Bug(format!("task {task} lost an uncontended claim")));
            }
            self.claimed_unpublished = Some(task);
            match self.chaos.on_claim() {
                Some(CrashPoint::Publish) => {
                    let _ = self.stamp_ticket(log);
                    return Err(Halt::Killed { point: CrashPoint::Publish });
                }
                Some(point) => return Err(Halt::Killed { point }),
                None => {}
            }
            if let Some(d) = self.chaos.publish_delay() {
                self.stats.delayed_publishes += 1;
                std::thread::sleep(d);
            }
            let ticket = self.stamp_ticket(log);
            let mut exact_w: Vec<LineAddr> = self.exact_w.iter().copied().collect();
            exact_w.sort_unstable();
            let mut exact_r: Vec<LineAddr> = self.exact_r.iter().copied().collect();
            exact_r.sort_unstable();
            let w_sig = self.use_sigs.then(|| {
                let mut s = Signature::with_shared(self.sig_config.clone());
                std::mem::swap(&mut s, &mut self.w_sig);
                s
            });
            log.publish(
                task,
                BusRecord {
                    ticket,
                    thread: task as u32,
                    ordinal: 0,
                    kind: RecordKind::Commit,
                    w_sig,
                    exact_w,
                    exact_r,
                    validated_to: task,
                },
            )
            .map_err(|e| Halt::Bug(e.to_string()))?;
            self.claimed_unpublished = None;
            ctl.progress();
            self.dedup.admit(ticket);
            self.dedup.record_application(ticket);
            self.cursor = task + 1;
            next_commit.store(task + 1, Ordering::Release);
            self.stats.commits += 1;
            self.restart_streak = 0;
            self.clear_speculative_state();
            return Ok(());
        }
    }

    /// Applies predecessor commits; returns `Ok(true)` when one of them
    /// hit the running task's read set (RAW dependence — restart).
    fn poll(&mut self, log: &BusLog, ctl: &RunControl) -> Result<bool, Halt> {
        if let Some(d) = self.chaos.maybe_stall() {
            self.stats.injected_stalls += 1;
            std::thread::sleep(d);
        }
        let mut restarted = false;
        let tail = log.tail();
        while self.cursor < tail {
            if self.adopt == Some(self.cursor) {
                // Our own adopted (still unpublished) slot: nothing to
                // apply, and waiting on it would deadlock.
                break;
            }
            let rec = loop {
                if let Some(r) = log.get(self.cursor) {
                    break r;
                }
                if ctl.aborted() {
                    return Err(Halt::Aborted);
                }
                if let Some(v) = ctl.check_stall(Some(self.worker)) {
                    return Err(Halt::Stalled(v));
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            };
            self.apply(rec, &mut restarted);
            self.cursor += 1;
            if self.chaos.on_apply() {
                return Err(Halt::Killed { point: CrashPoint::Apply });
            }
        }
        Ok(restarted)
    }

    fn apply(&mut self, rec: &BusRecord, restarted: &mut bool) {
        if !self.dedup.admit(rec.ticket) {
            return;
        }
        self.dedup.record_application(rec.ticket);
        if !*restarted {
            let exact_hit = rec.exact_w.iter().any(|l| self.exact_r.contains(l));
            let hit = match &rec.w_sig {
                Some(w) => {
                    let sig_hit = w.intersects(&self.r_sig);
                    self.stats.audit_checks += 1;
                    if exact_hit && !sig_hit {
                        self.stats.violations.push(bulk_chaos::InvariantViolation {
                            kind: InvariantKind::SignatureContainment,
                            scheme: format!("par/tls/{:?}", self.scheme),
                            thread: self.worker,
                            cycle: rec.ticket.serial,
                            seed: None,
                            detail: "broadcast W_C missed an exact RAW dependence".into(),
                        });
                        true
                    } else {
                        sig_hit
                    }
                }
                None => exact_hit,
            };
            if hit {
                self.stats.squashes += 1;
                if !exact_hit {
                    self.stats.false_squashes += 1;
                }
                *restarted = true;
            }
        }
        self.maybe_redeliver(rec.ticket);
    }

    fn maybe_redeliver(&mut self, ticket: CommitTicket) {
        let Some(stress) = self.stress else { return };
        if self.rng.random_range(0..100u32) < stress.redeliver_percent as u32 {
            self.stats.stress_redeliveries += 1;
            if self.dedup.admit(ticket) {
                self.dedup.record_application(ticket);
            }
        }
    }

    fn restart(&mut self, _task: usize) {
        self.restart_streak += 1;
        let yields = (1u32 << self.restart_streak.min(6)) + self.rng.random_range(0..4u32);
        for _ in 0..yields {
            std::thread::yield_now();
        }
    }

    fn clear_speculative_state(&mut self) {
        self.exact_r.clear();
        self.exact_w.clear();
        if self.use_sigs {
            self.r_sig.clear();
            self.w_sig.clear();
        }
        self.pending_dwell_ns = 0;
    }

    fn stamp_ticket(&mut self, log: &BusLog) -> CommitTicket {
        if let Some(stress) = self.stress {
            if self.rng.random_range(0..100u32) < stress.epoch_bump_percent as u32 {
                log.bump_epoch();
                self.stats.stress_epoch_bumps += 1;
            }
        }
        // `(committer, serial)` must be globally unique: the worker index
        // plus the task index (a task commits exactly once, even across
        // incarnations — an adopted slot's ticket was never published).
        CommitTicket { epoch: log.epoch(), committer: self.worker, serial: self.cursor as u64 }
    }

    fn dwell(&mut self, cycles: u32) {
        if self.compute_ns_per_kcycle == 0 {
            return;
        }
        self.pending_dwell_ns += cycles as u64 * self.compute_ns_per_kcycle / 1000;
        if self.pending_dwell_ns >= DWELL_FLUSH_NS {
            self.flush_dwell();
        }
    }

    fn flush_dwell(&mut self) {
        if self.pending_dwell_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(self.pending_dwell_ns));
            self.pending_dwell_ns = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_chaos::KillSpec;
    use bulk_mem::Addr;
    use bulk_trace::TaskTrace;

    fn task(ops: Vec<TlsOp>) -> TaskTrace {
        TaskTrace { ops }
    }

    fn workload(tasks: Vec<TaskTrace>) -> TlsWorkload {
        TlsWorkload { name: "unit".into(), tasks }
    }

    #[test]
    fn tasks_commit_in_order() {
        let wl = workload(
            (0..8u32)
                .map(|i| {
                    task(vec![
                        TlsOp::Read(Addr::new(0x1000 + i * 0x100)),
                        TlsOp::Write(Addr::new(0x2000 + i * 0x100)),
                    ])
                })
                .collect(),
        );
        let s = run_par_tls(&wl, TlsScheme::Bulk, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 8);
        assert!(s.violations.is_empty(), "{:?}", s.violations);
        let order: Vec<u32> = s.history.iter().map(|e| e.thread).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn raw_dependences_restart_but_all_commit() {
        // Every task reads what its predecessor wrote.
        let wl = workload(
            (0..6u32)
                .map(|_| {
                    task(vec![
                        TlsOp::Read(Addr::new(0x4000)),
                        TlsOp::Write(Addr::new(0x4000)),
                    ])
                })
                .collect(),
        );
        for seed in 0..3u64 {
            let cfg = ParConfig { seed, ..ParConfig::default() };
            let s = run_par_tls(&wl, TlsScheme::Bulk, &cfg).unwrap();
            assert_eq!(s.commits, 6);
            assert!(s.violations.is_empty(), "{:?}", s.violations);
            assert_eq!(s.duplicate_applications, 0);
        }
    }

    #[test]
    fn lazy_tls_is_exact() {
        let wl = workload(vec![
            task(vec![TlsOp::Write(Addr::new(0x4000))]),
            task(vec![TlsOp::Read(Addr::new(0x4000))]),
        ]);
        let s = run_par_tls(&wl, TlsScheme::Lazy, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 2);
        assert_eq!(s.false_squashes, 0);
    }

    #[test]
    fn eager_tls_is_rejected() {
        let wl = workload(vec![task(vec![TlsOp::Compute(10)])]);
        let err = run_par_tls(&wl, TlsScheme::Eager, &ParConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::UnsupportedScheme { .. }));
    }

    #[test]
    fn a_killed_worker_adopts_its_claimed_slot_after_respawn() {
        let wl = workload(
            (0..8u32)
                .map(|i| {
                    task(vec![
                        TlsOp::Read(Addr::new(0x1000 + i * 0x100)),
                        TlsOp::Write(Addr::new(0x2000 + i * 0x100)),
                    ])
                })
                .collect(),
        );
        let cfg = ParConfig {
            kills: vec![KillSpec { proc: 1, point: CrashPoint::Publish, at: 0 }],
            ..ParConfig::default()
        };
        let s = run_par_tls(&wl, TlsScheme::Bulk, &cfg).unwrap();
        assert_eq!(s.commits, 8, "every task still commits in order");
        assert_eq!(s.worker_crashes, 1);
        assert_eq!(s.respawns, 1);
        assert_eq!(s.adopted_slots, 1, "the orphaned claim was adopted");
        assert_eq!(s.fences, 0, "TLS never fences: slot i must hold task i");
        assert_eq!(s.duplicate_applications, 0);
        assert!(s.violations.is_empty(), "{:?}", s.violations);
        let order: Vec<u32> = s.history.iter().map(|e| e.thread).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }
}
