//! The parallel TLS engine: ordered speculative tasks dealt round-robin
//! to a pool of OS-thread workers, with in-order commit.
//!
//! TLS semantics differ from TM in one essential way: tasks have a
//! *total* predefined order, and task `i` may only commit after task
//! `i-1`. The engine encodes that directly: bus slot `i` belongs to task
//! `i`, an atomic `next_commit` counter is the commit token, and a
//! worker publishes its task only when the token reaches it. Conflict
//! detection is the paper's RAW rule — a predecessor's committed `W`
//! intersecting the speculative task's `R` restarts the task — checked
//! with signatures (Bulk) or exact sets (Lazy), with the exact oracle
//! always run alongside to classify aliasing restarts.
//!
//! `Spawn` ops are no-ops here: the task list is fully materialized by
//! the trace, and the round-robin deal hands every worker its next task
//! eagerly — the paper's spawn tree is already flattened into task
//! order by `bulk-trace`.

use crate::bus::{BusLog, BusRecord, RecordKind};
use crate::config::ParConfig;
use crate::runtime::RuntimeError;
use crate::stats::{audit_log, history_of, ParStats, WorkerStats};
use bulk_chaos::{Auditor, InvariantKind};
use bulk_live::{CommitTicket, DedupFilter};
use bulk_mem::LineAddr;
use bulk_rng::{Rng, SeedableRng, SmallRng};
use bulk_sig::{Signature, SignatureConfig};
use bulk_tls::TlsScheme;
use bulk_trace::{TlsOp, TlsWorkload};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const DWELL_FLUSH_NS: u64 = 50_000;

/// Runs `workload` under the parallel runtime. `Bulk`, `BulkNoOverlap`
/// (identical here: Partial Overlap is a cache-warmup optimization with
/// no analogue on real threads) and `Lazy` are supported; `Eager`
/// disambiguates against uncommitted remote state and is not.
pub fn run_par_tls(
    workload: &TlsWorkload,
    scheme: TlsScheme,
    cfg: &ParConfig,
) -> Result<ParStats, RuntimeError> {
    let use_sigs = match scheme {
        TlsScheme::Bulk | TlsScheme::BulkNoOverlap => true,
        TlsScheme::Lazy => false,
        TlsScheme::Eager => {
            return Err(RuntimeError::UnsupportedScheme {
                runtime: "par",
                scheme: "Eager".into(),
                why: "eager TLS squashes at remote store time; the broadcast-log \
                      substrate only orders commits",
            })
        }
    };
    for (i, t) in workload.tasks.iter().enumerate() {
        t.validate().map_err(|e| RuntimeError::InvalidWorkload(format!("task {i}: {e}")))?;
    }

    let sig_config = SignatureConfig::s14_tm().into_shared();
    let line_bytes = sig_config.line_bytes();
    let tasks = workload.tasks.len();
    let workers = cfg.tls_workers.max(1).min(tasks.max(1));
    let log = BusLog::new(tasks.max(1));
    let next_commit = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);

    let start = Instant::now();
    let worker_stats: Vec<WorkerStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let log = &log;
                let next_commit = &next_commit;
                let poisoned = &poisoned;
                let sig_config = sig_config.clone();
                let tasks = &workload.tasks;
                s.spawn(move || {
                    let mut worker =
                        TlsWorker::new(w, use_sigs, scheme, sig_config, line_bytes, cfg);
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut i = w;
                        while i < tasks.len() {
                            worker.run_task(i, &tasks[i].ops, log, next_commit, poisoned);
                            i += workers;
                        }
                    }));
                    if r.is_err() {
                        poisoned.store(true, Ordering::Release);
                    }
                    r.map(|()| {
                        worker.stats.dedup_drops = worker.dedup.drops();
                        worker.stats.duplicate_applications =
                            worker.dedup.duplicate_applications();
                        worker.stats
                    })
                    .unwrap_or_else(|p| std::panic::resume_unwind(p))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par TLS worker panicked")).collect()
    });
    let wall_ns = start.elapsed().as_nanos() as u64;

    let mut stats = ParStats {
        wall_ns,
        epoch: log.epoch(),
        records: log.tail() as u64,
        per_thread_commits: vec![0; workers],
        ..ParStats::default()
    };
    for (w, ws) in worker_stats.into_iter().enumerate() {
        stats.per_thread_commits[w] = ws.commits;
        stats.fold(ws);
    }
    stats.history = history_of(&log);

    let mut auditor = Auditor::new(format!("par/tls/{scheme:?}"), workers, Some(cfg.seed));
    let mut checks = 0;
    audit_log(&log, &mut auditor, &mut checks);
    for i in 0..log.tail() {
        checks += 1;
        if let Some(rec) = log.get(i) {
            if rec.thread as usize != i {
                auditor.record(
                    InvariantKind::Serializability,
                    rec.thread as usize,
                    i as u64,
                    format!("task {} committed at log position {i}: in-order commit broken",
                        rec.thread),
                );
            }
        }
    }
    checks += 1;
    if log.tail() != tasks {
        auditor.record(
            InvariantKind::TokenProtocol,
            0,
            log.tail() as u64,
            format!("{} of {tasks} tasks committed", log.tail()),
        );
    }
    stats.audit_checks += checks;
    stats.violations.extend(auditor.take_violations());
    Ok(stats)
}

struct TlsWorker {
    worker: usize,
    use_sigs: bool,
    scheme: TlsScheme,
    sig_config: Arc<SignatureConfig>,
    line_bytes: u32,
    compute_ns_per_kcycle: u64,
    stress: Option<crate::config::StressConfig>,
    rng: SmallRng,

    r_sig: Signature,
    w_sig: Signature,
    exact_r: HashSet<LineAddr>,
    exact_w: HashSet<LineAddr>,
    cursor: usize,
    dedup: DedupFilter,
    restart_streak: u32,
    pending_dwell_ns: u64,

    stats: WorkerStats,
}

impl TlsWorker {
    fn new(
        worker: usize,
        use_sigs: bool,
        scheme: TlsScheme,
        sig_config: Arc<SignatureConfig>,
        line_bytes: u32,
        cfg: &ParConfig,
    ) -> Self {
        TlsWorker {
            worker,
            use_sigs,
            scheme,
            r_sig: Signature::with_shared(sig_config.clone()),
            w_sig: Signature::with_shared(sig_config.clone()),
            sig_config,
            line_bytes,
            compute_ns_per_kcycle: cfg.compute_ns_per_kcycle,
            stress: cfg.stress,
            rng: SmallRng::seed_from_u64(cfg.seed ^ (0xd1b5_4a32_d192_ed03u64 ^ worker as u64)),
            exact_r: HashSet::new(),
            exact_w: HashSet::new(),
            cursor: 0,
            dedup: DedupFilter::new(),
            restart_streak: 0,
            pending_dwell_ns: 0,
            stats: WorkerStats::default(),
        }
    }

    fn run_task(
        &mut self,
        task: usize,
        ops: &[TlsOp],
        log: &BusLog,
        next_commit: &AtomicUsize,
        poisoned: &AtomicBool,
    ) {
        'attempt: loop {
            self.clear_speculative_state();
            for op in ops {
                if self.poll(log, poisoned) {
                    self.restart(task);
                    continue 'attempt;
                }
                match *op {
                    TlsOp::Read(a) => {
                        let line = a.line(self.line_bytes);
                        self.exact_r.insert(line);
                        if self.use_sigs {
                            self.r_sig.insert_line(line);
                        }
                    }
                    TlsOp::Write(a) => {
                        let line = a.line(self.line_bytes);
                        self.exact_w.insert(line);
                        if self.use_sigs {
                            self.w_sig.insert_line(line);
                        }
                    }
                    TlsOp::Compute(n) => self.dwell(n),
                    TlsOp::Spawn => {}
                }
            }
            self.flush_dwell();
            // Wait for the in-order commit token, still vulnerable to
            // predecessor commits while waiting.
            loop {
                if self.poll(log, poisoned) {
                    self.restart(task);
                    continue 'attempt;
                }
                if next_commit.load(Ordering::Acquire) == task {
                    break;
                }
                if poisoned.load(Ordering::Acquire) {
                    panic!("peer worker died; aborting");
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            // Drain anything committed between the token check and now:
            // the token is ours, so after this poll the log is exactly
            // our `task` predecessors and can no longer grow under us.
            if self.poll(log, poisoned) {
                self.restart(task);
                continue 'attempt;
            }
            assert_eq!(self.cursor, task, "commit token granted out of order");
            let claimed = log.try_claim(task);
            assert!(claimed, "task {task} lost an uncontended claim");
            let ticket = self.stamp_ticket(log);
            let mut exact_w: Vec<LineAddr> = self.exact_w.iter().copied().collect();
            exact_w.sort_unstable();
            let mut exact_r: Vec<LineAddr> = self.exact_r.iter().copied().collect();
            exact_r.sort_unstable();
            let w_sig = self.use_sigs.then(|| {
                let mut s = Signature::with_shared(self.sig_config.clone());
                std::mem::swap(&mut s, &mut self.w_sig);
                s
            });
            log.publish(
                task,
                BusRecord {
                    ticket,
                    thread: task as u32,
                    ordinal: 0,
                    kind: RecordKind::Commit,
                    w_sig,
                    exact_w,
                    exact_r,
                    validated_to: task,
                },
            );
            self.dedup.admit(ticket);
            self.dedup.record_application(ticket);
            self.cursor = task + 1;
            next_commit.store(task + 1, Ordering::Release);
            self.stats.commits += 1;
            self.restart_streak = 0;
            self.clear_speculative_state();
            return;
        }
    }

    /// Applies predecessor commits; returns `true` when one of them hit
    /// the running task's read set (RAW dependence — restart).
    fn poll(&mut self, log: &BusLog, poisoned: &AtomicBool) -> bool {
        let mut restarted = false;
        let tail = log.tail();
        while self.cursor < tail {
            let rec = loop {
                if let Some(r) = log.get(self.cursor) {
                    break r;
                }
                if poisoned.load(Ordering::Acquire) {
                    panic!("peer worker died mid-publish; aborting");
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            };
            self.apply(rec, &mut restarted);
            self.cursor += 1;
        }
        restarted
    }

    fn apply(&mut self, rec: &BusRecord, restarted: &mut bool) {
        if !self.dedup.admit(rec.ticket) {
            return;
        }
        self.dedup.record_application(rec.ticket);
        if !*restarted {
            let exact_hit = rec.exact_w.iter().any(|l| self.exact_r.contains(l));
            let hit = match &rec.w_sig {
                Some(w) => {
                    let sig_hit = w.intersects(&self.r_sig);
                    self.stats.audit_checks += 1;
                    if exact_hit && !sig_hit {
                        self.stats.violations.push(bulk_chaos::InvariantViolation {
                            kind: InvariantKind::SignatureContainment,
                            scheme: format!("par/tls/{:?}", self.scheme),
                            thread: self.worker,
                            cycle: rec.ticket.serial,
                            seed: None,
                            detail: "broadcast W_C missed an exact RAW dependence".into(),
                        });
                        true
                    } else {
                        sig_hit
                    }
                }
                None => exact_hit,
            };
            if hit {
                self.stats.squashes += 1;
                if !exact_hit {
                    self.stats.false_squashes += 1;
                }
                *restarted = true;
            }
        }
        self.maybe_redeliver(rec.ticket);
    }

    fn maybe_redeliver(&mut self, ticket: CommitTicket) {
        let Some(stress) = self.stress else { return };
        if self.rng.random_range(0..100u32) < stress.redeliver_percent as u32 {
            self.stats.stress_redeliveries += 1;
            if self.dedup.admit(ticket) {
                self.dedup.record_application(ticket);
            }
        }
    }

    fn restart(&mut self, _task: usize) {
        self.restart_streak += 1;
        let yields = (1u32 << self.restart_streak.min(6)) + self.rng.random_range(0..4u32);
        for _ in 0..yields {
            std::thread::yield_now();
        }
    }

    fn clear_speculative_state(&mut self) {
        self.exact_r.clear();
        self.exact_w.clear();
        if self.use_sigs {
            self.r_sig.clear();
            self.w_sig.clear();
        }
        self.pending_dwell_ns = 0;
    }

    fn stamp_ticket(&mut self, log: &BusLog) -> CommitTicket {
        if let Some(stress) = self.stress {
            if self.rng.random_range(0..100u32) < stress.epoch_bump_percent as u32 {
                log.bump_epoch();
                self.stats.stress_epoch_bumps += 1;
            }
        }
        // `(committer, serial)` must be globally unique: the worker index
        // plus the task index (a task commits exactly once) is.
        CommitTicket { epoch: log.epoch(), committer: self.worker, serial: self.cursor as u64 }
    }

    fn dwell(&mut self, cycles: u32) {
        if self.compute_ns_per_kcycle == 0 {
            return;
        }
        self.pending_dwell_ns += cycles as u64 * self.compute_ns_per_kcycle / 1000;
        if self.pending_dwell_ns >= DWELL_FLUSH_NS {
            self.flush_dwell();
        }
    }

    fn flush_dwell(&mut self) {
        if self.pending_dwell_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(self.pending_dwell_ns));
            self.pending_dwell_ns = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulk_mem::Addr;
    use bulk_trace::TaskTrace;

    fn task(ops: Vec<TlsOp>) -> TaskTrace {
        TaskTrace { ops }
    }

    fn workload(tasks: Vec<TaskTrace>) -> TlsWorkload {
        TlsWorkload { name: "unit".into(), tasks }
    }

    #[test]
    fn tasks_commit_in_order() {
        let wl = workload(
            (0..8u32)
                .map(|i| {
                    task(vec![
                        TlsOp::Read(Addr::new(0x1000 + i * 0x100)),
                        TlsOp::Write(Addr::new(0x2000 + i * 0x100)),
                    ])
                })
                .collect(),
        );
        let s = run_par_tls(&wl, TlsScheme::Bulk, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 8);
        assert!(s.violations.is_empty(), "{:?}", s.violations);
        let order: Vec<u32> = s.history.iter().map(|e| e.thread).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn raw_dependences_restart_but_all_commit() {
        // Every task reads what its predecessor wrote.
        let wl = workload(
            (0..6u32)
                .map(|_| {
                    task(vec![
                        TlsOp::Read(Addr::new(0x4000)),
                        TlsOp::Write(Addr::new(0x4000)),
                    ])
                })
                .collect(),
        );
        for seed in 0..3u64 {
            let cfg = ParConfig { seed, ..ParConfig::default() };
            let s = run_par_tls(&wl, TlsScheme::Bulk, &cfg).unwrap();
            assert_eq!(s.commits, 6);
            assert!(s.violations.is_empty(), "{:?}", s.violations);
            assert_eq!(s.duplicate_applications, 0);
        }
    }

    #[test]
    fn lazy_tls_is_exact() {
        let wl = workload(vec![
            task(vec![TlsOp::Write(Addr::new(0x4000))]),
            task(vec![TlsOp::Read(Addr::new(0x4000))]),
        ]);
        let s = run_par_tls(&wl, TlsScheme::Lazy, &ParConfig::default()).unwrap();
        assert_eq!(s.commits, 2);
        assert_eq!(s.false_squashes, 0);
    }

    #[test]
    fn eager_tls_is_rejected() {
        let wl = workload(vec![task(vec![TlsOp::Compute(10)])]);
        let err = run_par_tls(&wl, TlsScheme::Eager, &ParConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::UnsupportedScheme { .. }));
    }
}
