//! The lock-free broadcast bus of the parallel runtime.
//!
//! The sim models the snoopy bus as a serializing resource inside one
//! discrete-event loop; here the bus is a *shared append-only log* that
//! genuinely concurrent OS threads publish to and poll from:
//!
//! * publishing is a `compare_exchange` on the tail — the committer may
//!   claim slot `n` only while its local view of the log is exactly the
//!   first `n` records, which makes validate-then-publish one atomic
//!   step (see [`BusLog::try_claim`]);
//! * every record carries a [`CommitTicket`] stamped from a shared
//!   [`AtomicU64`] epoch, and each receiver runs its own
//!   [`DedupFilter`](bulk_live::DedupFilter), so re-deliveries (which
//!   the stress mode injects on purpose) are dropped instead of applied
//!   twice — the same exactly-once machinery `crates/live` built for
//!   arbiter failover;
//! * readers never block writers: a claimed-but-unpublished slot is an
//!   empty [`OnceLock`] the reader spins on with `yield_now`, and the
//!   winner of a tail race always publishes, so the system as a whole
//!   is lock-free (some thread always makes progress).
//!
//! Memory ordering: the tail CAS is `AcqRel` and `OnceLock::set/get`
//! give release/acquire on the record payload, so a reader that
//! observes slot `n` published also observes every record before it
//! and the full payload of record `n` itself.

use bulk_live::CommitTicket;
use bulk_mem::LineAddr;
use bulk_sig::Signature;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// What kind of store a bus record broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A committed outer transaction's write set (`W_C`).
    Commit,
    /// A single non-transactional store (the paper's individual
    /// invalidation path).
    NonTxStore,
    /// A tombstone published by the supervisor into a dead worker's
    /// claimed-but-unpublished slot. Carries empty sets and a fresh
    /// ticket so receivers admit-and-skip it exactly once; keeps the log
    /// dense so survivors stop spinning in
    /// [`wait_for`](BusLog::wait_for).
    Fence,
}

/// One broadcast on the bus: the write signature plus the exact oracle
/// sets the auditor replays after the run.
#[derive(Debug)]
pub struct BusRecord {
    /// Exactly-once identity: `(committer, serial)` under the epoch the
    /// broadcast was stamped in.
    pub ticket: CommitTicket,
    /// Publishing thread (TM) or task (TLS).
    pub thread: u32,
    /// The publisher's commit ordinal (0 for non-transactional stores'
    /// position-independent records this is the store count).
    pub ordinal: u64,
    /// Transaction commit or individual store.
    pub kind: RecordKind,
    /// The broadcast write signature (`None` for exact-set schemes).
    pub w_sig: Option<Signature>,
    /// Exact written lines — the oracle the auditor replays.
    pub exact_w: Vec<LineAddr>,
    /// Exact read lines of the committed transaction (audit only; the
    /// paper never broadcasts `R`).
    pub exact_r: Vec<LineAddr>,
    /// Log length the publisher had fully validated against when its
    /// claim succeeded. The claim protocol guarantees this equals the
    /// record's own slot index; the auditor asserts it.
    pub validated_to: usize,
}

/// A publish hit an already-written slot (the slot index). Indicates a
/// double publish — either a protocol bug or a fence racing a claimer
/// that turned out to be alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOccupied(pub usize);

impl std::fmt::Display for SlotOccupied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bus slot {} published twice", self.0)
    }
}

impl std::error::Error for SlotOccupied {}

/// The shared append-only broadcast log.
#[derive(Debug)]
pub struct BusLog {
    slots: Box<[OnceLock<BusRecord>]>,
    tail: AtomicUsize,
    epoch: AtomicU64,
}

impl BusLog {
    /// Creates a log with capacity for exactly `capacity` broadcasts.
    /// The parallel runtime computes the capacity statically from the
    /// workload (each outer transaction and each non-transactional
    /// store publishes exactly once), so a full log is a protocol bug.
    pub fn new(capacity: usize) -> Self {
        BusLog {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            tail: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current log length (slots claimed; the last one may still be
    /// publishing).
    pub fn tail(&self) -> usize {
        self.tail.load(Ordering::Acquire)
    }

    /// Current bus epoch (advanced only by stress-mode failover
    /// injection; tickets are stamped with it).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the epoch, simulating an arbiter re-election. Dedup is
    /// keyed on `(committer, serial)`, so records stamped before and
    /// after the bump stay distinct and exactly-once delivery holds
    /// across the churn — the property the stress smoke asserts.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Attempts to claim slot `seen`: succeeds only if the log still has
    /// exactly `seen` records, i.e. the caller has validated against
    /// every record that will ever be ordered before its own. On failure
    /// the caller must poll the new records and retry — this CAS *is*
    /// the commit arbitration.
    pub fn try_claim(&self, seen: usize) -> bool {
        assert!(seen < self.slots.len(), "bus log capacity miscomputed");
        self.tail
            .compare_exchange(seen, seen + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Publishes the record into a previously claimed slot. A slot is
    /// written exactly once — by its claimer, or by the supervisor
    /// fencing a dead claimer — so a second publish is a protocol bug
    /// the caller turns into a typed runtime error instead of an abort.
    pub fn publish(&self, slot: usize, record: BusRecord) -> Result<(), SlotOccupied> {
        self.slots[slot].set(record).map_err(|_| SlotOccupied(slot))
    }

    /// Returns slot `i`, spinning (with `yield_now`) through the short
    /// claim-to-publish window if the writer hasn't stored it yet.
    /// Callers must only ask for `i < tail()`.
    pub fn wait_for(&self, i: usize) -> &BusRecord {
        loop {
            if let Some(r) = self.slots[i].get() {
                return r;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Returns slot `i` if it is already published.
    pub fn get(&self, i: usize) -> Option<&BusRecord> {
        self.slots[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(thread: u32, serial: u64, to: usize) -> BusRecord {
        BusRecord {
            ticket: CommitTicket { epoch: 0, committer: thread as usize, serial },
            thread,
            ordinal: serial,
            kind: RecordKind::Commit,
            w_sig: None,
            exact_w: Vec::new(),
            exact_r: Vec::new(),
            validated_to: to,
        }
    }

    #[test]
    fn claim_is_exclusive_and_ordered() {
        let log = BusLog::new(2);
        assert!(log.try_claim(0));
        assert!(!log.try_claim(0), "stale view must not claim");
        assert_eq!(log.tail(), 1);
        log.publish(0, record(0, 0, 0)).unwrap();
        assert!(log.try_claim(1));
        log.publish(1, record(1, 0, 1)).unwrap();
        assert_eq!(log.tail(), 2);
        assert_eq!(log.wait_for(0).thread, 0);
        assert_eq!(log.wait_for(1).thread, 1);
    }

    #[test]
    fn double_publish_is_a_typed_error() {
        let log = BusLog::new(1);
        assert!(log.try_claim(0));
        log.publish(0, record(0, 0, 0)).unwrap();
        let err = log.publish(0, record(1, 0, 0)).unwrap_err();
        assert_eq!(err, SlotOccupied(0));
        assert_eq!(err.to_string(), "bus slot 0 published twice");
    }

    #[test]
    fn a_fence_unblocks_waiters_on_an_orphaned_slot() {
        let log = BusLog::new(1);
        assert!(log.try_claim(0));
        // The claimer died; a reader spinning in wait_for(0) would hang
        // forever. The supervisor fences the slot and the reader sees a
        // skippable tombstone.
        let fence = BusRecord { kind: RecordKind::Fence, ..record(0, 1, 0) };
        log.publish(0, fence).unwrap();
        assert_eq!(log.wait_for(0).kind, RecordKind::Fence);
    }

    #[test]
    fn epoch_bumps_are_visible() {
        let log = BusLog::new(1);
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.bump_epoch(), 1);
        assert_eq!(log.epoch(), 1);
    }

    #[test]
    fn concurrent_claims_produce_a_dense_log() {
        let log = BusLog::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let log = &log;
                s.spawn(move || {
                    for n in 0..16u64 {
                        loop {
                            let seen = log.tail();
                            // Writers may be mid-publish; wait so the
                            // validated prefix is fully visible.
                            for i in 0..seen {
                                let _ = log.wait_for(i);
                            }
                            if log.try_claim(seen) {
                                log.publish(seen, record(t, n, seen)).unwrap();
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(log.tail(), 64);
        for i in 0..64 {
            let r = log.get(i).expect("dense");
            assert_eq!(r.validated_to, i, "claim == validated prefix");
        }
    }
}
