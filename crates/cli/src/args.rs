//! Argument parsing for the `bulk` command-line driver. Hand-rolled and
//! dependency-free; every failure produces a message pointing at the
//! offending flag.

use bulk_tls::TlsScheme;
use bulk_tm::Scheme;

/// A parsed `bulk` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `bulk list` — show applications, schemes and the signature catalog.
    List,
    /// `bulk tm ...` — run one TM simulation.
    Tm(TmArgs),
    /// `bulk tls ...` — run one TLS simulation.
    Tls(TlsArgs),
    /// `bulk replay --file F --scheme S` — run a serialized trace.
    Replay(ReplayArgs),
    /// `bulk sweep-sig --app A` — signature-size ablation on one app.
    SweepSig { app: String, seed: u64 },
    /// `bulk bulkd ...` — run the live telemetry daemon.
    Bulkd(BulkdArgs),
    /// `bulk submit --connect A --spec J` — submit a job spec to a
    /// running daemon and stream its event JSONL to stdout.
    Submit {
        /// Daemon ingest address.
        connect: String,
        /// The job-spec JSON line (from `--spec` or `--spec-file`).
        spec: String,
    },
    /// `bulk status --connect A` — print the daemon's job table.
    Status {
        /// Daemon ingest address.
        connect: String,
    },
    /// `bulk shutdown --connect A` — ask the daemon to stop.
    Shutdown {
        /// Daemon ingest address.
        connect: String,
    },
    /// `bulk scrape --connect A [--check]` — fetch `/metrics` and print
    /// it; `--check` also parse-validates the exposition.
    Scrape {
        /// Daemon HTTP address.
        connect: String,
        /// Validate the exposition format and exit nonzero on errors.
        check: bool,
    },
    /// `bulk help` or `--help`.
    Help,
}

/// Options of `bulk bulkd` (the daemon).
#[derive(Debug, Clone, PartialEq)]
pub struct BulkdArgs {
    /// Ingest listen address (`host:port`; port 0 picks a free port).
    pub listen: String,
    /// HTTP `/metrics` listen address.
    pub http: String,
    /// Maximum concurrently-running jobs.
    pub max_jobs: u64,
    /// Default wall-clock budget per job in ms (0 disables the watchdog).
    pub job_timeout_ms: u64,
    /// Per-job event-ring capacity (0 keeps the library default).
    pub event_capacity: u64,
    /// Write `<ingest-addr>\n<http-addr>\n` here once bound — lets shell
    /// scripts start the daemon on port 0 and discover where it landed.
    pub addr_file: Option<String>,
}

/// Options of `bulk tm`.
#[derive(Debug, Clone, PartialEq)]
pub struct TmArgs {
    /// Application profile name (Table 4).
    pub app: String,
    /// Execution substrate: `"sim"` (deterministic discrete-event
    /// simulator) or `"par"` (real OS threads over the lock-free
    /// broadcast log).
    pub runtime: String,
    /// Conflict-detection scheme.
    pub scheme: Scheme,
    /// Workload seed.
    pub seed: u64,
    /// Override transactions per thread.
    pub txs: Option<usize>,
    /// Signature configuration id (`S1`..`S23`).
    pub sig: String,
    /// Write the generated trace to this path.
    pub dump_trace: Option<String>,
    /// Inject deterministic faults (implies `--audit`).
    pub chaos: bool,
    /// Check runtime invariants after every commit and squash.
    pub audit: bool,
    /// Print the metrics registry (squash attribution, invalidation
    /// overshoot, counters/gauges/histograms) after the run.
    pub metrics: bool,
    /// Write the structured event log as JSONL to this path.
    pub events_out: Option<String>,
    /// Write the metrics registry as JSON to this path.
    pub metrics_out: Option<String>,
    /// Write the causal span trace as Chrome trace-event JSON to this path.
    pub trace_out: Option<String>,
    /// Arm the detection-only forward-progress watchdog with this
    /// global-stall bound in cycles; a trip exits nonzero with a diagnosis.
    pub watchdog_ticks: Option<u64>,
}

/// Options of `bulk tls`.
#[derive(Debug, Clone, PartialEq)]
pub struct TlsArgs {
    /// Application profile name (SPECint stand-in).
    pub app: String,
    /// Execution substrate: `"sim"` (deterministic discrete-event
    /// simulator) or `"par"` (real OS threads over the lock-free
    /// broadcast log).
    pub runtime: String,
    /// Conflict-detection scheme.
    pub scheme: TlsScheme,
    /// Workload seed.
    pub seed: u64,
    /// Override task count.
    pub tasks: Option<usize>,
    /// Write the generated trace to this path.
    pub dump_trace: Option<String>,
    /// Inject deterministic faults (implies `--audit`).
    pub chaos: bool,
    /// Check runtime invariants after every commit and squash.
    pub audit: bool,
    /// Print the metrics registry (squash attribution, invalidation
    /// overshoot, counters/gauges/histograms) after the run.
    pub metrics: bool,
    /// Write the structured event log as JSONL to this path.
    pub events_out: Option<String>,
    /// Write the metrics registry as JSON to this path.
    pub metrics_out: Option<String>,
    /// Write the causal span trace as Chrome trace-event JSON to this path.
    pub trace_out: Option<String>,
    /// Arm the detection-only forward-progress watchdog with this
    /// global-stall bound in cycles; a trip exits nonzero with a diagnosis.
    pub watchdog_ticks: Option<u64>,
}

/// Options of `bulk replay`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayArgs {
    /// Path of a trace serialized by `--dump-trace` (TM or TLS; detected
    /// from the header).
    pub file: String,
    /// Scheme name, interpreted per trace kind.
    pub scheme: String,
}

/// Usage text printed by `bulk help`.
pub const USAGE: &str = "\
bulk — run the Bulk Disambiguation reproduction

USAGE:
  bulk list
  bulk tm  --app <name> [--runtime <sim|par>]
           [--scheme <eager-naive|eager|lazy|bulk|bulk-partial>]
           [--seed <n>] [--txs <n>] [--sig <S1..S23>] [--dump-trace <file>]
           [--chaos] [--audit] [--metrics] [--events-out <file>]
           [--metrics-out <file>] [--trace-out <file>] [--watchdog-ticks <n>]
  bulk tls --app <name> [--runtime <sim|par>]
           [--scheme <eager|lazy|bulk|bulk-no-overlap>]
           [--seed <n>] [--tasks <n>] [--dump-trace <file>]
           [--chaos] [--audit] [--metrics] [--events-out <file>]
           [--metrics-out <file>] [--trace-out <file>] [--watchdog-ticks <n>]
  bulk replay --file <trace> --scheme <name>
  bulk sweep-sig --app <name> [--seed <n>]
  bulk bulkd [--listen <host:port>] [--http <host:port>] [--max-jobs <n>]
             [--job-timeout-ms <n>] [--event-capacity <n>] [--addr-file <file>]
  bulk submit --connect <host:port> (--spec <json> | --spec-file <file>)
  bulk status --connect <host:port>
  bulk shutdown --connect <host:port>
  bulk scrape --connect <host:port> [--check]
  bulk help

DAEMON:
  `bulk bulkd` starts the live telemetry daemon: it accepts line-delimited
  JSON job specs on the ingest socket (one object per line, e.g.
  {\"machine\": \"tm\", \"app\": \"cb\", \"scheme\": \"bulk\", \"seed\": 7,
  \"runtime\": \"par\"}), runs up to --max-jobs of them concurrently on
  either substrate, streams each job's structured event log back as JSONL
  on the submitting connection, and serves every job's metrics registry on
  GET /metrics in Prometheus text exposition format with job/machine/
  scheme/runtime labels. A job that exceeds its wall-clock budget
  (spec key timeout_ms, default --job-timeout-ms) is reaped as a typed
  job-timeout failure; the daemon and its other jobs keep running.
  `bulk submit` sends one spec and relays the stream; `bulk scrape
  --check` validates the exposition (CI uses it as the smoke gate).

RUNTIMES:
  --runtime selects the execution substrate. `sim` (the default) is the
  deterministic discrete-event simulator: same trace + same seed is
  byte-identical across runs, and it models Table 5 timing. `par` runs
  the same commit/squash protocol on real OS threads over a lock-free
  broadcast log with epoch-ticketed exactly-once delivery; it supports
  the schemes whose disambiguation is timing-independent (TM: bulk,
  lazy; TLS: bulk, bulk-no-overlap, lazy), audits its committed history
  after every run, and reports wall time instead of simulated cycles.
  The simulator-only timing flags (--watchdog-ticks, --events-out,
  --trace-out) are rejected under --runtime par; --chaos composes with
  it and switches to the real-thread fault preset described below.

CHAOS:
  --chaos injects deterministic faults (commit denials, delayed/duplicated
  broadcasts, in-flight signature corruption, forced context switches and
  evictions) and audits every invariant; --audit checks invariants on a
  fault-free run. The fault seed defaults to the workload seed and can be
  overridden with the BULK_CHAOS_SEED environment variable; every chaos
  run prints the seed needed to replay it. Any invariant violation or
  undetected corruption makes the exit code nonzero. Under --runtime par
  the same flag arms the real-thread fault preset instead: seeded worker
  kills at commit-protocol points (claim, publish, apply), short injected
  stalls and widened claim-to-publish windows. The supervisor fences the
  dead worker's orphaned bus slot (TM) or lets the respawned worker adopt
  it (TLS), respawns from the last verified checkpoint, and reports the
  recoveries in a resilience section; an unrecoverable death or a
  wall-clock stall exits nonzero with the replay seed.

OBSERVABILITY:
  --metrics prints the metrics registry after the run: every squash is
  attributed against the exact per-address oracle (true-conflict vs.
  signature aliasing), bulk invalidations record exact-vs-expanded line
  counts, and all counters/gauges/histograms are listed. --events-out
  writes the structured event log (commit broadcasts, squashes with
  cause, bulk invalidations, overflow spills, context switches,
  escalations) as one JSON object per line. --metrics-out writes the
  registry itself as JSON (sorted names, fixed layout — byte-identical
  across same-seed runs); CI uploads these as workflow artifacts.
  --trace-out writes the causal span trace in Chrome trace-event JSON
  (load it in chrome://tracing or ui.perfetto.dev): speculative sections,
  commit broadcasts, squashes, backoff, stalls, spills and checkpoints as
  spans, with flow arrows from every commit broadcast to the squashes and
  bulk invalidations it caused. The trace also feeds the cycle-accounting
  profiler, whose per-category breakdown (useful, squashed, commit,
  stall, overhead, other) appears in the --metrics report under
  `*.cycles.*` and must conserve: categories sum to the total of all
  per-thread timelines, audited like any other invariant.

LIVENESS:
  --watchdog-ticks <n> arms the detection-only forward-progress watchdog:
  livelock (a squash ping-pong cycle between two threads), starvation
  (one thread's commit age exceeding its bound) and global stall (no
  commit for <n> cycles). Detection never perturbs the schedule — the
  backoff ladder stays off. A trip aborts the run, prints the diagnosis
  (including the detected squash cycle) and exits nonzero; try
  `bulk tm --app mc --scheme eager-naive --watchdog-ticks 1000000`.
";

/// Parses a `--runtime` value (defaulting to the simulator).
pub fn parse_runtime(v: Option<String>) -> Result<String, String> {
    let name = v.unwrap_or_else(|| "sim".into());
    match name.as_str() {
        "sim" | "par" => Ok(name),
        other => Err(format!("unknown runtime `{other}` (expected sim|par)")),
    }
}

/// Parses a TM scheme name.
pub fn parse_tm_scheme(s: &str) -> Result<Scheme, String> {
    s.parse()
}

/// Parses a TLS scheme name.
pub fn parse_tls_scheme(s: &str) -> Result<TlsScheme, String> {
    s.parse()
}

struct Flags {
    pairs: Vec<(String, String)>,
}

/// Flags that stand alone, without a value.
const BOOLEAN_FLAGS: &[&str] = &["chaos", "audit", "metrics", "check"];

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, found `{flag}`"))?;
            if BOOLEAN_FLAGS.contains(&name) {
                pairs.push((name.to_string(), String::new()));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn take(&mut self, name: &str) -> Option<String> {
        let i = self.pairs.iter().position(|(n, _)| n == name)?;
        Some(self.pairs.remove(i).1)
    }

    fn take_bool(&mut self, name: &str) -> bool {
        self.take(name).is_some()
    }

    fn finish(self) -> Result<(), String> {
        match self.pairs.first() {
            Some((n, _)) => Err(format!("unknown flag --{n}")),
            None => Ok(()),
        }
    }
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for any unknown command, unknown flag,
/// missing value, or malformed number.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "tm" => {
            let mut f = Flags::parse(rest)?;
            let app = f.take("app").ok_or("tm: --app is required")?;
            let runtime = parse_runtime(f.take("runtime"))?;
            let scheme = parse_tm_scheme(&f.take("scheme").unwrap_or_else(|| "bulk".into()))?;
            let seed = parse_num(f.take("seed"), 42, "--seed")?;
            let txs = match f.take("txs") {
                Some(v) => {
                    Some(v.parse().map_err(|_| format!("--txs: bad number `{v}`"))?)
                }
                None => None,
            };
            let sig = f.take("sig").unwrap_or_else(|| "S14".into());
            let dump_trace = f.take("dump-trace");
            let chaos = f.take_bool("chaos");
            let audit = f.take_bool("audit") || chaos;
            let metrics = f.take_bool("metrics");
            let events_out = f.take("events-out");
            let metrics_out = f.take("metrics-out");
            let trace_out = f.take("trace-out");
            let watchdog_ticks = parse_opt_num(f.take("watchdog-ticks"), "--watchdog-ticks")?;
            f.finish()?;
            Ok(Command::Tm(TmArgs {
                app,
                runtime,
                scheme,
                seed,
                txs,
                sig,
                dump_trace,
                chaos,
                audit,
                metrics,
                events_out,
                metrics_out,
                trace_out,
                watchdog_ticks,
            }))
        }
        "tls" => {
            let mut f = Flags::parse(rest)?;
            let app = f.take("app").ok_or("tls: --app is required")?;
            let runtime = parse_runtime(f.take("runtime"))?;
            let scheme =
                parse_tls_scheme(&f.take("scheme").unwrap_or_else(|| "bulk".into()))?;
            let seed = parse_num(f.take("seed"), 42, "--seed")?;
            let tasks = match f.take("tasks") {
                Some(v) => {
                    Some(v.parse().map_err(|_| format!("--tasks: bad number `{v}`"))?)
                }
                None => None,
            };
            let dump_trace = f.take("dump-trace");
            let chaos = f.take_bool("chaos");
            let audit = f.take_bool("audit") || chaos;
            let metrics = f.take_bool("metrics");
            let events_out = f.take("events-out");
            let metrics_out = f.take("metrics-out");
            let trace_out = f.take("trace-out");
            let watchdog_ticks = parse_opt_num(f.take("watchdog-ticks"), "--watchdog-ticks")?;
            f.finish()?;
            Ok(Command::Tls(TlsArgs {
                app,
                runtime,
                scheme,
                seed,
                tasks,
                dump_trace,
                chaos,
                audit,
                metrics,
                events_out,
                metrics_out,
                trace_out,
                watchdog_ticks,
            }))
        }
        "replay" => {
            let mut f = Flags::parse(rest)?;
            let file = f.take("file").ok_or("replay: --file is required")?;
            let scheme = f.take("scheme").ok_or("replay: --scheme is required")?;
            f.finish()?;
            Ok(Command::Replay(ReplayArgs { file, scheme }))
        }
        "sweep-sig" => {
            let mut f = Flags::parse(rest)?;
            let app = f.take("app").ok_or("sweep-sig: --app is required")?;
            let seed = parse_num(f.take("seed"), 42, "--seed")?;
            f.finish()?;
            Ok(Command::SweepSig { app, seed })
        }
        "bulkd" => {
            let mut f = Flags::parse(rest)?;
            let listen = f.take("listen").unwrap_or_else(|| "127.0.0.1:7700".into());
            let http = f.take("http").unwrap_or_else(|| "127.0.0.1:7701".into());
            let max_jobs = parse_num(f.take("max-jobs"), 8, "--max-jobs")?;
            let job_timeout_ms = parse_num(f.take("job-timeout-ms"), 30_000, "--job-timeout-ms")?;
            let event_capacity = parse_num(f.take("event-capacity"), 0, "--event-capacity")?;
            let addr_file = f.take("addr-file");
            f.finish()?;
            Ok(Command::Bulkd(BulkdArgs {
                listen,
                http,
                max_jobs,
                job_timeout_ms,
                event_capacity,
                addr_file,
            }))
        }
        "submit" => {
            let mut f = Flags::parse(rest)?;
            let connect = f.take("connect").ok_or("submit: --connect is required")?;
            let spec = match (f.take("spec"), f.take("spec-file")) {
                (Some(s), None) => s,
                (None, Some(path)) => std::fs::read_to_string(&path)
                    .map_err(|e| format!("--spec-file {path}: {e}"))?
                    .trim()
                    .to_string(),
                (Some(_), Some(_)) => {
                    return Err("submit: --spec and --spec-file are mutually exclusive".into())
                }
                (None, None) => return Err("submit: --spec or --spec-file is required".into()),
            };
            f.finish()?;
            Ok(Command::Submit { connect, spec })
        }
        "status" => {
            let mut f = Flags::parse(rest)?;
            let connect = f.take("connect").ok_or("status: --connect is required")?;
            f.finish()?;
            Ok(Command::Status { connect })
        }
        "shutdown" => {
            let mut f = Flags::parse(rest)?;
            let connect = f.take("connect").ok_or("shutdown: --connect is required")?;
            f.finish()?;
            Ok(Command::Shutdown { connect })
        }
        "scrape" => {
            let mut f = Flags::parse(rest)?;
            let connect = f.take("connect").ok_or("scrape: --connect is required")?;
            let check = f.take_bool("check");
            f.finish()?;
            Ok(Command::Scrape { connect, check })
        }
        other => Err(format!("unknown command `{other}`; try `bulk help`")),
    }
}

fn parse_num(v: Option<String>, default: u64, flag: &str) -> Result<u64, String> {
    match v {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{flag}: bad number `{v}`")),
    }
}

fn parse_opt_num(v: Option<String>, flag: &str) -> Result<Option<u64>, String> {
    match v {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag}: bad number `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_tm_with_defaults() {
        let c = parse(&args("tm --app mc")).unwrap();
        assert_eq!(
            c,
            Command::Tm(TmArgs {
                app: "mc".into(),
                runtime: "sim".into(),
                scheme: Scheme::Bulk,
                seed: 42,
                txs: None,
                sig: "S14".into(),
                dump_trace: None,
                chaos: false,
                audit: false,
                metrics: false,
                events_out: None,
                metrics_out: None,
                trace_out: None,
                watchdog_ticks: None,
            })
        );
    }

    #[test]
    fn parses_runtime() {
        match parse(&args("tm --app mc --runtime par")).unwrap() {
            Command::Tm(a) => assert_eq!(a.runtime, "par"),
            other => panic!("{other:?}"),
        }
        match parse(&args("tls --app gzip --runtime par --seed 3")).unwrap() {
            Command::Tls(a) => {
                assert_eq!(a.runtime, "par");
                assert_eq!(a.seed, 3);
            }
            other => panic!("{other:?}"),
        }
        match parse(&args("tls --app gzip")).unwrap() {
            Command::Tls(a) => assert_eq!(a.runtime, "sim", "sim is the default"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("tm --app mc --runtime hw")).is_err());
        assert!(parse(&args("tm --app mc --runtime")).is_err());
    }

    #[test]
    fn parses_trace_out() {
        match parse(&args("tm --app mc --trace-out /tmp/t.json")).unwrap() {
            Command::Tm(a) => assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.json")),
            other => panic!("{other:?}"),
        }
        match parse(&args("tls --app gzip --trace-out t.json")).unwrap() {
            Command::Tls(a) => assert_eq!(a.trace_out.as_deref(), Some("t.json")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_metrics_out() {
        match parse(&args("tm --app mc --metrics-out /tmp/m.json")).unwrap() {
            Command::Tm(a) => assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.json")),
            other => panic!("{other:?}"),
        }
        match parse(&args("tls --app gzip --metrics-out m.json")).unwrap() {
            Command::Tls(a) => assert_eq!(a.metrics_out.as_deref(), Some("m.json")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_watchdog_ticks() {
        match parse(&args("tm --app mc --scheme eager-naive --watchdog-ticks 500000")).unwrap() {
            Command::Tm(a) => assert_eq!(a.watchdog_ticks, Some(500_000)),
            other => panic!("{other:?}"),
        }
        match parse(&args("tls --app gzip --watchdog-ticks 9")).unwrap() {
            Command::Tls(a) => assert_eq!(a.watchdog_ticks, Some(9)),
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("tm --app mc --watchdog-ticks nope")).is_err());
        assert!(parse(&args("tm --app mc --watchdog-ticks")).is_err());
    }

    #[test]
    fn parses_chaos_and_audit_flags() {
        match parse(&args("tm --app mc --chaos")).unwrap() {
            Command::Tm(a) => {
                assert!(a.chaos);
                assert!(a.audit, "--chaos implies --audit");
            }
            other => panic!("{other:?}"),
        }
        match parse(&args("tls --app gzip --audit --seed 9")).unwrap() {
            Command::Tls(a) => {
                assert!(!a.chaos);
                assert!(a.audit);
                assert_eq!(a.seed, 9);
            }
            other => panic!("{other:?}"),
        }
        // Boolean flags consume no value: the next token is still a flag.
        match parse(&args("tls --app gzip --chaos --tasks 5")).unwrap() {
            Command::Tls(a) => {
                assert!(a.chaos);
                assert_eq!(a.tasks, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_full_tm() {
        let c = parse(&args(
            "tm --app lu --scheme lazy --seed 7 --txs 20 --sig S4 --dump-trace /tmp/t",
        ))
        .unwrap();
        match c {
            Command::Tm(a) => {
                assert_eq!(a.scheme, Scheme::Lazy);
                assert_eq!(a.seed, 7);
                assert_eq!(a.txs, Some(20));
                assert_eq!(a.sig, "S4");
                assert_eq!(a.dump_trace.as_deref(), Some("/tmp/t"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_tls_and_replay_and_sweep() {
        assert!(matches!(
            parse(&args("tls --app gzip --scheme bulk-no-overlap")).unwrap(),
            Command::Tls(a) if a.scheme == TlsScheme::BulkNoOverlap
        ));
        assert!(matches!(
            parse(&args("replay --file t.trace --scheme bulk")).unwrap(),
            Command::Replay(_)
        ));
        assert!(matches!(
            parse(&args("sweep-sig --app cb --seed 3")).unwrap(),
            Command::SweepSig { seed: 3, .. }
        ));
    }

    #[test]
    fn parses_metrics_and_events_out() {
        match parse(&args("tm --app mc --metrics --events-out /tmp/e.jsonl")).unwrap() {
            Command::Tm(a) => {
                assert!(a.metrics);
                assert_eq!(a.events_out.as_deref(), Some("/tmp/e.jsonl"));
            }
            other => panic!("{other:?}"),
        }
        // --metrics is boolean: the next token is still parsed as a flag.
        match parse(&args("tls --app gzip --metrics --seed 5")).unwrap() {
            Command::Tls(a) => {
                assert!(a.metrics);
                assert!(a.events_out.is_none());
                assert_eq!(a.seed, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_daemon_commands() {
        match parse(&args("bulkd --listen 127.0.0.1:0 --http 127.0.0.1:0 --max-jobs 3 --addr-file /tmp/a")).unwrap() {
            Command::Bulkd(a) => {
                assert_eq!(a.listen, "127.0.0.1:0");
                assert_eq!(a.max_jobs, 3);
                assert_eq!(a.job_timeout_ms, 30_000, "default budget");
                assert_eq!(a.addr_file.as_deref(), Some("/tmp/a"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&args("bulkd")).unwrap() {
            Command::Bulkd(a) => {
                assert_eq!(a.listen, "127.0.0.1:7700");
                assert_eq!(a.http, "127.0.0.1:7701");
                assert_eq!(a.max_jobs, 8);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&args("status --connect 127.0.0.1:7700")).unwrap(),
            Command::Status { .. }
        ));
        assert!(matches!(
            parse(&args("shutdown --connect 127.0.0.1:7700")).unwrap(),
            Command::Shutdown { .. }
        ));
        match parse(&args("scrape --connect 127.0.0.1:7701 --check")).unwrap() {
            Command::Scrape { check, .. } => assert!(check),
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("status")).is_err(), "--connect is required");
        assert!(parse(&args("bulkd --max-jobs nope")).is_err());
    }

    #[test]
    fn parses_submit_spec_variants() {
        let spec = "{\"machine\":\"tm\",\"app\":\"cb\",\"scheme\":\"bulk\"}";
        match parse(&["submit".into(), "--connect".into(), "h:1".into(), "--spec".into(), spec.into()])
            .unwrap()
        {
            Command::Submit { connect, spec: s } => {
                assert_eq!(connect, "h:1");
                assert_eq!(s, spec);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("submit --connect h:1")).is_err(), "spec required");
        assert!(
            parse(&["submit".into(), "--connect".into(), "h:1".into(), "--spec".into(), "{}".into(), "--spec-file".into(), "f".into()]).is_err(),
            "spec sources are mutually exclusive"
        );
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("tm --app mc --bogus 1")).is_err());
        assert!(parse(&args("tm --app mc --scheme wat")).is_err());
        assert!(parse(&args("tm")).is_err());
        assert!(parse(&args("tm --app")).is_err());
        assert!(parse(&args("tm --app mc --seed nope")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("list")).unwrap(), Command::List);
    }
}
