//! `bulk` — command-line driver for the Bulk Disambiguation reproduction.
//!
//! Run `bulk help` for usage. The driver can run any application profile
//! under any scheme, dump/replay traces, list the catalogs and sweep
//! signature configurations.

mod args;
mod report;

use std::process::ExitCode;
use std::sync::Arc;

use args::{parse, BulkdArgs, Command, ReplayArgs, TlsArgs, TmArgs, USAGE};
use bulk_chaos::FaultPlan;
use bulk_live::{BackoffConfig, LivenessConfig, WatchdogConfig};
use bulk_obs::Obs;
use bulk_par::{ParConfig, ParRuntime, Runtime};
use bulk_sig::{table8, table8_spec, BitPermutation, Granularity, SignatureConfig};
use bulk_sim::SimConfig;
use bulk_tls::TlsMachine;
use bulk_tm::TmMachine;
use bulk_trace::{io, profiles};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(cmd) => match run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List => {
            list();
            Ok(())
        }
        Command::Tm(a) => run_tm(a),
        Command::Tls(a) => run_tls(a),
        Command::Replay(a) => replay(a),
        Command::SweepSig { app, seed } => sweep_sig(&app, seed),
        Command::Bulkd(a) => run_bulkd(a),
        Command::Submit { connect, spec } => submit(&connect, &spec),
        Command::Status { connect } => {
            let line = bulkd::client::control(&connect, "status").map_err(|e| e.to_string())?;
            println!("{line}");
            Ok(())
        }
        Command::Shutdown { connect } => {
            let line = bulkd::client::control(&connect, "shutdown").map_err(|e| e.to_string())?;
            println!("{line}");
            Ok(())
        }
        Command::Scrape { connect, check } => scrape(&connect, check),
    }
}

/// Runs the telemetry daemon in the foreground until a `shutdown`
/// control command arrives on the ingest socket (or the process is
/// killed). `--addr-file` publishes the bound addresses for scripts that
/// listen on port 0.
fn run_bulkd(a: BulkdArgs) -> Result<(), String> {
    let mut cfg = bulkd::DaemonConfig {
        listen: a.listen,
        http: a.http,
        max_jobs: a.max_jobs.max(1) as usize,
        default_timeout_ms: a.job_timeout_ms,
        ..bulkd::DaemonConfig::default()
    };
    if a.event_capacity > 0 {
        cfg.event_capacity = a.event_capacity as usize;
    }
    let handle = bulkd::spawn(cfg).map_err(|e| format!("bulkd: {e}"))?;
    println!("bulkd: ingest on {}", handle.ingest_addr());
    println!("bulkd: metrics on http://{}/metrics", handle.http_addr());
    if let Some(path) = &a.addr_file {
        std::fs::write(path, format!("{}\n{}\n", handle.ingest_addr(), handle.http_addr()))
            .map_err(|e| format!("--addr-file {path}: {e}"))?;
    }
    handle.wait();
    println!("bulkd: stopped");
    Ok(())
}

/// Submits one job spec and relays the daemon's stream to stdout. Exits
/// nonzero when the job fails (typed error or rejection).
fn submit(connect: &str, spec: &str) -> Result<(), String> {
    let sub = bulkd::client::submit_spec(connect, spec).map_err(|e| e.to_string())?;
    for line in &sub.lines {
        println!("{line}");
    }
    if sub.ok() {
        Ok(())
    } else {
        Err(format!("job did not complete: {}", sub.last()))
    }
}

/// Fetches `/metrics` and prints it; with `check`, also validates the
/// exposition format (families declared, cumulative buckets, `+Inf`
/// consistency) and reports the family/sample counts on stderr.
fn scrape(connect: &str, check: bool) -> Result<(), String> {
    let body = bulkd::client::scrape(connect).map_err(|e| e.to_string())?;
    print!("{body}");
    if check {
        let (families, samples) = bulk_obs::prometheus::validate(&body)
            .map_err(|e| format!("exposition invalid: {e}"))?;
        eprintln!("scrape OK: {families} families, {samples} samples");
    }
    Ok(())
}

fn list() {
    println!("TM applications (Table 4 stand-ins):");
    for p in profiles::tm_profiles() {
        println!(
            "  {:<8} rd={:<5} wr={:<5} threads={}",
            p.name, p.rd_lines, p.wr_lines, p.threads
        );
    }
    println!("\nTLS applications (SPECint2000 stand-ins):");
    for p in profiles::tls_profiles() {
        println!(
            "  {:<8} rd={:<6} wr={:<5} tasks={}",
            p.name, p.rd_words, p.wr_words, p.tasks
        );
    }
    println!("\nTM schemes:  eager-naive eager lazy bulk bulk-partial");
    println!("TLS schemes: eager lazy bulk bulk-no-overlap");
    println!("\nSignature catalog (Table 8):");
    for s in table8() {
        println!("  {:<4} {:>6} bits  chunks {:?}", s.id, s.full_size_bits(), s.chunks);
    }
}

fn signature(id: &str) -> Result<SignatureConfig, String> {
    let spec = table8_spec(id).ok_or_else(|| format!("unknown signature `{id}`"))?;
    let cfg = SignatureConfig::from_spec(spec, BitPermutation::paper_tm(), Granularity::Line, 64);
    Ok(cfg)
}

/// The fault seed for a chaos run: `BULK_CHAOS_SEED` if set (replaying a
/// reported failure), the workload seed otherwise.
fn chaos_seed(default: u64) -> Result<u64, String> {
    match std::env::var("BULK_CHAOS_SEED") {
        Ok(v) => v.parse().map_err(|_| format!("BULK_CHAOS_SEED: bad number `{v}`")),
        Err(_) => Ok(default),
    }
}

/// Fails the run (nonzero exit) if the auditor observed violations.
fn check_violations(
    violations: &[bulk_chaos::InvariantViolation],
    chaos: Option<u64>,
) -> Result<(), String> {
    if violations.is_empty() {
        return Ok(());
    }
    for v in violations {
        eprintln!("{v}");
    }
    let replay = match chaos {
        Some(seed) => format!("; replay with BULK_CHAOS_SEED={seed}"),
        None => String::new(),
    };
    Err(format!("{} invariant violation(s){replay}", violations.len()))
}

/// Fails the run (nonzero exit) if the liveness watchdog tripped. The
/// printed diagnosis carries the detected squash cycle for livelocks.
fn check_liveness(violations: &[bulk_live::LivenessViolation]) -> Result<(), String> {
    if violations.is_empty() {
        return Ok(());
    }
    for v in violations {
        eprintln!("{v}");
    }
    Err(format!("{} liveness violation(s)", violations.len()))
}

/// The `--watchdog-ticks` configuration: pure detection. A zero backoff
/// ladder means arming the watchdog never perturbs the schedule, so a
/// watched run stays cycle-identical to an unwatched one.
fn watchdog_only(stall_ticks: u64) -> LivenessConfig {
    LivenessConfig {
        watchdog: WatchdogConfig {
            stall_ticks,
            ..WatchdogConfig::default()
        },
        backoff: BackoffConfig {
            base: 0,
            cap: 0,
            ..BackoffConfig::default()
        },
        ..LivenessConfig::default()
    }
}

fn run_tm(a: TmArgs) -> Result<(), String> {
    let mut p = profiles::tm_profile(&a.app)
        .ok_or_else(|| format!("unknown TM app `{}` (try `bulk list`)", a.app))?;
    if let Some(txs) = a.txs {
        p.txs_per_thread = txs;
    }
    let wl = p.generate(a.seed);
    if let Some(path) = &a.dump_trace {
        std::fs::write(path, io::tm_to_string(&wl)).map_err(|e| e.to_string())?;
        println!("trace written to {path}");
    }
    if a.runtime == "par" {
        reject_sim_only_flags("tm", a.watchdog_ticks, &a.events_out, &a.trace_out)?;
        let (cfg, chaos) = par_config(a.seed, a.chaos)?;
        let rt = ParRuntime::new(cfg);
        let r = rt
            .run_tm(&wl, a.scheme, &SimConfig::tm_default())
            .map_err(|e| par_error(e, chaos))?;
        report::print_par("TM", &a.app, &a.scheme.to_string(), &r);
        write_par_metrics(&a.metrics_out, &r, a.seed)?;
        return check_violations(&r.violations, chaos);
    }
    let sig = signature(&a.sig)?;
    let cfg = SimConfig::tm_default();
    let mut m =
        TmMachine::try_with_signature(&wl, a.scheme, &cfg, sig).map_err(|e| e.to_string())?;
    let seed = configure_tm(&mut m, &a)?;
    let obs = make_obs(a.metrics, &a.events_out, &a.metrics_out, &a.trace_out);
    if let Some(o) = &obs {
        m.attach_obs(Arc::clone(o));
    }
    let stats = m.try_run().map_err(|e| e.to_string())?;
    report::print_tm(&a.app, a.scheme, &stats, a.chaos);
    finish_obs(
        &obs,
        "tm.",
        &a.runtime,
        a.seed,
        a.metrics,
        &a.events_out,
        &a.metrics_out,
        &a.trace_out,
    )?;
    check_violations(&stats.violations, seed)?;
    check_liveness(&stats.liveness_violations)
}

/// The parallel runtime's configuration for a CLI run: the workload seed
/// doubles as the backoff-jitter seed, everything else stays at the
/// defaults (`--runtime par` is about substrate semantics, not tuning).
/// `--chaos` arms the real-thread fault preset — seeded worker kills at
/// commit-protocol points, injected stalls, widened claim-to-publish
/// windows — and returns the fault seed for the replay hint.
fn par_config(seed: u64, chaos: bool) -> Result<(ParConfig, Option<u64>), String> {
    let mut cfg = ParConfig { seed, ..ParConfig::default() };
    if !chaos {
        return Ok((cfg, None));
    }
    let s = chaos_seed(seed)?;
    println!("chaos: fault seed {s} (replay with BULK_CHAOS_SEED={s})");
    cfg.chaos = Some(bulk_chaos::ChaosConfig::worker_crash(s));
    Ok((cfg, Some(s)))
}

/// Renders a parallel-runtime error, appending the chaos replay hint
/// when a fault preset was armed: an unrecoverable worker death or a
/// tripped wall-clock watchdog is only useful if it can be replayed.
fn par_error(e: bulk_par::RuntimeError, chaos: Option<u64>) -> String {
    match chaos {
        Some(seed) => format!("{e}; replay with BULK_CHAOS_SEED={seed}"),
        None => e.to_string(),
    }
}

/// Rejects the simulator-only flags under `--runtime par`: watchdog
/// ticks and the event/span pipelines all hook the simulated clock,
/// which real threads do not have. Failing loudly beats silently
/// dropping what the user asked for. (`--chaos` is *not* sim-only: under
/// par it arms the real-thread worker-fault preset instead.)
fn reject_sim_only_flags(
    cmd: &str,
    watchdog_ticks: Option<u64>,
    events_out: &Option<String>,
    trace_out: &Option<String>,
) -> Result<(), String> {
    let offending = if watchdog_ticks.is_some() {
        Some("--watchdog-ticks")
    } else if events_out.is_some() {
        Some("--events-out")
    } else if trace_out.is_some() {
        Some("--trace-out")
    } else {
        None
    };
    match offending {
        Some(flag) => Err(format!(
            "{cmd}: {flag} needs the simulated clock and is sim-only; \
             drop it or use --runtime sim"
        )),
        None => Ok(()),
    }
}

/// Writes the parallel runtime's self-describing metrics JSON when
/// `--metrics-out` asked for one.
fn write_par_metrics(
    path: &Option<String>,
    r: &bulk_par::RunReport,
    seed: u64,
) -> Result<(), String> {
    if let Some(path) = path {
        std::fs::write(path, report::par_metrics_json(r, seed)).map_err(|e| e.to_string())?;
        println!("metrics written to {path}");
    }
    Ok(())
}

/// Builds the shared observability bundle when `--metrics`,
/// `--events-out`, `--metrics-out` or `--trace-out` asked for one.
fn make_obs(
    metrics: bool,
    events_out: &Option<String>,
    metrics_out: &Option<String>,
    trace_out: &Option<String>,
) -> Option<Arc<Obs>> {
    (metrics || events_out.is_some() || metrics_out.is_some() || trace_out.is_some())
        .then(|| Arc::new(Obs::new()))
}

/// Prints the metrics section and/or writes the event JSONL, the
/// registry JSON and the Chrome trace-event JSON, as requested. The
/// registry JSON is wrapped as `{"runtime": ..., "seed": ..., "metrics":
/// {...}}` so every metrics artifact names the substrate and workload
/// seed that produced it.
fn finish_obs(
    obs: &Option<Arc<Obs>>,
    prefix: &str,
    runtime: &str,
    seed: u64,
    metrics: bool,
    events_out: &Option<String>,
    metrics_out: &Option<String>,
    trace_out: &Option<String>,
) -> Result<(), String> {
    let Some(o) = obs else { return Ok(()) };
    if metrics {
        report::print_metrics(o.registry(), prefix, runtime);
        report::print_cycle_breakdown(o.registry(), prefix);
        report::print_event_drops(o.events());
    }
    if let Some(path) = events_out {
        std::fs::write(path, o.events().to_jsonl()).map_err(|e| e.to_string())?;
        println!(
            "events written to {path} ({} events, {} dropped)",
            o.events().len(),
            o.events().dropped()
        );
    }
    if let Some(path) = metrics_out {
        let wrapped = format!(
            "{{\n  \"runtime\": \"{runtime}\",\n  \"seed\": {seed},\n  \"metrics\": {}\n}}\n",
            o.registry().to_json_indented("  ")
        );
        std::fs::write(path, wrapped).map_err(|e| e.to_string())?;
        println!("metrics written to {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(path, o.trace().to_chrome_json()).map_err(|e| e.to_string())?;
        println!(
            "trace written to {path} ({} spans, {} dropped)",
            o.trace().len(),
            o.trace().dropped()
        );
    }
    Ok(())
}

fn configure_tm(m: &mut TmMachine, a: &TmArgs) -> Result<Option<u64>, String> {
    if a.audit {
        m.enable_audit();
    }
    let mut seed = None;
    if a.chaos {
        let s = chaos_seed(a.seed)?;
        println!("chaos: fault seed {s} (replay with BULK_CHAOS_SEED={s})");
        m.set_chaos(FaultPlan::seeded(s));
        seed = Some(s);
    }
    if let Some(ticks) = a.watchdog_ticks {
        m.enable_liveness(watchdog_only(ticks));
    }
    Ok(seed)
}

fn run_tls(a: TlsArgs) -> Result<(), String> {
    let mut p = profiles::tls_profile(&a.app)
        .ok_or_else(|| format!("unknown TLS app `{}` (try `bulk list`)", a.app))?;
    if let Some(tasks) = a.tasks {
        p.tasks = tasks;
    }
    let wl = p.generate(a.seed);
    if let Some(path) = &a.dump_trace {
        std::fs::write(path, io::tls_to_string(&wl)).map_err(|e| e.to_string())?;
        println!("trace written to {path}");
    }
    let cfg = SimConfig::tls_default();
    if a.runtime == "par" {
        reject_sim_only_flags("tls", a.watchdog_ticks, &a.events_out, &a.trace_out)?;
        let (pcfg, chaos) = par_config(a.seed, a.chaos)?;
        let rt = ParRuntime::new(pcfg);
        let r = rt.run_tls(&wl, a.scheme, &cfg).map_err(|e| par_error(e, chaos))?;
        report::print_par("TLS", &a.app, &a.scheme.to_string(), &r);
        write_par_metrics(&a.metrics_out, &r, a.seed)?;
        return check_violations(&r.violations, chaos);
    }
    let seq = bulk_tls::run_tls_sequential(&wl, &cfg);
    let mut m = TlsMachine::try_new(&wl, a.scheme, &cfg).map_err(|e| e.to_string())?;
    let seed = configure_tls(&mut m, &a)?;
    let obs = make_obs(a.metrics, &a.events_out, &a.metrics_out, &a.trace_out);
    if let Some(o) = &obs {
        m.attach_obs(Arc::clone(o));
    }
    let stats = m.try_run().map_err(|e| e.to_string())?;
    report::print_tls(&a.app, a.scheme, seq, &stats, a.chaos);
    finish_obs(
        &obs,
        "tls.",
        &a.runtime,
        a.seed,
        a.metrics,
        &a.events_out,
        &a.metrics_out,
        &a.trace_out,
    )?;
    check_violations(&stats.violations, seed)?;
    check_liveness(&stats.liveness_violations)
}

fn configure_tls(m: &mut TlsMachine, a: &TlsArgs) -> Result<Option<u64>, String> {
    if a.audit {
        m.enable_audit();
    }
    let mut seed = None;
    if a.chaos {
        let s = chaos_seed(a.seed)?;
        println!("chaos: fault seed {s} (replay with BULK_CHAOS_SEED={s})");
        m.set_chaos(FaultPlan::seeded(s));
        seed = Some(s);
    }
    if let Some(ticks) = a.watchdog_ticks {
        m.enable_liveness(watchdog_only(ticks));
    }
    Ok(seed)
}

fn replay(a: ReplayArgs) -> Result<(), String> {
    let text = std::fs::read_to_string(&a.file).map_err(|e| e.to_string())?;
    if text.starts_with("TM ") {
        let wl = io::tm_from_str(&text).map_err(|e| e.to_string())?;
        let scheme = args::parse_tm_scheme(&a.scheme)?;
        let m = TmMachine::try_new(&wl, scheme, &SimConfig::tm_default())
            .map_err(|e| e.to_string())?;
        let stats = m.try_run().map_err(|e| e.to_string())?;
        report::print_tm(&wl.name.clone(), scheme, &stats, false);
        Ok(())
    } else if text.starts_with("TLS ") {
        let wl = io::tls_from_str(&text).map_err(|e| e.to_string())?;
        let scheme = args::parse_tls_scheme(&a.scheme)?;
        let cfg = SimConfig::tls_default();
        let seq = bulk_tls::run_tls_sequential(&wl, &cfg);
        let m = TlsMachine::try_new(&wl, scheme, &cfg).map_err(|e| e.to_string())?;
        let stats = m.try_run().map_err(|e| e.to_string())?;
        report::print_tls(&wl.name.clone(), scheme, seq, &stats, false);
        Ok(())
    } else {
        Err("unrecognized trace header (expected `TM <name>` or `TLS <name>`)".into())
    }
}

fn sweep_sig(app: &str, seed: u64) -> Result<(), String> {
    let p = profiles::tm_profile(app)
        .ok_or_else(|| format!("unknown TM app `{app}` (try `bulk list`)"))?;
    let wl = p.generate(seed);
    let cfg = SimConfig::tm_default();
    println!(
        "{:<6} {:>7} {:>9} {:>7} {:>9} {:>9}",
        "config", "bits", "squashes", "false", "false%", "cycles"
    );
    for id in ["S1", "S4", "S9", "S12", "S14", "S17", "S19", "S23"] {
        let sig = signature(id)?;
        let bits = sig.size_bits();
        let stats = TmMachine::with_signature(&wl, bulk_tm::Scheme::Bulk, &cfg, sig).run();
        println!(
            "{:<6} {:>7} {:>9} {:>7} {:>8.1} {:>9}",
            id,
            bits,
            stats.squashes,
            stats.false_squashes,
            100.0 * stats.false_squash_frac(),
            stats.cycles
        );
    }
    Ok(())
}
